"""Quickstart: compute, simplify, and query a Morse-Smale complex.

Runs in a few seconds.  Demonstrates:

1. the unified ``repro.compute`` facade on a synthetic field,
2. the same call routed through the parallel pipeline (8 ranks, full
   radix-8 merge),
3. that both computations find the same features,
4. basic feature queries on the result.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import compute
from repro.analysis import arcs_by_family, significant_extrema
from repro.data import gaussian_bumps_field


def main() -> None:
    # A smooth field with 6 well-separated features.
    field = gaussian_bumps_field((32, 32, 32), num_bumps=6, seed=42)
    print(f"input: {field.shape} volume, "
          f"range [{field.min():.3f}, {field.max():.3f}]")

    # --- serial computation -------------------------------------------
    # ranks=1 (the default) routes through the single-block serial path
    msc = compute(field, persistence=0.1).merged_complexes[0]
    print("\nserial MS complex:")
    print(" ", msc.summary())

    maxima = significant_extrema(msc, index=3, min_value=0.2)
    print(f"  significant maxima (value > 0.2): {len(maxima)}")
    for nid in sorted(maxima, key=lambda n: -msc.node_value[n])[:6]:
        print(f"    node {nid}: value {msc.node_value[nid]:.3f}")

    ridge_arcs = arcs_by_family(msc, upper_index=3)
    print(f"  2-saddle->maximum (ridge) arcs: {len(ridge_arcs)}")

    # --- parallel computation (8 ranks, full radix-8 merge) ------------
    # workers>1 would additionally fan the per-block compute stage out
    # over OS processes — bit-identical results either way
    result = compute(field, persistence=0.1, ranks=8, merge_radix=8)
    merged = result.merged_complexes[0]
    print("\nparallel MS complex (8 ranks, radix-8 full merge):")
    print(" ", merged.summary())
    print("  virtual stage times:", {
        k: round(v, 4) for k, v in result.stats.stage_breakdown().items()
    })

    assert merged.node_counts_by_index() == msc.node_counts_by_index(), (
        "parallel and serial computations disagree!"
    )
    print("\nparallel == serial feature counts: OK "
          f"{merged.node_counts_by_index()}")


if __name__ == "__main__":
    main()
