"""Filament analysis of a porous material (paper Fig. 1 workflow).

The paper's motivating example: a porous solid represented as a signed
distance field, whose filament structure (three-dimensional ridge lines)
is traced by 2-saddle-maximum arcs of the MS complex.  "As an embedded
graph, the filaments can be analyzed using graph algorithms, extracting
statistics such as length, cycle count, and the minimum cut", and the
scientist explores "multiple threshold values" interactively — here, a
small threshold parameter study.

Usage::

    python examples/porous_filaments.py
"""

from __future__ import annotations

import numpy as np

from repro import PipelineConfig, ParallelMSComplexPipeline
from repro.analysis import (
    arcs_by_family,
    filament_statistics,
    filter_arcs_by_value,
    project_ascii,
    rasterize,
    to_networkx,
)


def porous_material_field(
    n: int = 40, num_grains: int = 40, seed: int = 3
) -> np.ndarray:
    """Synthetic porous solid: soft-min distance to random grains.

    The filament (ridge) network of the pore space lies along maxima of
    distance-to-material, mimicking the signed-distance field of the
    paper's porous-solid study.
    """
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 1.0, n)
    X, Y, Z = np.meshgrid(t, t, t, indexing="ij")
    centers = rng.uniform(0, 1, size=(num_grains, 3))
    radii = rng.uniform(0.06, 0.14, size=num_grains)
    dist = np.full((n, n, n), np.inf)
    for (cx, cy, cz), r in zip(centers, radii):
        d = np.sqrt((X - cx) ** 2 + (Y - cy) ** 2 + (Z - cz) ** 2) - r
        dist = np.minimum(dist, d)
    # clamp by the distance to the domain boundary: the sample is embedded
    # in material, so pore filaments (distance maxima) stay interior
    # rather than draining off the open box boundary
    wall = np.minimum.reduce(
        [X, 1.0 - X, Y, 1.0 - Y, Z, 1.0 - Z]
    ) - 0.02
    dist = np.minimum(dist, wall)
    return dist  # positive in the pore space, negative inside material


def main() -> None:
    field = porous_material_field()
    print(f"porous material: {field.shape}, "
          f"pore fraction {np.mean(field > 0):.2f}")

    cfg = PipelineConfig(
        num_blocks=8, persistence_threshold=0.01, merge_radices="full"
    )
    result = ParallelMSComplexPipeline(cfg).run(field)
    msc = result.merged_complexes[0]
    print("MS complex:", msc.summary())

    ridge_arcs = arcs_by_family(msc, upper_index=3)
    print(f"\nridge (2-saddle->max) arcs: {len(ridge_arcs)}")

    # threshold parameter study: keep filaments deep inside the pores
    print(f"\n{'threshold':>10} {'arcs':>6} {'components':>11} "
          f"{'cycles':>7} {'total length':>13}")
    for threshold in (0.00, 0.01, 0.02, 0.04):
        kept = filter_arcs_by_value(msc, ridge_arcs, min_value=threshold)
        g = to_networkx(msc, kept)
        stats = filament_statistics(g)
        print(
            f"{threshold:>10.2f} {int(stats['arcs']):>6} "
            f"{int(stats['components']):>11} {int(stats['cycles']):>7} "
            f"{stats['total_length']:>13.1f}"
        )
    print(
        "\nRaising the threshold prunes shallow filaments; components"
        "\nand cycle counts quantify the connectivity of the pore network."
    )

    # a quick look at the filament network (paper Fig. 1 style, in ASCII:
    # '.' arc paths, '#' 2-saddles, 'X' maxima, projected along z)
    deep = filter_arcs_by_value(msc, ridge_arcs, min_value=0.01)
    print("\nfilament network projection:")
    print(project_ascii(rasterize(msc, arcs=deep)))


if __name__ == "__main__":
    main()
