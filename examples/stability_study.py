"""Stability of the MS complex under blocking (paper Fig. 4).

Computes the MS complex of the hydrogen-atom density with 1, 8, and 64
blocks and shows that (a) before simplification, blocking introduces
spurious boundary-artifact critical points, (b) 1%-persistence
simplification removes them, and (c) the stable features — the three
lobes and the toroidal ring, selected as 2-saddle-maximum arcs with node
values above the threshold — are recovered identically in every blocking.

Usage::

    python examples/stability_study.py
"""

from __future__ import annotations

from repro import (
    ParallelMSComplexPipeline,
    PipelineConfig,
    compute_morse_smale_complex,
)
from repro.analysis import arcs_by_family
from repro.data import hydrogen_atom


def stable_features(msc, value_threshold: float = 14.5):
    """Paper Fig. 4 bottom row: strong maxima and their ridge arcs.

    Maxima are selected by node value; the arcs kept are 2-saddle-maximum
    arcs whose *upper* endpoint passes the filter (the saddles along a
    ridge sit below the maxima, so filtering both endpoints would drop
    the connecting arcs the figure shows).
    """
    arcs = [
        a
        for a in arcs_by_family(msc, upper_index=3)
        if msc.node_value[msc.arc_upper[a]] > value_threshold
    ]
    maxima = sorted(
        round(msc.node_value[n], 6)
        for n in msc.alive_nodes()
        if msc.node_index[n] == 3 and msc.node_value[n] > value_threshold
    )
    return arcs, maxima


def main() -> None:
    field = hydrogen_atom(41)
    value_range = field.max() - field.min()
    threshold = 0.01 * value_range  # the paper's 1% persistence
    print(f"hydrogen atom density: {field.shape}, byte-valued, "
          f"1% persistence = {threshold:.2f}")

    serial = compute_morse_smale_complex(field, persistence_threshold=threshold)
    print("\nserial (1 block):      ", serial.summary())
    s_arcs, s_maxima = stable_features(serial)
    print(f"  stable features: {len(s_arcs)} strong arcs, "
          f"{len(s_maxima)} strong maxima")

    for blocks in (8, 64):
        raw_cfg = PipelineConfig(
            num_blocks=blocks, persistence_threshold=0.0,
            merge_radices="none", simplify_at_zero_persistence=False,
        )
        raw = ParallelMSComplexPipeline(raw_cfg).run(field)
        raw_nodes = sum(raw.combined_node_counts())

        cfg = PipelineConfig(
            num_blocks=blocks, persistence_threshold=threshold,
            merge_radices="full",
        )
        result = ParallelMSComplexPipeline(cfg).run(field)
        msc = result.merged_complexes[0]
        arcs, maxima = stable_features(msc)
        print(f"\nparallel ({blocks} blocks):")
        print(f"  unmerged, unsimplified: {raw_nodes} nodes "
              "(boundary artifacts visible)")
        print("  merged + 1% simplified:", msc.summary())
        print(f"  stable features: {len(arcs)} strong arcs, "
              f"{len(maxima)} strong maxima")
        same = set(maxima) == set(s_maxima)
        print(f"  strong maxima match serial: {same}")


if __name__ == "__main__":
    main()
