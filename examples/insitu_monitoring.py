"""In-situ topological monitoring of a running simulation (§VII-B).

The paper's future-work plan — "embed our algorithm into the S3D
combustion code and generate parallel MS complexes in situ" — realized
at laptop scale: a time-evolving Rayleigh-Taylor simulation proxy is
streamed through a persistent :class:`InSituAnalyzer`.  The analyzer
rides one :class:`~repro.core.session.PipelineSession`, so the worker
pools, the shared-memory slot, the decomposition/merge plan, and the
warmed structure tables are built on the first step and *reused* by
every later one — the amortization a real coupling lives on.  Each
step is still bit-identical to a one-shot run of the same field.

Usage::

    python examples/insitu_monitoring.py
"""

from __future__ import annotations

from repro import PipelineConfig
from repro.core.insitu import InSituAnalyzer
from repro.data import rayleigh_taylor_sequence


def main() -> None:
    cfg = PipelineConfig(
        num_blocks=8,
        persistence_threshold=0.15,
        merge_radices="full",
    )
    steps = rayleigh_taylor_sequence((32, 32, 32), num_steps=5)

    print("in-situ Rayleigh-Taylor monitoring (8 virtual ranks)\n")
    print(f"{'step':>5} {'time':>6} {'nodes':>6} {'minima':>7} "
          f"{'maxima':>7} {'output B':>9} {'virt s':>7}")
    with InSituAnalyzer(cfg, feature_min_value=None) as analyzer:
        # stream() consumes (time, field) pairs lazily, one session
        # step per simulation step, yielding records as they complete
        for record, _result in analyzer.stream(steps):
            print(
                f"{record.step:>5} {record.time:>6.2f} "
                f"{sum(record.node_counts):>6} "
                f"{record.significant_minima:>7} "
                f"{record.significant_maxima:>7} "
                f"{record.output_bytes:>9} {record.virtual_seconds:>7.3f}"
            )

        series = analyzer.feature_timeseries()
        growth = series["nodes"][-1] - series["nodes"][0]
        print(f"\nfeature count grew by {growth:+.0f} nodes over the run "
              "— the developing instability, observed without writing\n"
              "any raw simulation data to disk.")
        print(analyzer.session.stats.describe())


if __name__ == "__main__":
    main()
