"""Exploring merge strategies (paper §VI-C).

The pipeline exposes the merge schedule — number of rounds and radix per
round — as a tunable parameter.  This example runs the same 64-block
computation under several strategies and reports output block counts,
per-round virtual merge times, and output sizes, illustrating the paper's
guidelines: "a smaller number of rounds with higher radices is desired",
and leftover small radices belong in early rounds.

Usage::

    python examples/merge_strategies.py
"""

from __future__ import annotations

from repro import compute
from repro.data import rayleigh_taylor_proxy


def main() -> None:
    field = rayleigh_taylor_proxy((33, 33, 33), num_plumes=16)
    print(f"Rayleigh-Taylor proxy: {field.shape}")

    # merge_radix accepts a single radix (full merge), an explicit
    # per-round sequence, or "none" to skip the merge stage
    strategies: list[tuple[str, object]] = [
        ("full  [8 8]", [8, 8]),
        ("full  [2 4 8]", [2, 4, 8]),
        ("full  [8 4 2]", [8, 4, 2]),
        ("full  [2x6]", [2] * 6),
        ("partial [8]", [8]),
        ("none", "none"),
    ]

    print(f"\n{'strategy':>14} {'out blocks':>10} {'merge time':>11} "
          f"{'round times':>28} {'output bytes':>13}")
    for name, radices in strategies:
        result = compute(
            field, persistence=0.05, ranks=64, merge_radix=radices
        )
        rounds = result.stats.merge_round_times()
        print(
            f"{name:>14} {result.num_output_blocks:>10} "
            f"{sum(rounds):>11.4f} "
            f"{'[' + ' '.join(f'{t:.4f}' for t in rounds) + ']':>28} "
            f"{result.stats.output_bytes:>13}"
        )

    print(
        "\nFewer rounds with higher radices minimize total merge time;"
        "\nskipping the merge leaves many output blocks whose unresolved"
        "\nboundary artifacts inflate the output size."
    )


if __name__ == "__main__":
    main()
