"""Multi-scale interactive exploration (paper Fig. 1, right side).

"A scientist may interactively visualize statistics about the
topological structure of the data or select different threshold values
to define features.  Such exploration provides immediate feedback ...
This allows scientists to conduct parameter studies without the need to
rerun analyses on the original data."

The enabling structure is the cancellation hierarchy (§III-C): one
computation yields a multi-resolution family of complexes, and every
persistence level is a cheap query.  This example computes the hierarchy
of a Rayleigh-Taylor proxy once, then "moves the slider" across
persistence levels, reporting the feature counts and the 1-skeleton
statistics at each scale — no recomputation.

Usage::

    python examples/multiscale_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import MSComplexHierarchy
from repro.data import rayleigh_taylor_proxy
from repro.mesh.cubical import CubicalComplex
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.simplify import simplify_ms_complex
from repro.morse.tracing import extract_ms_complex


def main() -> None:
    field = rayleigh_taylor_proxy((28, 28, 28), num_plumes=14)
    print(f"Rayleigh-Taylor proxy {field.shape}, "
          f"density range [{field.min():.2f}, {field.max():.2f}]")

    # one full computation, fully simplified, hierarchy captured
    cx = CubicalComplex(field)
    grad = compute_discrete_gradient(cx)
    msc = extract_ms_complex(grad)
    simplify_ms_complex(msc, np.inf, respect_boundary=False)
    hierarchy = MSComplexHierarchy.from_complex(msc)
    print(f"hierarchy: {hierarchy.num_levels} cancellation levels, "
          f"persistence range "
          f"[0, {max(hierarchy.persistences):.3f}]\n")

    # the parameter study: walk the persistence slider
    print(f"{'persistence':>12} {'min':>5} {'1sad':>5} {'2sad':>5} "
          f"{'max':>5} {'arcs':>6}")
    for frac in (0.0, 0.001, 0.01, 0.05, 0.2, 0.5, 1.0):
        p = frac * max(hierarchy.persistences)
        view = hierarchy.view_at_persistence(p)
        c = view.node_counts_by_index()
        print(f"{p:>12.4f} {c[0]:>5} {c[1]:>5} {c[2]:>5} {c[3]:>5} "
              f"{len(view.arcs):>6}")

    xs, ys = hierarchy.node_count_curve()
    # find the persistence plateau: the scale band where the feature
    # count is stable (the "right" threshold for this dataset)
    print(
        "\nfeature-count curve has "
        f"{len(set(ys))} distinct levels across {len(xs)} thresholds;"
        "\neach row above was a pure query - the data was processed once."
    )


if __name__ == "__main__":
    main()
