"""Multi-scale interactive exploration (paper Fig. 1, right side).

"A scientist may interactively visualize statistics about the
topological structure of the data or select different threshold values
to define features.  Such exploration provides immediate feedback ...
This allows scientists to conduct parameter studies without the need to
rerun analyses on the original data."

The enabling structure is the cancellation hierarchy (§III-C): one
computation yields a multi-resolution family of complexes, and every
persistence level is a cheap query.  This example runs the parallel
pipeline ONCE with the ``hierarchy`` option, persists the result — the
complex and its hierarchy together — into a ``.msc`` v2 file, and then
"moves the slider" entirely through the file: every threshold below is
answered by :func:`repro.query` out of the persisted footer, without
touching the original data or re-simplifying anything.  Close the
session, come back tomorrow, point ``repro query`` at the same file —
same instant answers.

Usage::

    python examples/multiscale_exploration.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import repro
from repro.data import rayleigh_taylor_proxy


def main() -> None:
    field = rayleigh_taylor_proxy((28, 28, 28), num_plumes=14)
    print(f"Rayleigh-Taylor proxy {field.shape}, "
          f"density range [{field.min():.2f}, {field.max():.2f}]")

    # one full parallel computation, hierarchy captured and persisted
    result = repro.compute(
        field, persistence=0.0, ranks=8,
        options=repro.ExecutionOptions(retry_backoff=0.0, hierarchy=True),
    )
    with tempfile.TemporaryDirectory() as workdir:
        path = Path(workdir) / "rt_proxy.msc"
        nbytes = result.write(str(path))
        print(f"persisted complex + hierarchy: {nbytes} bytes (.msc v2)")

        # everything below is pure file queries — the pipeline is done
        hierarchies = repro.load_hierarchy(str(path))
        depth = max(h.num_levels for h in hierarchies.values())
        top = max(max(h.persistences) for h in hierarchies.values())
        print(f"hierarchy: {depth} cancellation levels, "
              f"persistence range [0, {top:.3f}]\n")

        # the parameter study: walk the persistence slider
        print(f"{'persistence':>12} {'min':>5} {'1sad':>5} {'2sad':>5} "
              f"{'max':>5} {'arcs':>6}")
        for frac in (0.0, 0.001, 0.01, 0.05, 0.2, 0.5, 1.0):
            p = frac * top
            answer = repro.query(hierarchies, persistence=p)
            c = answer.node_counts_by_index()
            print(f"{p:>12.4f} {c[0]:>5} {c[1]:>5} {c[2]:>5} {c[3]:>5} "
                  f"{answer.num_arcs:>6}")

        # coarse-to-fine: the k most persistent features, no threshold
        # guessing required
        for k in (2, 8):
            answer = repro.query(hierarchies, top_k=k)
            print(f"\ntop-{k} scales: {answer.num_nodes} nodes, "
                  f"{answer.num_arcs} arcs "
                  f"(effective persistence {answer.persistence:.4f})")

    print(
        "\neach row above was a pure file lookup - the data was "
        "processed once."
    )


if __name__ == "__main__":
    main()
