"""Finding dissipation elements in a turbulent jet (paper §VI-D1 science).

"In this simulation, structures called dissipation elements are
correlated to flame extinction, and are centered around minima of mixture
fraction.  We find important minima by computing and simplifying the MS
complex."

This example runs the parallel pipeline on the JET mixture-fraction proxy
(see DESIGN.md for the substitution), extracts the significant minima at
several persistence levels, and verifies the parallel result against a
serial computation.

Usage::

    python examples/combustion_minima.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ParallelMSComplexPipeline,
    PipelineConfig,
    compute_morse_smale_complex,
)
from repro.analysis import persistence_curve, significant_extrema
from repro.data import jet_mixture_fraction_proxy


def main() -> None:
    field = jet_mixture_fraction_proxy(dims=(48, 56, 32))
    print(f"jet mixture fraction proxy: {field.shape}, "
          f"range [{field.min():.3f}, {field.max():.3f}]")

    # parallel computation, one block per process, full merge
    cfg = PipelineConfig(
        num_blocks=16,
        persistence_threshold=0.02,
        merge_radices="full",
    )
    result = ParallelMSComplexPipeline(cfg).run(field)
    msc = result.merged_complexes[0]
    print("merged MS complex:", msc.summary())
    print("virtual stage times:", {
        k: round(v, 4) for k, v in result.stats.stage_breakdown().items()
    })

    # dissipation elements: minima inside the mixing region
    minima = significant_extrema(msc, index=0, max_value=0.6)
    print(f"\ndissipation-element candidate minima "
          f"(mixture fraction < 0.6): {len(minima)}")
    for nid in sorted(minima, key=lambda n: msc.node_value[n])[:8]:
        print(f"  minimum at address {msc.node_address[nid]}: "
              f"value {msc.node_value[nid]:.4f}")

    # persistence parameter study from the hierarchy
    thresholds, counts = persistence_curve(msc, num_points=8)
    print("\npersistence parameter study (remaining critical points):")
    for t, c in zip(thresholds, counts):
        print(f"  persistence <= {t:.4f}: {c} critical points")

    # validation against serial
    serial = compute_morse_smale_complex(field, persistence_threshold=0.02)
    s_min = len(significant_extrema(serial, index=0, max_value=0.6))
    print(f"\nserial check: {s_min} significant minima "
          f"(parallel found {len(minima)})")


if __name__ == "__main__":
    main()
