"""Tests for the shared-memory compute-stage backends.

The hard requirement of the executor design: per-block results — and
therefore the merged complex — must be *bit-identical* between serial
and process-pool execution.  The boundary-restricted pairing makes every
block independent, so the executor is a pure scheduling choice; these
tests assert that end-to-end on payload bytes, nodes, arcs, geometry,
and persistence pairs.
"""

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.merge import pack_complex
from repro.core.pipeline import (
    BlockSpec,
    ParallelMSComplexPipeline,
    compute_block,
)
from repro.data.synthetic import gaussian_bumps_field, sinusoidal_field
from repro.io.volume import write_volume
from repro.parallel.decomposition import decompose
from repro.parallel.executor import (
    BlockExecutor,
    ProcessPoolBlockExecutor,
    SerialExecutor,
    make_executor,
)
from repro.parallel.runtime import pool_makespan


# ---------------------------------------------------------------------------
# pool_makespan (virtual-clock charging)
# ---------------------------------------------------------------------------


class TestPoolMakespan:
    def test_one_worker_is_serial_sum(self):
        assert pool_makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_enough_workers_is_max(self):
        assert pool_makespan([1.0, 2.0, 3.0], 3) == pytest.approx(3.0)
        assert pool_makespan([1.0, 2.0, 3.0], 99) == pytest.approx(3.0)

    def test_list_scheduling_in_order(self):
        # two workers, tasks [3, 1, 1, 1] in order:
        # w0: 3            -> busy to 3
        # w1: 1+1+1        -> busy to 3
        assert pool_makespan([3.0, 1.0, 1.0, 1.0], 2) == pytest.approx(3.0)
        # tasks [2, 1, 3]: w0 takes 2, w1 takes 1 then 3 -> busy to 4
        assert pool_makespan([2.0, 1.0, 3.0], 2) == pytest.approx(4.0)

    def test_empty_and_validation(self):
        assert pool_makespan([], 4) == 0.0
        with pytest.raises(ValueError):
            pool_makespan([1.0], 0)

    def test_bounded_by_sum_and_max(self):
        rng = np.random.default_rng(3)
        durations = rng.random(17).tolist()
        for w in (2, 3, 5):
            m = pool_makespan(durations, w)
            assert max(durations) <= m <= sum(durations)


# ---------------------------------------------------------------------------
# executor construction and ordering
# ---------------------------------------------------------------------------


def _square(x):
    return x * x


class TestExecutors:
    def test_make_executor_resolution(self):
        assert isinstance(make_executor("serial", 4), SerialExecutor)
        assert isinstance(make_executor("auto", 1), SerialExecutor)
        assert isinstance(
            make_executor("auto", 2), ProcessPoolBlockExecutor
        )
        assert isinstance(
            make_executor("process", 1), ProcessPoolBlockExecutor
        )
        with pytest.raises(ValueError):
            make_executor("threads", 2)
        with pytest.raises(ValueError):
            make_executor("auto", 0)

    def test_protocol_conformance(self):
        assert isinstance(SerialExecutor(), BlockExecutor)
        assert isinstance(ProcessPoolBlockExecutor(2), BlockExecutor)

    def test_serial_order_preserved(self):
        ex = SerialExecutor()
        assert ex.map_blocks(_square, [3, 1, 2]) == [9, 1, 4]
        ex.close()

    @pytest.mark.slow
    def test_pool_order_preserved_and_reusable(self):
        with ProcessPoolBlockExecutor(2) as ex:
            assert ex.map_blocks(_square, list(range(7))) == [
                n * n for n in range(7)
            ]
            # the pool is reusable across calls and tolerates empty input
            assert ex.map_blocks(_square, []) == []
            assert ex.map_blocks(_square, [5]) == [25]

    def test_close_is_idempotent(self):
        ex = ProcessPoolBlockExecutor(2)
        ex.close()
        ex.close()


# ---------------------------------------------------------------------------
# compute_block: purity and spec validation
# ---------------------------------------------------------------------------


def _single_block_spec(field, threshold=0.05):
    decomp = decompose(field.shape, 1)
    box = decomp.block_box((0, 0, 0))
    return BlockSpec(
        block_id=0,
        box=box,
        refined_origin=box.refined_origin,
        global_refined_dims=decomp.global_refined_dims,
        cut_planes=decomp.cut_planes,
        persistence_threshold=threshold,
        simplify_at_zero_persistence=True,
        validate=False,
        values=field,
    )


class TestComputeBlock:
    def test_pure_and_deterministic(self):
        field = gaussian_bumps_field((11, 11, 11), 3, seed=2)
        spec = _single_block_spec(field)
        a, b = compute_block(spec), compute_block(spec)
        assert a.blob == b.blob
        assert a.cells == b.cells
        assert a.critical_counts == b.critical_counts
        assert a.geometry_cells_traced == b.geometry_cells_traced
        assert a.cancellations == b.cancellations

    def test_requires_exactly_one_input(self):
        field = gaussian_bumps_field((9, 9, 9), 2, seed=2)
        spec = _single_block_spec(field)
        bad = BlockSpec(
            **{
                **spec.__dict__,
                "values": None,
            }
        )
        with pytest.raises(ValueError):
            compute_block(bad)

    def test_spec_is_picklable(self):
        import pickle

        field = gaussian_bumps_field((9, 9, 9), 2, seed=2)
        spec = _single_block_spec(field)
        clone = pickle.loads(pickle.dumps(spec))
        assert compute_block(clone).blob == compute_block(spec).blob


# ---------------------------------------------------------------------------
# serial vs process-pool bit-identity (the tentpole guarantee)
# ---------------------------------------------------------------------------


def _run(field=None, volume=None, *, workers, executor="auto", blocks=8):
    cfg = PipelineConfig(
        num_blocks=blocks,
        persistence_threshold=0.05,
        workers=workers,
        executor=executor,
    )
    pipe = ParallelMSComplexPipeline(cfg)
    return pipe.run(field) if field is not None else pipe.run(volume=volume)


def _identity_checks(serial, pooled):
    assert serial.num_output_blocks == pooled.num_output_blocks
    for bid in serial.output_blocks:
        ms, mp = serial.output_blocks[bid], pooled.output_blocks[bid]
        # bit-identical serialized complexes cover nodes, arcs, geometry
        assert pack_complex(ms) == pack_complex(mp)
        assert ms.node_counts_by_index() == mp.node_counts_by_index()
        assert ms.total_geometry_length() == mp.total_geometry_length()
        # merge-phase persistence pairs (Cancellation is a dataclass)
        assert ms.hierarchy == mp.hierarchy
    # identical work counters, block by block
    for bs, bp in zip(serial.stats.block_stats, pooled.stats.block_stats):
        assert bs.block_id == bp.block_id
        assert bs.cells == bp.cells
        assert bs.critical_counts == bp.critical_counts
        assert bs.nodes_after_simplify == bp.nodes_after_simplify
        assert bs.arcs_after_simplify == bp.arcs_after_simplify
        assert bs.geometry_cells_traced == bp.geometry_cells_traced
        assert bs.cancellations == bp.cancellations
    # the virtual clock is a deterministic function of the work counters,
    # so modeled stage times agree too (compute differs only via workers)
    assert serial.stats.read_time == pooled.stats.read_time
    assert (
        serial.stats.merge_round_times() == pooled.stats.merge_round_times()
    )


@pytest.mark.slow
class TestSerialPoolIdentity:
    def test_synthetic_33cube_bit_identical(self):
        """Serial vs 4-worker pool on the paper-style 33^3 sinusoid."""
        field = sinusoidal_field(33, 4).astype(np.float64)
        serial = _run(field, workers=1)
        pooled = _run(field, workers=4)
        _identity_checks(serial, pooled)
        assert pooled.stats.executor == "process"
        assert pooled.stats.workers == 4

    def test_volume_file_input_bit_identical(self, tmp_path):
        """Workers read their own subarrays from the raw volume file."""
        field = gaussian_bumps_field((17, 17, 17), 5, seed=4)
        spec = write_volume(tmp_path / "f.raw", field, dtype="float64")
        serial = _run(volume=spec, workers=1)
        pooled = _run(volume=spec, workers=3)
        _identity_checks(serial, pooled)

    def test_forced_pool_with_one_worker(self):
        """executor='process' with workers=1 exercises the pool path."""
        field = gaussian_bumps_field((13, 13, 13), 3, seed=9)
        serial = _run(field, workers=1, executor="serial")
        pooled = _run(field, workers=1, executor="process")
        _identity_checks(serial, pooled)

    def test_partial_merge_and_fewer_procs(self):
        field = gaussian_bumps_field((15, 15, 15), 5, seed=23)
        cfg = dict(persistence_threshold=0.05, merge_radices=[2],
                   num_procs=3)
        serial = ParallelMSComplexPipeline(
            PipelineConfig(num_blocks=8, workers=1, **cfg)
        ).run(field)
        pooled = ParallelMSComplexPipeline(
            PipelineConfig(num_blocks=8, workers=2, **cfg)
        ).run(field)
        _identity_checks(serial, pooled)


class TestVirtualClockWithWorkers:
    def test_compute_time_charges_makespan_not_sum(self):
        """More workers shrink the modeled compute time of a multi-block
        rank down to its longest block."""
        field = gaussian_bumps_field((17, 17, 17), 5, seed=4)
        times = {}
        for w in (1, 2, 8):
            cfg = PipelineConfig(
                num_blocks=8, num_procs=1, persistence_threshold=0.05,
                workers=w, executor="serial",  # same schedule, same bits
            )
            res = ParallelMSComplexPipeline(cfg).run(field)
            times[w] = res.stats.compute_time
            per_block = [
                b.virtual_seconds for b in res.stats.block_stats
            ]
        assert times[1] == pytest.approx(sum(per_block))
        assert times[8] == pytest.approx(max(per_block))
        assert times[8] < times[2] < times[1]

    def test_compute_wall_recorded(self):
        field = gaussian_bumps_field((13, 13, 13), 3, seed=9)
        res = _run(field, workers=1)
        assert res.stats.compute_wall_seconds > 0
        assert res.stats.compute_cpu_seconds > 0
        assert res.stats.compute_speedup > 0
        assert "compute stage" in res.stats.describe()


# ---------------------------------------------------------------------------
# fault-tolerance layer: RetryPolicy and FaultTolerantExecutor
# ---------------------------------------------------------------------------


from dataclasses import dataclass, field as dc_field

from repro.core.stats import FaultToleranceStats
from repro.parallel.executor import (
    ComputeStageError,
    CorruptPayloadError,
    FaultTolerantExecutor,
    RetryPolicy,
)


@dataclass
class _Spec:
    block_id: int


@dataclass
class _Flaky:
    """In-process stand-in for compute_block failing N times per block."""

    failures: dict  # block_id -> number of leading attempts that raise
    calls: list = dc_field(default_factory=list)

    def __call__(self, spec):
        self.calls.append(spec.block_id)
        seen = self.calls.count(spec.block_id) - 1
        if seen < self.failures.get(spec.block_id, 0):
            raise RuntimeError(f"flaky block {spec.block_id} try {seen}")
        return spec.block_id * 10


class TestRetryPolicy:
    def test_backoff_sequence_is_exponential(self):
        p = RetryPolicy(backoff=0.5, backoff_factor=3.0)
        assert [p.backoff_seconds(k) for k in (1, 2, 3)] == [0.5, 1.5, 4.5]

    def test_zero_backoff_never_sleeps(self):
        p = RetryPolicy(backoff=0.0)
        assert p.backoff_seconds(1) == p.backoff_seconds(5) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(block_timeout=0.0),
            dict(block_timeout=-1.0),
            dict(max_retries=-1),
            dict(backoff=-0.1),
            dict(backoff_factor=0.5),
            dict(max_pool_restarts=-1),
        ],
    )
    def test_invalid_settings_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestFaultTolerantSerial:
    def _executor(self, **kw):
        kw.setdefault("policy", RetryPolicy(backoff=0.0))
        kw.setdefault("stats", FaultToleranceStats())
        return FaultTolerantExecutor(kind="serial", **kw)

    def test_no_faults_is_plain_map(self):
        fn = _Flaky(failures={})
        ex = self._executor()
        assert ex.map_blocks(fn, [_Spec(i) for i in range(4)]) == [
            0, 10, 20, 30,
        ]
        assert not ex.stats.any_faults()

    def test_transient_failures_are_retried_in_place(self):
        fn = _Flaky(failures={1: 1, 3: 2})
        ex = self._executor()
        assert ex.map_blocks(fn, [_Spec(i) for i in range(4)]) == [
            0, 10, 20, 30,
        ]
        assert ex.stats.retries == 3 and ex.stats.crashes == 3

    def test_exhaustion_raises_readable_compute_stage_error(self):
        fn = _Flaky(failures={2: 99})
        ex = self._executor(policy=RetryPolicy(max_retries=1, backoff=0.0))
        with pytest.raises(ComputeStageError, match=r"block 2.*2 attempt"):
            ex.map_blocks(fn, [_Spec(i) for i in range(3)])

    def test_backoff_uses_injected_sleep(self):
        naps = []
        fn = _Flaky(failures={0: 2})
        ex = self._executor(
            policy=RetryPolicy(backoff=0.25, backoff_factor=2.0),
            sleep=naps.append,
        )
        ex.map_blocks(fn, [_Spec(0)])
        assert naps == [0.25, 0.5]
        assert ex.stats.backoff_seconds == pytest.approx(0.75)

    def test_validator_failure_counts_as_corruption_and_retries(self):
        rejections = []

        def validator(spec, payload):
            if spec.block_id == 1 and not rejections:
                rejections.append(payload)
                raise CorruptPayloadError("checksum mismatch (test)")

        ex = self._executor(validator=validator)
        out = ex.map_blocks(_Flaky(failures={}), [_Spec(0), _Spec(1)])
        assert out == [0, 10]
        assert ex.stats.corrupt_payloads == 1 and ex.stats.crashes == 0

    def test_results_keep_spec_order_despite_retries(self):
        fn = _Flaky(failures={0: 2, 4: 1})
        ex = self._executor()
        specs = [_Spec(i) for i in range(5)]
        assert ex.map_blocks(fn, specs) == [0, 10, 20, 30, 40]

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            FaultTolerantExecutor(kind="threads")
        with pytest.raises(ValueError):
            FaultTolerantExecutor(kind="process", workers=0)

    def test_close_without_pool_is_noop(self):
        ex = self._executor()
        ex.close()
        ex.close()
