"""Tests for repro.machine.xt5: the Jaguar parameter set."""

from repro.machine.bgp import BlueGenePParams
from repro.machine.costmodel import ComputeWork, CostModel
from repro.machine.xt5 import jaguar_xt5


def test_same_schema_as_bgp():
    xt5 = jaguar_xt5()
    assert isinstance(xt5, BlueGenePParams)


def test_xt5_computes_faster():
    bgp = CostModel(BlueGenePParams(), num_procs=64)
    xt5 = CostModel(jaguar_xt5(), num_procs=64)
    work = ComputeWork(cells=1_000_000, geometry_cells=100_000,
                       cancellations=1_000)
    assert xt5.compute_time(work) < bgp.compute_time(work) / 5


def test_xt5_network_faster_but_not_as_much():
    """Compute speeds up ~10x, network ~20x on bandwidth but latency is
    higher — so the *relative* cost of small-message communication grows
    on XT5, which is what moves the merge/compute crossover."""
    bgp = CostModel(BlueGenePParams(), num_procs=64)
    xt5 = CostModel(jaguar_xt5(), num_procs=64)
    work = ComputeWork(cells=1_000_000)
    compute_speedup = bgp.compute_time(work) / xt5.compute_time(work)
    small_message = 10_000  # bytes
    msg_speedup = bgp.message_time(small_message, 0, 1) / xt5.message_time(
        small_message, 0, 1
    )
    assert compute_speedup > msg_speedup


def test_xt5_io_faster():
    bgp = CostModel(BlueGenePParams(), num_procs=1024)
    xt5 = CostModel(jaguar_xt5(), num_procs=1024)
    assert xt5.read_time(100_000_000) < bgp.read_time(100_000_000)
