"""Property test: incremental (seeded) re-simplification is exact.

The merge stage's re-simplification may seed its candidate heap only
from nodes the merge actually disturbed — glued, matched, unghosted,
and boundary-freed nodes — instead of re-heaping every living arc
(``seed_nodes=`` on :func:`repro.morse.simplify.simplify_ms_complex`,
``incremental=True`` on :func:`repro.core.merge.perform_merge`).  This
is an optimization, never an approximation: provided every input
complex was previously simplified at the same threshold with
``respect_boundary=True`` (which holds for every pipeline merge round),
the seeded pass must produce the *identical* cancellation hierarchy and
surviving node set as a full re-heap.  These tests fuzz that identity
over random fields, thresholds, and radix schedules.
"""

import copy

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.glue import AddressIndex, glue_into
from repro.core.merge import pack_complex, perform_merge, unpack_complex
from repro.morse.simplify import simplify_ms_complex
from repro.parallel.decomposition import decompose
from repro.parallel.radixk import MergeSchedule, full_merge_radices

from tests.test_property_simplify_boundary import block_complex


def alive_addresses(msc) -> set[int]:
    return {msc.node_address[n] for n in msc.alive_nodes()}


def simplified_blocks(field, num_blocks, threshold):
    """Per-block complexes exactly as the compute stage leaves them:
    simplified at ``threshold`` with boundary protection, compacted."""
    out = {}
    for bid in range(num_blocks):
        msc = block_complex(field, num_blocks, bid)
        simplify_ms_complex(msc, threshold, respect_boundary=True)
        msc.compact()
        out[bid] = msc
    return out


def assert_merge_paths_identical(seeded, full):
    assert seeded.hierarchy == full.hierarchy
    assert alive_addresses(seeded) == alive_addresses(full)
    assert pack_complex(seeded) == pack_complex(full)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    threshold=st.floats(min_value=0.01, max_value=0.8),
    num_blocks=st.sampled_from([4, 8]),
)
def test_incremental_merge_rounds_match_full_reheap(
    seed, threshold, num_blocks
):
    """Every merge of a full radix-2 schedule agrees between the seeded
    and the full-reheap path — hierarchy, survivors, and packed bytes."""
    field = np.random.default_rng(seed).random((9, 9, 9))
    decomp = decompose(field.shape, num_blocks)
    schedule = MergeSchedule(decomp, full_merge_radices(num_blocks, 2))
    complexes = simplified_blocks(field, num_blocks, threshold)
    for r in range(schedule.num_rounds):
        cuts = schedule.cut_planes_after(r + 1)
        for root_coords, member_coords in schedule.groups(r):
            root_bid = decomp.linear_id(root_coords)
            blobs = [
                pack_complex(complexes.pop(decomp.linear_id(mc)))
                for mc in member_coords
            ]
            seeded = complexes[root_bid]
            full = copy.deepcopy(seeded)
            out_s = perform_merge(
                seeded, [unpack_complex(b) for b in blobs], cuts,
                threshold, incremental=True,
            )
            out_f = perform_merge(
                full, [unpack_complex(b) for b in blobs], cuts,
                threshold, incremental=False,
            )
            assert out_s.cancellations == out_f.cancellations
            assert_merge_paths_identical(seeded, full)
            # later rounds continue from the (identical) seeded result


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    threshold=st.floats(min_value=0.01, max_value=0.8),
)
def test_seed_nodes_from_disturbed_set_is_exact(seed, threshold):
    """Direct ``seed_nodes=`` identity: gluing two simplified halves and
    seeding from glued + freed nodes equals the full-heap pass."""
    field = np.random.default_rng(seed).random((9, 9, 9))
    decomp = decompose(field.shape, 2)
    schedule = MergeSchedule(decomp, [2])
    complexes = simplified_blocks(field, 2, threshold)
    root, other = complexes[0], complexes[1]

    touched: set[int] = set()
    glue_into(root, other, AddressIndex.from_complex(root), touched=touched)
    full = copy.deepcopy(root)

    no_cuts = schedule.cut_planes_after(1)
    touched.update(root.update_boundary_flags(no_cuts, return_ids=True))
    full.update_boundary_flags(no_cuts)

    cancels_seeded = simplify_ms_complex(
        root, threshold, respect_boundary=True, seed_nodes=touched
    )
    cancels_full = simplify_ms_complex(full, threshold, respect_boundary=True)
    assert cancels_seeded == cancels_full
    root.compact()
    full.compact()
    assert_merge_paths_identical(root, full)


def test_identity_is_not_vacuous():
    """Sanity: the merges above really do cancel pairs post-glue — the
    seeded/full comparison is over non-trivial work, not no-ops."""
    field = np.random.default_rng(7).random((9, 9, 9))
    decomp = decompose(field.shape, 8)
    schedule = MergeSchedule(decomp, full_merge_radices(8, 2))
    complexes = simplified_blocks(field, 8, 0.3)
    total = 0
    for r in range(schedule.num_rounds):
        cuts = schedule.cut_planes_after(r + 1)
        for root_coords, member_coords in schedule.groups(r):
            root_bid = decomp.linear_id(root_coords)
            incoming = [
                unpack_complex(pack_complex(
                    complexes.pop(decomp.linear_id(mc))
                ))
                for mc in member_coords
            ]
            out = perform_merge(
                complexes[root_bid], incoming, cuts, 0.3, incremental=True
            )
            total += out.cancellations
    assert total > 0
