"""Tests for repro.parallel.radixk: merge-round schedules."""

import numpy as np
import pytest

from repro.parallel.decomposition import decompose
from repro.parallel.radixk import (
    MergeRound,
    MergeSchedule,
    full_merge_radices,
)


class TestFullMergeRadices:
    def test_paper_examples(self):
        # Table I: 2048 blocks -> [4, 8, 8, 8]
        assert full_merge_radices(2048) == [4, 8, 8, 8]
        # Table II best row: 256 blocks -> [4, 8, 8]
        assert full_merge_radices(256) == [4, 8, 8]
        # §VI-D1: 8192 blocks -> [2, 8, 8, 8, 8]
        assert full_merge_radices(8192) == [2, 8, 8, 8, 8]

    def test_small_counts(self):
        assert full_merge_radices(1) == []
        assert full_merge_radices(2) == [2]
        assert full_merge_radices(8) == [8]
        assert full_merge_radices(64) == [8, 8]

    def test_max_radix_variants(self):
        assert full_merge_radices(256, max_radix=4) == [4, 4, 4, 4]
        assert full_merge_radices(512, max_radix=4) == [2, 4, 4, 4, 4]
        assert full_merge_radices(8, max_radix=2) == [2, 2, 2]

    def test_product_equals_block_count(self):
        for n in [2, 16, 128, 4096]:
            assert int(np.prod(full_merge_radices(n))) == n

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            full_merge_radices(12)
        with pytest.raises(ValueError):
            full_merge_radices(8, max_radix=3)


class TestMergeRound:
    def test_factor_validation(self):
        MergeRound(8, (2, 2, 2))
        with pytest.raises(ValueError):
            MergeRound(8, (2, 2, 1))


class TestMergeSchedule:
    def setup_method(self):
        self.d = decompose((17, 17, 17), 64, splits=(4, 4, 4))

    def test_output_block_count(self):
        s = MergeSchedule(self.d, [8, 8])
        assert s.num_output_blocks == 1
        s = MergeSchedule(self.d, [8])
        assert s.num_output_blocks == 8
        s = MergeSchedule(self.d, [])
        assert s.num_output_blocks == 64

    def test_radix8_factors_are_cubes(self):
        s = MergeSchedule(self.d, [8, 8])
        assert s.rounds[0].factors == (2, 2, 2)
        assert s.rounds[1].factors == (2, 2, 2)

    def test_radix_2_and_4_pick_largest_axes(self):
        d = decompose((33, 17, 9), 8, splits=(4, 2, 1))
        s = MergeSchedule(d, [2])
        assert s.rounds[0].factors == (2, 1, 1)
        s = MergeSchedule(d, [4])
        assert s.rounds[0].factors == (2, 2, 1)

    def test_infeasible_radix_rejected(self):
        d = decompose((17, 9, 9), 2, splits=(2, 1, 1))
        with pytest.raises(ValueError):
            MergeSchedule(d, [4])
        with pytest.raises(ValueError):
            MergeSchedule(d, [5])

    def test_groups_partition_blocks(self):
        s = MergeSchedule(self.d, [8, 8])
        seen = set()
        groups = s.groups(0)
        assert len(groups) == 8
        for root, members in groups:
            assert len(members) == 7
            for m in [root] + members:
                lid = self.d.linear_id(m)
                assert lid not in seen
                seen.add(lid)
        assert len(seen) == 64

    def test_groups_are_contiguous_boxes(self):
        s = MergeSchedule(self.d, [8])
        for root, members in s.groups(0):
            coords = np.array([root] + members)
            span = coords.max(axis=0) - coords.min(axis=0)
            assert tuple(span) == (1, 1, 1)  # a 2x2x2 box

    def test_root_is_smallest_member(self):
        s = MergeSchedule(self.d, [8, 8])
        for rnd in range(2):
            for root, members in s.groups(rnd):
                assert all(tuple(root) <= tuple(m) for m in members)

    def test_second_round_groups_are_round1_roots(self):
        s = MergeSchedule(self.d, [8, 8])
        roots_r0 = {tuple(r) for r, _m in s.groups(0)}
        for root, members in s.groups(1):
            assert tuple(root) in roots_r0
            for m in members:
                assert tuple(m) in roots_r0

    def test_cut_planes_shrink_after_rounds(self):
        s = MergeSchedule(self.d, [8, 8])
        full = s.cut_planes_after(0)
        after1 = s.cut_planes_after(1)
        after2 = s.cut_planes_after(2)
        for axis in range(3):
            assert len(after1[axis]) < len(full[axis])
            assert set(after1[axis]).issubset(set(full[axis]))
        assert all(len(after2[axis]) == 0 for axis in range(3))

    def test_describe(self):
        s = MergeSchedule(self.d, [4, 8])
        assert s.describe() == "4 8"

    def test_paper_table2_strategies_all_feasible(self):
        """Every merge strategy of Table II must be schedulable on a
        256-block decomposition."""
        d = decompose((33, 33, 33), 256, splits=(8, 8, 4))
        for radices in ([4, 8, 8], [8, 8, 4], [4, 4, 2, 8],
                        [4, 4, 4, 4], [2] * 8):
            s = MergeSchedule(d, radices)
            assert s.num_output_blocks == 1
