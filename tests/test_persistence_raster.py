"""Tests for repro.morse.persistence and repro.analysis.raster."""

import numpy as np
import pytest

from repro.analysis.raster import LABELS, project_ascii, rasterize
from repro.data.synthetic import gaussian_bumps_field
from repro.mesh.cubical import CubicalComplex
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.persistence import (
    diagram_statistics,
    persistence_diagram,
)
from repro.morse.simplify import simplify_ms_complex
from repro.morse.tracing import extract_ms_complex
from repro.core.pipeline import compute_morse_smale_complex


@pytest.fixture(scope="module")
def simplified():
    field = gaussian_bumps_field((14, 14, 14), 4, seed=3, noise=0.01)
    msc = extract_ms_complex(
        compute_discrete_gradient(CubicalComplex(field))
    )
    simplify_ms_complex(msc, np.inf, respect_boundary=False)
    return msc


class TestPersistenceDiagram:
    def test_one_pair_per_cancellation(self, simplified):
        pairs = persistence_diagram(simplified)
        assert len(pairs) == len(simplified.hierarchy)

    def test_birth_death_consistency(self, simplified):
        for p in persistence_diagram(simplified):
            assert p.death >= p.birth
            assert p.persistence == pytest.approx(p.death - p.birth)
            assert p.upper_index in (1, 2, 3)

    def test_index_filter(self, simplified):
        all_pairs = persistence_diagram(simplified)
        by_index = [
            persistence_diagram(simplified, upper_index=d)
            for d in (1, 2, 3)
        ]
        assert sum(len(b) for b in by_index) == len(all_pairs)
        for d, pairs in zip((1, 2, 3), by_index):
            assert all(p.upper_index == d for p in pairs)
        with pytest.raises(ValueError):
            persistence_diagram(simplified, upper_index=0)

    def test_statistics(self, simplified):
        pairs = persistence_diagram(simplified)
        stats = diagram_statistics(pairs)
        assert stats["count"] == len(pairs)
        assert stats["max_persistence"] >= stats["median_persistence"]
        assert diagram_statistics([])["count"] == 0.0

    def test_compacted_complex_raises(self, simplified):
        import copy

        msc = copy.deepcopy(simplified)
        msc.compact()
        with pytest.raises(LookupError):
            persistence_diagram(msc)

    def test_feature_pairs_match_noise_scale(self):
        """Noise pairs sit near the noise amplitude; feature pairs are
        an order of magnitude higher (the diagram's gap)."""
        field = gaussian_bumps_field((14, 14, 14), 3, seed=5, noise=0.01)
        msc = extract_ms_complex(
            compute_discrete_gradient(CubicalComplex(field))
        )
        simplify_ms_complex(msc, np.inf, respect_boundary=False)
        pairs = sorted(
            persistence_diagram(msc), key=lambda p: p.persistence
        )
        persistences = [p.persistence for p in pairs]
        # a gap exists between the noise band and the feature band
        assert persistences[0] < 0.1
        assert persistences[-1] > 0.3


class TestRaster:
    def test_labels_present(self):
        field = gaussian_bumps_field((12, 12, 12), 3, seed=1)
        msc = compute_morse_smale_complex(field, persistence_threshold=0.1)
        vol = rasterize(msc)
        assert vol.shape == (12, 12, 12)
        labels = set(np.unique(vol).tolist())
        assert LABELS["background"] in labels
        assert LABELS["maximum"] in labels

    def test_node_positions(self):
        field = gaussian_bumps_field((12, 12, 12), 3, seed=1)
        msc = compute_morse_smale_complex(field, persistence_threshold=0.1)
        vol = rasterize(msc)
        n_max = msc.node_counts_by_index()[3]
        assert np.count_nonzero(vol == LABELS["maximum"]) == n_max

    def test_arcs_only(self):
        field = gaussian_bumps_field((12, 12, 12), 3, seed=1)
        msc = compute_morse_smale_complex(field, persistence_threshold=0.1)
        vol = rasterize(msc, nodes=False)
        labels = set(np.unique(vol).tolist())
        assert labels <= {LABELS["background"], LABELS["arc"]}

    def test_ascii_projection(self):
        field = gaussian_bumps_field((12, 12, 12), 3, seed=1)
        msc = compute_morse_smale_complex(field, persistence_threshold=0.1)
        art = project_ascii(rasterize(msc))
        lines = art.split("\n")
        assert len(lines) == 12
        assert all(len(line) == 12 for line in lines)
        assert "X" in art  # a maximum shows up

    def test_ascii_validation(self):
        with pytest.raises(ValueError):
            project_ascii(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            project_ascii(np.zeros((3, 3, 3), dtype=np.uint8), axis=5)
