"""Property-based tests of the radix-k merge schedules (paper §IV-F2).

Exhaustively checks every process count 1-64 (the acceptance range) for
all maximum radices, and fuzzes arbitrary partial schedules with
hypothesis.  Core invariants:

- a full-merge radix list is a valid factorization: every radix in
  {2, 4, 8}, product equal to the block count, and any leftover smaller
  radix placed in the *first* round (the paper's guideline);
- a schedule's merge groups form an absorption forest: every block is
  merged into a root *exactly once*, a merged block never reappears in
  a later round, and the surviving roots are exactly the schedule's
  output blocks.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.decomposition import decompose
from repro.parallel.radixk import MergeSchedule, full_merge_radices

DIMS = (65, 65, 65)  # big enough to split into 64 blocks on any axis mix


def is_power_of_two(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


def absorption_check(schedule, n: int, expected_outputs: int) -> None:
    """Assert the groups of all rounds merge each block exactly once."""
    decomp = schedule.decomposition
    alive = set(range(n))
    merged_ever: list[int] = []
    for r in range(schedule.num_rounds):
        groups = schedule.groups(r)
        touched = set()
        for root, members in groups:
            rid = decomp.linear_id(root)
            mids = [decomp.linear_id(m) for m in members]
            assert rid not in mids
            # the root is the lexicographically smallest group member
            assert rid == min([rid] + mids)
            for bid in [rid] + mids:
                assert bid in alive, f"round {r} touches dead block {bid}"
                assert bid not in touched, f"block {bid} in two groups"
                touched.add(bid)
            merged_ever.extend(mids)
        # each round covers every surviving block exactly once
        assert touched == alive
        alive -= {decomp.linear_id(m) for _, ms in groups for m in ms}
    # merged exactly once overall, survivors == declared outputs
    assert len(merged_ever) == len(set(merged_ever)) == n - len(alive)
    assert len(alive) == schedule.num_output_blocks == expected_outputs


class TestFullMergeRadices:
    @pytest.mark.parametrize("n", range(1, 65))
    @pytest.mark.parametrize("max_radix", [2, 4, 8])
    def test_every_process_count(self, n, max_radix):
        if not is_power_of_two(n):
            with pytest.raises(ValueError, match="power of two"):
                full_merge_radices(n, max_radix)
            return
        radices = full_merge_radices(n, max_radix)
        assert all(r in (2, 4, 8) for r in radices)
        assert math.prod(radices) == n
        # leftover-first guideline: all rounds after the first use the
        # maximum radix, and no round exceeds it
        assert all(r == max_radix for r in radices[1:])
        assert all(r <= max_radix for r in radices)

    @pytest.mark.parametrize("max_radix", [0, 1, 3, 5, 16])
    def test_invalid_max_radix_rejected(self, max_radix):
        with pytest.raises(ValueError, match="max_radix"):
            full_merge_radices(8, max_radix)

    def test_paper_schedules(self):
        """The schedules quoted in the paper's Tables I/II and §VI-D1."""
        assert full_merge_radices(2048) == [4, 8, 8, 8]
        assert full_merge_radices(256) == [4, 8, 8]
        assert full_merge_radices(8192) == [2, 8, 8, 8, 8]


class TestFullScheduleAbsorption:
    @pytest.mark.parametrize(
        "n", [n for n in range(1, 65) if is_power_of_two(n)]
    )
    @pytest.mark.parametrize("max_radix", [2, 4, 8])
    def test_each_block_merged_exactly_once(self, n, max_radix):
        schedule = MergeSchedule(
            decompose(DIMS, n), full_merge_radices(n, max_radix)
        )
        absorption_check(schedule, n, expected_outputs=1)

    @pytest.mark.parametrize("n", [2, 8, 64])
    def test_final_root_is_block_zero(self, n):
        schedule = MergeSchedule(decompose(DIMS, n), full_merge_radices(n))
        last = schedule.groups(schedule.num_rounds - 1)
        assert len(last) == 1
        assert schedule.decomposition.linear_id(last[0][0]) == 0


@st.composite
def partial_schedules(draw):
    """A block count 2**k and a radix list whose product divides it."""
    k = draw(st.integers(min_value=0, max_value=6))
    radices, remaining = [], k
    while remaining > 0:
        choices = [r for r in (2, 4, 8) if r.bit_length() - 1 <= remaining]
        r = draw(st.sampled_from(choices + [None]))  # None => stop early
        if r is None:
            break
        radices.append(r)
        remaining -= r.bit_length() - 1
    return 2**k, radices


class TestPartialSchedules:
    @settings(max_examples=200, deadline=None)
    @given(case=partial_schedules())
    def test_partial_merge_absorption(self, case):
        n, radices = case
        schedule = MergeSchedule(decompose(DIMS, n), radices)
        absorption_check(
            schedule, n, expected_outputs=n // math.prod(radices)
        )

    @settings(max_examples=50, deadline=None)
    @given(case=partial_schedules())
    def test_grids_shrink_by_round_factors(self, case):
        n, radices = case
        schedule = MergeSchedule(decompose(DIMS, n), radices)
        assert len(schedule.grids) == len(radices) + 1
        for rnd, before, after in zip(
            schedule.rounds, schedule.grids, schedule.grids[1:]
        ):
            assert tuple(
                b // f for b, f in zip(before, rnd.factors)
            ) == tuple(after)
            assert math.prod(rnd.factors) == rnd.radix

    @pytest.mark.parametrize("bad", [1, 3, 5, 6, 16])
    def test_disallowed_radix_rejected(self, bad):
        with pytest.raises(ValueError, match="not allowed"):
            MergeSchedule(decompose(DIMS, 8), [bad])
