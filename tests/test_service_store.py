"""The content-addressed result store (repro.service.store).

Pins the store's contracts: content keys are pure functions of (volume
content, result config); ``put`` is the single record-construction site
and every read path — memory hit, disk hit, fresh process over a warm
directory — returns a record equal to what ``put`` built (the INV-11
identity); the memory layer is a bounded LRU over a durable disk layer;
the persistence provider is swappable without forking record semantics.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.options import ExecutionOptions
from repro.io.volume import content_hash, write_volume
from repro.obs.metrics import MetricsRegistry
from repro.service.store import (
    FileSystemPersistenceProvider,
    PersistenceProvider,
    ResultRecord,
    ResultStore,
    cache_key,
)


def _config(**overrides) -> PipelineConfig:
    base = dict(num_blocks=8, num_procs=8, persistence_threshold=0.05)
    base.update(overrides)
    return PipelineConfig(**base)


def _put(store: ResultStore, key: str, image: bytes,
         config: PipelineConfig | None = None) -> ResultRecord:
    return store.put(
        key,
        volume_hash="v" * 64,
        config=config or _config(),
        msc_image=image,
        num_output_blocks=1,
        node_counts=(3, 2, 2, 1),
    )


class TestCacheKey:
    def test_pure_function_of_volume_and_result_config(self):
        cfg = _config()
        assert cache_key("a" * 64, cfg) == cache_key("a" * 64, _config())
        assert cache_key("a" * 64, cfg) != cache_key("b" * 64, cfg)
        assert cache_key("a" * 64, cfg) != cache_key(
            "a" * 64, _config(persistence_threshold=0.1)
        )

    def test_scheduling_knobs_do_not_change_the_key(self):
        lean = _config(options=ExecutionOptions(workers=1))
        wide = _config(
            options=ExecutionOptions(
                workers=4, transport="mmap", kernel_backend="pointer"
            )
        )
        assert cache_key("a" * 64, lean) == cache_key("a" * 64, wide)

    def test_key_matches_store_key_for(self, tmp_path, rng):
        field = rng.random((6, 6, 6))
        spec = write_volume(tmp_path / "v.raw", field, dtype="float64")
        store = ResultStore(tmp_path / "cache")
        cfg = _config()
        assert store.key_for(spec, cfg) == cache_key(content_hash(spec), cfg)


class TestResultRecord:
    def test_dict_round_trip(self):
        rec = ResultRecord(
            key="k", volume_hash="v", config_fingerprint="c",
            num_output_blocks=1, node_counts=(3, 2, 2, 1),
            msc_bytes=128, hierarchy=True,
        )
        assert ResultRecord.from_dict(rec.to_dict()) == rec
        # the dict form is the JSON sidecar body: must be serializable
        assert json.loads(json.dumps(rec.to_dict())) == rec.to_dict()


class TestResultStore:
    def test_miss_then_put_then_memory_hit(self, tmp_path):
        metrics = MetricsRegistry()
        store = ResultStore(tmp_path, metrics=metrics)
        key = cache_key("a" * 64, _config())
        assert store.get(key) is None
        record = _put(store, key, b"artifact-bytes")
        got = store.get(key)
        assert got is not None and got == (record, b"artifact-bytes")
        snap = metrics.snapshot()
        assert snap["service.store.misses"]["value"] == 1
        assert snap["service.store.memory_hits"]["value"] == 1
        assert snap["service.store.puts"]["value"] == 1

    def test_disk_survives_process_restart(self, tmp_path):
        key = cache_key("a" * 64, _config())
        record = _put(ResultStore(tmp_path), key, b"payload")
        # a fresh store over the same directory models a restarted
        # daemon: it must serve the identical record and bytes
        reborn = ResultStore(tmp_path)
        got = reborn.get(key)
        assert got is not None
        reloaded, image = got
        assert reloaded == record and image == b"payload"
        assert reborn.contains(key)
        assert reborn.artifact_path(key) == tmp_path / f"{key}.msc"

    def test_put_record_identical_across_every_read_path(self, tmp_path):
        """INV-11: one construction site, equal records everywhere."""
        cfg = _config(options=ExecutionOptions(hierarchy=True))
        key = cache_key("a" * 64, cfg)
        store = ResultStore(tmp_path)
        built = _put(store, key, b"img", config=cfg)
        from_memory = store.get(key)[0]
        cold_reader = ResultStore(tmp_path, max_memory_entries=0)
        from_disk = cold_reader.get(key)[0]
        assert built == from_memory == from_disk
        assert built.hierarchy is True
        assert built.config_fingerprint == cfg.result_fingerprint()
        assert built.msc_bytes == 3

    def test_lru_bounds_memory_and_promotes_disk_hits(self, tmp_path):
        metrics = MetricsRegistry()
        store = ResultStore(tmp_path, max_memory_entries=2,
                            metrics=metrics)
        keys = [cache_key(ch * 64, _config()) for ch in "abc"]
        for i, key in enumerate(keys):
            _put(store, key, f"image-{i}".encode())
        assert store.memory_entries == 2
        assert metrics.snapshot()["service.store.evictions"]["value"] == 1
        # the evicted entry (oldest: keys[0]) still serves from disk,
        # and the hit promotes it back into the hot layer
        assert store.get(keys[0])[1] == b"image-0"
        snap = metrics.snapshot()
        assert snap["service.store.disk_hits"]["value"] == 1
        assert store.get(keys[0])[1] == b"image-0"
        assert (
            metrics.snapshot()["service.store.memory_hits"]["value"] == 1
        )

    def test_zero_memory_entries_disables_hot_layer(self, tmp_path):
        store = ResultStore(tmp_path, max_memory_entries=0)
        key = cache_key("a" * 64, _config())
        _put(store, key, b"x")
        assert store.memory_entries == 0
        assert store.get(key)[1] == b"x"  # disk alone still dedupes


class TestFileSystemProvider:
    def test_sidecar_is_canonical_json(self, tmp_path):
        provider = FileSystemPersistenceProvider(tmp_path)
        store = ResultStore(tmp_path, provider=provider)
        key = cache_key("a" * 64, _config())
        record = _put(store, key, b"bytes")
        sidecar = json.loads((tmp_path / f"{key}.json").read_text())
        assert ResultRecord.from_dict(sidecar) == record

    def test_journal_appends_events(self, tmp_path):
        provider = FileSystemPersistenceProvider(tmp_path)
        provider.persist_job_event({"event": "submitted", "job_id": "j1"})
        provider.persist_job_event({"event": "done", "job_id": "j1"})
        lines = (tmp_path / "jobs.jsonl").read_text().splitlines()
        assert [json.loads(l)["event"] for l in lines] == [
            "submitted", "done",
        ]

    def test_satisfies_the_protocol(self, tmp_path):
        assert isinstance(
            FileSystemPersistenceProvider(tmp_path), PersistenceProvider
        )

    def test_custom_provider_sees_identical_records(self, tmp_path):
        """Swapping the provider cannot fork record semantics."""

        class RecordingProvider:
            def __init__(self):
                self.results: dict[str, tuple] = {}
                self.events: list[dict] = []

            def persist_result(self, record, msc_image):
                self.results[record.key] = (record, msc_image)

            def load_result(self, key):
                return self.results.get(key)

            def artifact_path(self, key):
                return None

            def persist_job_event(self, event):
                self.events.append(event)

        provider = RecordingProvider()
        assert isinstance(provider, PersistenceProvider)
        store = ResultStore(tmp_path, provider=provider,
                            max_memory_entries=0)
        key = cache_key("a" * 64, _config())
        record = _put(store, key, b"img")
        assert provider.results[key] == (record, b"img")
        assert store.get(key) == (record, b"img")
