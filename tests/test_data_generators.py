"""Tests for repro.data: synthetic fields and scientific proxies."""

import numpy as np
import pytest

from repro.core.pipeline import compute_morse_smale_complex
from repro.data.datasets import (
    hydrogen_atom,
    jet_mixture_fraction_proxy,
    rayleigh_taylor_proxy,
)
from repro.data.synthetic import (
    expected_extrema,
    gaussian_bumps_field,
    sinusoidal_field,
    write_volume_chunked,
)
from repro.io.volume import write_volume


class TestSinusoidal:
    def test_shape_and_dtype(self):
        f = sinusoidal_field(16, 2)
        assert f.shape == (16, 16, 16)
        assert f.dtype == np.float32  # paper: 32-bit floating point

    def test_noncubic_dims(self):
        f = sinusoidal_field(0, 2, dims=(8, 12, 10))
        assert f.shape == (8, 12, 10)

    def test_range(self):
        f = sinusoidal_field(32, 4)
        assert -1.01 <= f.min() and f.max() <= 1.01

    def test_tilt_breaks_value_ties(self):
        degenerate = sinusoidal_field(33, 4, tilt=0.0)
        tilted = sinusoidal_field(33, 4)
        # the symmetric product of sines repeats values massively; the
        # tilt makes almost every sample distinct
        unique_degenerate = np.unique(degenerate).size
        unique_tilted = np.unique(tilted).size
        assert unique_tilted > 5 * unique_degenerate

    def test_feature_count_scales_with_complexity(self):
        """More features per side => more maxima, independent of size."""
        counts = {}
        for k in (2, 4):
            f = sinusoidal_field(33, k).astype(np.float64)
            msc = compute_morse_smale_complex(f, persistence_threshold=0.2)
            counts[k] = msc.node_counts_by_index()[3]
        assert counts[4] > counts[2]
        # within a factor ~3 of the analytic expectation
        for k in (2, 4):
            assert counts[k] >= expected_extrema(k) / 3
            assert counts[k] <= expected_extrema(k) * 3

    def test_feature_count_independent_of_resolution(self):
        maxima = []
        for n in (17, 33):
            f = sinusoidal_field(n, 2).astype(np.float64)
            msc = compute_morse_smale_complex(f, persistence_threshold=0.2)
            maxima.append(msc.node_counts_by_index()[3])
        assert maxima[0] == maxima[1]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sinusoidal_field(16, 0)
        with pytest.raises(ValueError):
            sinusoidal_field(1, 2)


class TestGaussianBumps:
    def test_deterministic(self):
        a = gaussian_bumps_field((10, 10, 10), 4, seed=1)
        b = gaussian_bumps_field((10, 10, 10), 4, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_bump_count_recovered(self):
        f = gaussian_bumps_field((20, 20, 20), 5, seed=2)
        msc = compute_morse_smale_complex(f, persistence_threshold=0.1)
        assert msc.node_counts_by_index()[3] == pytest.approx(5, abs=1)

    def test_noise_adds_critical_points(self):
        clean = gaussian_bumps_field((12, 12, 12), 3, seed=3)
        noisy = gaussian_bumps_field((12, 12, 12), 3, seed=3, noise=0.05)
        m_clean = compute_morse_smale_complex(clean, simplify=False)
        m_noisy = compute_morse_smale_complex(noisy, simplify=False)
        assert m_noisy.num_alive_nodes() > m_clean.num_alive_nodes()


class TestHydrogenAtom:
    def test_byte_valued(self):
        f = hydrogen_atom(24)
        assert np.all(f == np.round(f))
        assert f.min() >= 0 and f.max() <= 255

    def test_three_lobes_recovered(self):
        f = hydrogen_atom(40)
        msc = compute_morse_smale_complex(f, persistence_threshold=2.0)
        # the salient features: three maxima along the z axis + torus ring
        maxima = [
            n for n in msc.alive_nodes()
            if msc.node_index[n] == 3 and msc.node_value[n] > 14.5
        ]
        assert len(maxima) >= 3

    def test_flat_exterior(self):
        f = hydrogen_atom(32)
        assert np.count_nonzero(f == 0) > f.size // 4


class TestProxies:
    def test_jet_shape_and_determinism(self):
        a = jet_mixture_fraction_proxy((24, 28, 16), seed=1)
        b = jet_mixture_fraction_proxy((24, 28, 16), seed=1)
        np.testing.assert_array_equal(a, b)
        assert a.shape == (24, 28, 16)

    def test_jet_has_many_minima(self):
        """Dissipation-element proxies: many interior minima."""
        f = jet_mixture_fraction_proxy((32, 36, 24))
        msc = compute_morse_smale_complex(f, persistence_threshold=0.02)
        assert msc.node_counts_by_index()[0] > 10

    def test_jet_core_profile(self):
        f = jet_mixture_fraction_proxy((24, 48, 16))
        # mixture fraction high in the core (y center), low outside
        assert f[:, 24, :].mean() > f[:, 2, :].mean() + 0.5

    def test_rt_shape_and_range(self):
        f = rayleigh_taylor_proxy((24, 24, 24))
        assert f.shape == (24, 24, 24)
        # density stratification: heavy (top, z=1) over light (bottom)
        assert f[:, :, -1].mean() > f[:, :, 0].mean() + 1.0

    def test_rt_has_penetrating_features(self):
        f = rayleigh_taylor_proxy((32, 32, 32), num_plumes=12)
        msc = compute_morse_smale_complex(f, persistence_threshold=0.3)
        counts = msc.node_counts_by_index()
        # bubbles appear as minima pockets, spikes as maxima pockets
        assert counts[0] >= 3 and counts[3] >= 3


class TestChunkedWriter:
    """write_volume_chunked streams the same bytes the in-memory
    families produce, slab boundaries never showing in the file."""

    def test_sinusoid_bit_identical_noncubic(self, tmp_path):
        dims = (17, 11, 23)
        whole = sinusoidal_field(0, 3, dims=dims)
        write_volume(tmp_path / "whole.raw", whole, dtype="float32")
        spec = write_volume_chunked(
            tmp_path / "chunk.raw", "sinusoid", dims=dims,
            features_per_side=3, slab_depth=5,
        )
        assert spec.dims == dims
        assert (tmp_path / "chunk.raw").read_bytes() == \
            (tmp_path / "whole.raw").read_bytes()

    def test_bumps_bit_identical(self, tmp_path):
        dims = (13, 9, 21)
        whole = gaussian_bumps_field(dims, 7, seed=3)
        write_volume(tmp_path / "whole.raw", whole, dtype="float32")
        write_volume_chunked(
            tmp_path / "chunk.raw", "bumps", dims=dims, num_bumps=7,
            seed=3, slab_depth=4,
        )
        assert (tmp_path / "chunk.raw").read_bytes() == \
            (tmp_path / "whole.raw").read_bytes()

    def test_points_per_side_cube_float64(self, tmp_path):
        whole = sinusoidal_field(12, 2, dtype=np.float64)
        write_volume(tmp_path / "whole.raw", whole, dtype="float64")
        spec = write_volume_chunked(
            tmp_path / "chunk.raw", "sinusoid", points_per_side=12,
            features_per_side=2, dtype="float64", slab_depth=7,
        )
        assert spec.dims == (12, 12, 12)
        assert (tmp_path / "chunk.raw").read_bytes() == \
            (tmp_path / "whole.raw").read_bytes()

    def test_slab_depth_does_not_change_bytes(self, tmp_path):
        for depth in (1, 3, 64):
            write_volume_chunked(
                tmp_path / f"d{depth}.raw", "sinusoid", dims=(8, 8, 10),
                slab_depth=depth,
            )
        ref = (tmp_path / "d1.raw").read_bytes()
        assert (tmp_path / "d3.raw").read_bytes() == ref
        assert (tmp_path / "d64.raw").read_bytes() == ref

    def test_exactly_one_size_argument(self, tmp_path):
        with pytest.raises(ValueError, match="exactly one"):
            write_volume_chunked(tmp_path / "x.raw", "sinusoid")
        with pytest.raises(ValueError, match="exactly one"):
            write_volume_chunked(
                tmp_path / "x.raw", "sinusoid", dims=(8, 8, 8),
                points_per_side=8,
            )

    def test_bumps_noise_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="noise"):
            write_volume_chunked(
                tmp_path / "x.raw", "bumps", dims=(8, 8, 8), noise=0.1
            )

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown field kind"):
            write_volume_chunked(
                tmp_path / "x.raw", "jet", dims=(8, 8, 8)
            )
