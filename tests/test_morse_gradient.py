"""Tests for repro.morse.gradient: discrete gradient construction."""

import numpy as np
import pytest

from repro.mesh.cubical import CubicalComplex
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.validate import assert_acyclic
from repro.parallel.decomposition import decompose


class TestSerialGradient:
    def test_complete_and_mutual(self, small_random_field):
        g = compute_discrete_gradient(CubicalComplex(small_random_field))
        g.assert_complete()

    def test_euler_characteristic(self, small_random_field):
        g = compute_discrete_gradient(CubicalComplex(small_random_field))
        assert g.morse_euler_characteristic() == 1

    def test_acyclic(self, small_random_field):
        g = compute_discrete_gradient(CubicalComplex(small_random_field))
        assert_acyclic(g)

    def test_monotone_field_single_minimum(self, monotone_field):
        g = compute_discrete_gradient(CubicalComplex(monotone_field))
        assert g.critical_counts() == (1, 0, 0, 0)

    def test_flat_field_single_minimum(self):
        """Simulation of simplicity must collapse a plateau to one CP."""
        g = compute_discrete_gradient(CubicalComplex(np.zeros((5, 5, 5))))
        assert g.critical_counts() == (1, 0, 0, 0)

    def test_single_bump_minimal_critical_set(self, bump_field):
        g = compute_discrete_gradient(CubicalComplex(bump_field))
        counts = g.critical_counts()
        # one maximum at the bump center; Euler balance holds
        assert counts[3] == 1
        assert counts[0] - counts[1] + counts[2] - counts[3] == 1

    def test_negated_field_swaps_extrema(self, bump_field):
        g_pos = compute_discrete_gradient(CubicalComplex(bump_field))
        g_neg = compute_discrete_gradient(CubicalComplex(-bump_field))
        # a max of f corresponds to a min of -f; counts need not be exactly
        # mirrored (discretization), but the bump extremum must flip
        assert g_pos.critical_counts()[3] == 1
        assert g_neg.critical_counts()[0] >= 1

    def test_deterministic(self, small_random_field):
        g1 = compute_discrete_gradient(CubicalComplex(small_random_field))
        g2 = compute_discrete_gradient(CubicalComplex(small_random_field))
        np.testing.assert_array_equal(g1.pairing, g2.pairing)

    def test_minimum_is_lowest_vertex(self, small_random_field):
        """The global minimum vertex must be a critical 0-cell."""
        cx = CubicalComplex(small_random_field)
        g = compute_discrete_gradient(cx)
        i, j, k = np.unravel_index(
            np.argmin(small_random_field), small_random_field.shape
        )
        p = cx.padded_index(2 * i, 2 * j, 2 * k)
        assert g.is_critical(p)

    def test_maximum_is_highest_voxel(self, small_random_field):
        """The voxel containing the global max vertex must be critical."""
        cx = CubicalComplex(small_random_field)
        g = compute_discrete_gradient(cx)
        crit_max = g.critical_cells_by_dim()[3]
        top = max(crit_max.tolist(), key=lambda p: cx.cell_value[p])
        assert cx.cell_value[top] == small_random_field.max()


class TestBoundaryConsistency:
    """§IV-C: gradients on shared block faces must be identical."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("splits", [(2, 1, 1), (2, 2, 1), (2, 2, 2)])
    def test_shared_face_gradients_identical(self, seed, splits):
        rng = np.random.default_rng(seed)
        v = rng.random((7, 6, 5))
        decomp = decompose(v.shape, int(np.prod(splits)), splits=splits)
        gdims = decomp.global_refined_dims

        fields = {}
        for b in range(decomp.num_blocks):
            box = decomp.block_box(decomp.block_coords(b))
            cx = CubicalComplex(
                v[box.slices()],
                refined_origin=box.refined_origin,
                global_refined_dims=gdims,
                cut_planes=decomp.cut_planes,
            )
            fields[b] = (cx, compute_discrete_gradient(cx))

        # compare every pair of blocks on their shared refined cells
        for a in range(decomp.num_blocks):
            for b in range(a + 1, decomp.num_blocks):
                cxa, ga = fields[a]
                cxb, gb = fields[b]
                shared = _shared_cells(cxa, cxb)
                for pa, pb in shared:
                    ca, cb = ga.pairing[pa], gb.pairing[pb]
                    assert ca == cb, (
                        f"blocks {a},{b} disagree at "
                        f"{cxa.global_coords(pa)}: {ca} vs {cb}"
                    )

    def test_boundary_cells_pair_within_boundary(self):
        rng = np.random.default_rng(3)
        v = rng.random((5, 5, 5))
        decomp = decompose(v.shape, 2, splits=(2, 1, 1))
        box = decomp.block_box((0, 0, 0))
        cx = CubicalComplex(
            v[box.slices()],
            refined_origin=box.refined_origin,
            global_refined_dims=decomp.global_refined_dims,
            cut_planes=decomp.cut_planes,
        )
        g = compute_discrete_gradient(cx)
        from repro.morse.vectorfield import CRITICAL

        for p in np.flatnonzero(cx.valid).tolist():
            if cx.boundary_sig[p] and g.pairing[p] < CRITICAL:
                q = g.pair_of(p)
                assert cx.boundary_sig[q] == cx.boundary_sig[p]


def _shared_cells(cxa, cxb):
    """Pairs of padded indices referring to the same global cell."""
    out = []
    amap = {}
    for p in np.flatnonzero(cxa.valid).tolist():
        amap[int(cxa.global_address[p])] = p
    for p in np.flatnonzero(cxb.valid).tolist():
        addr = int(cxb.global_address[p])
        if addr in amap:
            out.append((amap[addr], p))
    return out
