"""Zero-copy shared-memory block transport.

Covers the transport layer directly (publish / attach / unlink
lifecycle, handle semantics) and through the pipeline: the ``shm``
transport must be bit-identical to ``pickle`` on every executor, ship
only handle-sized specs, and never leak a segment — the executor owns
the unlink, including on error paths.
"""

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.merge import pack_complex
from repro.core.pipeline import ParallelMSComplexPipeline
from repro.core.stats import TransportStats
from repro.data.synthetic import gaussian_bumps_field
from repro.parallel.executor import FaultTolerantExecutor, RetryPolicy
from repro.parallel.transport import (
    SPEC_HEADER_BYTES,
    SharedVolume,
    SharedVolumeHandle,
    attached_segment_names,
)


@pytest.fixture(scope="module")
def field() -> np.ndarray:
    return gaussian_bumps_field((13, 13, 13), 3, seed=9)


def run(field, **overrides):
    cfg = PipelineConfig(
        num_blocks=8,
        persistence_threshold=0.05,
        retry_backoff=0.0,
        **overrides,
    )
    return ParallelMSComplexPipeline(cfg).run(field)


def blobs(result):
    return {
        bid: pack_complex(m) for bid, m in result.output_blocks.items()
    }


class TestSharedVolume:
    def test_publish_roundtrip(self, field):
        with SharedVolume(field) as vol:
            arr = vol.handle.open()
            np.testing.assert_array_equal(arr, field)
            assert arr.flags.writeable is False
            assert vol.nbytes == field.nbytes
            assert vol.handle.nbytes == field.nbytes

    def test_creator_open_is_in_process_mapping(self, field):
        with SharedVolume(field) as vol:
            assert vol.handle.open() is vol.handle.open()
            assert vol.handle.name in attached_segment_names()
        assert vol.handle.name not in attached_segment_names()

    def test_unlink_is_idempotent_and_releases_segment(self, field):
        vol = SharedVolume(field)
        handle = vol.handle
        vol.unlink()
        vol.unlink()
        with pytest.raises(FileNotFoundError):
            handle.open()

    def test_handle_is_tiny_and_picklable(self, field):
        import pickle

        with SharedVolume(field) as vol:
            wire = pickle.dumps(vol.handle)
            assert len(wire) < SPEC_HEADER_BYTES
            back = pickle.loads(wire)
            assert back == vol.handle
            np.testing.assert_array_equal(back.open(), field)

    def test_rejects_non_3d_volumes(self):
        with pytest.raises(ValueError, match="3D"):
            SharedVolume(np.zeros(8))


class TestExecutorOwnership:
    def _executor(self):
        return FaultTolerantExecutor(
            kind="serial",
            workers=1,
            policy=RetryPolicy(),
            transport=TransportStats(kind="shm"),
        )

    def test_close_unlinks_published_segment(self, field):
        ex = self._executor()
        handle = ex.publish_volume(field)
        np.testing.assert_array_equal(handle.open(), field)
        ex.close()
        with pytest.raises(FileNotFoundError):
            handle.open()
        assert handle.name not in attached_segment_names()

    def test_publish_twice_is_an_error(self, field):
        ex = self._executor()
        ex.publish_volume(field)
        try:
            with pytest.raises(RuntimeError, match="already"):
                ex.publish_volume(field)
        finally:
            ex.close()

    def test_publish_charges_transport_stats(self, field):
        ex = self._executor()
        ex.publish_volume(field)
        assert ex.transport.shared_volume_bytes == field.nbytes
        ex.close()


class TestPipelineTransport:
    def test_serial_shm_bit_identical_to_pickle(self, field):
        ref = blobs(run(field, transport="pickle"))
        assert blobs(run(field, transport="shm")) == ref

    @pytest.mark.slow
    def test_pool_shm_bit_identical_to_pickle_and_serial(self, field):
        ref = blobs(run(field, transport="pickle"))
        pool_pickle = run(
            field, transport="pickle", workers=2, executor="process"
        )
        pool_shm = run(
            field, transport="shm", workers=2, executor="process"
        )
        assert blobs(pool_pickle) == ref
        assert blobs(pool_shm) == ref

    def test_auto_resolution(self):
        serial = PipelineConfig(num_blocks=8)
        pooled = PipelineConfig(num_blocks=8, workers=2)
        assert serial.resolved_transport == "pickle"
        assert pooled.resolved_transport == "shm"
        forced = PipelineConfig(num_blocks=8, transport="pickle", workers=2)
        assert forced.resolved_transport == "pickle"

    def test_bad_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            PipelineConfig(num_blocks=8, transport="carrier-pigeon")

    def test_serial_transport_accounting(self, field):
        """In-process dispatches ship nothing; the volume is still
        published (and unlinked) when shm is forced on serial."""
        res_pickle = run(field, transport="pickle")
        res_shm = run(field, transport="shm")
        tp, ts = res_pickle.stats.transport, res_shm.stats.transport
        assert tp.kind == "pickle" and ts.kind == "shm"
        assert tp.dispatches == ts.dispatches == 8
        assert tp.dispatch_bytes == ts.dispatch_bytes == 0
        assert tp.shared_volume_bytes == 0
        assert ts.shared_volume_bytes == field.nbytes

    @pytest.mark.slow
    def test_pool_shm_ships_handles_not_subarrays(self, field):
        kw = dict(workers=2, executor="process")
        tp = run(field, transport="pickle", **kw).stats.transport
        ts = run(field, transport="shm", **kw).stats.transport
        assert tp.dispatches == ts.dispatches == 8
        assert ts.shared_volume_bytes == field.nbytes
        # pickle ships every block's samples; shm ships headers only
        assert ts.dispatch_bytes == 8 * SPEC_HEADER_BYTES
        assert tp.dispatch_bytes > ts.dispatch_bytes

    def test_no_segment_leaks_across_runs(self, field):
        before = attached_segment_names()
        run(field, transport="shm")
        run(field, transport="shm")
        assert attached_segment_names() == before

    def test_stats_describe_mentions_transport(self, field):
        res = run(field, transport="shm")
        text = res.stats.describe()
        assert "transport: shm" in text
        assert "published once" in text

    def test_per_block_stage_seconds_recorded(self, field):
        res = run(field, transport="shm")
        for b in res.stats.block_stats:
            assert set(b.stage_seconds) == {
                "build", "gradient", "trace", "simplify", "pack"
            }
            assert all(v >= 0 for v in b.stage_seconds.values())
            assert b.transport_nbytes == SPEC_HEADER_BYTES
        agg = res.stats.compute_stage_seconds()
        assert agg["build"] > 0 and agg["trace"] > 0


class TestApiAndCli:
    def test_api_transport_keyword(self, field):
        import repro

        ref = blobs(run(field, transport="pickle", merge_radices="full"))
        res = repro.compute(
            field, persistence=0.05, ranks=8,
            options=repro.ExecutionOptions(transport="shm"),
        )
        assert res.stats.transport.kind == "shm"
        assert blobs(res) == ref

    def test_cli_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["compute", "vol.raw", "--dims", "8", "8", "8",
             "--transport", "shm"]
        )
        assert args.transport == "shm"

    def test_cli_flag_rejects_unknown(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compute", "vol.raw", "--dims", "8", "8", "8",
                 "--transport", "fax"]
            )
