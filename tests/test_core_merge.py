"""Tests for repro.core.merge: pack/unpack and root merges."""

import numpy as np
import pytest

from repro.core.merge import pack_complex, perform_merge, unpack_complex
from repro.mesh.cubical import CubicalComplex
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.simplify import simplify_ms_complex
from repro.morse.tracing import extract_ms_complex
from repro.morse.validate import assert_ms_complex_valid
from repro.parallel.decomposition import decompose


def _block_complexes(values, splits, threshold=0.0):
    decomp = decompose(values.shape, int(np.prod(splits)), splits=splits)
    out = []
    for b in range(decomp.num_blocks):
        box = decomp.block_box(decomp.block_coords(b))
        cx = CubicalComplex(
            values[box.slices()],
            refined_origin=box.refined_origin,
            global_refined_dims=decomp.global_refined_dims,
            cut_planes=decomp.cut_planes,
        )
        msc = extract_ms_complex(compute_discrete_gradient(cx))
        simplify_ms_complex(msc, threshold, respect_boundary=True)
        msc.compact()
        out.append(msc)
    return decomp, out


class TestPackUnpack:
    def test_roundtrip(self, small_random_field):
        _, complexes = _block_complexes(small_random_field, (2, 1, 1))
        for msc in complexes:
            back = unpack_complex(pack_complex(msc))
            assert back.node_counts_by_index() == msc.node_counts_by_index()
            assert back.num_alive_arcs() == msc.num_alive_arcs()
            assert back.region_lo == msc.region_lo
            assert back.region_hi == msc.region_hi

    def test_blob_is_bytes(self, small_random_field):
        _, complexes = _block_complexes(small_random_field, (2, 1, 1))
        blob = pack_complex(complexes[0])
        assert isinstance(blob, bytes)
        assert len(blob) > 0


class TestPerformMerge:
    def test_partial_cut_planes_keep_protection(self, rng):
        """Merging along x with a remaining y cut keeps y-plane nodes
        protected (still boundary) while freeing x-plane nodes."""
        values = rng.random((9, 9, 5))
        decomp, complexes = _block_complexes(values, (2, 2, 1))
        # merge only the x-pair (blocks 0 and 1); the y cut remains
        root = complexes[0]
        remaining = (
            np.array([], dtype=np.int64),  # x cut resolved
            decomp.cut_planes[1],  # y cut remains
            np.array([], dtype=np.int64),
        )
        outcome = perform_merge(
            root, [complexes[1]], remaining, persistence_threshold=0.0,
            validate=True,
        )
        assert outcome.boundary_nodes_freed > 0
        # nodes on the remaining y plane are still flagged
        gx, gy, _ = root.global_refined_dims
        y_cut = set(int(p) for p in decomp.cut_planes[1])
        for nid in root.alive_nodes():
            addr = root.node_address[nid]
            cj = (addr // gx) % gy
            if cj in y_cut:
                assert root.node_boundary[nid]

    def test_outcome_counters_consistent(self, rng):
        values = rng.random((9, 5, 5))
        _, complexes = _block_complexes(values, (2, 1, 1))
        root = complexes[0]
        n0 = root.num_alive_nodes()
        other_nodes = complexes[1].num_alive_nodes()
        no_cuts = tuple(np.array([], dtype=np.int64) for _ in range(3))
        outcome = perform_merge(root, [complexes[1]], no_cuts, 0.0)
        assert outcome.nodes_after == root.num_alive_nodes()
        assert outcome.arcs_after == root.num_alive_arcs()
        assert (
            outcome.glue.nodes_added + outcome.glue.shared_nodes
            == other_nodes
        )
        assert (
            outcome.nodes_after
            == n0 + outcome.glue.nodes_added - 2 * outcome.cancellations
        )

    def test_merge_three_way(self, rng):
        """A radix-4 style root merge glues several members at once."""
        values = rng.random((9, 9, 5))
        _, complexes = _block_complexes(values, (2, 2, 1))
        root = complexes[0]
        no_cuts = tuple(np.array([], dtype=np.int64) for _ in range(3))
        perform_merge(root, complexes[1:], no_cuts, 0.0, validate=True)
        assert root.euler_characteristic() == 1
        assert root.region_lo == (0, 0, 0)
        assert root.region_hi == (9, 9, 5)
        assert_ms_complex_valid(root)
