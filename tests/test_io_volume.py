"""Tests for repro.io.volume: raw volumes and subarray block reads."""

import os

import numpy as np
import pytest

from repro.io import volume as volmod
from repro.io.volume import (
    VolumeSpec,
    invalidate_map_cache,
    read_block,
    read_volume,
    write_volume,
    write_volume_slabs,
)
from repro.mesh.grid import Box
from repro.parallel.decomposition import decompose


@pytest.fixture
def volume(tmp_path, rng):
    vals = rng.random((7, 6, 5)).astype(np.float32).astype(np.float64)
    spec = write_volume(tmp_path / "vol.raw", vals, dtype="float32")
    return spec, vals


class TestSpec:
    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError):
            VolumeSpec("x.raw", (4, 4, 4), "int16")

    def test_nbytes(self):
        spec = VolumeSpec("x.raw", (4, 4, 4), "float32")
        assert spec.nbytes == 64 * 4
        spec = VolumeSpec("x.raw", (4, 4, 4), "uint8")
        assert spec.nbytes == 64


class TestRoundtrip:
    def test_whole_volume(self, volume):
        spec, vals = volume
        np.testing.assert_array_equal(read_volume(spec), vals)

    @pytest.mark.parametrize("dtype", ["uint8", "float32", "float64"])
    def test_all_paper_dtypes(self, tmp_path, dtype):
        vals = (np.arange(2 * 3 * 4).reshape(2, 3, 4) % 100).astype(float)
        spec = write_volume(tmp_path / f"v_{dtype}.raw", vals, dtype=dtype)
        np.testing.assert_array_equal(read_volume(spec), vals)

    def test_x_fastest_on_disk(self, tmp_path):
        vals = np.zeros((3, 2, 2))
        vals[1, 0, 0] = 7.0
        spec = write_volume(tmp_path / "v.raw", vals, dtype="float64")
        raw = np.fromfile(spec.path, dtype=np.float64)
        assert raw[1] == 7.0  # second sample on disk is (1,0,0)

    def test_truncated_file_detected(self, tmp_path):
        spec = write_volume(
            tmp_path / "v.raw", np.zeros((4, 4, 4)), dtype="float32"
        )
        bad = VolumeSpec(spec.path, (5, 4, 4), "float32")
        with pytest.raises(ValueError):
            read_volume(bad)


class TestBlockRead:
    def test_block_matches_slice(self, volume):
        spec, vals = volume
        box = Box((2, 1, 0), (6, 5, 3))
        np.testing.assert_array_equal(
            read_block(spec, box), vals[box.slices()]
        )

    def test_decomposed_blocks_reassemble(self, volume):
        spec, vals = volume
        d = decompose(spec.dims, 4, splits=(2, 2, 1))
        for b in range(4):
            box = d.block_box(d.block_coords(b))
            np.testing.assert_array_equal(
                read_block(spec, box), vals[box.slices()]
            )

    def test_out_of_range_block_rejected(self, volume):
        spec, _ = volume
        with pytest.raises(ValueError):
            read_block(spec, Box((0, 0, 0), (8, 6, 5)))


class TestMapCache:
    """The per-process memmap cache behind block reads."""

    def test_repeat_reads_hit_the_cache(self, volume):
        spec, vals = volume
        invalidate_map_cache()
        box = Box((0, 0, 0), (3, 3, 3))
        read_block(spec, box)
        assert volmod._MAP_CACHE is not None
        cached_map = volmod._MAP_CACHE[1]
        np.testing.assert_array_equal(
            read_block(spec, Box((2, 1, 0), (6, 5, 3))),
            vals[2:6, 1:5, 0:3],
        )
        # second read reused the very same map object
        assert volmod._MAP_CACHE[1] is cached_map

    def test_rewritten_file_remaps_automatically(self, tmp_path, rng):
        vals = rng.random((6, 5, 4)).astype(np.float32).astype(np.float64)
        spec = write_volume(tmp_path / "rw.raw", vals, dtype="float32")
        box = Box((0, 0, 0), (6, 5, 4))
        np.testing.assert_array_equal(read_block(spec, box), vals)
        # rewrite in place: stat identity (size/mtime/inode) changes
        new_vals = (vals + 1.0).astype(np.float32).astype(np.float64)
        write_volume(tmp_path / "rw.raw", new_vals, dtype="float32")
        np.testing.assert_array_equal(read_block(spec, box), new_vals)

    def test_different_spec_replaces_cache_slot(self, tmp_path, rng):
        a = write_volume(
            tmp_path / "a.raw", rng.random((4, 4, 4)), dtype="float64"
        )
        b = write_volume(
            tmp_path / "b.raw", rng.random((5, 4, 4)), dtype="float64"
        )
        box = Box((0, 0, 0), (4, 4, 4))
        read_block(a, box)
        assert volmod._MAP_CACHE[0][0] == a.path
        read_block(b, box)
        assert volmod._MAP_CACHE[0][0] == b.path

    def test_invalidate_map_cache_drops_the_slot(self, volume):
        spec, _ = volume
        read_block(spec, Box((0, 0, 0), (2, 2, 2)))
        assert volmod._MAP_CACHE is not None
        invalidate_map_cache()
        assert volmod._MAP_CACHE is None

    def test_truncated_file_detected_through_cache_path(self, tmp_path):
        spec = write_volume(
            tmp_path / "t.raw", np.zeros((4, 4, 4)), dtype="float32"
        )
        bad = VolumeSpec(spec.path, (5, 4, 4), "float32")
        invalidate_map_cache()
        with pytest.raises(ValueError, match="expected 80 samples"):
            read_block(bad, Box((0, 0, 0), (4, 4, 4)))

    def test_same_size_rewrite_within_mtime_granularity(
        self, tmp_path, rng
    ):
        """A same-size in-place rewrite can leave the stat key
        (inode, size, mtime) unchanged — coarse filesystem timestamps
        hide a fast rewrite — so the writer must drop the cache itself
        rather than trust stat-based remapping."""
        vals = rng.random((6, 5, 4)).astype(np.float32).astype(np.float64)
        spec = write_volume(tmp_path / "c.raw", vals, dtype="float32")
        box = Box((0, 0, 0), (6, 5, 4))
        np.testing.assert_array_equal(read_block(spec, box), vals)
        st = os.stat(spec.path)
        new_vals = (vals + 1.0).astype(np.float32).astype(np.float64)
        write_volume(tmp_path / "c.raw", new_vals, dtype="float32")
        # force the stat-key collision the mtime granularity can cause:
        # same inode, same size, and now bit-identical timestamps
        os.utime(spec.path, ns=(st.st_atime_ns, st.st_mtime_ns))
        assert volmod._map_key(spec, os.stat(spec.path)) == \
            volmod._map_key(spec, st)
        np.testing.assert_array_equal(read_block(spec, box), new_vals)

    def test_same_size_slab_rewrite_within_mtime_granularity(
        self, tmp_path, rng
    ):
        """Same stat-key collision, rewriting via the chunked writer."""
        vals = rng.random((6, 5, 4)).astype(np.float32).astype(np.float64)
        spec = write_volume(tmp_path / "cs.raw", vals, dtype="float32")
        np.testing.assert_array_equal(read_volume(spec), vals)
        box = Box((0, 0, 0), (6, 5, 4))
        read_block(spec, box)  # populate the map cache
        st = os.stat(spec.path)
        new_vals = (vals * 2.0).astype(np.float32).astype(np.float64)
        write_volume_slabs(
            tmp_path / "cs.raw", (6, 5, 4),
            (new_vals[:, :, z : z + 2] for z in range(0, 4, 2)),
            dtype="float32",
        )
        os.utime(spec.path, ns=(st.st_atime_ns, st.st_mtime_ns))
        np.testing.assert_array_equal(read_block(spec, box), new_vals)


class TestSlabWriter:
    def test_bytes_identical_to_whole_volume_write(self, tmp_path, rng):
        vals = rng.random((7, 6, 9))
        whole = write_volume(tmp_path / "w.raw", vals, dtype="float32")
        slabbed = write_volume_slabs(
            tmp_path / "s.raw", (7, 6, 9),
            (vals[:, :, z : z + 4] for z in range(0, 9, 4)),
            dtype="float32",
        )
        assert (tmp_path / "s.raw").read_bytes() == \
            (tmp_path / "w.raw").read_bytes()
        assert slabbed.dims == whole.dims
        np.testing.assert_array_equal(
            read_volume(slabbed), read_volume(whole)
        )

    def test_wrong_slab_cross_section_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="does not tile"):
            write_volume_slabs(
                tmp_path / "bad.raw", (4, 4, 4),
                iter([np.zeros((4, 3, 4))]),
            )

    def test_overflowing_slabs_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="overflow"):
            write_volume_slabs(
                tmp_path / "bad.raw", (4, 4, 4),
                iter([np.zeros((4, 4, 3)), np.zeros((4, 4, 3))]),
            )

    def test_underfilling_slabs_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="underfill"):
            write_volume_slabs(
                tmp_path / "bad.raw", (4, 4, 4),
                iter([np.zeros((4, 4, 3))]),
            )

    def test_unsupported_dtype_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unsupported"):
            write_volume_slabs(
                tmp_path / "bad.raw", (4, 4, 4), iter([]), dtype="int16"
            )
