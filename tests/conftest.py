"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_random_field(rng) -> np.ndarray:
    """A 6x7x8 random field (no ties, rich topology)."""
    return rng.random((6, 7, 8))


@pytest.fixture
def bump_field() -> np.ndarray:
    """A single smooth bump on a 10^3 grid: one max, one (virtual) min."""
    t = np.linspace(-1.0, 1.0, 10)
    X, Y, Z = np.meshgrid(t, t, t, indexing="ij")
    return np.exp(-3.0 * (X**2 + Y**2 + Z**2))


@pytest.fixture
def monotone_field() -> np.ndarray:
    """x+y+z ramp: exactly one minimum, no other critical points."""
    X, Y, Z = np.meshgrid(
        np.arange(5.0), np.arange(6.0), np.arange(7.0), indexing="ij"
    )
    return X + Y + Z
