"""Tests for the out-of-core merge spool (repro.io.spool) and the
spilled-mode pipeline: budget enforcement, LRU spill order, crash-safe
cleanup, and bit-identity of fully spilled runs against the golden file.
"""

import os
import pickle
import time

import numpy as np
import pytest

import repro
from repro import ExecutionOptions
from repro.io import spool as spoolmod
from repro.io.spool import (
    SPOOL_PREFIX,
    BlobSpool,
    SpilledBlobRef,
    blob_bytes,
    blob_nbytes,
    process_spool_totals,
    sweep_stale_spool_dirs,
)

from tests.test_golden_mscfile import GOLDEN


class TestBlobHelpers:
    def test_blob_bytes_passthrough(self):
        assert blob_bytes(b"abc") == b"abc"
        assert blob_bytes(bytearray(b"abc")) == b"abc"
        assert blob_bytes(memoryview(b"abc")) == b"abc"

    def test_blob_nbytes(self, tmp_path):
        assert blob_nbytes(b"abcd") == 4
        ref = SpilledBlobRef(str(tmp_path / "x.blob"), 17, "d" * 64)
        assert blob_nbytes(ref) == 17  # no I/O, the file doesn't exist

    def test_ref_roundtrip_and_pickle(self, tmp_path):
        path = tmp_path / "r.blob"
        path.write_bytes(b"payload")
        ref = SpilledBlobRef(str(path), 7, "x")
        assert ref.bytes() == b"payload"
        clone = pickle.loads(pickle.dumps(ref))
        assert clone.bytes() == b"payload"

    def test_truncated_spill_detected(self, tmp_path):
        path = tmp_path / "t.blob"
        path.write_bytes(b"half")
        with pytest.raises(OSError, match="truncated"):
            SpilledBlobRef(str(path), 8, "x").bytes()


class TestUnboundedSpool:
    def test_pure_passthrough_no_disk(self, tmp_path):
        with BlobSpool(base_dir=tmp_path) as sp:
            blob = b"z" * 100
            sp.put(("b", 0), blob)
            assert sp.handle(("b", 0)) is blob
            assert sp.get(("b", 0)) == blob
            assert sp.stats.spills == 0
            assert sp.spool_dir is None
            assert list(tmp_path.iterdir()) == []

    def test_missing_key_raises(self):
        with BlobSpool() as sp:
            with pytest.raises(KeyError):
                sp.handle(("b", 99))


class TestBudgetEnforcement:
    def test_lru_spills_first(self, tmp_path):
        with BlobSpool(budget_bytes=25, base_dir=tmp_path) as sp:
            sp.put("a", b"a" * 10)
            sp.put("b", b"b" * 10)
            sp.handle("a")  # touch: "a" becomes most-recently-used
            sp.put("c", b"c" * 10)  # over budget -> evict LRU ("b")
            assert isinstance(sp.handle("b"), SpilledBlobRef)
            assert isinstance(sp.handle("a"), bytes)
            assert isinstance(sp.handle("c"), bytes)
            assert sp.stats.spills == 1
            assert sp.stats.resident_bytes == 20

    def test_budget_bound_holds_under_churn(self, tmp_path):
        budget = 64
        with BlobSpool(budget_bytes=budget, base_dir=tmp_path) as sp:
            for i in range(50):
                sp.put(i, bytes([i % 251]) * 16)
                assert sp.stats.resident_bytes <= budget
            assert sp.stats.resident_peak_bytes <= budget + 16
            assert len(sp) == 50  # nothing lost, spilled or resident
            for i in range(50):
                assert sp.get(i) == bytes([i % 251]) * 16

    def test_zero_budget_spills_everything(self, tmp_path):
        with BlobSpool(budget_bytes=0, base_dir=tmp_path) as sp:
            sp.put("k", b"data")
            assert sp.stats.resident_bytes == 0
            ref = sp.handle("k")
            assert isinstance(ref, SpilledBlobRef)
            assert sp.materialize(ref) == b"data"
            assert sp.stats.read_backs == 1

    def test_content_addressed_dedup(self, tmp_path):
        with BlobSpool(budget_bytes=0, base_dir=tmp_path) as sp:
            sp.put("x", b"same-bytes")
            sp.put("y", b"same-bytes")
            assert sp.stats.spills == 2
            assert sp.stats.dedup_hits == 1
            files = list(sp.spool_dir.glob("*.blob"))
            assert len(files) == 1  # one file serves both keys
            assert sp.get("x") == sp.get("y") == b"same-bytes"

    def test_rejects_non_bytes(self):
        with BlobSpool() as sp:
            with pytest.raises(TypeError):
                sp.put("k", 123)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            BlobSpool(budget_bytes=-1)

    def test_close_removes_spool_dir(self, tmp_path):
        sp = BlobSpool(budget_bytes=0, base_dir=tmp_path)
        sp.put("k", b"spilled")
        spool_dir = sp.spool_dir
        assert spool_dir is not None and spool_dir.exists()
        assert spool_dir.name.startswith(f"{SPOOL_PREFIX}{os.getpid()}-")
        sp.close()
        assert not spool_dir.exists()
        sp.close()  # idempotent
        with pytest.raises(RuntimeError):
            sp.put("k", b"after close")

    def test_process_totals_track_spills(self, tmp_path):
        before = process_spool_totals()
        with BlobSpool(budget_bytes=0, base_dir=tmp_path) as sp:
            sp.put("k", b"counted")
            sp.get("k")
        after = process_spool_totals()
        assert after["spills"] == before["spills"] + 1
        assert after["read_backs"] == before["read_backs"] + 1
        assert after["resident_bytes"] == before["resident_bytes"]


class TestStaleSweep:
    def _make_spool_dir(self, base, pid, age_seconds):
        d = base / f"{SPOOL_PREFIX}{pid}-deadbeef"
        d.mkdir()
        (d / "x.blob").write_bytes(b"orphan")
        old = time.time() - age_seconds
        os.utime(d, (old, old))
        return d

    def test_dead_owner_old_dir_is_reaped(self, tmp_path):
        # regression: crashed-driver leftovers used to live forever
        dead = self._make_spool_dir(tmp_path, 2**22 + 12345, 7200)
        removed = sweep_stale_spool_dirs(tmp_path, min_age_seconds=3600)
        assert removed == [dead]
        assert not dead.exists()

    def test_age_guard_protects_recent_dirs(self, tmp_path):
        recent = self._make_spool_dir(tmp_path, 2**22 + 12345, 10)
        assert sweep_stale_spool_dirs(tmp_path, min_age_seconds=3600) == []
        assert recent.exists()

    def test_live_owner_never_swept(self, tmp_path):
        live = self._make_spool_dir(tmp_path, os.getpid(), 7200)
        assert sweep_stale_spool_dirs(tmp_path, min_age_seconds=0) == []
        assert live.exists()

    def test_foreign_dirs_untouched(self, tmp_path):
        other = tmp_path / "not-a-spool-dir"
        other.mkdir()
        unparsable = tmp_path / f"{SPOOL_PREFIX}notapid-x"
        unparsable.mkdir()
        assert sweep_stale_spool_dirs(tmp_path, min_age_seconds=0) == []
        assert other.exists() and unparsable.exists()

    def test_maybe_sweep_runs_once_per_process(self, tmp_path, monkeypatch):
        monkeypatch.setattr(spoolmod, "_SWEPT", False)
        dead = self._make_spool_dir(tmp_path, 2**22 + 54321, 7200)
        assert spoolmod.maybe_sweep_stale_spool_dirs(tmp_path) == [dead]
        # latched: a second call does not even scan
        again = self._make_spool_dir(tmp_path, 2**22 + 54321, 7200)
        assert spoolmod.maybe_sweep_stale_spool_dirs(tmp_path) == []
        assert again.exists()


@pytest.mark.slow
class TestSpilledPipelineGolden:
    """Tier-1 smoke: a fully spilled pooled-merge run writes bytes
    identical to the committed golden file."""

    def test_spilled_golden_bit_identity(self, tmp_path):
        field = np.random.default_rng(42).random((9, 9, 9))
        result = repro.compute(
            field, persistence=0.1, ranks=8,
            options=ExecutionOptions(workers=2, merge_executor="pool",
                                     retry_backoff=0.0,
                                     merge_spill_budget_bytes=0),
        )
        out = tmp_path / "spilled.msc"
        result.write(str(out))
        assert out.read_bytes() == GOLDEN.read_bytes()
        # the run genuinely went through disk
        assert result.stats.spool is not None
        assert result.stats.spool["spills"] > 0
        assert result.stats.spool["resident_bytes"] == 0

    def test_tiny_budget_golden_bit_identity(self, tmp_path):
        field = np.random.default_rng(42).random((9, 9, 9))
        result = repro.compute(
            field, persistence=0.1, ranks=8,
            options=ExecutionOptions(workers=2, merge_executor="pool",
                                     retry_backoff=0.0,
                                     merge_spill_budget_bytes=4096),
        )
        out = tmp_path / "tiny_budget.msc"
        result.write(str(out))
        assert out.read_bytes() == GOLDEN.read_bytes()
        assert result.stats.spool["spills"] > 0

    def test_unlimited_budget_never_spills(self):
        field = np.random.default_rng(42).random((9, 9, 9))
        result = repro.compute(
            field, persistence=0.1, ranks=8,
            options=ExecutionOptions(workers=2, merge_executor="pool",
                                     retry_backoff=0.0),
        )
        assert result.stats.spool is not None
        assert result.stats.spool["spills"] == 0
        assert result.stats.spool["read_backs"] == 0

    def test_serial_merge_has_no_spool(self):
        field = np.random.default_rng(42).random((9, 9, 9))
        result = repro.compute(
            field, persistence=0.1, ranks=8,
            options=ExecutionOptions(retry_backoff=0.0,
                                     merge_spill_budget_bytes=0),
        )
        assert result.stats.spool is None  # serial merge never spools

    def test_spool_dir_removed_after_run(self, tmp_path, monkeypatch):
        import tempfile as _tempfile

        monkeypatch.setattr(_tempfile, "gettempdir", lambda: str(tmp_path))
        field = np.random.default_rng(42).random((9, 9, 9))
        repro.compute(
            field, persistence=0.1, ranks=8,
            options=ExecutionOptions(workers=2, merge_executor="pool",
                                     retry_backoff=0.0,
                                     merge_spill_budget_bytes=0),
        )
        leftovers = [
            p for p in tmp_path.iterdir()
            if p.name.startswith(SPOOL_PREFIX)
        ]
        assert leftovers == []

    @pytest.mark.chaos
    def test_spilled_run_with_faults_recovers_bit_identical(self, tmp_path):
        """Merge retries materialize their snapshots through the spool;
        injected compute and merge faults must not perturb spilled-mode
        bytes."""
        from repro.parallel.faults import FaultPlan

        field = np.random.default_rng(42).random((9, 9, 9))
        result = repro.compute(
            field, persistence=0.1, ranks=8,
            options=ExecutionOptions(workers=2, merge_executor="pool",
                                     retry_backoff=0.0, max_retries=3,
                                     merge_spill_budget_bytes=0),
            faults=FaultPlan.corrupt_on([1], seed=7)
            + FaultPlan.merge_corrupt_on([(0, 0)]),
        )
        out = tmp_path / "faulted_spill.msc"
        result.write(str(out))
        assert out.read_bytes() == GOLDEN.read_bytes()
        assert result.stats.spool["spills"] > 0
