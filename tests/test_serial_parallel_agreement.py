"""Serial vs parallel agreement (the paper's §V-A stability claims).

For Morse inputs (distinct values, non-degenerate features) the fully
merged parallel complex must agree with the serial computation: stable
critical points are "an entirely local decision", so blocking cannot
move them.  Degenerate inputs (plateaus) may differ in unstable features
— "any robust analysis only accounts for stable critical points" — so
those tests compare only stable feature counts.
"""

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import (
    ParallelMSComplexPipeline,
    compute_morse_smale_complex,
)
from repro.data.datasets import hydrogen_atom
from repro.data.synthetic import gaussian_bumps_field


def separated_bumps(dims, seed=0, grid=2, width=0.07):
    """Equal-amplitude bumps on a jittered lattice.

    Feature persistences sit near 1.0 and every spurious pair sits near
    0.0 under *any* cancellation order, so a mid-gap threshold gives a
    computation whose simplified complex is order-independent — the
    setting in which serial and parallel results must agree exactly.
    (With overlapping random bumps, pairwise value differences near the
    threshold flip with cancellation order — a variability the paper
    notes exists "even in different serial implementations".)
    """
    rng = np.random.default_rng(seed)
    axes = [np.linspace(0.0, 1.0, n) for n in dims]
    X, Y, Z = np.meshgrid(*axes, indexing="ij")
    f = np.zeros(dims)
    for i in range(grid):
        for j in range(grid):
            for k in range(grid):
                c = (np.array([i, j, k]) + 0.5) / grid
                c = c + rng.uniform(-0.05, 0.05, 3)
                f += np.exp(
                    -((X - c[0]) ** 2 + (Y - c[1]) ** 2 + (Z - c[2]) ** 2)
                    / width**2
                )
    return f


def _run_parallel(field, blocks, threshold, radices="full", procs=None):
    cfg = PipelineConfig(
        num_blocks=blocks,
        num_procs=procs,
        persistence_threshold=threshold,
        merge_radices=radices,
    )
    return ParallelMSComplexPipeline(cfg).run(field)


class TestMorseInputs:
    """Distinct-valued smooth fields: full agreement expected."""

    @pytest.mark.parametrize("blocks", [2, 4, 8])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_counts_match_serial(self, blocks, seed):
        field = separated_bumps((15, 14, 13), seed=seed)
        serial = compute_morse_smale_complex(field, persistence_threshold=0.3)
        res = _run_parallel(field, blocks, 0.3)
        parallel = res.merged_complexes[0]
        assert (
            parallel.node_counts_by_index()
            == serial.node_counts_by_index()
        )

    @pytest.mark.parametrize("blocks", [2, 4, 8])
    def test_extrema_stable_with_overlapping_features(self, blocks):
        """Random overlapping bumps: extrema counts still agree (saddle
        pairs near the threshold may flip with cancellation order)."""
        field = gaussian_bumps_field((15, 14, 13), 6, seed=13)
        serial = compute_morse_smale_complex(field, persistence_threshold=0.05)
        parallel = _run_parallel(field, blocks, 0.05).merged_complexes[0]
        s, p = serial.node_counts_by_index(), parallel.node_counts_by_index()
        assert p[0] == s[0] and p[3] == s[3]
        assert parallel.euler_characteristic() == 1

    def test_node_signatures_match_serial(self):
        """Stable critical points agree in (index, value).

        Addresses may shift: "the locations of nodes can shift by 1/2
        the width of a cell ... the connectivity of the complex remains
        unchanged" (Fig. 2 caption), and critical points in near-flat
        background regions "can shift dramatically" (§V-A).  Cell values
        are preserved under such shifts, so the (index, value) multiset
        of significant nodes is the stable signature.
        """
        field = separated_bumps((15, 15, 15), seed=3)
        serial = compute_morse_smale_complex(field, persistence_threshold=0.3)
        parallel = _run_parallel(field, 8, 0.3).merged_complexes[0]

        def signature(msc, floor=0.1):
            return sorted(
                (msc.node_index[n], round(msc.node_value[n], 9))
                for n in msc.alive_nodes()
                if msc.node_value[n] > floor
            )

        assert signature(serial) == signature(parallel)
        assert len(signature(serial)) == 8  # the eight lattice maxima

    def test_significant_maxima_degrees_match_serial(self):
        """Each feature maximum keeps its arc degree under blocking."""
        field = separated_bumps((15, 15, 15), seed=3)
        serial = compute_morse_smale_complex(field, persistence_threshold=0.3)
        parallel = _run_parallel(field, 8, 0.3).merged_complexes[0]

        def degrees(msc, floor=0.1):
            return sorted(
                (round(msc.node_value[n], 9), len(msc.incident_arcs(n)))
                for n in msc.alive_nodes()
                if msc.node_index[n] == 3 and msc.node_value[n] > floor
            )

        assert degrees(serial) == degrees(parallel)

    def test_agreement_with_multiple_blocks_per_proc(self):
        field = gaussian_bumps_field((15, 15, 15), 5, seed=23)
        serial = compute_morse_smale_complex(field, persistence_threshold=0.05)
        res = _run_parallel(field, 8, 0.05, procs=3)
        assert (
            res.merged_complexes[0].node_counts_by_index()
            == serial.node_counts_by_index()
        )

    def test_agreement_across_merge_strategies(self):
        """Extrema are strategy-independent; saddle counts nearly so.

        Cancellation is order-dependent, and a saddle-saddle pair joined
        by a double arc can survive one merge order and not another, so
        saddle counts may differ by a pair or two between strategies.
        The extrema (the features) must not.
        """
        field = gaussian_bumps_field((15, 15, 15), 5, seed=29)
        reference = None
        for radices in ([8], [2, 4], [4, 2], [2, 2, 2]):
            res = _run_parallel(field, 8, 0.05, radices=radices)
            msc = res.merged_complexes[0]
            counts = msc.node_counts_by_index()
            assert msc.euler_characteristic() == 1
            if reference is None:
                reference = counts
                continue
            assert counts[0] == reference[0]  # minima
            assert counts[3] == reference[3]  # maxima
            assert abs(counts[1] - reference[1]) <= 2
            assert abs(counts[2] - reference[2]) <= 2


class TestDegenerateInputs:
    """Byte-valued data with plateaus: only stable features compared."""

    def test_hydrogen_stable_maxima(self):
        field = hydrogen_atom(33)
        serial = compute_morse_smale_complex(field, persistence_threshold=2.0)
        parallel = _run_parallel(field, 8, 2.0).merged_complexes[0]

        def strong_maxima_values(msc):
            # byte-valued data has plateaus, so maxima may shift along a
            # plateau ("the location of the maximum is not [stable]");
            # their count and byte values are the stable signature
            return sorted(
                msc.node_value[n]
                for n in msc.alive_nodes()
                if msc.node_index[n] == 3 and msc.node_value[n] > 14.5
            )

        # paper Fig. 4: the three lobes and the torus max are stable
        assert strong_maxima_values(serial) == strong_maxima_values(
            parallel
        )
        assert len(strong_maxima_values(serial)) >= 3

    def test_unstable_features_may_differ_but_euler_holds(self):
        field = hydrogen_atom(25)
        parallel = _run_parallel(field, 8, 0.0).merged_complexes[0]
        assert parallel.euler_characteristic() == 1


class TestPartialMergeConsistency:
    def test_partial_then_counting_unique_nodes(self):
        """Unique node count of a partial merge is bounded below by the
        full merge (boundary artifacts only add nodes)."""
        field = gaussian_bumps_field((15, 15, 15), 5, seed=31)
        full = _run_parallel(field, 8, 0.05)
        partial = _run_parallel(field, 8, 0.05, radices=[2])
        none = _run_parallel(field, 8, 0.05, radices="none")
        n_full = sum(full.combined_node_counts())
        n_partial = sum(partial.combined_node_counts())
        n_none = sum(none.combined_node_counts())
        assert n_full <= n_partial <= n_none
