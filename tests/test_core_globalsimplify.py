"""Tests for repro.core.globalsimplify: §VII-B global simplification."""

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.globalsimplify import (
    global_persistence_simplification,
    split_complex,
)
from repro.core.pipeline import (
    ParallelMSComplexPipeline,
    compute_morse_smale_complex,
)
from repro.data.synthetic import gaussian_bumps_field
from repro.morse.msc import MorseSmaleComplex
from repro.morse.validate import assert_ms_complex_valid


def _partial_result(field, threshold=0.05, blocks=8, radices="none"):
    cfg = PipelineConfig(
        num_blocks=blocks,
        persistence_threshold=threshold,
        merge_radices=radices,
    )
    return ParallelMSComplexPipeline(cfg).run(field)


class TestSplitComplex:
    def _merged_pair(self):
        field = gaussian_bumps_field((13, 12, 11), 4, seed=6)
        res = _partial_result(field, blocks=2)
        from repro.core.glue import glue_into

        blocks = res.merged_complexes
        root = blocks[0]
        glue_into(root, blocks[1], root.address_index())
        plane = int(res.decomposition.cut_planes[0][0])
        return root, plane, res

    def test_split_partitions_nodes(self):
        root, plane, _res = self._merged_pair()
        total_real = {
            root.node_address[n]
            for n in root.alive_nodes()
            if not root.node_ghost[n]
        }
        low, high = split_complex(root, 0, plane)
        seen = set()
        for half in (low, high):
            assert_ms_complex_valid(half)
            for n in half.alive_nodes():
                if not half.node_ghost[n]:
                    seen.add(half.node_address[n])
        assert seen == total_real

    def test_split_assigns_arcs_once(self):
        root, plane, _res = self._merged_pair()
        gdims = root.global_refined_dims
        low, high = split_complex(root, 0, plane)

        def arc_keys(msc, in_plane_only=False):
            from repro.mesh.addressing import address_to_coords

            out = []
            for a in msc.alive_arcs():
                ua = msc.node_address[msc.arc_upper[a]]
                la = msc.node_address[msc.arc_lower[a]]
                on_plane = (
                    address_to_coords(ua, gdims)[0] == plane
                    and address_to_coords(la, gdims)[0] == plane
                )
                if on_plane == in_plane_only:
                    out.append((ua, la))
            return sorted(out)

        total = sorted(arc_keys(low) + arc_keys(high))
        ref = []
        from repro.mesh.addressing import address_to_coords

        for a in root.alive_arcs():
            ua = root.node_address[root.arc_upper[a]]
            la = root.node_address[root.arc_lower[a]]
            if not (
                address_to_coords(ua, gdims)[0] == plane
                and address_to_coords(la, gdims)[0] == plane
            ):
                ref.append((ua, la))
        assert total == sorted(ref)

    def test_ghosts_marked_and_protected(self):
        root, plane, _res = self._merged_pair()
        low, high = split_complex(root, 0, plane)
        ghosts = [
            n for half in (low, high) for n in half.alive_nodes()
            if half.node_ghost[n]
        ]
        # crossing arcs (if any) produce ghosts; every ghost must also be
        # excluded from feature counts
        for half in (low, high):
            counts = half.node_counts_by_index()
            reals = sum(
                1
                for n in half.alive_nodes()
                if not half.node_ghost[n]
            )
            assert sum(counts) == reals
        del ghosts

    def test_regions_updated(self):
        root, plane, res = self._merged_pair()
        low, high = split_complex(root, 0, plane)
        cut_vertex = plane // 2
        assert low.region_hi[0] == cut_vertex + 1
        assert high.region_lo[0] == cut_vertex


class TestGlobalSimplification:
    def test_reduces_toward_full_merge(self):
        field = gaussian_bumps_field((17, 17, 17), 5, seed=4)
        res = _partial_result(field)
        before = sum(res.combined_node_counts())
        stats = global_persistence_simplification(res, 0.05, sweeps=2)
        after = sum(res.combined_node_counts())
        assert after < before
        assert stats.cancellations > 0
        assert stats.pair_merges > 0
        assert res.num_output_blocks == 8  # data stays distributed

        full = _partial_result(field, radices="full")
        full_nodes = sum(full.combined_node_counts())
        # global simplification approaches the full-merge level; the
        # residue is nodes on plane intersections (block edges/corners),
        # which pairwise sweeps cannot unprotect
        assert after < before / 2
        assert after >= full_nodes

    def test_maxima_match_full_merge(self):
        """The interior features (maxima) converge to the full-merge set.

        Minima of the bumps field live in the near-flat background and
        frequently sit on plane intersections (block edges/corners),
        which pairwise nearest-neighbor sweeps can never unprotect —
        the documented residue of this §VII-B scheme.
        """
        field = gaussian_bumps_field((17, 17, 17), 5, seed=4)
        res = _partial_result(field)
        global_persistence_simplification(res, 0.05, sweeps=2)
        full = _partial_result(field, radices="full")
        got = res.combined_node_counts()
        ref = full.combined_node_counts()
        assert got[3] == ref[3]  # maxima

    def test_complexes_stay_valid(self):
        field = gaussian_bumps_field((13, 13, 13), 3, seed=9)
        res = _partial_result(field)
        global_persistence_simplification(res, 0.05)
        for msc in res.output_blocks.values():
            assert_ms_complex_valid(msc)

    def test_works_after_partial_merge(self):
        field = gaussian_bumps_field((17, 17, 17), 4, seed=2)
        res = _partial_result(field, blocks=16, radices=[2])
        assert res.num_output_blocks == 8
        before = sum(res.combined_node_counts())
        stats = global_persistence_simplification(res, 0.05)
        assert sum(res.combined_node_counts()) <= before
        assert stats.message_bytes > 0

    def test_stats_describe(self):
        field = gaussian_bumps_field((13, 13, 13), 3, seed=9)
        res = _partial_result(field)
        stats = global_persistence_simplification(res, 0.05)
        text = stats.describe()
        assert "pair merges" in text and "cancellations" in text

    def test_sweep_validation(self):
        field = gaussian_bumps_field((13, 13, 13), 3, seed=9)
        res = _partial_result(field)
        with pytest.raises(ValueError):
            global_persistence_simplification(res, 0.05, sweeps=0)

    def test_single_output_block_noop(self):
        field = gaussian_bumps_field((13, 13, 13), 3, seed=9)
        res = _partial_result(field, radices="full")
        stats = global_persistence_simplification(res, 0.05)
        assert stats.pair_merges == 0
        assert res.num_output_blocks == 1
