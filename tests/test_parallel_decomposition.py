"""Tests for repro.parallel.decomposition: bisection blocking."""

import numpy as np
import pytest

from repro.mesh.grid import Box
from repro.parallel.decomposition import (
    axis_cut_vertices,
    decompose,
    BlockDecomposition,
)


class TestAxisCuts:
    def test_even_split(self):
        assert axis_cut_vertices(9, 2) == [4]
        assert axis_cut_vertices(9, 4) == [2, 4, 6]

    def test_single_block_no_cuts(self):
        assert axis_cut_vertices(9, 1) == []

    def test_uneven_lengths_near_equal(self):
        cuts = axis_cut_vertices(10, 3)
        bounds = [0] + cuts + [9]
        lengths = np.diff(bounds)
        assert lengths.max() - lengths.min() <= 1

    def test_infeasible_rejected(self):
        with pytest.raises(ValueError):
            axis_cut_vertices(3, 4)


class TestBisection:
    def test_longest_axis_split_first(self):
        d = decompose((17, 9, 9), 2)
        assert d.splits == (2, 1, 1)

    def test_eight_blocks_cube(self):
        d = decompose((9, 9, 9), 8)
        assert d.splits == (2, 2, 2)

    def test_anisotropic(self):
        d = decompose((65, 57, 9), 8)
        assert d.num_blocks == 8
        # the short z axis is never split; x is halved twice
        assert d.splits == (4, 2, 1)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            decompose((9, 9, 9), 6)

    def test_explicit_splits(self):
        d = decompose((9, 13, 9), 6, splits=(1, 3, 2))
        assert d.splits == (1, 3, 2)
        with pytest.raises(ValueError):
            decompose((9, 13, 9), 6, splits=(2, 2, 2))

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            decompose((3, 3, 3), 64)


class TestBlockGeometry:
    def setup_method(self):
        self.d = decompose((9, 9, 5), 8, splits=(2, 2, 2))

    def test_blocks_share_one_vertex_layer(self):
        left = self.d.block_box((0, 0, 0))
        right = self.d.block_box((1, 0, 0))
        assert left.hi[0] - 1 == right.lo[0]  # shared layer

    def test_blocks_cover_domain(self):
        covered = np.zeros((9, 9, 5), dtype=int)
        for b in range(self.d.num_blocks):
            box = self.d.block_box(self.d.block_coords(b))
            covered[box.slices()] += 1
        assert covered.min() >= 1
        # interior cut layers are covered exactly twice (shared)
        assert covered[4, 0, 0] == 2
        assert covered[4, 4, 2] == 8  # triple cut corner: 2^3 blocks

    def test_linear_id_roundtrip(self):
        for b in range(self.d.num_blocks):
            assert self.d.linear_id(self.d.block_coords(b)) == b

    def test_cut_planes_are_refined_doubled(self):
        cuts = self.d.cut_planes
        np.testing.assert_array_equal(cuts[0], [8])
        np.testing.assert_array_equal(cuts[2], [4])

    def test_all_boxes_order(self):
        boxes = self.d.all_boxes()
        assert len(boxes) == 8
        assert boxes[0] == self.d.block_box((0, 0, 0))
        assert boxes[1] == self.d.block_box((1, 0, 0))  # x fastest

    def test_out_of_range_coords(self):
        with pytest.raises(IndexError):
            self.d.block_box((2, 0, 0))


class TestAssignment:
    def test_block_cyclic(self):
        d = decompose((9, 9, 9), 8)
        assert d.blocks_of_rank(0, 4) == [0, 4]
        assert d.blocks_of_rank(3, 4) == [3, 7]
        assert d.rank_of_block(5, 4) == 1

    def test_one_block_per_process(self):
        d = decompose((9, 9, 9), 8)
        for b in range(8):
            assert d.blocks_of_rank(b, 8) == [b]

    def test_all_blocks_assigned_once(self):
        d = decompose((17, 17, 17), 16)
        seen = []
        for r in range(5):
            seen += d.blocks_of_rank(r, 5)
        assert sorted(seen) == list(range(16))
