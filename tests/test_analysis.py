"""Tests for repro.analysis: feature queries and graph statistics."""

import networkx as nx
import numpy as np
import pytest

from repro.analysis.features import (
    arcs_by_family,
    filter_arcs_by_value,
    nodes_by_index,
    persistence_curve,
    significant_extrema,
)
from repro.analysis.graphtools import (
    arc_length,
    cycle_count,
    filament_statistics,
    minimum_cut,
    to_networkx,
)
from repro.core.pipeline import compute_morse_smale_complex
from repro.data.synthetic import gaussian_bumps_field


@pytest.fixture(scope="module")
def msc():
    f = gaussian_bumps_field((18, 18, 18), 4, seed=8, noise=0.01)
    return compute_morse_smale_complex(f, persistence_threshold=0.05)


class TestFeatures:
    def test_nodes_by_index_partition(self, msc):
        total = sum(len(nodes_by_index(msc, d)) for d in range(4))
        assert total == msc.num_alive_nodes()
        with pytest.raises(ValueError):
            nodes_by_index(msc, 5)

    def test_arcs_by_family_partition(self, msc):
        total = sum(len(arcs_by_family(msc, d)) for d in (1, 2, 3))
        assert total == msc.num_alive_arcs()
        for aid in arcs_by_family(msc, 3):
            assert msc.node_index[msc.arc_upper[aid]] == 3
        with pytest.raises(ValueError):
            arcs_by_family(msc, 0)

    def test_value_filter(self, msc):
        arcs = arcs_by_family(msc, 3)
        values = [msc.node_value[msc.arc_lower[a]] for a in arcs]
        cutoff = float(np.median(values))
        kept = filter_arcs_by_value(msc, arcs, min_value=cutoff)
        assert len(kept) < len(arcs)
        for aid in kept:
            assert msc.node_value[msc.arc_lower[aid]] > cutoff

    def test_significant_extrema(self, msc):
        maxima = significant_extrema(msc, 3, min_value=0.3)
        assert all(msc.node_value[n] > 0.3 for n in maxima)
        assert all(msc.node_index[n] == 3 for n in maxima)

    def test_persistence_curve_monotone(self, msc):
        thresholds, counts = persistence_curve(msc, num_points=32)
        assert len(thresholds) == len(counts) == 32
        assert np.all(np.diff(counts) <= 0)
        # threshold 0 already cancels the zero-persistence pairs
        nonzero = sum(1 for c in msc.hierarchy if c.persistence > 0)
        assert counts[0] == msc.num_alive_nodes() + 2 * nonzero
        # the top of the curve matches the fully simplified complex
        assert counts[-1] == msc.num_alive_nodes()

    def test_persistence_curve_args(self, msc):
        with pytest.raises(ValueError):
            persistence_curve(msc, num_points=1)


class TestGraphTools:
    def test_to_networkx_structure(self, msc):
        g = to_networkx(msc)
        assert g.number_of_edges() == msc.num_alive_arcs()
        assert g.number_of_nodes() == msc.num_alive_nodes()
        # all attributes present
        for _u, _v, d in g.edges(data=True):
            assert {"arc_id", "length", "persistence"} <= set(d)

    def test_arc_length_positive(self, msc):
        for aid in msc.alive_arcs()[:20]:
            if msc.geometry_addresses(aid).size >= 2:
                assert arc_length(msc, aid) > 0.0

    def test_arc_length_spacing_scales(self, msc):
        aid = msc.alive_arcs()[0]
        base = arc_length(msc, aid)
        doubled = arc_length(msc, aid, spacing=(2.0, 2.0, 2.0))
        assert doubled == pytest.approx(2 * base)

    def test_cycle_count_tree_is_zero(self):
        g = nx.MultiGraph()
        g.add_edges_from([(0, 1), (1, 2), (1, 3)])
        assert cycle_count(g) == 0

    def test_cycle_count_loop(self):
        g = nx.MultiGraph()
        g.add_edges_from([(0, 1), (1, 2), (2, 0)])
        assert cycle_count(g) == 1
        g.add_edge(0, 1)  # parallel edge is one more cycle
        assert cycle_count(g) == 2

    def test_minimum_cut_parallel_edges(self):
        g = nx.MultiGraph()
        g.add_edge("a", "b")
        g.add_edge("a", "b")
        assert minimum_cut(g, "a", "b") == 2
        with pytest.raises(ValueError):
            minimum_cut(g, "a", "zzz")

    def test_filament_statistics(self, msc):
        g = to_networkx(msc, arcs_by_family(msc, 3))
        stats = filament_statistics(g)
        assert stats["arcs"] == len(arcs_by_family(msc, 3))
        assert stats["total_length"] > 0
        assert stats["components"] >= 1
        assert stats["mean_arc_length"] == pytest.approx(
            stats["total_length"] / stats["arcs"]
        )

    def test_filament_statistics_empty(self):
        stats = filament_statistics(nx.MultiGraph())
        assert stats["arcs"] == 0
        assert stats["total_length"] == 0.0
