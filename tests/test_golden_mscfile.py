"""Golden-file regression test for the MSC block file format (§IV-G).

``tests/data/golden_bumps8.msc`` was produced by :func:`golden_result`
below (a fully deterministic 8-rank pipeline run over a seeded uniform
random volume — pure-arithmetic input, so the bytes are stable across
platforms) and committed.  If the on-disk format, the serialization
order, or the pipeline's numeric output ever drifts, the byte-for-byte
comparison here fails and the change has to be made deliberately: either
fix the regression, or regenerate the golden file::

    PYTHONPATH=src python -c "import tests.test_golden_mscfile as g; \
        g.golden_result().write(str(g.GOLDEN))"

and justify the format change in the commit.
"""

import struct
from pathlib import Path

import numpy as np
import pytest

import repro
from repro import ExecutionOptions
from repro.analysis.query import load_hierarchy
from repro.io.mscfile import (
    MAGIC,
    MAGIC_V2,
    read_msc_file,
    read_msc_hierarchies,
    write_msc_file,
)
from repro.morse.msc import MorseSmaleComplex

GOLDEN = Path(__file__).parent / "data" / "golden_bumps8.msc"
GOLDEN_HIER = Path(__file__).parent / "data" / "golden_bumps8_hier.msc"


def golden_result():
    """The exact pipeline run the committed golden file captures."""
    # default_rng avoids libm transcendentals => bit-stable across hosts
    field = np.random.default_rng(42).random((9, 9, 9))
    return repro.compute(field, persistence=0.1, ranks=8,
                         options=ExecutionOptions(retry_backoff=0.0))


def golden_hier_result(**extra):
    """Same run as :func:`golden_result` with the hierarchy captured —
    the committed ``golden_bumps8_hier.msc`` (v2) regenerates as::

        PYTHONPATH=src python -c "import tests.test_golden_mscfile as g; \
            g.golden_hier_result().write(str(g.GOLDEN_HIER))"
    """
    field = np.random.default_rng(42).random((9, 9, 9))
    return repro.compute(field, persistence=0.1, ranks=8,
                         options=ExecutionOptions(retry_backoff=0.0,
                                                  hierarchy=True,
                                                  **extra))


def test_pipeline_output_matches_golden_bytes(tmp_path):
    out = tmp_path / "regen.msc"
    golden_result().write(str(out))
    assert out.read_bytes() == GOLDEN.read_bytes()


def test_golden_bytes_with_observability_enabled(tmp_path):
    """Tracing and metrics must never perturb the output bytes."""
    field = np.random.default_rng(42).random((9, 9, 9))
    result = repro.compute(field, persistence=0.1, ranks=8,
                           options=ExecutionOptions(retry_backoff=0.0),
                           trace=True, metrics=True)
    out = tmp_path / "traced.msc"
    result.write(str(out))
    assert out.read_bytes() == GOLDEN.read_bytes()
    assert result.stats.trace is not None
    assert result.stats.metrics is not None


@pytest.mark.slow
def test_golden_bytes_with_observability_enabled_pooled(tmp_path):
    field = np.random.default_rng(42).random((9, 9, 9))
    result = repro.compute(field, persistence=0.1, ranks=8,
                           options=ExecutionOptions(workers=2,
                                                    transport="shm",
                                                    retry_backoff=0.0),
                           trace=True, metrics=True)
    out = tmp_path / "traced_pooled.msc"
    result.write(str(out))
    assert out.read_bytes() == GOLDEN.read_bytes()


@pytest.mark.slow
def test_golden_bytes_pointer_backend_pooled_traced(tmp_path):
    """The pointer-jumping tracing backend is bit-identical to DFS in
    the most composed configuration: pooled workers, shm transport, and
    tracing enabled all at once."""
    field = np.random.default_rng(42).random((9, 9, 9))
    result = repro.compute(field, persistence=0.1, ranks=8,
                           options=ExecutionOptions(
                               workers=2, transport="shm",
                               kernel_backend="pointer",
                               retry_backoff=0.0),
                           trace=True)
    out = tmp_path / "pointer_pooled.msc"
    result.write(str(out))
    assert out.read_bytes() == GOLDEN.read_bytes()


def test_golden_bytes_pointer_backend_serial(tmp_path):
    field = np.random.default_rng(42).random((9, 9, 9))
    result = repro.compute(field, persistence=0.1, ranks=8,
                           options=ExecutionOptions(
                               kernel_backend="pointer",
                               retry_backoff=0.0))
    out = tmp_path / "pointer_serial.msc"
    result.write(str(out))
    assert out.read_bytes() == GOLDEN.read_bytes()


def test_golden_bytes_explicit_serial_merge_executor(tmp_path):
    field = np.random.default_rng(42).random((9, 9, 9))
    result = repro.compute(field, persistence=0.1, ranks=8,
                           options=ExecutionOptions(merge_executor="serial",
                                                    retry_backoff=0.0))
    out = tmp_path / "serial_merge.msc"
    result.write(str(out))
    assert out.read_bytes() == GOLDEN.read_bytes()
    assert result.stats.merge_executor == "serial"


@pytest.mark.slow
@pytest.mark.parametrize("trace", [False, True])
def test_golden_bytes_pooled_merge_executor(tmp_path, trace):
    """The pooled merge backend is bit-identical to serial, traced or
    not — merging is deterministic, so where it runs cannot show in the
    output bytes."""
    field = np.random.default_rng(42).random((9, 9, 9))
    result = repro.compute(field, persistence=0.1, ranks=8,
                           options=ExecutionOptions(workers=2,
                                                    merge_executor="pool",
                                                    retry_backoff=0.0),
                           trace=trace)
    out = tmp_path / "pooled_merge.msc"
    result.write(str(out))
    assert out.read_bytes() == GOLDEN.read_bytes()
    assert result.stats.merge_executor == "pool"


def test_golden_bytes_mmap_volume_run(tmp_path):
    """A volume-file input streamed block-wise over the ``mmap``
    transport produces the same bytes as the in-memory golden run — and
    the driver stages none of the volume."""
    from repro.io.volume import write_volume

    field = np.random.default_rng(42).random((9, 9, 9))
    spec = write_volume(tmp_path / "golden.raw", field, dtype="float64")
    result = repro.compute(spec, persistence=0.1, ranks=8,
                           options=ExecutionOptions(transport="mmap",
                                                    retry_backoff=0.0))
    out = tmp_path / "mmap.msc"
    result.write(str(out))
    assert out.read_bytes() == GOLDEN.read_bytes()
    assert result.stats.transport.driver_staged_bytes == 0


def test_golden_bytes_pickle_volume_run(tmp_path):
    from repro.io.volume import write_volume

    field = np.random.default_rng(42).random((9, 9, 9))
    spec = write_volume(tmp_path / "golden.raw", field, dtype="float64")
    result = repro.compute(spec, persistence=0.1, ranks=8,
                           options=ExecutionOptions(transport="pickle",
                                                    retry_backoff=0.0))
    out = tmp_path / "pickle_vol.msc"
    result.write(str(out))
    assert out.read_bytes() == GOLDEN.read_bytes()


def test_golden_bytes_session_steps(tmp_path):
    """Every step of a persistent session matches the one-shot golden
    bytes — pools, plan cache, and warmed tables must not show."""
    field = np.random.default_rng(42).random((9, 9, 9))
    with repro.open_session(
        persistence=0.1, ranks=8,
        options=ExecutionOptions(retry_backoff=0.0),
    ) as session:
        for step in range(2):
            out = tmp_path / f"session{step}.msc"
            session.run(field).write(str(out))
            assert out.read_bytes() == GOLDEN.read_bytes()


def test_golden_reads_back_to_valid_complex():
    blocks = read_msc_file(GOLDEN)
    assert set(blocks) == {0}  # full merge leaves the root block only
    msc = MorseSmaleComplex.from_payload(blocks[0])
    counts = msc.node_counts_by_index()
    assert sum(counts) == msc.num_alive_nodes() > 0
    assert msc.num_alive_arcs() > 0
    # content matches an in-memory recomputation, not just the bytes
    ref = golden_result().output_blocks[0]
    ref_payload = ref.to_payload()
    for key, arr in blocks[0].items():
        np.testing.assert_array_equal(arr, ref_payload[key])


def test_write_read_write_is_identity(tmp_path):
    """write∘read == identity on the golden file's records."""
    blocks = read_msc_file(GOLDEN)
    out = tmp_path / "rewritten.msc"
    write_msc_file(out, sorted(blocks.items()))
    assert out.read_bytes() == GOLDEN.read_bytes()


def test_golden_footer_index_is_consistent():
    data = GOLDEN.read_bytes()
    assert data[-4:] == MAGIC
    (footer_offset,) = struct.unpack_from("<Q", data, len(data) - 12)
    (count,) = struct.unpack_from("<Q", data, footer_offset)
    assert count == 1
    pos = footer_offset + 8
    end = 0
    for _ in range(count):
        block_id, off, ln = struct.unpack_from("<qQQ", data, pos)
        pos += 24
        assert block_id == 0
        assert off == end  # records are packed back to back
        end = off + ln
    assert end == footer_offset  # index spans exactly all records


class TestGoldenHierarchy:
    """Pins for the v2 golden (same run with ``hierarchy=True``)."""

    def test_pipeline_output_matches_golden_bytes(self, tmp_path):
        out = tmp_path / "regen_hier.msc"
        golden_hier_result().write(str(out))
        assert out.read_bytes() == GOLDEN_HIER.read_bytes()

    def test_traced_run_matches_golden_bytes(self, tmp_path):
        field = np.random.default_rng(42).random((9, 9, 9))
        result = repro.compute(field, persistence=0.1, ranks=8,
                               options=ExecutionOptions(retry_backoff=0.0,
                                                        hierarchy=True),
                               trace=True, metrics=True)
        out = tmp_path / "traced_hier.msc"
        result.write(str(out))
        assert out.read_bytes() == GOLDEN_HIER.read_bytes()

    @pytest.mark.slow
    def test_pooled_shm_run_matches_golden_bytes(self, tmp_path):
        """Hierarchy capture happens on the merged global complex, so
        the persisted hierarchy is identical however compute ran."""
        result = golden_hier_result(workers=2, transport="shm")
        out = tmp_path / "pooled_hier.msc"
        result.write(str(out))
        assert out.read_bytes() == GOLDEN_HIER.read_bytes()

    def test_v2_magic_and_block_region_extends_v1(self):
        data = GOLDEN_HIER.read_bytes()
        assert data[-4:] == MAGIC_V2
        v1 = GOLDEN.read_bytes()
        (v1_footer,) = struct.unpack_from("<Q", v1, len(v1) - 12)
        # v2 appends the hierarchy after the v1 block-record region:
        # the stored complexes are byte-identical across the versions
        assert data[:v1_footer] == v1[:v1_footer]

    def test_blocks_read_back_identical_to_v1_golden(self):
        v1_blocks = read_msc_file(GOLDEN)
        v2_blocks = read_msc_file(GOLDEN_HIER)
        assert set(v2_blocks) == set(v1_blocks) == {0}
        for key, arr in v1_blocks[0].items():
            np.testing.assert_array_equal(v2_blocks[0][key], arr)

    def test_hierarchy_reads_back(self):
        arrays = read_msc_hierarchies(GOLDEN_HIER)
        assert set(arrays) == {0}
        hierarchies = load_hierarchy(GOLDEN_HIER)
        assert hierarchies[0].num_levels == len(
            arrays[0]["persistences"]
        ) >= 100
        # the persisted hierarchy matches an in-memory recomputation
        ref = golden_hier_result().hierarchies[0]
        for key, arr in ref.to_arrays().items():
            np.testing.assert_array_equal(arrays[0][key], arr)

    def test_v1_golden_has_no_hierarchy(self):
        with pytest.raises(ValueError, match="no hierarchy recorded"):
            read_msc_hierarchies(GOLDEN)
