"""Tests for repro.cli: the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.io.volume import VolumeSpec, write_volume
from repro.data.synthetic import gaussian_bumps_field


@pytest.fixture
def volume(tmp_path):
    field = gaussian_bumps_field((13, 13, 13), 3, seed=1)
    spec = write_volume(tmp_path / "f.raw", field, dtype="float32")
    return spec


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compute_args(self):
        args = build_parser().parse_args(
            ["compute", "v.raw", "--dims", "8", "8", "8", "--blocks", "4"]
        )
        assert args.command == "compute"
        assert args.dims == [8, 8, 8]
        assert args.blocks == 4

    def test_bad_dtype_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compute", "v.raw", "--dims", "8", "8", "8",
                 "--dtype", "int16"]
            )


class TestCompute:
    def test_compute_and_info_roundtrip(self, volume, tmp_path, capsys):
        out = tmp_path / "out.msc"
        rc = main([
            "compute", volume.path,
            "--dims", *map(str, volume.dims),
            "--dtype", "float32",
            "--blocks", "8",
            "--persistence", "0.05",
            "--output", str(out),
        ])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "critical points" in stdout
        assert out.exists()

        rc = main(["info", str(out)])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "block 0" in stdout
        assert "MS complex" in stdout

    def test_no_merge(self, volume, capsys):
        rc = main([
            "compute", volume.path,
            "--dims", *map(str, volume.dims),
            "--blocks", "8", "--no-merge",
        ])
        assert rc == 0
        assert "8 output block(s)" in capsys.readouterr().out

    def test_workers_flags_parse_and_run(self, volume, capsys):
        rc = main([
            "compute", volume.path,
            "--dims", *map(str, volume.dims),
            "--blocks", "4", "--workers", "1", "--executor", "serial",
        ])
        assert rc == 0
        assert "workers=1" in capsys.readouterr().out

    def test_kernel_backend_flag_parses(self):
        args = build_parser().parse_args(
            ["compute", "v.raw", "--dims", "8", "8", "8",
             "--kernel-backend", "pointer"]
        )
        assert args.kernel_backend == "pointer"

    def test_kernel_backend_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compute", "v.raw", "--dims", "8", "8", "8",
                 "--kernel-backend", "bfs"]
            )

    def test_kernel_backend_runs_bit_identical(self, volume, tmp_path,
                                               capsys):
        outputs = {}
        for backend in ("dfs", "pointer"):
            out = tmp_path / f"{backend}.msc"
            rc = main([
                "compute", volume.path,
                "--dims", *map(str, volume.dims),
                "--blocks", "4", "--persistence", "0.05",
                "--kernel-backend", backend,
                "--output", str(out),
            ])
            assert rc == 0
            capsys.readouterr()
            outputs[backend] = out.read_bytes()
        assert outputs["pointer"] == outputs["dfs"]


class TestComputeErrors:
    def test_missing_volume_fails_readably(self, tmp_path, capsys):
        rc = main([
            "compute", str(tmp_path / "nope.raw"),
            "--dims", "8", "8", "8",
        ])
        assert rc == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("error: cannot read volume")
        assert "nope.raw" in captured.err
        assert "Traceback" not in captured.err

    def test_unreadable_directory_fails_readably(self, tmp_path, capsys):
        rc = main([
            "compute", str(tmp_path),  # a directory, not a file
            "--dims", "8", "8", "8",
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_size_mismatch_fails_readably(self, volume, capsys):
        rc = main([
            "compute", volume.path,
            "--dims", "64", "64", "64",  # wrong dims for this file
            "--dtype", "float32",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "require" in err and "bytes" in err

    def test_bad_config_fails_readably(self, volume, capsys):
        rc = main([
            "compute", volume.path,
            "--dims", *map(str, volume.dims),
            "--blocks", "3",  # not a power of two
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestSynth:
    @pytest.mark.parametrize(
        "kind", ["sinusoid", "bumps", "jet", "rayleigh-taylor", "hydrogen"]
    )
    def test_synth_kinds(self, kind, tmp_path, capsys):
        out = tmp_path / f"{kind}.raw"
        rc = main(["synth", kind, str(out), "--points", "12"])
        assert rc == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_synth_then_compute(self, tmp_path, capsys):
        out = tmp_path / "s.raw"
        main(["synth", "sinusoid", str(out), "--points", "12",
              "--features", "2"])
        msg = capsys.readouterr().out
        # parse dims back out of the synth report
        dims = msg.split("dims=(")[1].split(")")[0].replace(",", " ").split()
        rc = main([
            "compute", str(out), "--dims", *dims, "--dtype", "float32",
            "--blocks", "2", "--persistence", "0.1",
        ])
        assert rc == 0


class TestWorkerCountValidation:
    """--workers/--blocks/--procs must be >= 1: exit code 2, readable."""

    @pytest.mark.parametrize("flag", ["--workers", "--blocks", "--procs"])
    @pytest.mark.parametrize("value", ["0", "-1", "-8"])
    def test_nonpositive_rejected_with_exit_2(self, flag, value, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["compute", "v.raw", "--dims", "8", "8", "8",
                  flag, value])
        assert exc_info.value.code == 2
        err = capsys.readouterr().err
        assert flag in err  # argparse names the offending flag
        assert "positive integer" in err

    @pytest.mark.parametrize("flag", ["--workers", "--blocks", "--procs"])
    def test_non_numeric_rejected_with_exit_2(self, flag, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["compute", "v.raw", "--dims", "8", "8", "8",
                  flag, "two"])
        assert exc_info.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_workers_one_is_accepted(self):
        args = build_parser().parse_args(
            ["compute", "v.raw", "--dims", "8", "8", "8",
             "--workers", "1"]
        )
        assert args.workers == 1


class TestVersionFlag:
    def test_version_exits_zero_and_prints(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0
        import repro

        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    @pytest.mark.slow
    def test_module_entry_point(self):
        """``python -m repro.cli --version`` works as a real process."""
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "--version"],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0
        assert proc.stdout.startswith("repro ")


class TestVerboseFlag:
    def test_verbose_parses_and_counts(self):
        args = build_parser().parse_args(["-vv", "info", "x.msc"])
        assert args.verbose == 2
        args = build_parser().parse_args(["info", "x.msc"])
        assert args.verbose == 0

    def test_verbose_enables_info_logging(self, volume, caplog):
        import logging

        rc = main([
            "-v", "compute", volume.path,
            "--dims", *map(str, volume.dims), "--blocks", "2",
        ])
        assert rc == 0
        assert logging.getLogger("repro").level == logging.INFO
        assert any("compute stage done" in r.message
                   for r in caplog.records)

    def test_default_keeps_warnings_only(self, volume, caplog):
        import logging

        rc = main([
            "compute", volume.path,
            "--dims", *map(str, volume.dims), "--blocks", "2",
        ])
        assert rc == 0
        assert logging.getLogger("repro").level == logging.WARNING
        assert not any("compute stage done" in r.message
                       for r in caplog.records)

    def test_repeat_main_adds_one_handler(self, volume, capsys):
        import logging

        for _ in range(2):
            main(["-v", "compute", volume.path,
                  "--dims", *map(str, volume.dims), "--blocks", "2"])
        handlers = [
            h for h in logging.getLogger("repro").handlers
            if getattr(h, "_repro_cli_handler", False)
        ]
        assert len(handlers) == 1


class TestObservabilityFlags:
    def test_trace_and_metrics_files_written(self, volume, tmp_path,
                                             capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        rc = main([
            "compute", volume.path,
            "--dims", *map(str, volume.dims),
            "--blocks", "4", "--persistence", "0.05",
            "--trace", str(trace), "--metrics", str(metrics),
        ])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "trace:" in stdout and "metrics:" in stdout

        import json

        doc = json.loads(trace.read_text())
        assert {e["name"] for e in doc["traceEvents"]} >= {
            "pipeline.run", "compute.block", "merge.round"
        }
        snap = json.loads(metrics.read_text())
        assert snap["compute.blocks"]["value"] == 4

    @pytest.mark.slow
    def test_pooled_mmap_trace_covers_every_block(self, volume, tmp_path,
                                                  capsys):
        """Worker lanes of a pooled --trace file cover all blocks."""
        trace = tmp_path / "pooled.json"
        rc = main([
            "compute", volume.path,
            "--dims", *map(str, volume.dims),
            "--blocks", "8", "--workers", "2", "--transport", "mmap",
            "--trace", str(trace),
        ])
        assert rc == 0
        import json

        events = json.loads(trace.read_text())["traceEvents"]
        block_spans = [e for e in events if e["name"] == "compute.block"]
        assert {e["args"]["block"] for e in block_spans} == set(range(8))
        worker_pids = {
            e["pid"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
            and e["args"]["name"].startswith("worker")
        }
        assert {e["pid"] for e in block_spans} <= worker_pids
        assert worker_pids  # blocks really ran off-driver

    def test_no_flags_leaves_stats_dark(self, volume, capsys):
        rc = main([
            "compute", volume.path,
            "--dims", *map(str, volume.dims), "--blocks", "2",
        ])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "trace:" not in stdout
        assert "metrics:" not in stdout


class TestFaultToleranceFlags:
    def test_defaults(self):
        args = build_parser().parse_args(
            ["compute", "v.raw", "--dims", "8", "8", "8"]
        )
        assert args.block_timeout is None
        assert args.max_retries == 2
        assert args.retry_backoff == pytest.approx(0.05)
        assert args.no_degrade is False

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["compute", "v.raw", "--dims", "8", "8", "8",
             "--block-timeout", "1.5", "--max-retries", "4",
             "--retry-backoff", "0", "--no-degrade"]
        )
        assert args.block_timeout == pytest.approx(1.5)
        assert args.max_retries == 4
        assert args.retry_backoff == 0.0
        assert args.no_degrade is True

    def test_negative_max_retries_fails_readably(self, volume, capsys):
        rc = main([
            "compute", volume.path,
            "--dims", *map(str, volume.dims),
            "--max-retries", "-1",
        ])
        assert rc == 2  # RetryPolicy validation, surfaced as CLI error
        assert "error:" in capsys.readouterr().err

    def test_compute_runs_with_fault_flags(self, volume, capsys):
        rc = main([
            "compute", volume.path,
            "--dims", *map(str, volume.dims),
            "--blocks", "4",
            "--max-retries", "3",
            "--retry-backoff", "0",
        ])
        assert rc == 0
        assert "critical points" in capsys.readouterr().out


class TestQuery:
    @pytest.fixture
    def hier_msc(self, volume, tmp_path, capsys):
        """A v2 .msc produced by `compute --hierarchy`."""
        path = tmp_path / "hier.msc"
        rc = main([
            "compute", volume.path,
            "--dims", *map(str, volume.dims),
            "--blocks", "2", "--retry-backoff", "0",
            "--hierarchy", "--output", str(path),
        ])
        assert rc == 0
        capsys.readouterr()
        return path

    def test_parser_accepts_hierarchy_flag(self):
        args = build_parser().parse_args(
            ["compute", "v.raw", "--dims", "8", "8", "8", "--hierarchy"]
        )
        assert args.hierarchy is True

    def test_threshold_sweep(self, hier_msc, capsys):
        rc = main([
            "query", str(hier_msc),
            "--persistence", "0.0", "0.05", "0.2", "10.0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hierarchy depth" in out
        assert "persistence" in out and "arcs" in out
        # header + per-threshold rows under the two banner lines
        assert len(out.strip().splitlines()) == 2 + 4

    def test_top_k(self, hier_msc, capsys):
        rc = main(["query", str(hier_msc), "--top-k", "3"])
        assert rc == 0
        assert "hierarchy depth" in capsys.readouterr().out

    def test_json_output(self, hier_msc, capsys):
        import json

        rc = main([
            "query", str(hier_msc), "--json",
            "--persistence", "0.0", "0.1",
        ])
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert record["file"] == str(hier_msc)
        assert record["hierarchy_depth"] >= 1
        assert len(record["queries"]) == 2
        for q in record["queries"]:
            assert set(q) >= {"persistence", "levels", "num_nodes",
                              "num_arcs", "node_counts_by_index"}

    def test_query_matches_library_answer(self, hier_msc, capsys):
        import json

        from repro.analysis.query import query as lib_query

        rc = main([
            "query", str(hier_msc), "--json", "--persistence", "0.07",
        ])
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        ref = lib_query(str(hier_msc), persistence=0.07)
        assert record["queries"][0] == ref.to_dict()

    def test_v1_file_fails_readably(self, volume, tmp_path, capsys):
        path = tmp_path / "v1.msc"
        rc = main([
            "compute", volume.path,
            "--dims", *map(str, volume.dims),
            "--retry-backoff", "0", "--output", str(path),
        ])
        assert rc == 0
        capsys.readouterr()
        rc = main(["query", str(path), "--persistence", "0.1"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "no hierarchy recorded" in err

    def test_missing_file_fails_readably(self, tmp_path, capsys):
        rc = main([
            "query", str(tmp_path / "nope.msc"), "--persistence", "0.1",
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_selector_required(self, hier_msc, capsys):
        rc = main(["query", str(hier_msc)])
        assert rc == 2
        assert "exactly one" in capsys.readouterr().err

    def test_selectors_exclusive(self, hier_msc, capsys):
        rc = main([
            "query", str(hier_msc), "--persistence", "0.1",
            "--top-k", "2",
        ])
        assert rc == 2
        assert "exactly one" in capsys.readouterr().err

    def test_negative_top_k_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "f.msc", "--top-k", "-1"])


class TestStream:
    @pytest.fixture
    def series(self, tmp_path):
        """Two small volume files with identical dims."""
        specs = []
        for step in range(2):
            field = gaussian_bumps_field((9, 9, 9), 3, seed=step)
            specs.append(write_volume(
                tmp_path / f"t{step}.raw", field, dtype="float64"
            ))
        return specs

    def test_parser_accepts_stream_args(self):
        args = build_parser().parse_args([
            "stream", "a.raw", "b.raw", "--dims", "9", "9", "9",
            "--dtype", "float64", "--blocks", "8",
            "--transport", "mmap",
        ])
        assert args.command == "stream"
        assert args.volumes == ["a.raw", "b.raw"]
        assert args.transport == "mmap"

    def test_stream_table_and_outputs(self, series, tmp_path, capsys):
        out_dir = tmp_path / "steps"
        rc = main([
            "stream", *[s.path for s in series],
            "--dims", "9", "9", "9", "--dtype", "float64",
            "--blocks", "8", "--persistence", "0.05",
            "--retry-backoff", "0.0",
            "--output-dir", str(out_dir),
        ])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "session: 2 steps" in stdout
        for step in range(2):
            assert (out_dir / f"step_{step:04d}.msc").exists()

    def test_stream_steps_match_oneshot_pipeline(self, series, tmp_path):
        from repro.core.config import ExecutionOptions, PipelineConfig
        from repro.core.pipeline import ParallelMSComplexPipeline

        out_dir = tmp_path / "steps"
        rc = main([
            "stream", *[s.path for s in series],
            "--dims", "9", "9", "9", "--dtype", "float64",
            "--blocks", "8", "--persistence", "0.05",
            "--retry-backoff", "0.0",
            "--output-dir", str(out_dir),
        ])
        assert rc == 0
        # the exact one-shot configuration the stream command builds
        cfg = PipelineConfig(
            num_blocks=8,
            persistence_threshold=0.05,
            merge_radices="full",
            options=ExecutionOptions(retry_backoff=0.0),
        )
        for step, spec in enumerate(series):
            ref = tmp_path / f"ref{step}.msc"
            ParallelMSComplexPipeline(cfg).run(volume=spec).write(str(ref))
            streamed = out_dir / f"step_{step:04d}.msc"
            assert streamed.read_bytes() == ref.read_bytes()

    def test_stream_json_records_session_reuse(self, series, capsys):
        import json

        rc = main([
            "stream", *[s.path for s in series],
            "--dims", "9", "9", "9", "--dtype", "float64",
            "--blocks", "8", "--retry-backoff", "0.0", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["steps"]) == 2
        assert payload["session"]["runs"] == 2
        assert payload["session"]["plan_cache_hits"] == 1

    def test_wrong_size_volume_fails_before_first_step(
        self, series, tmp_path, capsys
    ):
        rc = main([
            "stream", series[0].path,
            "--dims", "10", "9", "9", "--dtype", "float64",
            "--blocks", "8",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "error:" in err and "require" in err

    def test_missing_volume_fails_readably(self, tmp_path, capsys):
        rc = main([
            "stream", str(tmp_path / "nope.raw"),
            "--dims", "9", "9", "9",
        ])
        assert rc == 2
        assert "cannot read volume" in capsys.readouterr().err

    def test_shm_transport_rejected_for_file_streams(self, series, capsys):
        rc = main([
            "stream", series[0].path,
            "--dims", "9", "9", "9", "--dtype", "float64",
            "--transport", "shm",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "in-memory input" in err and "mmap" in err


class TestServe:
    def test_serve_args(self):
        args = build_parser().parse_args([
            "serve", "--cache-dir", "/tmp/msc", "--port", "0",
            "--max-jobs", "3", "--mem-cache-entries", "8",
            "--job-timeout", "30", "--no-session-reuse",
        ])
        assert args.command == "serve"
        assert args.cache_dir == "/tmp/msc"
        assert args.port == 0
        assert args.max_jobs == 3
        assert args.mem_cache_entries == 8
        assert args.job_timeout == 30.0
        assert args.no_session_reuse is True

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.cache_dir == "./msc-cache"
        assert args.host == "127.0.0.1"
        assert args.port == 8643
        assert args.max_jobs == 2
        assert args.job_timeout is None
        assert args.no_session_reuse is False

    def test_unwritable_cache_dir_fails_readably(self, capsys):
        rc = main([
            "serve", "--cache-dir", "/proc/nope/cache", "--port", "0",
        ])
        assert rc == 2
        assert "cache dir" in capsys.readouterr().err
