"""Tests for repro.cli: the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.io.volume import VolumeSpec, write_volume
from repro.data.synthetic import gaussian_bumps_field


@pytest.fixture
def volume(tmp_path):
    field = gaussian_bumps_field((13, 13, 13), 3, seed=1)
    spec = write_volume(tmp_path / "f.raw", field, dtype="float32")
    return spec


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compute_args(self):
        args = build_parser().parse_args(
            ["compute", "v.raw", "--dims", "8", "8", "8", "--blocks", "4"]
        )
        assert args.command == "compute"
        assert args.dims == [8, 8, 8]
        assert args.blocks == 4

    def test_bad_dtype_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compute", "v.raw", "--dims", "8", "8", "8",
                 "--dtype", "int16"]
            )


class TestCompute:
    def test_compute_and_info_roundtrip(self, volume, tmp_path, capsys):
        out = tmp_path / "out.msc"
        rc = main([
            "compute", volume.path,
            "--dims", *map(str, volume.dims),
            "--dtype", "float32",
            "--blocks", "8",
            "--persistence", "0.05",
            "--output", str(out),
        ])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "critical points" in stdout
        assert out.exists()

        rc = main(["info", str(out)])
        assert rc == 0
        stdout = capsys.readouterr().out
        assert "block 0" in stdout
        assert "MS complex" in stdout

    def test_no_merge(self, volume, capsys):
        rc = main([
            "compute", volume.path,
            "--dims", *map(str, volume.dims),
            "--blocks", "8", "--no-merge",
        ])
        assert rc == 0
        assert "8 output block(s)" in capsys.readouterr().out

    def test_workers_flags_parse_and_run(self, volume, capsys):
        rc = main([
            "compute", volume.path,
            "--dims", *map(str, volume.dims),
            "--blocks", "4", "--workers", "1", "--executor", "serial",
        ])
        assert rc == 0
        assert "workers=1" in capsys.readouterr().out


class TestComputeErrors:
    def test_missing_volume_fails_readably(self, tmp_path, capsys):
        rc = main([
            "compute", str(tmp_path / "nope.raw"),
            "--dims", "8", "8", "8",
        ])
        assert rc == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("error: cannot read volume")
        assert "nope.raw" in captured.err
        assert "Traceback" not in captured.err

    def test_unreadable_directory_fails_readably(self, tmp_path, capsys):
        rc = main([
            "compute", str(tmp_path),  # a directory, not a file
            "--dims", "8", "8", "8",
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_size_mismatch_fails_readably(self, volume, capsys):
        rc = main([
            "compute", volume.path,
            "--dims", "64", "64", "64",  # wrong dims for this file
            "--dtype", "float32",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "require" in err and "bytes" in err

    def test_bad_config_fails_readably(self, volume, capsys):
        rc = main([
            "compute", volume.path,
            "--dims", *map(str, volume.dims),
            "--blocks", "3",  # not a power of two
        ])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestSynth:
    @pytest.mark.parametrize(
        "kind", ["sinusoid", "bumps", "jet", "rayleigh-taylor", "hydrogen"]
    )
    def test_synth_kinds(self, kind, tmp_path, capsys):
        out = tmp_path / f"{kind}.raw"
        rc = main(["synth", kind, str(out), "--points", "12"])
        assert rc == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_synth_then_compute(self, tmp_path, capsys):
        out = tmp_path / "s.raw"
        main(["synth", "sinusoid", str(out), "--points", "12",
              "--features", "2"])
        msg = capsys.readouterr().out
        # parse dims back out of the synth report
        dims = msg.split("dims=(")[1].split(")")[0].replace(",", " ").split()
        rc = main([
            "compute", str(out), "--dims", *dims, "--dtype", "float32",
            "--blocks", "2", "--persistence", "0.1",
        ])
        assert rc == 0


class TestWorkerCountValidation:
    """--workers/--blocks/--procs must be >= 1: exit code 2, readable."""

    @pytest.mark.parametrize("flag", ["--workers", "--blocks", "--procs"])
    @pytest.mark.parametrize("value", ["0", "-1", "-8"])
    def test_nonpositive_rejected_with_exit_2(self, flag, value, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["compute", "v.raw", "--dims", "8", "8", "8",
                  flag, value])
        assert exc_info.value.code == 2
        err = capsys.readouterr().err
        assert flag in err  # argparse names the offending flag
        assert "positive integer" in err

    @pytest.mark.parametrize("flag", ["--workers", "--blocks", "--procs"])
    def test_non_numeric_rejected_with_exit_2(self, flag, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["compute", "v.raw", "--dims", "8", "8", "8",
                  flag, "two"])
        assert exc_info.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_workers_one_is_accepted(self):
        args = build_parser().parse_args(
            ["compute", "v.raw", "--dims", "8", "8", "8",
             "--workers", "1"]
        )
        assert args.workers == 1


class TestFaultToleranceFlags:
    def test_defaults(self):
        args = build_parser().parse_args(
            ["compute", "v.raw", "--dims", "8", "8", "8"]
        )
        assert args.block_timeout is None
        assert args.max_retries == 2
        assert args.retry_backoff == pytest.approx(0.05)
        assert args.no_degrade is False

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["compute", "v.raw", "--dims", "8", "8", "8",
             "--block-timeout", "1.5", "--max-retries", "4",
             "--retry-backoff", "0", "--no-degrade"]
        )
        assert args.block_timeout == pytest.approx(1.5)
        assert args.max_retries == 4
        assert args.retry_backoff == 0.0
        assert args.no_degrade is True

    def test_negative_max_retries_fails_readably(self, volume, capsys):
        rc = main([
            "compute", volume.path,
            "--dims", *map(str, volume.dims),
            "--max-retries", "-1",
        ])
        assert rc == 2  # RetryPolicy validation, surfaced as CLI error
        assert "error:" in capsys.readouterr().err

    def test_compute_runs_with_fault_flags(self, volume, capsys):
        rc = main([
            "compute", volume.path,
            "--dims", *map(str, volume.dims),
            "--blocks", "4",
            "--max-retries", "3",
            "--retry-backoff", "0",
        ])
        assert rc == 0
        assert "critical points" in capsys.readouterr().out
