"""Tests for repro.morse.simplify: persistence cancellation."""

import numpy as np
import pytest

from repro.mesh.cubical import CubicalComplex
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.msc import MorseSmaleComplex
from repro.morse.simplify import simplify_ms_complex
from repro.morse.tracing import extract_ms_complex
from repro.morse.validate import assert_ms_complex_valid
from repro.data.synthetic import gaussian_bumps_field


def _msc_of(values):
    field = compute_discrete_gradient(CubicalComplex(values))
    return extract_ms_complex(field)


class TestBasicCancellation:
    def test_full_simplification_of_bump(self, bump_field):
        msc = _msc_of(bump_field)
        simplify_ms_complex(msc, threshold=np.inf, respect_boundary=False)
        # a contractible domain simplifies to a single minimum
        assert msc.node_counts_by_index() == (1, 0, 0, 0)

    def test_noise_removed_at_small_threshold(self, rng):
        clean = gaussian_bumps_field((14, 14, 14), num_bumps=3, seed=5)
        noisy = clean + rng.normal(0, 1e-4, clean.shape)
        msc_clean = _msc_of(clean)
        simplify_ms_complex(msc_clean, 0.05, respect_boundary=False)
        msc_noisy = _msc_of(noisy)
        unsimplified_nodes = msc_noisy.num_alive_nodes()
        simplify_ms_complex(msc_noisy, 0.05, respect_boundary=False)
        # extrema are the robust features; saddle pairs connected by
        # double arcs can survive (they cannot cancel through the
        # 1-skeleton), so only extrema counts are compared exactly
        clean_counts = msc_clean.node_counts_by_index()
        noisy_counts = msc_noisy.node_counts_by_index()
        assert noisy_counts[0] == clean_counts[0]  # minima
        assert noisy_counts[3] == clean_counts[3]  # maxima
        assert msc_noisy.num_alive_nodes() < unsimplified_nodes
        assert msc_noisy.euler_characteristic() == 1

    def test_threshold_zero_cancels_only_zero_persistence(self, rng):
        v = rng.random((6, 6, 6))
        msc = _msc_of(v)
        before = msc.num_alive_nodes()
        cancels = simplify_ms_complex(msc, 0.0, respect_boundary=False)
        for c in cancels:
            assert c.persistence == 0.0
        assert msc.num_alive_nodes() == before - 2 * len(cancels)

    def test_euler_characteristic_invariant(self, small_random_field):
        msc = _msc_of(small_random_field)
        chi = msc.euler_characteristic()
        simplify_ms_complex(msc, 0.3, respect_boundary=False)
        assert msc.euler_characteristic() == chi

    def test_complex_stays_valid(self, small_random_field):
        msc = _msc_of(small_random_field)
        simplify_ms_complex(msc, 0.5, respect_boundary=False)
        assert_ms_complex_valid(msc)
        msc.compact()
        assert_ms_complex_valid(msc)

    def test_cancellations_ordered_by_persistence_at_completion(
        self, small_random_field
    ):
        """Persistences of the hierarchy are produced lowest-first.

        New arcs can create lower-persistence pairs mid-stream, but the
        priority queue guarantees nothing above the threshold cancels
        before everything below it is exhausted.
        """
        msc = _msc_of(small_random_field)
        cancels = simplify_ms_complex(msc, 0.4, respect_boundary=False)
        assert cancels, "expected some cancellations on a random field"
        assert all(c.persistence <= 0.4 for c in cancels)

    def test_negative_threshold_rejected(self, small_random_field):
        msc = _msc_of(small_random_field)
        with pytest.raises(ValueError):
            simplify_ms_complex(msc, -0.1)

    def test_max_cancellations_cap(self, small_random_field):
        msc = _msc_of(small_random_field)
        cancels = simplify_ms_complex(
            msc, np.inf, respect_boundary=False, max_cancellations=3
        )
        assert len(cancels) == 3

    def test_record_counts(self, small_random_field):
        msc = _msc_of(small_random_field)
        nodes0 = msc.num_alive_nodes()
        cancels = simplify_ms_complex(msc, 0.2, respect_boundary=False)
        assert msc.num_alive_nodes() == nodes0 - 2 * len(cancels)
        assert msc.hierarchy == cancels


class TestBoundaryRespect:
    def test_boundary_nodes_never_cancelled(self, small_random_field):
        msc = _msc_of(small_random_field)
        # mark some nodes as boundary and remember them
        marked = []
        for nid in msc.alive_nodes()[::3]:
            msc.node_boundary[nid] = True
            marked.append(nid)
        simplify_ms_complex(msc, np.inf, respect_boundary=True)
        for nid in marked:
            assert msc.node_alive[nid], "boundary node was cancelled"

    def test_respect_false_ignores_flags(self, bump_field):
        msc = _msc_of(bump_field)
        for nid in msc.alive_nodes():
            msc.node_boundary[nid] = True
        simplify_ms_complex(msc, np.inf, respect_boundary=False)
        assert msc.num_alive_nodes() == 1


class TestMultiplicityRule:
    def test_double_arc_not_cancelled(self):
        """A pair connected by two arcs must never cancel (would create
        a gradient cycle)."""
        msc = MorseSmaleComplex((9, 9, 9))
        m = msc.add_node(0, 0, 0.0)
        s = msc.add_node(10, 1, 1.0)
        g1 = msc.new_leaf_geometry(np.array([10, 5, 0]))
        g2 = msc.new_leaf_geometry(np.array([10, 7, 0]))
        msc.add_arc(s, m, g1)
        msc.add_arc(s, m, g2)
        cancels = simplify_ms_complex(msc, np.inf, respect_boundary=False)
        assert cancels == []
        assert msc.num_alive_nodes() == 2

    def test_new_arcs_reconnect_neighborhood(self):
        """Cancelling (U, L) connects L's other uppers to U's other lowers."""
        msc = MorseSmaleComplex((99, 99, 99))
        # chain: min_a -- sad_L(cancel) -- min_b ... with extra saddle y
        min_a = msc.add_node(0, 0, 0.0)
        min_b = msc.add_node(2, 0, 0.2)
        sad_u = msc.add_node(4, 1, 0.3)  # U, cancels with min_b
        sad_y = msc.add_node(6, 1, 5.0)  # other upper neighbor of min_b
        geos = [
            msc.new_leaf_geometry(np.array([4, 3, 0])),  # U -> min_a
            msc.new_leaf_geometry(np.array([4, 5, 2])),  # U -> min_b
            msc.new_leaf_geometry(np.array([6, 5, 2])),  # y -> min_b
        ]
        msc.add_arc(sad_u, min_a, geos[0])
        msc.add_arc(sad_u, min_b, geos[1])
        msc.add_arc(sad_y, min_b, geos[2])
        cancels = simplify_ms_complex(msc, 0.5, respect_boundary=False)
        assert len(cancels) == 1
        assert cancels[0].upper_address == 4
        assert cancels[0].lower_address == 2
        # new arc: sad_y -> min_a with composite geometry through U
        assert msc.node_alive[sad_y] and msc.node_alive[min_a]
        arcs = msc.arcs_between(sad_y, min_a)
        assert len(arcs) == 1
        np.testing.assert_array_equal(
            msc.geometry_addresses(arcs[0]), [6, 5, 2, 5, 4, 3, 0]
        )
