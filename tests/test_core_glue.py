"""Tests for repro.core.glue: gluing complexes at shared boundaries."""

import numpy as np
import pytest

from repro.core.glue import GlueStats, glue_into
from repro.core.merge import perform_merge
from repro.mesh.cubical import CubicalComplex
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.msc import MorseSmaleComplex
from repro.morse.simplify import simplify_ms_complex
from repro.morse.tracing import extract_ms_complex
from repro.morse.validate import assert_ms_complex_valid
from repro.parallel.decomposition import decompose


def _block_complexes(values, splits):
    """Compute per-block MS complexes of a decomposed field."""
    decomp = decompose(values.shape, int(np.prod(splits)), splits=splits)
    out = []
    for b in range(decomp.num_blocks):
        box = decomp.block_box(decomp.block_coords(b))
        cx = CubicalComplex(
            values[box.slices()],
            refined_origin=box.refined_origin,
            global_refined_dims=decomp.global_refined_dims,
            cut_planes=decomp.cut_planes,
        )
        field = compute_discrete_gradient(cx)
        msc = extract_ms_complex(field)
        simplify_ms_complex(msc, 0.0, respect_boundary=True)
        msc.compact()
        out.append(msc)
    return decomp, out


class TestGlueTwoBlocks:
    def setup_method(self):
        rng = np.random.default_rng(21)
        self.values = rng.random((9, 6, 5))
        self.decomp, self.complexes = _block_complexes(
            self.values, (2, 1, 1)
        )

    def test_shared_nodes_anchor(self):
        root, other = self.complexes
        idx = root.address_index()
        stats = glue_into(root, other, idx)
        # the shared face has boundary critical cells in both complexes
        assert stats.shared_nodes > 0
        assert stats.nodes_added > 0
        assert_ms_complex_valid(root)

    def test_shared_arcs_skipped(self):
        root, other = self.complexes
        stats = glue_into(root, other, root.address_index())
        # any arc between two shared nodes must be skipped, not duplicated
        assert stats.arcs_skipped >= 0
        assert_ms_complex_valid(root)

    def test_union_covers_domain(self):
        root, other = self.complexes
        glue_into(root, other, root.address_index())
        assert root.region_lo == (0, 0, 0)
        assert root.region_hi == (9, 6, 5)

    def test_node_totals(self):
        root, other = self.complexes
        n_root = root.num_alive_nodes()
        n_other = other.num_alive_nodes()
        stats = glue_into(root, other, root.address_index())
        assert (
            root.num_alive_nodes()
            == n_root + n_other - stats.shared_nodes
        )

    def test_dims_mismatch_rejected(self):
        root = MorseSmaleComplex((3, 3, 3))
        other = MorseSmaleComplex((5, 5, 5))
        with pytest.raises(ValueError):
            glue_into(root, other, root.address_index())

    def test_stats_accumulate(self):
        a = GlueStats(1, 2, 3, 4)
        a += GlueStats(10, 20, 30, 40)
        assert (a.nodes_added, a.arcs_added, a.shared_nodes,
                a.arcs_skipped) == (11, 22, 33, 44)


class TestPerformMerge:
    def test_merge_resolves_boundary_artifacts(self):
        rng = np.random.default_rng(5)
        values = rng.random((9, 9, 5))
        decomp, complexes = _block_complexes(values, (2, 2, 1))
        root = complexes[0]
        boundary_before = sum(
            1 for n in root.alive_nodes() if root.node_boundary[n]
        )
        assert boundary_before > 0
        no_cuts = tuple(np.array([], dtype=np.int64) for _ in range(3))
        outcome = perform_merge(
            root, complexes[1:], no_cuts, persistence_threshold=0.0,
            validate=True,
        )
        assert outcome.boundary_nodes_freed > 0
        # after a full merge nothing is a boundary node any more
        assert not any(
            root.node_boundary[n] for n in root.alive_nodes()
        )
        # zero-persistence boundary artifacts got cancelled
        assert outcome.cancellations > 0

    def test_merged_euler_characteristic(self):
        rng = np.random.default_rng(6)
        values = rng.random((9, 9, 5))
        _, complexes = _block_complexes(values, (2, 2, 1))
        root = complexes[0]
        no_cuts = tuple(np.array([], dtype=np.int64) for _ in range(3))
        perform_merge(root, complexes[1:], no_cuts, 0.0)
        assert root.euler_characteristic() == 1
