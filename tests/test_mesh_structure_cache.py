"""The memoized mesh structure tables must be output-invisible.

The shape-dependent tables (facet/cofacet offsets, pairing candidates,
trace continuation facets) are pure functions of ``padded_shape`` and
are shared through a module-level LRU cache.  These tests pin the two
properties that make the cache safe:

- keying: distinct padded shapes get distinct table sets, equal shapes
  share one; nothing cut-plane- or value-dependent lives in the tables,
  so blocks differing only in ``cut_planes`` may share them without
  their boundary signatures bleeding into each other;
- transparency: computing through the cache is bit-identical to
  rebuilding the tables from scratch.
"""

import numpy as np
import pytest

from repro.core.merge import pack_complex
from repro.mesh.cubical import (
    CubicalComplex,
    build_structure_tables,
    clear_structure_cache,
    structure_cache_info,
    structure_tables,
)
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.tracing import extract_ms_complex


def _field(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random(shape)


def _msc_blob(values, use_cache, cut_planes=None):
    cx = CubicalComplex(
        values,
        cut_planes=cut_planes,
        use_structure_cache=use_cache,
    )
    msc = extract_ms_complex(compute_discrete_gradient(cx))
    msc.compact()
    return pack_complex(msc)


class TestCacheKeying:
    def test_same_shape_shares_one_table_set(self):
        a = CubicalComplex(_field((5, 6, 7), seed=1))
        b = CubicalComplex(_field((5, 6, 7), seed=2))
        assert a.tables is b.tables

    def test_different_shapes_do_not_collide(self):
        shapes = [(4, 4, 4), (4, 4, 5), (5, 4, 4), (6, 7, 8)]
        complexes = [CubicalComplex(_field(s)) for s in shapes]
        tables = [cx.tables for cx in complexes]
        assert len({id(t) for t in tables}) == len(shapes)
        for cx, s in zip(complexes, shapes):
            assert cx.tables.padded_shape == tuple(2 * n + 1 for n in s)

    def test_cut_planes_do_not_collide_through_shared_tables(self):
        """Blocks differing only in cut planes share tables, yet keep
        their own boundary signatures."""
        values = _field((5, 5, 5), seed=3)
        empty = (np.array([]), np.array([]), np.array([]))
        cut = (np.array([4]), np.array([]), np.array([]))
        a = CubicalComplex(values, cut_planes=empty)
        b = CubicalComplex(values, cut_planes=cut)
        assert a.tables is b.tables
        assert not (a.boundary_sig[a.valid] != 0).any()
        assert (b.boundary_sig[b.valid] != 0).any()

    def test_cache_hits_and_misses_are_observable(self):
        clear_structure_cache()
        shape = (3, 4, 5)
        CubicalComplex(_field(shape))
        misses = structure_cache_info().misses
        CubicalComplex(_field(shape, seed=9))
        info = structure_cache_info()
        assert info.misses == misses
        assert info.hits >= 1

    def test_uncached_build_bypasses_the_memo(self):
        clear_structure_cache()
        cx = CubicalComplex(_field((4, 5, 6)), use_structure_cache=False)
        assert structure_cache_info().currsize == 0
        fresh = build_structure_tables(cx.padded_shape)
        assert fresh is not cx.tables
        assert fresh.padded_shape == cx.tables.padded_shape


class TestCacheTransparency:
    @pytest.mark.parametrize("shape", [(4, 4, 4), (5, 7, 6)])
    def test_cached_result_bit_identical_to_uncached(self, shape):
        values = _field(shape, seed=11)
        assert _msc_blob(values, True) == _msc_blob(values, False)

    def test_cached_tables_match_fresh_build_field_by_field(self):
        shape = tuple(2 * n + 1 for n in (4, 5, 6))
        cached = structure_tables(shape)
        fresh = build_structure_tables(shape)
        assert cached.padded_shape == fresh.padded_shape
        assert cached.steps == fresh.steps
        np.testing.assert_array_equal(cached.celltype, fresh.celltype)
        np.testing.assert_array_equal(cached.cell_dim, fresh.cell_dim)
        assert cached.facet_offsets == fresh.facet_offsets
        assert cached.cofacet_offsets == fresh.cofacet_offsets
        assert cached.trace_facets == fresh.trace_facets
        assert cached.pair_candidates == fresh.pair_candidates

    def test_cut_planes_bit_identical_through_cache(self):
        values = _field((5, 5, 5), seed=4)
        cut = (np.array([4]), np.array([]), np.array([]))
        assert _msc_blob(values, True, cut) == _msc_blob(
            values, False, cut
        )
