"""Tests for repro.parallel.mpibackend: the mpi4py adapter.

No MPI exists in this environment, so the adapter is exercised against
a thread-backed stub communicator with mpi4py's interface; on a real
cluster only the communicator changes.
"""

from __future__ import annotations

import queue
import threading

import pytest

from repro.parallel.comm import Comm, gather
from repro.parallel.mpibackend import MPIBackend, drive_program
from repro.parallel.runtime import VirtualMPI


class StubWorld:
    """Thread-backed MPI world exposing mpi4py-style communicators."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.mailboxes = {
            (dest, src): queue.Queue()
            for dest in range(size)
            for src in range(size)
        }
        self.barrier = threading.Barrier(size)

    def comm(self, rank: int) -> "StubComm":
        return StubComm(self, rank)


class StubComm:
    def __init__(self, world: StubWorld, rank: int) -> None:
        self.world = world
        self.rank = rank

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.world.size

    def send(self, payload, dest, tag) -> None:
        self.world.mailboxes[(dest, self.rank)].put((tag, payload))

    def recv(self, source, tag):
        q = self.world.mailboxes[(self.rank, source)]
        held = []
        while True:
            got_tag, payload = q.get(timeout=10)
            if got_tag == tag:
                for item in held:
                    q.put(item)
                return payload
            held.append((got_tag, payload))

    def Barrier(self) -> None:
        self.world.barrier.wait(timeout=10)


def _run_threaded(world: StubWorld, main, *args):
    results = [None] * world.size
    errors = []

    def worker(rank):
        try:
            backend = MPIBackend(world.comm(rank))
            results[rank] = backend.run(main, *args)
        except Exception as exc:  # pragma: no cover - debug aid
            errors.append((rank, exc))

    threads = [
        threading.Thread(target=worker, args=(r,))
        for r in range(world.size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors, errors
    return results


def ring_program(comm: Comm):
    nxt = (comm.rank + 1) % comm.size
    prv = (comm.rank - 1) % comm.size
    yield comm.send(nxt, f"from-{comm.rank}", tag=1)
    got = yield comm.recv(prv, tag=1)
    yield comm.barrier()
    return got


def gather_program(comm: Comm):
    vals = yield from gather(comm, comm.rank * 2, root=0)
    return vals


class TestDriveProgram:
    def test_matches_virtual_runtime(self):
        virtual = VirtualMPI(4).run(ring_program)
        world = StubWorld(4)
        threaded = _run_threaded(world, ring_program)
        assert threaded == virtual

    def test_gather_collective(self):
        world = StubWorld(3)
        results = _run_threaded(world, gather_program)
        assert results[0] == [0, 2, 4]
        assert results[1] is None

    def test_unknown_request_rejected(self):
        def bad(comm):
            yield object()

        with pytest.raises(TypeError):
            drive_program(
                bad(Comm(0, 1)),
                send=lambda *a: None,
                recv=lambda *a: None,
                barrier=lambda: None,
            )

    def test_return_value_passthrough(self):
        def trivial(comm):
            return 42
            yield  # pragma: no cover

        out = drive_program(
            trivial(Comm(0, 1)),
            send=lambda *a: None,
            recv=lambda *a: None,
            barrier=lambda: None,
        )
        assert out == 42


class TestBackendConstruction:
    def test_missing_mpi4py_raises(self):
        with pytest.raises(RuntimeError, match="mpi4py"):
            MPIBackend()

    def test_rank_size_from_comm(self):
        world = StubWorld(2)
        backend = MPIBackend(world.comm(1))
        assert backend.rank == 1
        assert backend.size == 2
