"""Tests for repro.morse.vectorfield: packed gradient storage."""

import numpy as np
import pytest

from repro.mesh.cubical import CubicalComplex
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.vectorfield import CRITICAL, UNASSIGNED, GradientField


@pytest.fixture
def field(small_random_field):
    return compute_discrete_gradient(CubicalComplex(small_random_field))


def test_one_byte_per_element(field):
    """The paper stores the gradient in one byte per refined element."""
    assert field.pairing.dtype == np.uint8
    assert field.nbytes() == field.complex.num_padded


def test_pair_of_roundtrip(field):
    cx = field.complex
    for p in np.flatnonzero(
        cx.valid & (field.pairing < CRITICAL)
    )[:200].tolist():
        q = field.pair_of(p)
        assert field.pair_of(q) == p
        assert abs(int(cx.cell_dim[p]) - int(cx.cell_dim[q])) == 1


def test_pair_of_critical_raises(field):
    crit = field.critical_cells()
    with pytest.raises(ValueError):
        field.pair_of(int(crit[0]))


def test_critical_cells_by_dim_partition(field):
    by_dim = field.critical_cells_by_dim()
    allc = field.critical_cells()
    assert sum(len(c) for c in by_dim) == len(allc)
    for d, cells in enumerate(by_dim):
        assert np.all(field.complex.cell_dim[cells] == d)


def test_counts_match_cells(field):
    counts = field.critical_counts()
    assert counts == tuple(len(c) for c in field.critical_cells_by_dim())


def test_assert_complete_detects_unassigned(field):
    bad = field.pairing.copy()
    valid_cells = np.flatnonzero(field.complex.valid)
    bad[valid_cells[0]] = UNASSIGNED
    broken = GradientField(field.complex, bad)
    with pytest.raises(AssertionError):
        broken.assert_complete()


def test_assert_complete_detects_non_mutual_pairing(field):
    bad = field.pairing.copy()
    cx = field.complex
    paired = np.flatnonzero(cx.valid & (bad < CRITICAL))
    p = int(paired[0])
    # flip the direction so the partner no longer points back
    bad[p] = bad[p] ^ 1 if bad[p] % 2 == 0 else bad[p] - 1
    broken = GradientField(cx, bad)
    with pytest.raises(AssertionError):
        broken.assert_complete()


def test_mismatched_array_rejected(field):
    with pytest.raises(ValueError):
        GradientField(field.complex, np.zeros(3, dtype=np.uint8))
