"""Smoke tests: every example script runs end to end.

The heavier examples are exercised at reduced problem sizes by calling
their building blocks; ``quickstart`` runs verbatim (it is the paper's
"hello world" and must work as documented).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES))


def test_quickstart_runs(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "parallel == serial feature counts: OK" in out


def test_porous_filaments_components():
    sys.path.insert(0, str(EXAMPLES))
    import porous_filaments as pf

    field = pf.porous_material_field(n=20, num_grains=12, seed=3)
    assert field.shape == (20, 20, 20)
    # pore space exists on both sides of the material interface
    assert (field > 0).any() and (field < 0).any()

    from repro import PipelineConfig, ParallelMSComplexPipeline
    from repro.analysis import (
        arcs_by_family,
        filament_statistics,
        to_networkx,
    )

    cfg = PipelineConfig(num_blocks=8, persistence_threshold=0.01)
    msc = ParallelMSComplexPipeline(cfg).run(field).merged_complexes[0]
    g = to_networkx(msc, arcs_by_family(msc, 3))
    stats = filament_statistics(g)
    assert stats["arcs"] > 0
    assert stats["total_length"] > 0


def test_stability_example_helpers():
    sys.path.insert(0, str(EXAMPLES))
    import stability_study as ss
    from repro import compute_morse_smale_complex
    from repro.data import hydrogen_atom

    field = hydrogen_atom(25)
    msc = compute_morse_smale_complex(field, persistence_threshold=2.0)
    arcs, maxima = ss.stable_features(msc)
    assert len(maxima) >= 1


def test_all_examples_importable():
    sys.path.insert(0, str(EXAMPLES))
    for script in EXAMPLES.glob("*.py"):
        mod = runpy.run_path(str(script), run_name="not_main")
        assert "main" in mod, f"{script.name} lacks a main()"
