"""Tests for repro.core.session: persistent streaming sessions.

The contract under test is the streaming rework's central claim: a
:class:`~repro.core.session.PipelineSession` reuses pools, the shm
slot, cached plans, and warmed tables across steps while every step's
output stays byte-identical to a one-shot ``pipeline.run()`` of the
same field with the same config.
"""

import numpy as np
import pytest

import repro
from repro import ExecutionOptions
from repro.core.config import PipelineConfig
from repro.core.pipeline import ParallelMSComplexPipeline
from repro.core.session import PipelineSession, SessionStats
from repro.io.volume import write_volume
from repro.parallel.faults import FaultPlan
from repro.parallel.transport import attached_segment_names

PERS = 0.05


def fields(n=3, dims=(9, 9, 9)):
    return [
        np.random.default_rng(100 + i).random(dims) for i in range(n)
    ]


def config(**opts) -> PipelineConfig:
    opts.setdefault("retry_backoff", 0.0)
    return PipelineConfig(
        num_blocks=8,
        num_procs=8,
        persistence_threshold=PERS,
        options=ExecutionOptions(**opts),
    )


def oneshot_bytes(cfg, tmp_path, field, name="oneshot"):
    out = tmp_path / f"{name}.msc"
    ParallelMSComplexPipeline(cfg).run(field).write(str(out))
    return out.read_bytes()


class TestSessionBasics:
    def test_steps_bit_identical_to_oneshot(self, tmp_path):
        cfg = config()
        series = fields(3)
        refs = [
            oneshot_bytes(cfg, tmp_path, f, f"ref{i}")
            for i, f in enumerate(series)
        ]
        with PipelineSession(cfg) as session:
            for i, f in enumerate(series):
                out = tmp_path / f"step{i}.msc"
                session.run(f).write(str(out))
                assert out.read_bytes() == refs[i]

    def test_reuse_counters(self):
        with PipelineSession(config()) as session:
            for f in fields(3):
                session.run(f)
            stats = session.stats
        assert stats.runs == 3
        assert stats.plan_cache_hits == 2
        assert stats.pool_reuse_hits == 2
        assert len(stats.step_seconds) == 3
        assert "3 steps" in stats.describe()

    def test_dims_change_builds_second_plan(self):
        with PipelineSession(config()) as session:
            session.run(np.random.default_rng(0).random((9, 9, 9)))
            session.run(np.random.default_rng(1).random((11, 9, 9)))
            session.run(np.random.default_rng(2).random((9, 9, 9)))
            assert session.stats.plan_cache_hits == 1
            assert len(session._plans) == 2

    def test_closed_session_refuses_runs(self):
        session = PipelineSession(config())
        session.run(fields(1)[0])
        session.close()
        session.close()  # idempotent
        assert session.closed
        with pytest.raises(RuntimeError, match="session is closed"):
            session.run(fields(1)[0])

    def test_open_session_facade(self):
        with repro.open_session(persistence=PERS, ranks=8) as session:
            assert isinstance(session, PipelineSession)
            result = session.run(fields(1)[0])
            assert result.output_blocks

    def test_steady_state_stats_math(self):
        stats = SessionStats(step_seconds=[1.0, 0.5, 0.5])
        assert stats.steady_state_seconds_per_step() == 0.5
        assert stats.steady_state_steps_per_sec() == 2.0
        assert SessionStats().steady_state_steps_per_sec() == 0.0


class TestSessionVolumeInput:
    def test_positional_volume_spec_routes_to_volume(self, tmp_path):
        cfg = config()
        field = fields(1)[0]
        spec = write_volume(tmp_path / "v.raw", field, dtype="float64")
        ref = oneshot_bytes(cfg, tmp_path, field)
        with PipelineSession(cfg) as session:
            result = session.run(spec)
            out = tmp_path / "vol_step.msc"
            result.write(str(out))
            assert out.read_bytes() == ref
            assert result.stats.transport.kind == "mmap"
            assert result.stats.transport.driver_staged_bytes == 0

    def test_both_inputs_rejected(self, tmp_path):
        spec = write_volume(
            tmp_path / "v.raw", fields(1)[0], dtype="float64"
        )
        with PipelineSession(config()) as session:
            with pytest.raises(ValueError, match="exactly one"):
                session.run(spec, volume=spec)


class TestTransportResolution:
    def test_shm_with_volume_input_is_a_readable_error(self, tmp_path):
        spec = write_volume(
            tmp_path / "v.raw", fields(1)[0], dtype="float64"
        )
        cfg = config(transport="shm")
        with pytest.raises(ValueError, match="in-memory input"):
            ParallelMSComplexPipeline(cfg).run(volume=spec)

    def test_mmap_with_memory_input_is_a_readable_error(self):
        cfg = config(transport="mmap")
        with pytest.raises(ValueError, match="volume-file input"):
            ParallelMSComplexPipeline(cfg).run(fields(1)[0])


class TestMmapDriverBytes:
    """Satellite: the mmap driver path never stages the volume."""

    def test_driver_stages_no_volume_bytes(self, tmp_path):
        field = fields(1, dims=(12, 12, 12))[0]
        spec = write_volume(tmp_path / "v.raw", field, dtype="float64")
        cfg = config(transport="mmap")
        result = ParallelMSComplexPipeline(cfg).run(volume=spec)
        t = result.stats.transport
        assert t.kind == "mmap"
        assert t.driver_staged_bytes == 0
        assert t.dispatch_bytes < spec.nbytes
        assert t.shared_volume_bytes == 0

    def test_pickle_volume_run_stages_the_whole_volume(self, tmp_path):
        field = fields(1)[0]
        spec = write_volume(tmp_path / "v.raw", field, dtype="float64")
        cfg = config(transport="pickle")
        result = ParallelMSComplexPipeline(cfg).run(volume=spec)
        # pickle staging materializes the float64 grid in the driver
        assert result.stats.transport.driver_staged_bytes == (
            int(np.prod(spec.dims)) * 8
        )


class TestVertexBytes:
    """Satellite: storage bytes/vertex follow the actual dtype."""

    def test_virtual_read_time_charges_dtype_itemsize(self, tmp_path):
        """The virtual read stage bills the on-storage sample size —
        the old driver hardcoded 4 bytes/vertex for every input."""
        from repro.core.pipeline import build_plan

        field = fields(1)[0].astype(np.float32).astype(np.float64)
        cfg = config()
        plan = build_plan(cfg, field.shape)
        vmax = max(
            plan.decomp.block_box(plan.decomp.block_coords(b)).num_vertices
            for b in range(plan.decomp.num_blocks)
        )
        spec32 = write_volume(tmp_path / "v32.raw", field, "float32")
        spec64 = write_volume(tmp_path / "v64.raw", field, "float64")
        r32 = ParallelMSComplexPipeline(cfg).run(volume=spec32)
        r64 = ParallelMSComplexPipeline(cfg).run(volume=spec64)
        assert r32.stats.read_time == plan.model.read_time(vmax * 4)
        assert r64.stats.read_time == plan.model.read_time(vmax * 8)
        assert r64.stats.read_time > r32.stats.read_time

    def test_in_memory_grid_reads_as_float64(self, tmp_path):
        field = fields(1)[0]
        cfg = config()
        mem = ParallelMSComplexPipeline(cfg).run(field)
        spec64 = write_volume(tmp_path / "v.raw", field, "float64")
        vol = ParallelMSComplexPipeline(cfg).run(volume=spec64)
        # the in-memory grid is float64, same as the float64 volume
        assert mem.stats.read_time == pytest.approx(
            vol.stats.read_time
        )


class TestSessionMetrics:
    def test_session_gauges_present(self):
        cfg = PipelineConfig(
            num_blocks=8,
            num_procs=8,
            persistence_threshold=PERS,
            options=ExecutionOptions(retry_backoff=0.0),
            metrics=True,
        )
        with PipelineSession(cfg) as session:
            first = session.run(fields(1)[0]).stats.metrics
            second = session.run(fields(1)[0]).stats.metrics
        assert first["session.runs"]["value"] == 1
        assert second["session.runs"]["value"] == 2
        assert second["session.pool_reuse_hits"]["value"] == 1
        assert second["session.plan_cache_hits"]["value"] == 1


@pytest.mark.slow
class TestPooledSession:
    def test_shm_rebinds_and_bit_identity(self, tmp_path):
        cfg = config(workers=2, transport="shm")
        series = fields(3)
        refs = [
            oneshot_bytes(config(), tmp_path, f, f"ref{i}")
            for i, f in enumerate(series)
        ]
        with PipelineSession(cfg) as session:
            for i, f in enumerate(series):
                out = tmp_path / f"pooled{i}.msc"
                session.run(f).write(str(out))
                assert out.read_bytes() == refs[i]
            assert session.stats.shm_republishes == 1
            assert session.stats.shm_rebinds == 2
            assert session.stats.pool_reuse_hits == 2
        # close released the slot: nothing stays attached in the driver
        assert attached_segment_names() == ()

    def test_grown_volume_republishes_shrunk_rebinds(self):
        cfg = config(workers=2, transport="shm")
        with PipelineSession(cfg) as session:
            session.run(np.random.default_rng(0).random((9, 9, 9)))
            session.run(np.random.default_rng(1).random((12, 12, 12)))
            assert session.stats.shm_republishes == 2  # grew
            session.run(np.random.default_rng(2).random((9, 9, 9)))
            # smaller step fits the grown slot: rebind, not republish
            assert session.stats.shm_republishes == 2
            assert session.stats.shm_rebinds == 1

    def test_merge_pool_reused_across_steps(self):
        cfg = config(workers=2, merge_executor="pool")
        with PipelineSession(cfg) as session:
            for f in fields(2):
                result = session.run(f)
                assert result.stats.merge_executor == "pool"
            assert session.stats.merge_pool_reuse_hits == 1


@pytest.mark.slow
@pytest.mark.chaos
class TestSessionChaos:
    def test_worker_exit_mid_series_stays_bit_identical(self, tmp_path):
        """A worker death on step 0 restarts (and here degrades) the
        pool; every step — through the restart and after it — must still
        match the faultless one-shot bytes, and close leaks nothing."""
        series = fields(3)
        refs = [
            oneshot_bytes(config(), tmp_path, f, f"ref{i}")
            for i, f in enumerate(series)
        ]
        cfg = PipelineConfig(
            num_blocks=8,
            num_procs=8,
            persistence_threshold=PERS,
            options=ExecutionOptions(
                workers=2, transport="shm", retry_backoff=0.0
            ),
            faults=FaultPlan.exit_on([2]),
        )
        with PipelineSession(cfg) as session:
            for i, f in enumerate(series):
                result = session.run(f)
                out = tmp_path / f"chaos{i}.msc"
                result.write(str(out))
                assert out.read_bytes() == refs[i]
                if i == 0:
                    assert result.stats.faults.pool_restarts >= 1
            assert session.stats.runs == 3
        assert attached_segment_names() == ()

    def test_degraded_session_stays_serial(self, tmp_path):
        """Degradation is sticky by design: once the pool is declared
        unhealthy, later steps run serial instead of re-forking — and
        stay bit-identical."""
        field = fields(1)[0]
        ref = oneshot_bytes(config(), tmp_path, field)
        cfg = PipelineConfig(
            num_blocks=8,
            num_procs=8,
            persistence_threshold=PERS,
            options=ExecutionOptions(
                workers=2, transport="shm", retry_backoff=0.0,
            ),
            faults=FaultPlan.crash_on(
                [2], attempts=tuple(range(8)), contexts=("pool",)
            ),
        )
        with PipelineSession(cfg) as session:
            first = session.run(field)
            assert first.stats.faults.degraded
            assert session._compute_exec._degraded
            second = session.run(field)
            out = tmp_path / "degraded2.msc"
            second.write(str(out))
            assert out.read_bytes() == ref
            # no fresh pool, no fresh degradation on the later step
            assert session._compute_exec._degraded
            assert not second.stats.faults.degraded


class TestCloseInvalidatesVolumeCaches:
    def test_close_clears_map_and_hash_caches(self, tmp_path):
        """A closed session must not pin stale volume state: closing
        invalidates the process-wide memmap handle and the stat-keyed
        content-hash cache (a rewritten volume file then re-hashes)."""
        from repro.io import volume as vol

        field = fields(1, dims=(8, 8, 8))[0]
        spec = write_volume(tmp_path / "v.raw", field, dtype="float64")
        cfg = config(transport="mmap")
        with PipelineSession(cfg) as session:
            session.run(spec)
            vol.content_hash(spec)
            assert vol._HASH_CACHE
        assert vol._MAP_CACHE is None
        assert not vol._HASH_CACHE
