"""Chaos-test suite: injected faults must never change the answer.

Every scenario here drives the full pipeline with a deterministic,
seeded :class:`repro.parallel.faults.FaultPlan` and asserts one of the
two permitted outcomes:

- the fault-tolerance layer retries (or degrades) its way to a result
  *bit-identical* to the fault-free serial run, or
- the run fails with a readable :class:`FaultToleranceError` — never a
  hang, never a raw traceback surfaced to CLI users.

Scenarios avoid wall-clock dependence: hangs are simulated (classified
as timeouts without sleeping), backoff is zeroed, and outcomes depend
only on the plan — so results are stable across any number of runs.
Tests that spawn real worker pools additionally carry the ``slow``
marker.
"""

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.merge import MergeStageError, pack_complex
from repro.core.pipeline import ParallelMSComplexPipeline
from repro.data.synthetic import gaussian_bumps_field
from repro.parallel.executor import ComputeStageError
from repro.parallel.faults import FaultPlan, InjectedCrash

pytestmark = pytest.mark.chaos

BLOCKS = 8  # a 2x2x2 decomposition; full merge runs radices [2, 2, 2]
ALL_BLOCKS = tuple(range(BLOCKS))
#: every (round, root) merge event of the 2x2x2 full merge: the
#: lexicographically-smallest block of each group roots every round
MERGE_EVENTS = [(0, 0), (0, 2), (0, 4), (0, 6), (1, 0), (1, 4), (2, 0)]


@pytest.fixture(scope="module")
def field() -> np.ndarray:
    return gaussian_bumps_field((13, 13, 13), 3, seed=9)


def run(field, plan=None, **overrides):
    cfg = PipelineConfig(
        num_blocks=BLOCKS,
        persistence_threshold=0.05,
        max_radix=2,  # three [2, 2, 2] rounds => the 7 MERGE_EVENTS
        retry_backoff=0.0,  # no wall-clock dependence in chaos tests
        faults=plan,
        **overrides,
    )
    return ParallelMSComplexPipeline(cfg).run(field)


@pytest.fixture(scope="module")
def baseline(field):
    """The fault-free serial reference everything is compared against."""
    return run(field)


def assert_identical(result, baseline):
    assert result.num_output_blocks == baseline.num_output_blocks
    for bid in baseline.output_blocks:
        assert pack_complex(result.output_blocks[bid]) == pack_complex(
            baseline.output_blocks[bid]
        )
        assert (
            result.output_blocks[bid].hierarchy
            == baseline.output_blocks[bid].hierarchy
        )


# ---------------------------------------------------------------------------
# faults at EVERY compute-stage block index (acceptance criterion)
# ---------------------------------------------------------------------------


class TestEveryBlockIndex:
    @pytest.mark.parametrize("block", ALL_BLOCKS)
    def test_crash_is_retried_to_identical(self, field, baseline, block):
        res = run(field, FaultPlan.crash_on([block]))
        assert_identical(res, baseline)
        c = res.stats.faults.counters()
        assert c["crashes"] == 1 and c["retries"] == 1
        assert c["timeouts"] == c["corrupt_payloads"] == 0

    @pytest.mark.parametrize("block", ALL_BLOCKS)
    def test_hang_is_timed_out_and_retried(self, field, baseline, block):
        res = run(field, FaultPlan.hang_on([block]))
        assert_identical(res, baseline)
        c = res.stats.faults.counters()
        assert c["timeouts"] == 1 and c["retries"] == 1

    @pytest.mark.parametrize("block", ALL_BLOCKS)
    def test_corrupt_payload_is_caught_by_checksum(
        self, field, baseline, block
    ):
        res = run(field, FaultPlan.corrupt_on([block], seed=17))
        assert_identical(res, baseline)
        c = res.stats.faults.counters()
        assert c["corrupt_payloads"] == 1 and c["retries"] == 1
        assert c["crashes"] == 0  # classified as corruption, not crash


class TestCompoundChaos:
    def test_all_blocks_crash_at_once(self, field, baseline):
        res = run(field, FaultPlan.crash_on(ALL_BLOCKS))
        assert_identical(res, baseline)
        assert res.stats.faults.counters()["crashes"] == BLOCKS

    def test_mixed_fault_kinds_everywhere(self, field, baseline):
        plan = (
            FaultPlan.crash_on([0, 1])
            + FaultPlan.hang_on([2, 3])
            + FaultPlan.corrupt_on([4, 5], seed=3)
            + FaultPlan.merge_crash_on([(0, 0)])
            + FaultPlan.merge_corrupt_on([(1, 4)])
        )
        res = run(field, plan)
        assert_identical(res, baseline)
        c = res.stats.faults.counters()
        assert c["crashes"] == 2 and c["timeouts"] == 2
        assert c["corrupt_payloads"] == 2 and c["merge_retries"] == 2

    def test_double_fault_same_block(self, field, baseline):
        """Two consecutive failing attempts still fit max_retries=2."""
        res = run(field, FaultPlan.crash_on([5], attempts=(0, 1)))
        assert_identical(res, baseline)
        assert res.stats.faults.counters()["retries"] == 2

    def test_fault_stats_surface_in_describe(self, field):
        res = run(field, FaultPlan.crash_on([2]))
        assert "faults:" in res.stats.describe()
        assert "crashes=1" in res.stats.faults.describe()


# ---------------------------------------------------------------------------
# merge-round faults at every merge event
# ---------------------------------------------------------------------------


class TestMergeFaults:
    @pytest.mark.parametrize("event", MERGE_EVENTS)
    def test_merge_crash_retries_from_snapshot(self, field, baseline, event):
        res = run(field, FaultPlan.merge_crash_on([event]))
        assert_identical(res, baseline)
        assert res.stats.faults.merge_retries == 1

    @pytest.mark.parametrize("event", MERGE_EVENTS)
    def test_merge_corrupt_blob_retries_pristine(self, field, baseline, event):
        res = run(field, FaultPlan.merge_corrupt_on([event]))
        assert_identical(res, baseline)
        assert res.stats.faults.merge_retries == 1

    def test_every_merge_event_crashes_at_once(self, field, baseline):
        res = run(field, FaultPlan.merge_crash_on(MERGE_EVENTS))
        assert_identical(res, baseline)
        assert res.stats.faults.merge_retries == len(MERGE_EVENTS)

    def test_persistent_merge_crash_fails_readably(self, field):
        plan = FaultPlan.merge_crash_on([(0, 0)], attempts=(0, 1, 2, 3))
        with pytest.raises(MergeStageError, match=r"3 attempt\(s\)"):
            run(field, plan)


# ---------------------------------------------------------------------------
# pooled merge stage: worker faults must converge bit-identically
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestPooledMergeChaos:
    """Merge faults on the pooled backend (``merge_executor="pool"``):
    executor-level retries re-run :func:`repro.core.merge.merge_task`
    from immutable blobs (a fresh unpack *is* the pristine snapshot), a
    dead worker breaks the pool and the round falls back to serial —
    every outcome bit-identical to the fault-free serial reference."""

    def test_pooled_merge_crash_retries_identical(self, field, baseline):
        res = run(field, FaultPlan.merge_crash_on([(0, 2), (1, 4)]),
                  workers=2, merge_executor="pool")
        assert_identical(res, baseline)
        assert res.stats.merge_executor == "pool"
        assert res.stats.faults.merge_retries == 2

    def test_pooled_merge_corrupt_blob_retries_identical(
        self, field, baseline
    ):
        res = run(field, FaultPlan.merge_corrupt_on([(2, 0)]),
                  workers=2, merge_executor="pool")
        assert_identical(res, baseline)
        assert res.stats.faults.merge_retries >= 1

    def test_pooled_merge_worker_death_restores_round_bit_identically(
        self, field, baseline
    ):
        """os._exit in a merge worker breaks the pool; after bounded
        restarts the round degrades to the serial fallback (which
        ignores the pool-only exit fault) and the output is unchanged."""
        res = run(field, FaultPlan.merge_exit_on([(0, 0)]),
                  workers=2, merge_executor="pool")
        assert_identical(res, baseline)
        f = res.stats.faults
        assert f.pool_restarts >= 1
        assert f.degraded and f.degradation_events

    def test_persistent_pooled_merge_crash_fails_readably(self, field):
        plan = FaultPlan.merge_crash_on([(0, 0)], attempts=(0, 1, 2, 3))
        with pytest.raises(MergeStageError, match=r"attempt"):
            run(field, plan, workers=2, merge_executor="pool",
                degrade_on_failure=False)

    def test_same_plan_identical_on_either_merge_backend(self, field):
        """One chaos plan, both backends, one answer."""
        plan = (
            FaultPlan.merge_crash_on([(0, 4)])
            + FaultPlan.merge_corrupt_on([(1, 0)])
        )
        serial = run(field, plan, merge_executor="serial")
        pooled = run(field, plan, workers=2, merge_executor="pool")
        assert_identical(pooled, serial)


# ---------------------------------------------------------------------------
# retry exhaustion: a readable failure, not a traceback or a hang
# ---------------------------------------------------------------------------


class TestExhaustion:
    def test_persistent_crash_raises_compute_stage_error(self, field):
        plan = FaultPlan.crash_on([3], attempts=(0, 1, 2, 3, 4))
        with pytest.raises(ComputeStageError) as exc_info:
            run(field, plan)
        msg = str(exc_info.value)
        assert "block 3" in msg and "attempt" in msg
        assert "InjectedCrash" in msg  # names the last underlying error
        assert isinstance(exc_info.value.__cause__, InjectedCrash)

    def test_max_retries_zero_fails_fast(self, field):
        with pytest.raises(ComputeStageError, match="1 attempt"):
            run(field, FaultPlan.crash_on([0]), max_retries=0)

    def test_larger_retry_budget_survives_deeper_faults(self, field, baseline):
        plan = FaultPlan.crash_on([7], attempts=(0, 1, 2, 3))
        res = run(field, plan, max_retries=4)
        assert_identical(res, baseline)
        assert res.stats.faults.counters()["retries"] == 4


# ---------------------------------------------------------------------------
# determinism: same plan, same seeds => same everything, run after run
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_five_consecutive_runs_are_identical(self, field):
        plan = (
            FaultPlan.crash_on([1])
            + FaultPlan.hang_on([4])
            + FaultPlan.corrupt_on([6], seed=11)
            + FaultPlan.merge_crash_on([(1, 0)])
        )
        outputs, counters = [], []
        for _ in range(5):
            res = run(field, plan)
            outputs.append(
                {b: pack_complex(m) for b, m in res.output_blocks.items()}
            )
            counters.append(res.stats.faults.counters())
        assert all(o == outputs[0] for o in outputs[1:])
        assert all(c == counters[0] for c in counters[1:])

    def test_corruption_is_seed_deterministic(self, field):
        """Same seed corrupts the same bytes; runs agree bit-for-bit."""
        a = run(field, FaultPlan.corrupt_on([2], seed=5))
        b = run(field, FaultPlan.corrupt_on([2], seed=5))
        assert a.stats.faults.counters() == b.stats.faults.counters()
        for bid in a.output_blocks:
            assert pack_complex(a.output_blocks[bid]) == pack_complex(
                b.output_blocks[bid]
            )


# ---------------------------------------------------------------------------
# real worker pools: crashes, timeouts, restarts, degradation
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestPoolChaos:
    def test_worker_death_restarts_pool_then_degrades(self, field, baseline):
        """os._exit in a worker breaks the pool; restarts are bounded and
        the run degrades to serial, still bit-identical."""
        res = run(field, FaultPlan.exit_on([2]), workers=2)
        assert_identical(res, baseline)
        f = res.stats.faults
        assert f.pool_restarts >= 1
        assert f.degraded and f.degradation_events

    def test_pool_only_persistent_crash_degrades_to_serial(
        self, field, baseline
    ):
        plan = FaultPlan.crash_on(
            [6], attempts=tuple(range(8)), contexts=("pool",)
        )
        res = run(field, plan, workers=2)
        assert_identical(res, baseline)
        f = res.stats.faults
        assert f.degraded
        assert any("block 6" in e for e in f.degradation_events)

    def test_degradation_disabled_fails_readably(self, field):
        plan = FaultPlan.crash_on(
            [6], attempts=tuple(range(8)), contexts=("pool",)
        )
        with pytest.raises(ComputeStageError, match="block 6"):
            run(field, plan, workers=2, degrade_on_failure=False)

    def test_real_hang_hits_block_timeout_and_retries(self, field, baseline):
        """An actually-sleeping worker is cut off by the per-block
        timeout and the block re-dispatched (generous margins)."""
        plan = FaultPlan.hang_on(
            [4], simulate=False, hang_seconds=3.0, contexts=("pool",)
        )
        res = run(field, plan, workers=2, block_timeout=0.5)
        assert_identical(res, baseline)
        c = res.stats.faults.counters()
        assert c["timeouts"] >= 1 and c["retries"] >= 1

    def test_simulated_hang_on_pool_needs_no_timeout(self, field, baseline):
        """Simulated hangs exercise the timeout path without wall clock
        even on the pooled backend."""
        res = run(field, FaultPlan.hang_on([1, 5]), workers=2)
        assert_identical(res, baseline)
        assert res.stats.faults.counters()["timeouts"] == 2


# ---------------------------------------------------------------------------
# zero-copy (shm) transport under faults: same answers, no leaked segments
# ---------------------------------------------------------------------------


def _shm_segments() -> set:
    """Names currently present in the host's POSIX shm namespace."""
    import os

    try:
        return set(os.listdir("/dev/shm"))
    except OSError:  # pragma: no cover - non-Linux hosts
        return set()


class TestShmTransportChaos:
    """Every fault path must neither corrupt shm-transported results
    nor leak the published segment."""

    def assert_clean(self, before):
        from repro.parallel.transport import attached_segment_names

        assert attached_segment_names() == ()
        assert _shm_segments() == before

    @pytest.mark.parametrize("kind", ["crash", "hang", "corrupt"])
    def test_injected_faults_converge_bit_identical(
        self, field, baseline, kind
    ):
        plans = {
            "crash": FaultPlan.crash_on([3]),
            "hang": FaultPlan.hang_on([3]),
            "corrupt": FaultPlan.corrupt_on([3], seed=17),
        }
        before = _shm_segments()
        res = run(field, plans[kind], transport="shm")
        assert_identical(res, baseline)
        assert res.stats.faults.counters()["retries"] == 1
        assert res.stats.transport.kind == "shm"
        self.assert_clean(before)

    def test_retries_reread_from_segment(self, field, baseline):
        """A block that fails on every ghost attempt still re-reads its
        samples from the published segment, not a re-pickled copy."""
        before = _shm_segments()
        res = run(
            field,
            FaultPlan.crash_on([5], attempts=(0, 1)),
            transport="shm",
        )
        assert_identical(res, baseline)
        assert res.stats.faults.counters()["retries"] == 2
        self.assert_clean(before)

    @pytest.mark.slow
    def test_pool_restart_keeps_segment_alive_then_unlinks(
        self, field, baseline
    ):
        """os._exit kills the pool; the segment outlives the restart
        (and the degradation to serial) and is unlinked at close."""
        before = _shm_segments()
        res = run(field, FaultPlan.exit_on([2]), workers=2,
                  transport="shm")
        assert_identical(res, baseline)
        f = res.stats.faults
        assert f.pool_restarts >= 1
        assert f.degraded
        self.assert_clean(before)

    @pytest.mark.slow
    def test_degrade_to_serial_reads_creator_mapping(
        self, field, baseline
    ):
        """After degradation the driver computes in-process; the handle
        resolves to the creator's own mapping and the answer and the
        cleanup are unchanged."""
        plan = FaultPlan.crash_on(
            [6], attempts=tuple(range(8)), contexts=("pool",)
        )
        before = _shm_segments()
        res = run(field, plan, workers=2, transport="shm")
        assert_identical(res, baseline)
        assert res.stats.faults.degraded
        self.assert_clean(before)

    def test_exhaustion_still_unlinks(self, field):
        """Even a failed run must not leak the published segment."""
        before = _shm_segments()
        plan = FaultPlan.crash_on([3], attempts=(0, 1, 2, 3, 4))
        with pytest.raises(ComputeStageError):
            run(field, plan, transport="shm")
        self.assert_clean(before)
