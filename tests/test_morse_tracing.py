"""Tests for repro.morse.tracing: V-path enumeration and MSC extraction."""

import numpy as np
import pytest

from repro.mesh.cubical import CubicalComplex
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.tracing import extract_ms_complex, trace_down
from repro.morse.validate import assert_ms_complex_valid


@pytest.fixture
def field(small_random_field):
    return compute_discrete_gradient(CubicalComplex(small_random_field))


class TestTraceDown:
    def test_paths_start_and_end_at_critical_cells(self, field):
        crit_by_dim = field.critical_cells_by_dim()
        for d in range(1, 4):
            for c in crit_by_dim[d][:10].tolist():
                for path in trace_down(field, c):
                    assert path[0] == c
                    assert field.is_critical(path[-1])
                    assert field.complex.cell_dim[path[-1]] == d - 1

    def test_paths_alternate_dimensions(self, field):
        crit_by_dim = field.critical_cells_by_dim()
        cx = field.complex
        for c in crit_by_dim[2][:5].tolist():
            for path in trace_down(field, c):
                dims = [int(cx.cell_dim[p]) for p in path]
                assert dims[0] == 2 and dims[-1] == 1
                for a, b in zip(dims, dims[1:]):
                    assert abs(a - b) == 1

    def test_paths_descend_in_value(self, field):
        """Cell values along a V-path never increase (steepest descent)."""
        cx = field.complex
        for c in field.critical_cells_by_dim()[1][:10].tolist():
            for path in trace_down(field, c):
                vals = cx.cell_value[path]
                assert np.all(np.diff(vals) <= 1e-12)

    def test_monotone_field_no_arcs(self, monotone_field):
        f = compute_discrete_gradient(CubicalComplex(monotone_field))
        assert f.critical_counts() == (1, 0, 0, 0)
        msc = extract_ms_complex(f)
        assert msc.num_alive_arcs() == 0

    def test_interior_cells_not_critical_on_paths(self, field):
        for c in field.critical_cells_by_dim()[3][:5].tolist():
            for path in trace_down(field, c):
                for p in path[1:-1]:
                    assert not field.is_critical(p)


class TestExtractMSComplex:
    def test_nodes_match_critical_cells(self, field):
        msc = extract_ms_complex(field)
        assert msc.node_counts_by_index() == field.critical_counts()

    def test_valid_complex(self, field):
        msc = extract_ms_complex(field)
        assert_ms_complex_valid(msc)

    def test_saddle_arc_count_structure(self, bump_field):
        """Each 1-saddle has exactly two descending V-path families.

        In a discrete gradient field every critical edge has two facets,
        each starting a bundle of descending paths; for a clean bump the
        arcs land on minima.
        """
        f = compute_discrete_gradient(CubicalComplex(bump_field))
        msc = extract_ms_complex(f)
        for nid in msc.alive_nodes():
            if msc.node_index[nid] == 1:
                arcs = [
                    a
                    for a in msc.incident_arcs(nid)
                    if msc.arc_upper[a] == nid
                ]
                assert len(arcs) >= 1

    def test_geometry_endpoints(self, field):
        msc = extract_ms_complex(field)
        for aid in msc.alive_arcs()[:50]:
            geo = msc.geometry_addresses(aid)
            assert geo[0] == msc.node_address[msc.arc_upper[aid]]
            assert geo[-1] == msc.node_address[msc.arc_lower[aid]]

    def test_max_paths_cap(self, field):
        full = extract_ms_complex(field)
        capped = extract_ms_complex(field, max_paths_per_node=1)
        assert capped.num_alive_arcs() <= full.num_alive_arcs()

    def test_boundary_flags_zero_without_cuts(self, field):
        msc = extract_ms_complex(field)
        assert not any(
            msc.node_boundary[n] for n in msc.alive_nodes()
        )
