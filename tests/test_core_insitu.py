"""Tests for repro.core.insitu: the in-situ analysis mode."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.insitu import InSituAnalyzer
from repro.data.datasets import rayleigh_taylor_sequence
from repro.data.synthetic import gaussian_bumps_field


@pytest.fixture
def analyzer():
    cfg = PipelineConfig(num_blocks=8, persistence_threshold=0.1)
    return InSituAnalyzer(cfg)


class TestInSitu:
    def test_single_step(self, analyzer):
        field = gaussian_bumps_field((13, 13, 13), 3, seed=0)
        record, result = analyzer.step(field)
        assert record.step == 0
        assert record.time == 0.0
        assert sum(record.node_counts) >= 1
        assert record.output_bytes == result.stats.output_bytes
        assert record.virtual_seconds > 0

    def test_history_accumulates(self, analyzer):
        for i in range(3):
            field = gaussian_bumps_field((13, 13, 13), 2 + i, seed=i)
            analyzer.step(field, time=0.5 * i)
        assert [r.step for r in analyzer.history] == [0, 1, 2]
        assert [r.time for r in analyzer.history] == [0.0, 0.5, 1.0]

    def test_feature_timeseries_shape(self, analyzer):
        for i in range(2):
            analyzer.step(gaussian_bumps_field((13, 13, 13), 3, seed=i))
        series = analyzer.feature_timeseries()
        assert set(series) == {
            "time", "minima", "maxima", "nodes", "output_bytes",
            "virtual_seconds",
        }
        assert all(len(v) == 2 for v in series.values())

    def test_feature_value_filters(self):
        cfg = PipelineConfig(num_blocks=8, persistence_threshold=0.1)
        analyzer = InSituAnalyzer(cfg, feature_min_value=0.4)
        field = gaussian_bumps_field((13, 13, 13), 4, seed=5)
        record, _ = analyzer.step(field)
        # the min-value filter keeps only the bump maxima
        assert 1 <= record.significant_maxima <= 6

    def test_rt_sequence_instability_grows(self):
        cfg = PipelineConfig(num_blocks=8, persistence_threshold=0.15)
        analyzer = InSituAnalyzer(cfg)
        for t, field in rayleigh_taylor_sequence(
            (17, 17, 17), num_steps=3
        ):
            analyzer.step(field, time=t)
        nodes = analyzer.feature_timeseries()["nodes"]
        assert nodes[-1] > nodes[0]  # the instability develops

    def test_sequence_validation(self):
        with pytest.raises(ValueError):
            list(rayleigh_taylor_sequence((17, 17, 17), num_steps=0))


class TestSessionBacked:
    """The analyzer rides a persistent PipelineSession since the
    streaming rework."""

    def test_steps_reuse_the_session(self, analyzer):
        with analyzer:
            for i in range(3):
                analyzer.step(
                    gaussian_bumps_field((13, 13, 13), 3, seed=i)
                )
            stats = analyzer.session.stats
            assert stats.runs == 3
            assert stats.plan_cache_hits == 2
        assert analyzer.session.closed

    def test_volume_spec_step(self, analyzer, tmp_path):
        from repro.io.volume import write_volume

        field = gaussian_bumps_field((13, 13, 13), 3, seed=0)
        spec = write_volume(tmp_path / "t0.raw", field, dtype="float64")
        with analyzer:
            record, result = analyzer.step(spec)
        assert sum(record.node_counts) >= 1
        assert result.stats.transport.kind == "mmap"

    def test_stream_with_and_without_times(self, analyzer):
        steps = [
            (0.5, gaussian_bumps_field((13, 13, 13), 3, seed=0)),
            gaussian_bumps_field((13, 13, 13), 3, seed=1),
        ]
        with analyzer:
            records = [rec for rec, _ in analyzer.stream(steps)]
        assert records[0].time == 0.5
        assert records[1].time == 1.0  # defaults to the step index
        assert len(analyzer.history) == 2

    def test_close_is_idempotent(self, analyzer):
        analyzer.step(gaussian_bumps_field((13, 13, 13), 3, seed=0))
        analyzer.close()
        analyzer.close()
        with pytest.raises(RuntimeError, match="session is closed"):
            analyzer.step(gaussian_bumps_field((13, 13, 13), 3, seed=1))
