"""Tests for repro.core.insitu: the in-situ analysis mode."""

import pytest

from repro.core.config import PipelineConfig
from repro.core.insitu import InSituAnalyzer
from repro.data.datasets import rayleigh_taylor_sequence
from repro.data.synthetic import gaussian_bumps_field


@pytest.fixture
def analyzer():
    cfg = PipelineConfig(num_blocks=8, persistence_threshold=0.1)
    return InSituAnalyzer(cfg)


class TestInSitu:
    def test_single_step(self, analyzer):
        field = gaussian_bumps_field((13, 13, 13), 3, seed=0)
        record, result = analyzer.step(field)
        assert record.step == 0
        assert record.time == 0.0
        assert sum(record.node_counts) >= 1
        assert record.output_bytes == result.stats.output_bytes
        assert record.virtual_seconds > 0

    def test_history_accumulates(self, analyzer):
        for i in range(3):
            field = gaussian_bumps_field((13, 13, 13), 2 + i, seed=i)
            analyzer.step(field, time=0.5 * i)
        assert [r.step for r in analyzer.history] == [0, 1, 2]
        assert [r.time for r in analyzer.history] == [0.0, 0.5, 1.0]

    def test_feature_timeseries_shape(self, analyzer):
        for i in range(2):
            analyzer.step(gaussian_bumps_field((13, 13, 13), 3, seed=i))
        series = analyzer.feature_timeseries()
        assert set(series) == {
            "time", "minima", "maxima", "nodes", "output_bytes",
            "virtual_seconds",
        }
        assert all(len(v) == 2 for v in series.values())

    def test_feature_value_filters(self):
        cfg = PipelineConfig(num_blocks=8, persistence_threshold=0.1)
        analyzer = InSituAnalyzer(cfg, feature_min_value=0.4)
        field = gaussian_bumps_field((13, 13, 13), 4, seed=5)
        record, _ = analyzer.step(field)
        # the min-value filter keeps only the bump maxima
        assert 1 <= record.significant_maxima <= 6

    def test_rt_sequence_instability_grows(self):
        cfg = PipelineConfig(num_blocks=8, persistence_threshold=0.15)
        analyzer = InSituAnalyzer(cfg)
        for t, field in rayleigh_taylor_sequence(
            (17, 17, 17), num_steps=3
        ):
            analyzer.step(field, time=t)
        nodes = analyzer.feature_timeseries()["nodes"]
        assert nodes[-1] > nodes[0]  # the instability develops

    def test_sequence_validation(self):
        with pytest.raises(ValueError):
            list(rayleigh_taylor_sequence((17, 17, 17), num_steps=0))
