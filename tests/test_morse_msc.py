"""Tests for repro.morse.msc: the MS complex data structure."""

import numpy as np
import pytest

from repro.morse.msc import ArcGeometry, MorseSmaleComplex


@pytest.fixture
def tiny_msc():
    """min(0) -- 1sad(1) -- (another) min(2), plus an upper 2sad(3)."""
    msc = MorseSmaleComplex((9, 9, 9))
    m0 = msc.add_node(0, 0, 0.0)
    s1 = msc.add_node(10, 1, 1.0)
    m1 = msc.add_node(20, 0, 0.5)
    s2 = msc.add_node(30, 2, 2.0)
    g0 = msc.new_leaf_geometry(np.array([10, 5, 0]))
    g1 = msc.new_leaf_geometry(np.array([10, 15, 20]))
    g2 = msc.new_leaf_geometry(np.array([30, 25, 10]))
    msc.add_arc(s1, m0, g0)
    msc.add_arc(s1, m1, g1)
    msc.add_arc(s2, s1, g2)
    return msc


class TestConstruction:
    def test_counts(self, tiny_msc):
        assert tiny_msc.num_alive_nodes() == 4
        assert tiny_msc.num_alive_arcs() == 3
        assert tiny_msc.node_counts_by_index() == (2, 1, 1, 0)

    def test_bad_index_rejected(self):
        msc = MorseSmaleComplex((3, 3, 3))
        with pytest.raises(ValueError):
            msc.add_node(0, 4, 0.0)

    def test_arc_index_relation_enforced(self, tiny_msc):
        with pytest.raises(ValueError):
            tiny_msc.add_arc(3, 0, 0)  # 2-saddle to minimum: gap 2

    def test_persistence(self, tiny_msc):
        assert tiny_msc.persistence(0) == pytest.approx(1.0)
        assert tiny_msc.persistence(1) == pytest.approx(0.5)

    def test_arcs_between(self, tiny_msc):
        assert tiny_msc.arcs_between(1, 0) == [0]
        assert tiny_msc.arcs_between(0, 1) == [0]
        assert tiny_msc.arcs_between(0, 2) == []

    def test_other_endpoint(self, tiny_msc):
        assert tiny_msc.other_endpoint(0, 0) == 1
        assert tiny_msc.other_endpoint(0, 1) == 0
        with pytest.raises(ValueError):
            tiny_msc.other_endpoint(0, 3)

    def test_address_index(self, tiny_msc):
        idx = tiny_msc.address_index()
        assert idx == {0: 0, 10: 1, 20: 2, 30: 3}

    def test_euler_characteristic(self, tiny_msc):
        assert tiny_msc.euler_characteristic() == 2 - 1 + 1 - 0


class TestGeometry:
    def test_leaf_expansion(self, tiny_msc):
        np.testing.assert_array_equal(
            tiny_msc.geometry_addresses(0), [10, 5, 0]
        )

    def test_composite_expansion_with_reversal(self, tiny_msc):
        # y -> L -> U -> x style composite: (g1 fwd), (g0 reversed)
        gid = tiny_msc.new_composite_geometry([(1, False), (0, True)])
        # g1 = [10,15,20]; reversed g0 = [0,5,10]; junction 20/0 not equal
        expanded = tiny_msc._expand_geometry(gid)
        np.testing.assert_array_equal(expanded, [10, 15, 20, 0, 5, 10])

    def test_composite_junction_dedup(self, tiny_msc):
        # g2 ends at 10, g1 starts at 10 -> duplicate dropped
        gid = tiny_msc.new_composite_geometry([(2, False), (1, False)])
        np.testing.assert_array_equal(
            tiny_msc._expand_geometry(gid), [30, 25, 10, 15, 20]
        )

    def test_nested_composites(self, tiny_msc):
        inner = tiny_msc.new_composite_geometry([(2, False), (1, False)])
        outer = tiny_msc.new_composite_geometry([(inner, True)])
        np.testing.assert_array_equal(
            tiny_msc._expand_geometry(outer), [20, 15, 10, 25, 30]
        )

    def test_geometry_length_accounting(self, tiny_msc):
        gid = tiny_msc.new_composite_geometry([(0, False), (1, False)])
        assert tiny_msc.geoms[gid].length == 6
        assert tiny_msc.total_geometry_length() == 9  # three leaf arcs


class TestMutationAndCompact:
    def test_kill_and_incident_pruning(self, tiny_msc):
        tiny_msc.kill_arc(0)
        assert tiny_msc.incident_arcs(1) == [1, 2]
        assert tiny_msc.num_alive_arcs() == 2

    def test_compact_drops_dead(self, tiny_msc):
        tiny_msc.kill_arc(2)
        tiny_msc.kill_node(3)
        tiny_msc.compact()
        assert tiny_msc.num_alive_nodes() == 3
        assert tiny_msc.num_alive_arcs() == 2
        assert all(g.is_leaf for g in tiny_msc.geoms)

    def test_compact_flattens_composites(self, tiny_msc):
        gid = tiny_msc.new_composite_geometry([(2, False), (1, False)])
        tiny_msc.kill_arc(2)
        new_aid = tiny_msc.add_arc(3, 1, gid)  # 2-saddle -> 1-saddle
        tiny_msc.compact()
        assert all(g.is_leaf for g in tiny_msc.geoms)
        assert tiny_msc.num_alive_arcs() == 3
        # the composite arc expanded to its concrete path
        flats = [
            tiny_msc.geometry_addresses(a).tolist()
            for a in tiny_msc.alive_arcs()
        ]
        assert [30, 25, 10, 15, 20] in flats
        del new_aid

    def test_update_boundary_flags(self):
        msc = MorseSmaleComplex((9, 9, 9))
        on_plane = msc.add_node(4, 0, 0.0, boundary=True)  # i=4
        off_plane = msc.add_node(1, 0, 0.0, boundary=True)
        cuts = (np.array([4]), np.array([]), np.array([]))
        freed = msc.update_boundary_flags(cuts)
        assert freed == 1
        assert msc.node_boundary[on_plane]
        assert not msc.node_boundary[off_plane]


class TestPayloadRoundtrip:
    def test_roundtrip(self, tiny_msc):
        tiny_msc.compact()
        payload = tiny_msc.to_payload()
        back = MorseSmaleComplex.from_payload(payload)
        assert back.node_counts_by_index() == tiny_msc.node_counts_by_index()
        assert back.num_alive_arcs() == tiny_msc.num_alive_arcs()
        assert back.global_refined_dims == tiny_msc.global_refined_dims
        assert back.region_lo == tiny_msc.region_lo
        for aid in range(back.num_alive_arcs()):
            np.testing.assert_array_equal(
                back.geometry_addresses(aid),
                tiny_msc.geometry_addresses(aid),
            )

    def test_payload_requires_compacted(self, tiny_msc):
        tiny_msc.new_composite_geometry([(0, False)])
        with pytest.raises(ValueError):
            tiny_msc.to_payload()

    def test_empty_complex_roundtrip(self):
        msc = MorseSmaleComplex((5, 5, 5))
        back = MorseSmaleComplex.from_payload(msc.to_payload())
        assert back.num_alive_nodes() == 0
        assert back.num_alive_arcs() == 0

    def test_nbytes_positive(self, tiny_msc):
        assert tiny_msc.nbytes() > 0
