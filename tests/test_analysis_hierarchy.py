"""Tests for repro.analysis.hierarchy: multi-resolution queries."""

import numpy as np
import pytest

from repro.analysis.hierarchy import MSComplexHierarchy
from repro.data.synthetic import gaussian_bumps_field
from repro.mesh.cubical import CubicalComplex
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.simplify import simplify_ms_complex
from repro.morse.tracing import extract_ms_complex


@pytest.fixture(scope="module")
def simplified():
    field = gaussian_bumps_field((14, 14, 14), 4, seed=2, noise=0.02)
    g = compute_discrete_gradient(CubicalComplex(field))
    msc = extract_ms_complex(g)
    simplify_ms_complex(msc, np.inf, respect_boundary=False)
    return msc


@pytest.fixture(scope="module")
def hierarchy(simplified):
    return MSComplexHierarchy.from_complex(simplified)


class TestConstruction:
    def test_levels_match_cancellations(self, simplified, hierarchy):
        assert hierarchy.num_levels == len(simplified.hierarchy)
        assert hierarchy.num_levels > 0

    def test_level_zero_is_unsimplified(self, simplified, hierarchy):
        total = len(simplified.node_address)
        assert sum(hierarchy.counts_at_level(0)) == total

    def test_top_level_matches_final_complex(self, simplified, hierarchy):
        assert (
            hierarchy.counts_at_level(hierarchy.num_levels)
            == simplified.node_counts_by_index()
        )

    def test_compaction_invalidates_source_but_not_hierarchy(
        self, simplified, hierarchy
    ):
        import copy

        msc = copy.deepcopy(simplified)
        msc.compact()
        # hierarchy built earlier still answers queries
        assert hierarchy.counts_at_level(0)[0] > 0
        # but building from the compacted complex fails loudly
        with pytest.raises(ValueError):
            MSComplexHierarchy.from_complex(msc)


class TestQueries:
    def test_each_level_removes_exactly_one_pair(self, hierarchy):
        for level in range(hierarchy.num_levels):
            a = sum(hierarchy.counts_at_level(level))
            b = sum(hierarchy.counts_at_level(level + 1))
            assert a - b == 2

    def test_euler_invariant_across_levels(self, hierarchy):
        for level in range(hierarchy.num_levels + 1):
            c0, c1, c2, c3 = hierarchy.counts_at_level(level)
            assert c0 - c1 + c2 - c3 == 1

    def test_view_consistency(self, hierarchy):
        for level in (0, hierarchy.num_levels // 2, hierarchy.num_levels):
            view = hierarchy.view_at_level(level)
            assert view.node_counts_by_index() == hierarchy.counts_at_level(
                level
            )
            node_addrs = {a for a, _i, _v in view.nodes}
            for up, lo in view.arcs:
                assert up in node_addrs and lo in node_addrs

    def test_level_of_persistence(self, hierarchy):
        assert hierarchy.level_of_persistence(-1.0) == 0
        assert (
            hierarchy.level_of_persistence(np.inf) == hierarchy.num_levels
        )
        mid = hierarchy.persistences[len(hierarchy.persistences) // 2]
        level = hierarchy.level_of_persistence(mid)
        assert 0 < level <= hierarchy.num_levels
        assert all(p <= mid for p in hierarchy.persistences[:level])

    def test_view_at_persistence(self, hierarchy):
        view = hierarchy.view_at_persistence(np.inf)
        assert view.level == hierarchy.num_levels
        assert sum(view.node_counts_by_index()) >= 1

    def test_node_count_curve(self, hierarchy):
        xs, ys = hierarchy.node_count_curve()
        assert len(xs) == hierarchy.num_levels + 1
        assert ys[0] - ys[-1] == 2 * hierarchy.num_levels
        assert all(b <= a for a, b in zip(ys, ys[1:]))

    def test_bad_level_rejected(self, hierarchy):
        with pytest.raises(ValueError):
            hierarchy.counts_at_level(-1)
        with pytest.raises(ValueError):
            hierarchy.view_at_level(hierarchy.num_levels + 1)
