"""Tests for repro.io.mscfile: the MS complex output format."""

import numpy as np
import pytest

from repro.io.mscfile import (
    MAGIC,
    MAGIC_V2,
    deserialize_hierarchy,
    deserialize_payload,
    read_msc_file,
    read_msc_hierarchies,
    serialize_hierarchy,
    serialize_payload,
    write_msc_file,
)
from repro.mesh.cubical import CubicalComplex
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.msc import MorseSmaleComplex
from repro.morse.tracing import extract_ms_complex


@pytest.fixture
def payload(small_random_field):
    f = compute_discrete_gradient(CubicalComplex(small_random_field))
    msc = extract_ms_complex(f)
    msc.compact()
    return msc.to_payload()


class TestRecordRoundtrip:
    def test_serialize_deserialize(self, payload):
        back = deserialize_payload(serialize_payload(payload))
        assert set(back) == set(payload)
        for key in payload:
            np.testing.assert_array_equal(back[key], payload[key])

    def test_complex_roundtrip(self, payload):
        blob = serialize_payload(payload)
        msc = MorseSmaleComplex.from_payload(deserialize_payload(blob))
        ref = MorseSmaleComplex.from_payload(payload)
        assert msc.node_counts_by_index() == ref.node_counts_by_index()
        assert msc.num_alive_arcs() == ref.num_alive_arcs()

    def test_bad_section_count_rejected(self, payload):
        blob = bytearray(serialize_payload(payload))
        blob[0] = 99
        with pytest.raises(ValueError):
            deserialize_payload(bytes(blob))


class TestFileRoundtrip:
    def test_multi_block_file(self, tmp_path, payload):
        path = tmp_path / "out.msc"
        nbytes = write_msc_file(path, [(0, payload), (5, payload)])
        assert path.stat().st_size == nbytes
        blocks = read_msc_file(path)
        assert set(blocks) == {0, 5}
        for key in payload:
            np.testing.assert_array_equal(blocks[5][key], payload[key])

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.msc"
        write_msc_file(path, [])
        assert read_msc_file(path) == {}

    def test_footer_magic(self, tmp_path, payload):
        path = tmp_path / "m.msc"
        write_msc_file(path, [(0, payload)])
        assert path.read_bytes()[-4:] == MAGIC

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.msc"
        path.write_bytes(b"this is not an msc file....")
        with pytest.raises(ValueError, match="magic"):
            read_msc_file(path)

    def test_empty_complex_block(self, tmp_path):
        empty = MorseSmaleComplex((5, 5, 5)).to_payload()
        path = tmp_path / "e.msc"
        write_msc_file(path, [(3, empty)])
        blocks = read_msc_file(path)
        assert blocks[3]["node_address"].size == 0


def _toy_hierarchy(levels=4, nodes=6, arcs=9, seed=0):
    """Hand-built flat hierarchy arrays in ``to_arrays`` form."""
    rng = np.random.default_rng(seed)
    return {
        "node_address": rng.integers(0, 500, nodes).astype(np.int64),
        "node_index": rng.integers(0, 4, nodes).astype(np.uint8),
        "node_value": rng.random(nodes),
        "node_death": rng.integers(0, levels + 1, nodes).astype(np.int64),
        "arc_upper_address": rng.integers(0, 500, arcs).astype(np.int64),
        "arc_lower_address": rng.integers(0, 500, arcs).astype(np.int64),
        "arc_birth": rng.integers(0, levels, arcs).astype(np.int64),
        "arc_death": rng.integers(0, levels + 1, arcs).astype(np.int64),
        "persistences": np.sort(rng.random(levels)),
    }


class TestHierarchyFooter:
    """The v2 hierarchy footer: round-trip, compat, corruption."""

    def test_record_roundtrip_bit_exact(self):
        arrays = _toy_hierarchy()
        back = deserialize_hierarchy(serialize_hierarchy(arrays))
        assert set(back) == set(arrays)
        for key, arr in arrays.items():
            assert back[key].dtype == arr.dtype
            np.testing.assert_array_equal(back[key], arr)

    def test_v2_file_roundtrip(self, tmp_path, payload):
        path = tmp_path / "v2.msc"
        hier = {0: _toy_hierarchy(seed=1), 7: _toy_hierarchy(seed=2)}
        nbytes = write_msc_file(
            path, [(0, payload), (7, payload)], hierarchies=hier
        )
        assert path.stat().st_size == nbytes
        assert path.read_bytes()[-4:] == MAGIC_V2
        blocks = read_msc_file(path)
        assert set(blocks) == {0, 7}
        for key in payload:
            np.testing.assert_array_equal(blocks[7][key], payload[key])
        back = read_msc_hierarchies(path)
        assert set(back) == {0, 7}
        for bid, arrays in hier.items():
            for key, arr in arrays.items():
                np.testing.assert_array_equal(back[bid][key], arr)

    def test_write_read_write_identity(self, tmp_path, payload):
        """A re-serialized v2 file is byte-identical."""
        a, b = tmp_path / "a.msc", tmp_path / "b.msc"
        hier = {4: _toy_hierarchy(seed=3)}
        write_msc_file(a, [(4, payload)], hierarchies=hier)
        write_msc_file(
            b,
            [(4, read_msc_file(a)[4])],
            hierarchies=read_msc_hierarchies(a),
        )
        assert a.read_bytes() == b.read_bytes()

    def test_no_hierarchy_stays_v1(self, tmp_path, payload):
        """Omitting hierarchies yields exact v1 bytes — old readers and
        golden pins are unaffected by the format revision."""
        v1, none_, empty = (tmp_path / n for n in ("a", "b", "c"))
        write_msc_file(v1, [(0, payload)])
        write_msc_file(none_, [(0, payload)], hierarchies=None)
        write_msc_file(empty, [(0, payload)], hierarchies={})
        assert v1.read_bytes()[-4:] == MAGIC
        assert none_.read_bytes() == v1.read_bytes()
        assert empty.read_bytes() == v1.read_bytes()

    def test_v1_file_raises_readable_error(self, tmp_path, payload):
        path = tmp_path / "v1.msc"
        write_msc_file(path, [(0, payload)])
        with pytest.raises(ValueError, match="no hierarchy recorded"):
            read_msc_hierarchies(path)

    def test_missing_hierarchy_error_names_the_fix(self, tmp_path, payload):
        path = tmp_path / "v1.msc"
        write_msc_file(path, [(0, payload)])
        with pytest.raises(ValueError, match="hierarchy=True"):
            read_msc_hierarchies(path)

    def test_truncated_v2_file_rejected(self, tmp_path, payload):
        path = tmp_path / "t.msc"
        write_msc_file(path, [(0, payload)],
                       hierarchies={0: _toy_hierarchy()})
        data = path.read_bytes()
        # keep the trailing magic, drop bytes from the middle
        path.write_bytes(data[: len(data) // 2] + data[-12:])
        with pytest.raises(ValueError, match="truncated or corrupt"):
            read_msc_file(path)

    def test_corrupt_footer_offset_rejected(self, tmp_path, payload):
        path = tmp_path / "c.msc"
        write_msc_file(path, [(0, payload)],
                       hierarchies={0: _toy_hierarchy()})
        data = bytearray(path.read_bytes())
        data[-12:-4] = (2**63 - 1).to_bytes(8, "little")
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="truncated or corrupt"):
            read_msc_hierarchies(path)

    def test_v2_prefix_is_v1_block_region(self, tmp_path, payload):
        """v2 appends after the block records: the block-record region
        of a v2 file is byte-identical to the v1 file's."""
        v1, v2 = tmp_path / "v1.msc", tmp_path / "v2.msc"
        write_msc_file(v1, [(0, payload), (1, payload)])
        write_msc_file(v2, [(0, payload), (1, payload)],
                       hierarchies={0: _toy_hierarchy()})
        footer_offset = int.from_bytes(v1.read_bytes()[-12:-4], "little")
        assert (v2.read_bytes()[:footer_offset]
                == v1.read_bytes()[:footer_offset])


class TestBytesSources:
    """``read_msc_*`` accept an in-memory file image (the service's
    hot-cache path: query answers parse cached bytes, never disk)."""

    def test_read_msc_file_from_bytes(self, tmp_path, payload):
        path = tmp_path / "img.msc"
        write_msc_file(path, [(0, payload), (2, payload)])
        from_bytes = read_msc_file(path.read_bytes())
        from_path = read_msc_file(path)
        assert set(from_bytes) == set(from_path) == {0, 2}
        for key in payload:
            np.testing.assert_array_equal(
                from_bytes[2][key], from_path[2][key]
            )

    def test_bad_magic_bytes_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            read_msc_file(b"this is not an msc file....")
