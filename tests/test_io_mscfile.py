"""Tests for repro.io.mscfile: the MS complex output format."""

import numpy as np
import pytest

from repro.io.mscfile import (
    MAGIC,
    deserialize_payload,
    read_msc_file,
    serialize_payload,
    write_msc_file,
)
from repro.mesh.cubical import CubicalComplex
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.msc import MorseSmaleComplex
from repro.morse.tracing import extract_ms_complex


@pytest.fixture
def payload(small_random_field):
    f = compute_discrete_gradient(CubicalComplex(small_random_field))
    msc = extract_ms_complex(f)
    msc.compact()
    return msc.to_payload()


class TestRecordRoundtrip:
    def test_serialize_deserialize(self, payload):
        back = deserialize_payload(serialize_payload(payload))
        assert set(back) == set(payload)
        for key in payload:
            np.testing.assert_array_equal(back[key], payload[key])

    def test_complex_roundtrip(self, payload):
        blob = serialize_payload(payload)
        msc = MorseSmaleComplex.from_payload(deserialize_payload(blob))
        ref = MorseSmaleComplex.from_payload(payload)
        assert msc.node_counts_by_index() == ref.node_counts_by_index()
        assert msc.num_alive_arcs() == ref.num_alive_arcs()

    def test_bad_section_count_rejected(self, payload):
        blob = bytearray(serialize_payload(payload))
        blob[0] = 99
        with pytest.raises(ValueError):
            deserialize_payload(bytes(blob))


class TestFileRoundtrip:
    def test_multi_block_file(self, tmp_path, payload):
        path = tmp_path / "out.msc"
        nbytes = write_msc_file(path, [(0, payload), (5, payload)])
        assert path.stat().st_size == nbytes
        blocks = read_msc_file(path)
        assert set(blocks) == {0, 5}
        for key in payload:
            np.testing.assert_array_equal(blocks[5][key], payload[key])

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.msc"
        write_msc_file(path, [])
        assert read_msc_file(path) == {}

    def test_footer_magic(self, tmp_path, payload):
        path = tmp_path / "m.msc"
        write_msc_file(path, [(0, payload)])
        assert path.read_bytes()[-4:] == MAGIC

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.msc"
        path.write_bytes(b"this is not an msc file....")
        with pytest.raises(ValueError, match="magic"):
            read_msc_file(path)

    def test_empty_complex_block(self, tmp_path):
        empty = MorseSmaleComplex((5, 5, 5)).to_payload()
        path = tmp_path / "e.msc"
        write_msc_file(path, [(3, empty)])
        blocks = read_msc_file(path)
        assert blocks[3]["node_address"].size == 0
