"""Tests for repro.mesh.grid: boxes and structured grids."""

import numpy as np
import pytest

from repro.mesh.grid import Box, StructuredGrid


class TestBox:
    def test_shape_and_counts(self):
        b = Box((0, 0, 0), (4, 5, 6))
        assert b.shape == (4, 5, 6)
        assert b.num_vertices == 120
        assert b.refined_shape == (7, 9, 11)
        assert b.num_cells == 7 * 9 * 11

    def test_refined_origin(self):
        b = Box((2, 3, 4), (5, 6, 7))
        assert b.refined_origin == (4, 6, 8)

    def test_too_thin_rejected(self):
        with pytest.raises(ValueError):
            Box((0, 0, 0), (1, 5, 5))

    def test_contains_vertex(self):
        b = Box((1, 1, 1), (3, 3, 3))
        assert b.contains_vertex((1, 2, 2))
        assert b.contains_vertex((2, 2, 2))
        assert not b.contains_vertex((3, 2, 2))  # hi is exclusive
        assert not b.contains_vertex((0, 2, 2))

    def test_union(self):
        a = Box((0, 0, 0), (3, 3, 3))
        b = Box((2, 0, 0), (5, 3, 3))
        u = a.union(b)
        assert u.lo == (0, 0, 0)
        assert u.hi == (5, 3, 3)

    def test_slices_roundtrip(self):
        arr = np.arange(4 * 5 * 6).reshape(4, 5, 6)
        b = Box((1, 2, 3), (3, 5, 6))
        sub = arr[b.slices()]
        assert sub.shape == b.shape


class TestStructuredGrid:
    def test_basic_properties(self, small_random_field):
        g = StructuredGrid(small_random_field)
        assert g.dims == (6, 7, 8)
        assert g.refined_dims == (11, 13, 15)
        assert g.domain_box == Box((0, 0, 0), (6, 7, 8))
        assert g.nbytes == 6 * 7 * 8 * 8

    def test_values_promoted_to_float64(self):
        g = StructuredGrid(np.zeros((3, 3, 3), dtype=np.float32))
        assert g.values.dtype == np.float64

    def test_rejects_non_3d(self):
        with pytest.raises(ValueError):
            StructuredGrid(np.zeros((4, 4)))

    def test_rejects_tiny_axis(self):
        with pytest.raises(ValueError):
            StructuredGrid(np.zeros((1, 4, 4)))

    def test_rejects_nonfinite(self):
        vals = np.zeros((3, 3, 3))
        vals[1, 1, 1] = np.nan
        with pytest.raises(ValueError):
            StructuredGrid(vals)

    def test_extract_block_shares_layer(self, small_random_field):
        g = StructuredGrid(small_random_field)
        left = g.extract_block(Box((0, 0, 0), (4, 7, 8)))
        right = g.extract_block(Box((3, 0, 0), (6, 7, 8)))
        # paper: B[i][X-1][y][z] == B[i+1][0][y][z]
        np.testing.assert_array_equal(left[-1], right[0])

    def test_extract_block_out_of_range(self, small_random_field):
        g = StructuredGrid(small_random_field)
        with pytest.raises(ValueError):
            g.extract_block(Box((0, 0, 0), (7, 7, 8)))
