"""Tests for repro.parallel.comm and runtime: the virtual MPI."""

import numpy as np
import pytest

from repro.parallel.comm import (
    Comm,
    broadcast,
    gather,
    payload_nbytes,
)
from repro.parallel.runtime import DeadlockError, VirtualMPI


class TestComm:
    def test_rank_bounds(self):
        with pytest.raises(ValueError):
            Comm(4, 4)
        c = Comm(1, 4)
        with pytest.raises(ValueError):
            c.send(9, "x")
        with pytest.raises(ValueError):
            c.recv(-1)

    def test_self_send_rejected(self):
        c = Comm(1, 4)
        with pytest.raises(ValueError):
            c.send(1, "x")


class TestPayloadSize:
    def test_numpy(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80

    def test_bytes_and_str(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes("abcd") == 4

    def test_nested(self):
        p = {"a": np.zeros(2, dtype=np.int64), "b": [b"xy", 3.0]}
        assert payload_nbytes(p) == 16 + 2 + 8

    def test_none_and_scalars(self):
        assert payload_nbytes(None) == 0
        assert payload_nbytes(7) == 8

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            payload_nbytes(object())


class TestVirtualMPI:
    def test_ring_pass(self):
        """Each rank sends its rank to the next; sum arrives intact."""

        def main(comm):
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            if comm.size == 1:
                return comm.rank
            yield comm.send(nxt, comm.rank, tag=1)
            got = yield comm.recv(prv, tag=1)
            return got

        for size in (1, 2, 5, 8):
            results = VirtualMPI(size).run(main)
            assert sorted(results) == sorted(range(size))

    def test_messages_fifo_per_channel(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(5):
                    yield comm.send(1, i, tag=2)
                return None
            got = []
            for _ in range(5):
                got.append((yield comm.recv(0, tag=2)))
            return got

        results = VirtualMPI(2).run(main)
        assert results[1] == [0, 1, 2, 3, 4]

    def test_tags_demultiplex(self):
        def main(comm):
            if comm.rank == 0:
                yield comm.send(1, "a", tag=10)
                yield comm.send(1, "b", tag=20)
                return None
            # receive in the opposite order of sending
            b = yield comm.recv(0, tag=20)
            a = yield comm.recv(0, tag=10)
            return (a, b)

        results = VirtualMPI(2).run(main)
        assert results[1] == ("a", "b")

    def test_barrier_synchronizes(self):
        order = []

        def main(comm):
            order.append(("pre", comm.rank))
            yield comm.barrier()
            order.append(("post", comm.rank))
            return None

        VirtualMPI(4).run(main)
        pres = [i for i, (p, _r) in enumerate(order) if p == "pre"]
        posts = [i for i, (p, _r) in enumerate(order) if p == "post"]
        assert max(pres) < min(posts)

    def test_gather(self):
        def main(comm):
            vals = yield from gather(comm, comm.rank * 10, root=2)
            return vals

        results = VirtualMPI(4).run(main)
        assert results[2] == [0, 10, 20, 30]
        assert results[0] is None

    def test_broadcast(self):
        def main(comm):
            value = "hello" if comm.rank == 1 else None
            out = yield from broadcast(comm, value, root=1)
            return out

        results = VirtualMPI(3).run(main)
        assert results == ["hello"] * 3

    def test_deadlock_detected(self):
        def main(comm):
            # everyone receives, nobody sends
            yield comm.recv((comm.rank + 1) % comm.size, tag=0)

        with pytest.raises(DeadlockError, match="waiting"):
            VirtualMPI(3).run(main)

    def test_undelivered_messages_flagged(self):
        def main(comm):
            if comm.rank == 0:
                yield comm.send(1, "orphan", tag=3)
            return None
            yield  # pragma: no cover - make rank 1 a generator too

        with pytest.raises(RuntimeError, match="undelivered"):
            VirtualMPI(2).run(main)

    def test_message_log_records_bytes(self):
        def main(comm):
            if comm.rank == 0:
                yield comm.send(1, np.zeros(100, dtype=np.uint8), tag=0)
                return None
            yield comm.recv(0, tag=0)
            return None

        mpi = VirtualMPI(2)
        mpi.run(main)
        assert len(mpi.message_log) == 1
        rec = mpi.message_log[0]
        assert (rec.src, rec.dest, rec.nbytes) == (0, 1, 100)

    def test_deterministic_execution(self):
        def main(comm):
            out = yield from gather(comm, comm.rank, root=0)
            res = yield from broadcast(comm, out, root=0)
            return tuple(res)

        r1 = VirtualMPI(6).run(main)
        r2 = VirtualMPI(6).run(main)
        assert r1 == r2

    def test_size_validation(self):
        with pytest.raises(ValueError):
            VirtualMPI(0)
