"""Tests for repro.core.pipeline: configuration and end-to-end runs."""

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import (
    ParallelMSComplexPipeline,
    compute_morse_smale_complex,
)
from repro.data.synthetic import gaussian_bumps_field
from repro.io.mscfile import read_msc_file
from repro.io.volume import write_volume
from repro.morse.msc import MorseSmaleComplex
from repro.morse.validate import assert_ms_complex_valid


@pytest.fixture(scope="module")
def field():
    return gaussian_bumps_field((17, 17, 17), 5, seed=4)


class TestConfig:
    def test_defaults(self):
        cfg = PipelineConfig(num_blocks=8)
        assert cfg.resolved_num_procs == 8
        assert cfg.resolve_radices() == [8]

    def test_full_schedule(self):
        cfg = PipelineConfig(num_blocks=64)
        assert cfg.resolve_radices() == [8, 8]
        cfg = PipelineConfig(num_blocks=64, max_radix=4)
        assert cfg.resolve_radices() == [4, 4, 4]

    def test_none_and_explicit(self):
        assert PipelineConfig(8, merge_radices="none").resolve_radices() == []
        assert PipelineConfig(8, merge_radices=[2, 4]).resolve_radices() == [2, 4]

    def test_single_block_full_is_empty(self):
        assert PipelineConfig(num_blocks=1).resolve_radices() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(num_blocks=0)
        with pytest.raises(ValueError):
            PipelineConfig(8, persistence_threshold=-1)
        with pytest.raises(ValueError):
            PipelineConfig(8, merge_radices="half")
        with pytest.raises(ValueError):
            PipelineConfig(8, num_procs=0)


class TestSerialEntryPoint:
    def test_returns_compacted_valid_complex(self, field):
        msc = compute_morse_smale_complex(
            field, persistence_threshold=0.05, validate=True
        )
        assert_ms_complex_valid(msc)
        assert all(g.is_leaf for g in msc.geoms)

    def test_no_simplify(self, field):
        raw = compute_morse_smale_complex(field, simplify=False)
        simp = compute_morse_smale_complex(field, persistence_threshold=0.05)
        assert raw.num_alive_nodes() >= simp.num_alive_nodes()


class TestParallelPipeline:
    def test_full_merge_single_output(self, field):
        cfg = PipelineConfig(num_blocks=8, persistence_threshold=0.05)
        res = ParallelMSComplexPipeline(cfg).run(field)
        assert res.num_output_blocks == 1
        merged = res.merged_complexes[0]
        assert_ms_complex_valid(merged)
        assert merged.euler_characteristic() == 1
        # nothing remains flagged boundary after a full merge
        assert not any(
            merged.node_boundary[n] for n in merged.alive_nodes()
        )

    def test_partial_merge_output_count(self, field):
        cfg = PipelineConfig(
            num_blocks=8, merge_radices=[2], persistence_threshold=0.05
        )
        res = ParallelMSComplexPipeline(cfg).run(field)
        assert res.num_output_blocks == 4

    def test_no_merge_keeps_blocks(self, field):
        cfg = PipelineConfig(
            num_blocks=8, merge_radices="none", persistence_threshold=0.05
        )
        res = ParallelMSComplexPipeline(cfg).run(field)
        assert res.num_output_blocks == 8
        for msc in res.merged_complexes:
            assert_ms_complex_valid(msc)

    def test_fewer_procs_than_blocks(self, field):
        cfg = PipelineConfig(
            num_blocks=8, num_procs=2, persistence_threshold=0.05
        )
        res = ParallelMSComplexPipeline(cfg).run(field)
        assert res.num_output_blocks == 1
        assert res.stats.num_procs == 2

    def test_deterministic(self, field):
        cfg = PipelineConfig(num_blocks=8, persistence_threshold=0.05)
        a = ParallelMSComplexPipeline(cfg).run(field)
        b = ParallelMSComplexPipeline(cfg).run(field)
        ma, mb = a.merged_complexes[0], b.merged_complexes[0]
        assert ma.node_counts_by_index() == mb.node_counts_by_index()
        assert sorted(ma.node_address) == sorted(mb.node_address)

    def test_volume_file_input(self, field, tmp_path):
        spec = write_volume(tmp_path / "f.raw", field, dtype="float64")
        cfg = PipelineConfig(num_blocks=8, persistence_threshold=0.05)
        from_file = ParallelMSComplexPipeline(cfg).run(volume=spec)
        in_memory = ParallelMSComplexPipeline(cfg).run(field)
        assert (
            from_file.merged_complexes[0].node_counts_by_index()
            == in_memory.merged_complexes[0].node_counts_by_index()
        )

    def test_input_validation(self, field):
        pipe = ParallelMSComplexPipeline(PipelineConfig(num_blocks=8))
        with pytest.raises(ValueError):
            pipe.run()
        with pytest.raises(ValueError):
            pipe.run(field, volume="also")

    def test_stats_populated(self, field):
        cfg = PipelineConfig(num_blocks=8, persistence_threshold=0.05)
        res = ParallelMSComplexPipeline(cfg).run(field)
        s = res.stats
        assert len(s.block_stats) == 8
        assert len(s.timelines) == 8
        assert s.total_time > 0
        assert s.read_time > 0 and s.compute_time > 0
        assert len(s.merge_round_times()) == 1
        assert s.message_bytes > 0
        assert s.output_bytes > 0
        assert s.total_cells() == sum(b.cells for b in s.block_stats)
        assert "total=" in s.describe()

    def test_result_write_and_read(self, field, tmp_path):
        cfg = PipelineConfig(num_blocks=8, persistence_threshold=0.05)
        res = ParallelMSComplexPipeline(cfg).run(field)
        path = tmp_path / "out.msc"
        res.write(path)
        blocks = read_msc_file(path)
        assert len(blocks) == 1
        msc = MorseSmaleComplex.from_payload(blocks[0])
        assert (
            msc.node_counts_by_index()
            == res.merged_complexes[0].node_counts_by_index()
        )
