"""Tests for repro.core.stats: timing semantics of the accounting."""

import numpy as np
import pytest

from repro.core.stats import (
    BlockComputeStats,
    PipelineStats,
    RankTimeline,
)
from repro.morse.msc import MorseSmaleComplex
from repro.core.result import PipelineResult


def _timeline(rank, read, compute, rounds, write):
    t = RankTimeline(rank=rank, read=read, compute=compute, write=write)
    clock = read + compute
    for r in rounds:
        clock = r  # after_round stores absolute clock values
        t.after_round.append(clock)
    t.final_clock = (t.after_round[-1] if rounds else read + compute) + write
    return t


class TestStageTimes:
    def test_max_over_ranks(self):
        s = PipelineStats(num_procs=2, num_blocks=2, radices=[2])
        s.timelines = [
            _timeline(0, read=1.0, compute=5.0, rounds=[8.0], write=0.5),
            _timeline(1, read=2.0, compute=3.0, rounds=[6.0], write=0.5),
        ]
        assert s.read_time == 2.0
        assert s.compute_time == 5.0
        # merge round time: max after-round (8.0) minus max(read+compute)
        assert s.merge_round_times() == [pytest.approx(2.0)]
        assert s.merge_time == pytest.approx(2.0)
        assert s.write_time == 0.5
        assert s.total_time == 8.5

    def test_multiple_rounds_increments(self):
        s = PipelineStats(num_procs=1, num_blocks=4, radices=[2, 2])
        t = RankTimeline(rank=0, read=0.0, compute=4.0)
        t.after_round = [7.0, 12.0]
        t.write = 1.0
        t.final_clock = 13.0
        s.timelines = [t]
        assert s.merge_round_times() == [pytest.approx(3.0),
                                         pytest.approx(5.0)]

    def test_no_rounds(self):
        s = PipelineStats(num_procs=1, num_blocks=1, radices=[])
        s.timelines = [RankTimeline(rank=0, read=1.0, compute=2.0,
                                    write=1.0)]
        s.timelines[0].final_clock = 4.0
        assert s.merge_round_times() == []
        assert s.merge_time == 0.0

    def test_empty_stats(self):
        s = PipelineStats(num_procs=0, num_blocks=0, radices=[])
        assert s.total_time == 0.0
        assert s.stage_breakdown()["merge"] == 0.0

    def test_block_totals(self):
        s = PipelineStats(num_procs=1, num_blocks=2, radices=[])
        for b in range(2):
            s.block_stats.append(
                BlockComputeStats(
                    block_id=b, rank=0, cells=100,
                    critical_counts=(1, 2, 2, 1),
                    nodes_after_simplify=6, arcs_after_simplify=9,
                    geometry_cells_traced=50, cancellations=0,
                    real_seconds=0.1, virtual_seconds=0.2,
                )
            )
        assert s.total_cells() == 200
        assert s.total_critical_points() == 12


class TestDescribe:
    """Snapshot of the run-summary text (obs.export.format_run_summary)."""

    def _stats(self):
        s = PipelineStats(num_procs=2, num_blocks=2, radices=[2],
                          workers=2, executor="process")
        s.timelines = [
            _timeline(0, read=1.0, compute=5.0, rounds=[8.0], write=0.5),
            _timeline(1, read=2.0, compute=3.0, rounds=[6.0], write=0.5),
        ]
        s.block_stats = [
            BlockComputeStats(
                block_id=b, rank=b, cells=100,
                critical_counts=(1, 2, 2, 1),
                nodes_after_simplify=6, arcs_after_simplify=9,
                geometry_cells_traced=50, cancellations=0,
                real_seconds=0.5, virtual_seconds=0.2,
                stage_seconds={"build": 0.1, "gradient": 0.2,
                               "trace": 0.1, "simplify": 0.05,
                               "pack": 0.05},
            )
            for b in range(2)
        ]
        s.output_bytes = 1234
        s.message_bytes = 567
        s.real_seconds_total = 1.25
        s.compute_wall_seconds = 0.5
        return s

    def test_snapshot(self):
        assert self._stats().describe() == (
            "procs=2 blocks=2 radices=[2]\n"
            "  virtual: read=2.000s compute=5.000s merge=2.000s "
            "write=0.500s total=8.500s\n"
            "  real: 1.250s wall; compute stage 0.500s wall / "
            "1.000s cpu (process, workers=2, speedup=2.00x)\n"
            "  output: 1234 bytes, messages: 567 bytes\n"
            "  compute stages: build=0.200s gradient=0.400s "
            "trace=0.200s simplify=0.100s pack=0.100s\n"
            "  transport: pickle, 0 dispatches, 0 bytes shipped"
        )

    def test_trace_and_metrics_lines_appear_when_recorded(self):
        from repro.obs.trace import TraceRecord

        s = self._stats()
        base = s.describe()
        assert "trace:" not in base and "metrics:" not in base
        s.trace = TraceRecord(process_names={1: "driver"})
        s.metrics = {"compute.blocks": {"kind": "counter", "value": 2.0}}
        text = s.describe()
        assert "  trace: 0 events across 1 process(es)" in text
        assert "  metrics: 1 series recorded" in text


class TestResultCombinedCounts:
    def test_shared_boundary_nodes_counted_once(self):
        a = MorseSmaleComplex((9, 9, 9))
        b = MorseSmaleComplex((9, 9, 9))
        a.add_node(4, 0, 1.0, boundary=True)   # shared address
        a.add_node(1, 1, 2.0)
        b.add_node(4, 0, 1.0, boundary=True)   # same cell, other block
        b.add_node(7, 1, 3.0)
        from repro.parallel.decomposition import decompose
        from repro.parallel.radixk import MergeSchedule

        d = decompose((5, 5, 5), 2, splits=(2, 1, 1))
        res = PipelineResult(
            output_blocks={0: a, 1: b},
            decomposition=d,
            schedule=MergeSchedule(d, []),
            stats=PipelineStats(num_procs=2, num_blocks=2, radices=[]),
        )
        assert res.combined_node_counts() == (1, 2, 0, 0)
        assert res.num_output_blocks == 2
        assert res.merged_complexes == [a, b]
