"""Property-based tests (hypothesis) on the core invariants.

These encode the discrete-Morse and parallel-consistency facts of
DESIGN.md §5 over randomized small inputs:

- every gradient field is complete, mutual, acyclic, and Euler-balanced,
- shared-face gradients agree between neighboring blocks for *any* field
  and any (feasible) blocking,
- simplification preserves the Euler characteristic and removes exactly
  two nodes per cancellation,
- payload serialization round-trips,
- radix schedules always partition the block grid.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.io.mscfile import deserialize_payload, serialize_payload
from repro.mesh.cubical import CubicalComplex
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.simplify import simplify_ms_complex
from repro.morse.tracing import extract_ms_complex
from repro.morse.validate import assert_acyclic, assert_ms_complex_valid
from repro.parallel.decomposition import decompose
from repro.parallel.radixk import MergeSchedule, full_merge_radices


@st.composite
def small_fields(draw, max_side=6):
    """Random small scalar fields, sometimes with heavy value ties."""
    nx = draw(st.integers(2, max_side))
    ny = draw(st.integers(2, max_side))
    nz = draw(st.integers(2, max_side))
    seed = draw(st.integers(0, 2**31 - 1))
    quantize = draw(st.sampled_from([0, 2, 8]))
    rng = np.random.default_rng(seed)
    v = rng.random((nx, ny, nz))
    if quantize:
        v = np.round(v * quantize) / quantize  # force plateaus/ties
    return v


@settings(max_examples=25, deadline=None)
@given(small_fields())
def test_gradient_field_invariants(v):
    field = compute_discrete_gradient(CubicalComplex(v))
    field.assert_complete()
    assert_acyclic(field)
    assert field.morse_euler_characteristic() == 1


@settings(max_examples=20, deadline=None)
@given(small_fields())
def test_ms_complex_extraction_invariants(v):
    field = compute_discrete_gradient(CubicalComplex(v))
    msc = extract_ms_complex(field)
    assert_ms_complex_valid(msc)
    assert msc.node_counts_by_index() == field.critical_counts()


@settings(max_examples=20, deadline=None)
@given(small_fields(), st.floats(0.0, 1.0))
def test_simplification_invariants(v, threshold):
    field = compute_discrete_gradient(CubicalComplex(v))
    msc = extract_ms_complex(field)
    nodes0 = msc.num_alive_nodes()
    chi0 = msc.euler_characteristic()
    cancels = simplify_ms_complex(msc, threshold, respect_boundary=False)
    assert msc.num_alive_nodes() == nodes0 - 2 * len(cancels)
    assert msc.euler_characteristic() == chi0
    assert all(c.persistence <= threshold for c in cancels)
    msc.compact()
    assert_ms_complex_valid(msc)


@st.composite
def fields_with_splits(draw):
    v = draw(small_fields(max_side=7))
    feasible = []
    for sx in (1, 2):
        for sy in (1, 2):
            for sz in (1, 2):
                if (
                    v.shape[0] - 1 >= sx
                    and v.shape[1] - 1 >= sy
                    and v.shape[2] - 1 >= sz
                    and sx * sy * sz > 1
                ):
                    feasible.append((sx, sy, sz))
    if not feasible:
        feasible = [(1, 1, 1)]
    splits = draw(st.sampled_from(feasible))
    return v, splits


@settings(max_examples=15, deadline=None)
@given(fields_with_splits())
def test_shared_boundary_gradients_agree(data):
    """DESIGN.md §5: boundary consistency for arbitrary fields/blockings."""
    v, splits = data
    if splits == (1, 1, 1):
        return
    decomp = decompose(v.shape, int(np.prod(splits)), splits=splits)
    gdims = decomp.global_refined_dims
    pair_by_addr: dict[int, int] = {}
    for b in range(decomp.num_blocks):
        box = decomp.block_box(decomp.block_coords(b))
        cx = CubicalComplex(
            v[box.slices()],
            refined_origin=box.refined_origin,
            global_refined_dims=gdims,
            cut_planes=decomp.cut_planes,
        )
        g = compute_discrete_gradient(cx)
        for p in np.flatnonzero(cx.valid & (cx.boundary_sig > 0)).tolist():
            addr = int(cx.global_address[p])
            code = int(g.pairing[p])
            if addr in pair_by_addr:
                assert pair_by_addr[addr] == code
            else:
                pair_by_addr[addr] = code
    assert pair_by_addr, "expected shared boundary cells"


@settings(max_examples=20, deadline=None)
@given(small_fields())
def test_payload_roundtrip(v):
    field = compute_discrete_gradient(CubicalComplex(v))
    msc = extract_ms_complex(field)
    msc.compact()
    payload = msc.to_payload()
    back = deserialize_payload(serialize_payload(payload))
    for key, arr in payload.items():
        np.testing.assert_array_equal(back[key], arr)


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 15), st.sampled_from([2, 4, 8]))
def test_full_merge_radices_always_reach_one(log2_blocks, max_radix):
    n = 2**log2_blocks
    radices = full_merge_radices(n, max_radix)
    assert int(np.prod(radices)) == n if radices else n == 1
    assert all(r in (2, 4, 8) for r in radices)
    # guideline: any leftover smaller radix is in the first round
    if len(radices) > 1:
        assert all(r == max_radix for r in radices[1:])


@settings(max_examples=30, deadline=None)
@given(
    st.sampled_from([(2, 2, 2), (4, 2, 1), (4, 4, 2), (4, 4, 4), (8, 4, 4)]),
    st.data(),
)
def test_merge_schedule_partitions(splits, data):
    nblocks = int(np.prod(splits))
    dims = tuple(8 * s + 1 for s in splits)
    decomp = decompose(dims, nblocks, splits=splits)
    radices = data.draw(
        st.lists(st.sampled_from([2, 4, 8]), min_size=0, max_size=3)
    )
    try:
        sched = MergeSchedule(decomp, radices)
    except ValueError:
        return  # infeasible radix sequence for this grid: fine
    remaining = nblocks
    for r, rnd in enumerate(sched.rounds):
        groups = sched.groups(r)
        seen = set()
        for root, members in groups:
            assert len(members) == rnd.radix - 1
            for m in [root] + members:
                lid = decomp.linear_id(m)
                assert lid not in seen
                seen.add(lid)
        assert len(seen) == remaining
        remaining //= rnd.radix
    assert sched.num_output_blocks == remaining
