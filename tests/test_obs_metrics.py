"""Tests for repro.obs.metrics: metric types and worker aggregation."""

import json

import numpy as np
import pytest

import repro
from repro.obs.export import metrics_to_json, write_metrics_json
from repro.obs.metrics import (
    BYTES_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SECONDS_BUCKETS,
)


class TestMetricTypes:
    def test_counter_sums(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_gauge_merges_by_max(self):
        g = Gauge("g")
        g.set(3.0)
        g.merge({"kind": "gauge", "value": 7.0})
        g.merge({"kind": "gauge", "value": 1.0})
        assert g.value == 7.0

    def test_histogram_buckets_and_mean(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]  # <=1, <=10, overflow
        assert h.count == 3
        assert h.mean == pytest.approx(55.5 / 3)

    def test_histogram_merge_requires_same_buckets(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        other = Histogram("h", buckets=(1.0, 3.0))
        with pytest.raises(ValueError):
            h.merge(other.snapshot())

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert "a" in r and "b" not in r

    def test_kind_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError):
            r.gauge("x")

    def test_merge_snapshot_aggregates_workers(self):
        """The driver-side fold: sums, maxes, and element-wise adds."""
        workers = []
        for seconds in ((0.002, 0.3), (0.04,)):
            w = MetricsRegistry()
            w.counter("blocks").inc(len(seconds))
            w.gauge("peak").set(max(seconds))
            h = w.histogram("seconds", buckets=SECONDS_BUCKETS)
            for s in seconds:
                h.observe(s)
            workers.append(w.snapshot())

        driver = MetricsRegistry()
        for snap in workers:
            driver.merge_snapshot(snap)
        assert driver["blocks"].value == 3
        assert driver["peak"].value == pytest.approx(0.3)
        assert driver["seconds"].count == 3
        assert driver["seconds"].sum == pytest.approx(0.342)

    def test_merge_order_independent(self):
        snaps = []
        for inc in (1, 2, 3):
            w = MetricsRegistry()
            w.counter("n").inc(inc)
            w.histogram("b", buckets=BYTES_BUCKETS).observe(inc * 100)
            snaps.append(w.snapshot())
        fwd, rev = MetricsRegistry(), MetricsRegistry()
        for s in snaps:
            fwd.merge_snapshot(s)
        for s in reversed(snaps):
            rev.merge_snapshot(s)
        assert fwd.snapshot() == rev.snapshot()

    def test_merge_none_is_noop(self):
        r = MetricsRegistry()
        r.merge_snapshot(None)
        r.merge_snapshot({})
        assert r.names() == []

    def test_describe_lists_metrics(self):
        r = MetricsRegistry()
        r.counter("z").inc(2)
        r.histogram("a").observe(0.5)
        text = r.describe()
        assert text.index("a:") < text.index("z:")  # sorted
        assert "count=1" in text


class TestPipelineMetrics:
    def _result(self, **kw):
        field = np.random.default_rng(7).random((12, 12, 12))
        opts = repro.ExecutionOptions(retry_backoff=0.0, **kw)
        return repro.compute(field, persistence=0.05, ranks=8,
                             metrics=True, options=opts)

    def test_metrics_off_by_default(self):
        field = np.random.default_rng(7).random((12, 12, 12))
        result = repro.compute(field, persistence=0.05, ranks=2)
        assert result.stats.metrics is None

    def test_serial_run_records_expected_series(self):
        snap = self._result().stats.metrics
        for name in (
            "compute.blocks", "compute.cells", "compute.block_seconds",
            "merge.glue_nodes", "merge.glue_arcs", "merge.seconds",
            "transport.dispatches", "io.output_bytes",
            "pipeline.workers",
        ):
            assert name in snap, f"missing metric {name}"
        assert snap["compute.blocks"]["value"] == 8
        assert snap["compute.block_seconds"]["count"] == 8
        assert snap["compute.cells"]["value"] == (
            sum(b.cells for b in self._result().stats.block_stats)
        )

    def test_json_export_round_trips(self, tmp_path):
        snap = self._result().stats.metrics
        path = tmp_path / "metrics.json"
        nbytes = write_metrics_json(path, snap)
        assert nbytes == path.stat().st_size > 0
        assert json.loads(path.read_text()) == metrics_to_json(snap)

    @pytest.mark.slow
    def test_pooled_run_aggregates_across_workers(self):
        serial = self._result().stats.metrics
        pooled = self._result(workers=2, transport="shm").stats.metrics
        # work counters are scheduling-independent
        for name in ("compute.blocks", "compute.cells",
                     "compute.cancellations"):
            assert pooled[name]["value"] == serial[name]["value"]
        assert pooled["compute.block_seconds"]["count"] == 8
        assert pooled["pipeline.workers"]["value"] == 2
        assert pooled["shm.volume_bytes"]["value"] > 0
