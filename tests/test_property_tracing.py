"""Property-based tests of the two V-path tracing backends.

Hypothesis drives random small fields (and path caps) through both
tracing kernels — the per-path DFS and the vectorized pointer-jumping
backend — and asserts bit-identity of the resulting MS complexes:
same nodes, same arcs in the same enumeration order, same geometry,
byte-for-byte equal payloads.  The backend knob must be pure
scheduling; any divergence here is a correctness bug, not a tolerance
question.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh.cubical import CubicalComplex
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.tracing import (
    AUTO_POINTER_MIN_CELLS,
    KERNEL_BACKENDS,
    extract_ms_complex,
    resolve_kernel_backend,
    trace_down,
)


def _extract(field, backend, cap=None):
    """Fresh gradient field each time so per-field caches cannot leak
    state between the two backends under comparison."""
    grad = compute_discrete_gradient(CubicalComplex(field))
    msc = extract_ms_complex(grad, max_paths_per_node=cap,
                            kernel_backend=backend)
    return {k: np.asarray(v) for k, v in msc.to_payload().items()}


def _assert_payloads_identical(a, b):
    assert set(a) == set(b)
    for key in sorted(a):
        np.testing.assert_array_equal(
            a[key], b[key], err_msg=f"backend divergence in {key!r}"
        )


@st.composite
def tracing_cases(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    nx = draw(st.integers(4, 9))
    ny = draw(st.integers(4, 9))
    nz = draw(st.integers(4, 9))
    cap = draw(st.sampled_from([None, 1, 2, 5]))
    field = np.random.default_rng(seed).random((nx, ny, nz))
    return field, cap


@settings(max_examples=12, deadline=None)
@given(tracing_cases())
def test_pointer_backend_bit_identical_to_dfs(case):
    field, cap = case
    dfs = _extract(field, "dfs", cap)
    pointer = _extract(field, "pointer", cap)
    _assert_payloads_identical(dfs, pointer)


def test_backends_agree_on_monotone_field():
    """A pure ramp has one critical cell and no arcs — the degenerate
    empty-frontier path of the pointer backend."""
    X, Y, Z = np.meshgrid(
        np.arange(5.0), np.arange(6.0), np.arange(7.0), indexing="ij"
    )
    _assert_payloads_identical(
        _extract(X + Y + Z, "dfs"), _extract(X + Y + Z, "pointer")
    )


def test_backends_agree_per_node(small_random_field):
    """trace_down itself (paths, terminals, per-node order) agrees."""
    grad = compute_discrete_gradient(CubicalComplex(small_random_field))
    for crit in grad.critical_cells():
        assert trace_down(grad, crit, kernel_backend="pointer") == \
            trace_down(grad, crit, kernel_backend="dfs")


class TestBackendResolution:
    def test_explicit_backends_pass_through(self, small_random_field):
        grad = compute_discrete_gradient(
            CubicalComplex(small_random_field)
        )
        assert resolve_kernel_backend("dfs", grad) == "dfs"
        assert resolve_kernel_backend("pointer", grad) == "pointer"

    def test_auto_picks_by_cell_count(self, small_random_field):
        grad = compute_discrete_gradient(
            CubicalComplex(small_random_field)
        )
        expected = (
            "pointer"
            if grad.complex.num_cells >= AUTO_POINTER_MIN_CELLS
            else "dfs"
        )
        assert resolve_kernel_backend("auto", grad) == expected

    def test_unknown_backend_is_a_readable_error(self, small_random_field):
        grad = compute_discrete_gradient(
            CubicalComplex(small_random_field)
        )
        with pytest.raises(ValueError, match="choose one of"):
            resolve_kernel_backend("bfs", grad)

    def test_backend_names_are_stable(self):
        assert KERNEL_BACKENDS == ("auto", "dfs", "pointer")
