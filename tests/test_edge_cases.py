"""Edge cases across the stack: minimal blocks, degenerate data, tiny
domains, extreme thresholds."""

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import (
    ParallelMSComplexPipeline,
    compute_morse_smale_complex,
)
from repro.mesh.cubical import CubicalComplex
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.tracing import extract_ms_complex
from repro.morse.validate import assert_acyclic, assert_ms_complex_valid


class TestTinyDomains:
    def test_smallest_possible_grid(self):
        msc = compute_morse_smale_complex(np.zeros((2, 2, 2)))
        assert msc.node_counts_by_index() == (1, 0, 0, 0)

    def test_two_cell_slab(self, rng):
        v = rng.random((3, 2, 2))
        msc = compute_morse_smale_complex(v, validate=True)
        assert msc.euler_characteristic() == 1

    def test_smallest_parallel_run(self, rng):
        v = rng.random((3, 2, 2))
        cfg = PipelineConfig(num_blocks=2, splits=(2, 1, 1))
        res = ParallelMSComplexPipeline(cfg).run(v)
        assert res.merged_complexes[0].euler_characteristic() == 1

    def test_minimal_blocks_every_axis(self, rng):
        v = rng.random((5, 5, 5))
        cfg = PipelineConfig(num_blocks=8, splits=(2, 2, 2))
        res = ParallelMSComplexPipeline(cfg).run(v)
        assert res.merged_complexes[0].euler_characteristic() == 1


class TestDegenerateData:
    def test_all_equal_values(self):
        msc = compute_morse_smale_complex(np.full((6, 6, 6), 3.14))
        assert msc.node_counts_by_index() == (1, 0, 0, 0)

    def test_all_equal_parallel(self):
        cfg = PipelineConfig(num_blocks=8, persistence_threshold=0.0)
        res = ParallelMSComplexPipeline(cfg).run(np.full((7, 7, 7), 1.0))
        merged = res.merged_complexes[0]
        # SoS resolves the global plateau to a single minimum
        assert merged.node_counts_by_index() == (1, 0, 0, 0)

    def test_two_level_checkerboard(self):
        i, j, k = np.indices((6, 6, 6))
        v = ((i + j + k) % 2).astype(float)
        f = compute_discrete_gradient(CubicalComplex(v))
        assert_acyclic(f)
        assert f.morse_euler_characteristic() == 1

    def test_axis_monotone_variants(self):
        for axis in range(3):
            shape = [4, 4, 4]
            idx = np.indices(shape)[axis].astype(float)
            msc = compute_morse_smale_complex(idx)
            assert msc.node_counts_by_index() == (1, 0, 0, 0)

    def test_single_spike(self):
        v = np.zeros((7, 7, 7))
        v[3, 3, 3] = 1.0
        msc = compute_morse_smale_complex(v, simplify=False)
        counts = msc.node_counts_by_index()
        assert counts[3] >= 1  # the spike voxel neighborhood has a max
        assert msc.euler_characteristic() == 1

    def test_negative_values(self, rng):
        v = rng.random((6, 6, 6)) - 10.0
        msc = compute_morse_smale_complex(v, validate=True)
        assert msc.euler_characteristic() == 1


class TestThresholdExtremes:
    def test_infinite_threshold_serial(self, rng):
        v = rng.random((7, 7, 7))
        msc = compute_morse_smale_complex(v, persistence_threshold=np.inf)
        assert msc.euler_characteristic() == 1
        # only strangled multiplicity->2 pairs can survive beside the min
        assert msc.node_counts_by_index()[0] == 1

    def test_huge_threshold_parallel(self, rng):
        v = rng.random((7, 7, 7))
        cfg = PipelineConfig(num_blocks=8, persistence_threshold=1e9)
        res = ParallelMSComplexPipeline(cfg).run(v)
        merged = res.merged_complexes[0]
        assert merged.euler_characteristic() == 1

    def test_zero_threshold_semantics(self, rng):
        """Threshold 0 cancels exactly the zero-persistence pairs.

        Even with distinct vertex values, saddle-saddle and saddle-max
        pairs can share their maximum vertex and hence have identical
        cell values (persistence 0).  Minimum-1-saddle pairs cannot: an
        edge's value is the max of its two vertices, strictly above the
        minimum's value.  So minima never cancel at threshold 0.
        """
        v = rng.random((6, 6, 6))
        raw = compute_morse_smale_complex(v, simplify=False)
        at_zero = compute_morse_smale_complex(v, persistence_threshold=0.0)
        assert all(c.persistence == 0.0 for c in at_zero.hierarchy)
        assert (
            at_zero.node_counts_by_index()[0]
            == raw.node_counts_by_index()[0]
        )
        assert at_zero.euler_characteristic() == 1


class TestBlockCyclicStress:
    def test_many_blocks_few_procs(self, rng):
        v = rng.random((9, 9, 9))
        cfg = PipelineConfig(
            num_blocks=8, num_procs=3, persistence_threshold=0.1
        )
        res = ParallelMSComplexPipeline(cfg).run(v)
        assert res.num_output_blocks == 1
        assert_ms_complex_valid(res.merged_complexes[0])
        ranks = {b.rank for b in res.stats.block_stats}
        assert ranks == {0, 1, 2}

    def test_single_proc_many_blocks(self, rng):
        v = rng.random((9, 9, 9))
        cfg = PipelineConfig(
            num_blocks=8, num_procs=1, persistence_threshold=0.1
        )
        res = ParallelMSComplexPipeline(cfg).run(v)
        assert res.num_output_blocks == 1
        assert res.stats.message_bytes == 0  # everything is local
