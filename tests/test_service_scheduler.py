"""Scheduler + client lifecycle (repro.service.scheduler / .client).

The acceptance contracts of the service tentpole:

- a cache-hit submit answers with an artifact **bit-identical** to what
  the cold compute wrote (pinned against a direct pipeline golden);
- N identical concurrent submissions run the pipeline **exactly once**
  (call-spy over the pipeline entry point);
- queued jobs cancel, per-job timeouts fail with a readable error, and
  a crashed job (chaos) leaves the scheduler serving — each failure is
  isolated to its job.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

import repro.core.pipeline as pipeline_mod
from repro.core.config import PipelineConfig
from repro.core.options import ExecutionOptions
from repro.core.pipeline import ParallelMSComplexPipeline
from repro.io.volume import VolumeSpec, write_volume
from repro.parallel.faults import FaultPlan
from repro.service import ServiceClient


@pytest.fixture
def field(rng) -> np.ndarray:
    return rng.random((8, 8, 8))


@pytest.fixture
def volume(tmp_path, field) -> VolumeSpec:
    return write_volume(tmp_path / "field.raw", field, dtype="float64")


@pytest.fixture
def client(tmp_path):
    with ServiceClient(tmp_path / "cache", max_jobs=1) as svc:
        yield svc


class _PipelineSpy:
    """Counts pipeline executions; optionally holds them on an event."""

    def __init__(self, monkeypatch, gate: threading.Event | None = None):
        self.calls = 0
        self.gate = gate
        original = pipeline_mod.ParallelMSComplexPipeline._run
        spy = self

        def counting_run(pipeline_self, *args, **kwargs):
            spy.calls += 1
            if spy.gate is not None:
                assert spy.gate.wait(timeout=60)
            return original(pipeline_self, *args, **kwargs)

        monkeypatch.setattr(
            pipeline_mod.ParallelMSComplexPipeline, "_run", counting_run
        )


class TestLifecycle:
    def test_cold_submit_computes_and_stores(self, client, volume):
        job = client.submit(volume, persistence=0.05, ranks=2, wait=True)
        assert job.state == "done" and job.source == "cold"
        assert job.record is not None
        assert job.record.node_counts == tuple(
            int(c) for c in job.record.node_counts
        )
        assert client.artifact_path(job.key) is not None
        assert client.status(job.job_id).done

    def test_status_of_unknown_job_raises(self, client):
        with pytest.raises(KeyError):
            client.status("job-999999")

    def test_ndarray_submits_stage_once_and_hit_cache(self, client, field):
        first = client.submit(field, persistence=0.05, wait=True)
        again = client.submit(field.copy(), persistence=0.05, wait=True)
        assert first.source == "cold" and again.source == "cache"
        assert again.record == first.record
        staged = list((client.cache_dir / "volumes").glob("*.raw"))
        assert len(staged) == 1

    def test_close_is_idempotent(self, tmp_path, volume):
        svc = ServiceClient(tmp_path / "c2", max_jobs=1)
        svc.submit(volume, wait=True)
        svc.close()
        svc.close()


class TestCacheHitBitIdentity:
    def test_cached_artifact_matches_direct_pipeline_golden(
        self, client, tmp_path, field, volume
    ):
        """Acceptance: warm answers are byte-for-byte the cold compute."""
        cold = client.submit(
            volume, persistence=0.05, ranks=2, hierarchy=True, wait=True
        )
        assert cold.source == "cold"

        # the golden: same request through the pipeline directly, with
        # a *different* execution spelling (results are scheduling-
        # independent, so the bytes must still match)
        cfg = PipelineConfig(
            num_blocks=2, num_procs=2, persistence_threshold=0.05,
            options=ExecutionOptions(hierarchy=True, transport="pickle"),
        )
        golden = tmp_path / "golden.msc"
        ParallelMSComplexPipeline(cfg).run(volume=volume).write(golden)

        artifact = client.artifact_path(cold.key)
        assert artifact.read_bytes() == golden.read_bytes()

        warm = client.submit(
            volume, persistence=0.05, ranks=2, hierarchy=True, wait=True
        )
        assert warm.source == "cache"
        assert warm.record == cold.record
        assert client.artifact_path(warm.key).read_bytes() == \
            golden.read_bytes()

    def test_cache_hits_across_scheduling_spellings(self, client, volume):
        cold = client.submit(
            volume, persistence=0.05, ranks=2, wait=True,
            options=ExecutionOptions(transport="pickle"),
        )
        respelled = client.submit(
            volume, persistence=0.05, ranks=2,
            options=ExecutionOptions(transport="mmap", workers=1),
        )
        assert respelled.source == "cache"
        assert respelled.key == cold.key

    def test_warm_restart_serves_from_disk(self, tmp_path, volume):
        with ServiceClient(tmp_path / "cache", max_jobs=1) as svc:
            cold = svc.submit(volume, persistence=0.05, wait=True)
            assert cold.source == "cold"
        with ServiceClient(tmp_path / "cache", max_jobs=1) as svc:
            warm = svc.submit(volume, persistence=0.05)
            assert warm.source == "cache"
            assert warm.record == cold.record


class TestCoalescing:
    def test_identical_concurrent_submits_run_once(
        self, client, volume, monkeypatch
    ):
        """Acceptance: N identical in-flight submissions, one compute."""
        gate = threading.Event()
        spy = _PipelineSpy(monkeypatch, gate)
        try:
            jobs = [
                client.submit(volume, persistence=0.05, ranks=2)
                for _ in range(6)
            ]
        finally:
            gate.set()
        done = client.wait(jobs[0].job_id)
        assert spy.calls == 1
        assert len({j.job_id for j in jobs}) == 1
        assert done.coalesced_submits == 5
        assert done.state == "done"
        snap = client.metrics.snapshot()
        assert snap["service.coalesced"]["value"] == 5
        assert snap["service.jobs.done"]["value"] == 1

    def test_distinct_requests_do_not_coalesce(
        self, client, volume, monkeypatch
    ):
        gate = threading.Event()
        spy = _PipelineSpy(monkeypatch, gate)
        try:
            a = client.submit(volume, persistence=0.05)
            b = client.submit(volume, persistence=0.1)
        finally:
            gate.set()
        client.wait(a.job_id)
        client.wait(b.job_id)
        assert a.job_id != b.job_id and a.key != b.key
        assert spy.calls == 2


class TestFailureModes:
    def test_cancel_queued_job(self, client, volume, monkeypatch):
        gate = threading.Event()
        _PipelineSpy(monkeypatch, gate)
        try:
            running = client.submit(volume, persistence=0.05)
            queued = client.submit(volume, persistence=0.1)
            # max_jobs=1: the second job must still be waiting its turn
            assert client.cancel(queued.job_id) is True
            cancelled = client.status(queued.job_id)
            assert cancelled.state == "cancelled"
            assert "cancelled" in cancelled.error
            with pytest.raises(RuntimeError, match="cancelled"):
                client.result(queued.job_id, wait=False)
        finally:
            gate.set()
        assert client.wait(running.job_id).state == "done"

    def test_cancel_refuses_finished_job(self, client, volume):
        job = client.submit(volume, persistence=0.05, wait=True)
        assert client.cancel(job.job_id) is False

    def test_per_job_timeout_fails_readably(
        self, client, volume, monkeypatch
    ):
        gate = threading.Event()
        _PipelineSpy(monkeypatch, gate)
        try:
            job = client.submit(volume, persistence=0.05, timeout=0.2)
            final = client.wait(job.job_id, timeout=30)
            assert final.state == "failed"
            assert "timed out after 0.2s" in final.error
        finally:
            gate.set()
        # the slot frees up and the scheduler keeps serving
        ok = client.submit(volume, persistence=0.1, wait=True)
        assert ok.state == "done"

    def test_wait_timeout_raises_builtin_timeout(
        self, client, volume, monkeypatch
    ):
        gate = threading.Event()
        _PipelineSpy(monkeypatch, gate)
        try:
            job = client.submit(volume, persistence=0.05)
            with pytest.raises(TimeoutError, match=job.job_id):
                client.wait(job.job_id, timeout=0.1)
        finally:
            gate.set()
        client.wait(job.job_id)


@pytest.mark.chaos
class TestChaos:
    def test_worker_crash_fails_job_and_service_survives(
        self, client, volume
    ):
        """A crashed compute is one failed job, not a dead service."""
        crashing = client.submit(
            volume, persistence=0.05, ranks=2,
            options=ExecutionOptions(
                degrade_on_failure=False, max_retries=1,
                retry_backoff=0.0,
            ),
            faults=FaultPlan.crash_on([0], attempts=(0, 1, 2, 3)),
            wait=True,
        )
        assert crashing.state == "failed"
        assert crashing.error  # readable, non-empty detail
        with pytest.raises(RuntimeError, match=crashing.job_id):
            client.result(crashing.job_id, wait=False)

        # the scheduler keeps serving: same volume, clean request
        healthy = client.submit(
            volume, persistence=0.05, ranks=2, wait=True
        )
        assert healthy.state == "done"
        snap = client.metrics.snapshot()
        assert snap["service.jobs.failed"]["value"] == 1
        assert snap["service.jobs.done"]["value"] == 1

    def test_crash_discards_the_poisoned_session(self, client, volume):
        client.submit(
            volume, persistence=0.05,
            options=ExecutionOptions(
                degrade_on_failure=False, max_retries=0,
                retry_backoff=0.0,
            ),
            faults=FaultPlan.crash_on([0], attempts=(0, 1)),
            wait=True,
        )
        snap = client.metrics.snapshot()
        assert snap.get("service.sessions.discarded", {}).get("value", 0) \
            >= 1


class TestQueryEndpoint:
    def test_query_answers_from_cached_hierarchy(self, client, volume):
        job = client.submit(
            volume, persistence=0.0, ranks=2, hierarchy=True, wait=True
        )
        sweep = [
            client.query(key=job.key, persistence=p)
            for p in (0.01, 0.1, 0.5)
        ]
        for answer in sweep:
            assert answer["key"] == job.key
            assert sum(answer["node_counts_by_index"]) > 0
        # higher thresholds can only shrink the complex
        totals = [sum(a["node_counts_by_index"]) for a in sweep]
        assert totals == sorted(totals, reverse=True)

    def test_query_without_hierarchy_is_readable_error(
        self, client, volume
    ):
        job = client.submit(volume, persistence=0.05, wait=True)
        with pytest.raises(ValueError, match="hierarch"):
            client.query(key=job.key, persistence=0.1)

    def test_query_unknown_key_raises_keyerror(self, client):
        with pytest.raises(KeyError):
            client.query(key="no-such-key", persistence=0.1)


class TestStats:
    def test_hit_rate_and_counters(self, client, volume):
        client.submit(volume, persistence=0.05, wait=True)
        client.submit(volume, persistence=0.05, wait=True)
        stats = client.stats()
        assert stats["cache_hit_rate"] == pytest.approx(0.5)
        assert stats["jobs_tracked"] == 2
        snap = stats["metrics"]
        assert snap["service.cache.hits"]["value"] == 1
        assert snap["service.cache.misses"]["value"] == 1
        assert "service.endpoint.submit.seconds" in snap
