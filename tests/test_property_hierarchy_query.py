"""Property tests: persisted-hierarchy queries ≡ fresh simplification.

The headline guarantee of the multiscale query engine: for any field and
any persistence threshold ``p``, ``query(path, persistence=p)`` against
the ``.msc`` v2 hierarchy footer yields node/arc sets identical to a
fresh ``simplify_ms_complex`` run at ``p`` on the stored (unsimplified)
complex — and answering the query never invokes the simplifier at all.

Why equality holds bit-exactly and not just approximately: the capture
sweep and a bounded fresh run pop the same persistence heap from the
same base state, so the fresh run's cancellation sequence is exactly the
longest prefix of the sweep's whose persistences stay ``<= p`` — the
prefix ``level_of_persistence`` locates by bisection.
"""

from collections import Counter

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro
from repro.analysis.query import load_hierarchy, query
from repro.io.mscfile import read_msc_file
from repro.morse.msc import MorseSmaleComplex
from repro.morse.simplify import simplify_ms_complex

GOLDEN_HIER = __file__.rsplit("/", 1)[0] + "/data/golden_bumps8_hier.msc"


def _write_unsimplified_with_hierarchy(field, path):
    """Persist a block untouched by simplification, hierarchy captured."""
    cfg = repro.PipelineConfig(
        num_blocks=1,
        persistence_threshold=0.0,
        simplify_at_zero_persistence=False,
        hierarchy=True,
    )
    result = repro.ParallelMSComplexPipeline(cfg).run(field)
    result.write(path)
    return result


def _fresh_sets(payload, threshold):
    """Node/arc (multi)sets of a fresh simplification of a stored block."""
    msc = MorseSmaleComplex.from_payload(payload)
    simplify_ms_complex(msc, threshold, respect_boundary=True)
    nodes = sorted(
        (int(msc.node_address[n]), int(msc.node_index[n]))
        for n in msc.alive_nodes()
    )
    arcs = sorted(
        (
            int(msc.node_address[msc.arc_upper[a]]),
            int(msc.node_address[msc.arc_lower[a]]),
        )
        for a in msc.alive_arcs()
    )
    return nodes, arcs


def _query_sets(view):
    nodes = sorted((int(a), int(i)) for a, i, _v in view.nodes)
    arcs = sorted((int(u), int(l)) for u, l in view.arcs)
    return nodes, arcs


def _assert_equivalent(path, thresholds):
    blocks = read_msc_file(path)
    hierarchies = load_hierarchy(path)
    assert set(hierarchies) == set(blocks)
    for p in thresholds:
        answer = query(hierarchies, persistence=p)
        for bid, payload in blocks.items():
            fresh_nodes, fresh_arcs = _fresh_sets(payload, p)
            got_nodes, got_arcs = _query_sets(answer.views[bid])
            assert got_nodes == fresh_nodes, (bid, p)
            assert got_arcs == fresh_arcs, (bid, p)


@st.composite
def query_cases(draw):
    seed = draw(st.integers(0, 2**20))
    dims = tuple(draw(st.integers(5, 7)) for _ in range(3))
    thresholds = draw(
        st.lists(
            st.floats(0.0, 1.5, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=3,
        )
    )
    return seed, dims, thresholds


class TestQueryEquivalence:
    # the tmp_path file is overwritten whole every example, so fixture
    # reuse across examples is safe
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(query_cases())
    def test_query_matches_fresh_simplification(self, tmp_path, case):
        seed, dims, thresholds = case
        field = np.random.default_rng(seed).random(dims)
        path = tmp_path / "case.msc"
        _write_unsimplified_with_hierarchy(field, path)
        _assert_equivalent(path, thresholds)

    def test_exact_cancellation_persistences_inclusive(self, tmp_path):
        """p == a recorded persistence applies that cancellation (<=)."""
        field = np.random.default_rng(11).random((7, 7, 7))
        _write_unsimplified_with_hierarchy(field, tmp_path / "x.msc")
        hierarchies = load_hierarchy(tmp_path / "x.msc")
        pers = hierarchies[0].persistences
        assert pers
        picks = sorted({pers[0], pers[len(pers) // 2], pers[-1]})
        _assert_equivalent(tmp_path / "x.msc", picks)

    def test_multirank_presimplified_base(self, tmp_path):
        """Equivalence also holds for a merged, pre-simplified output:
        the stored block is the query's level 0, whatever produced it."""
        field = np.random.default_rng(5).random((9, 9, 9))
        res = repro.compute(
            field, persistence=0.1, ranks=8,
            options=repro.ExecutionOptions(retry_backoff=0.0,
                                           hierarchy=True),
        )
        path = tmp_path / "merged.msc"
        res.write(path)
        _assert_equivalent(path, [0.0, 0.05, 0.3, 2.0])

    def test_arc_multiplicities_preserved(self, tmp_path):
        """Parallel arcs (same endpoint pair) must match as multisets."""
        field = np.random.default_rng(23).random((7, 7, 7))
        _write_unsimplified_with_hierarchy(field, tmp_path / "m.msc")
        blocks = read_msc_file(tmp_path / "m.msc")
        hierarchies = load_hierarchy(tmp_path / "m.msc")
        for p in (0.02, 0.2):
            _nodes, fresh_arcs = _fresh_sets(blocks[0], p)
            multi = Counter(fresh_arcs)
            view = query(hierarchies, persistence=p).views[0]
            assert Counter((int(u), int(l)) for u, l in view.arcs) == multi


class TestNoResimplification:
    """Queries answer out of the persisted index — the simplifier is
    never called, even on a depth-100+ hierarchy (acceptance criterion,
    asserted with a call spy on ``simplify_ms_complex``)."""

    def test_golden_depth_exceeds_100(self):
        hierarchies = load_hierarchy(GOLDEN_HIER)
        assert max(h.num_levels for h in hierarchies.values()) >= 100

    def test_queries_never_invoke_simplifier(self, monkeypatch):
        hierarchies = load_hierarchy(GOLDEN_HIER)
        calls = []

        def spy(*args, **kwargs):
            calls.append(args)
            raise AssertionError(
                "query answered by re-simplification, not by lookup"
            )

        monkeypatch.setattr(
            "repro.morse.simplify.simplify_ms_complex", spy
        )
        top = max(
            max(h.persistences) for h in hierarchies.values()
        )
        for p in np.linspace(0.0, 1.1 * top, 25):
            answer = query(hierarchies, persistence=float(p))
            assert answer.num_nodes >= 1
        for k in (0, 1, 5, 1000):
            query(hierarchies, top_k=k)
        assert calls == []

    def test_load_and_query_from_path_never_simplifies(self, monkeypatch):
        def spy(*args, **kwargs):
            raise AssertionError("path-based query re-simplified")

        monkeypatch.setattr(
            "repro.morse.simplify.simplify_ms_complex", spy
        )
        answer = query(GOLDEN_HIER, persistence=0.25)
        assert answer.num_nodes >= 1


class TestQuerySemantics:
    def test_monotone_in_threshold(self):
        hierarchies = load_hierarchy(GOLDEN_HIER)
        sizes = [
            query(hierarchies, persistence=float(p)).num_nodes
            for p in np.linspace(0.0, 1.0, 9)
        ]
        assert all(b <= a for a, b in zip(sizes, sizes[1:]))

    def test_top_k_levels(self):
        hierarchies = load_hierarchy(GOLDEN_HIER)
        h = hierarchies[0]
        assert query(hierarchies, top_k=0).levels[0] == h.num_levels
        assert query(hierarchies, top_k=3).levels[0] == h.num_levels - 3
        assert query(hierarchies, top_k=10**6).levels[0] == 0

    def test_exactly_one_selector_required(self):
        hierarchies = load_hierarchy(GOLDEN_HIER)
        with pytest.raises(ValueError, match="exactly one"):
            query(hierarchies)
        with pytest.raises(ValueError, match="exactly one"):
            query(hierarchies, persistence=0.1, top_k=2)
        with pytest.raises(ValueError):
            query(hierarchies, top_k=-1)
