"""Tests for repro.obs.trace: spans, stitching, and Chrome export."""

import json

import numpy as np
import pytest

import repro
from repro.obs.trace import (
    DRIVER_LANE,
    NULL_TRACER,
    RANK_LANE_BASE,
    TraceEvent,
    Tracer,
    get_tracer,
)


def _traced_result(**kw):
    field = np.random.default_rng(7).random((12, 12, 12))
    opts = repro.ExecutionOptions(retry_backoff=0.0, **kw)
    return repro.compute(field, persistence=0.05, ranks=8, trace=True,
                         options=opts)


class TestTracer:
    def test_span_records_interval(self):
        t = Tracer()
        with t.span("work", cat="test", block=3) as sp:
            pass
        assert sp.duration >= 0.0
        (ev,) = t.events
        assert ev.name == "work"
        assert ev.cat == "test"
        assert ev.args == {"block": 3}
        assert ev.is_span
        assert ev.dur == pytest.approx(sp.duration)

    def test_spans_nest_in_record_order(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        inner, outer = t.events  # completion order: inner exits first
        assert inner.name == "inner" and outer.name == "outer"
        # proper containment on the shared timebase
        assert outer.ts <= inner.ts
        assert inner.end <= outer.end

    def test_event_is_instant(self):
        t = Tracer()
        t.event("mark", cat="test", value=1)
        (ev,) = t.events
        assert not ev.is_span
        assert ev.end == ev.ts

    def test_lane_override(self):
        t = Tracer()
        with t.span("a"):
            pass
        with t.span("b", lane=RANK_LANE_BASE + 3):
            pass
        a, b = t.events
        assert a.tid == DRIVER_LANE
        assert b.tid == RANK_LANE_BASE + 3

    def test_duration_sums_spans_by_name(self):
        t = Tracer()
        for _ in range(3):
            with t.span("repeat"):
                pass
        assert t.duration("repeat") == pytest.approx(
            sum(e.dur for e in t.events)
        )
        assert t.duration("absent") == 0.0

    def test_absorb_stitches_foreign_events(self):
        t = Tracer()
        foreign = [TraceEvent("w", "c", 1.0, 0.5, pid=999, tid=0)]
        t.absorb(foreign)
        assert t.events[-1].pid == 999

    def test_annotate_attaches_args(self):
        t = Tracer()
        with t.span("work") as sp:
            sp.annotate(cells=100)
        assert t.events[0].args == {"cells": 100}


class TestDisabledTracer:
    def test_disabled_records_nothing(self):
        t = Tracer(enabled=False)
        with t.span("work"):
            pass
        t.event("mark")
        assert t.events == []

    def test_disabled_span_is_shared_singleton(self):
        t = Tracer(enabled=False)
        assert t.span("a") is t.span("b")  # no per-call allocation

    def test_null_span_annotate_is_noop(self):
        sp = NULL_TRACER.span("a")
        sp.annotate(anything=1)
        assert sp.duration == 0.0

    def test_ambient_defaults_to_null(self):
        assert get_tracer() is NULL_TRACER

    def test_installed_swaps_and_restores_ambient(self):
        t = Tracer()
        with t.installed():
            assert get_tracer() is t
            inner = Tracer()
            with inner.installed():
                assert get_tracer() is inner
            assert get_tracer() is t
        assert get_tracer() is NULL_TRACER


class TestPipelineTrace:
    def test_trace_off_by_default(self):
        field = np.random.default_rng(7).random((12, 12, 12))
        result = repro.compute(field, persistence=0.05, ranks=2)
        assert result.stats.trace is None

    def test_serial_trace_covers_every_stage(self):
        result = _traced_result()
        record = result.stats.trace
        names = {e.name for e in record.events}
        for expected in (
            "pipeline.run", "pipeline.plan", "compute.dispatch",
            "compute.block", "compute.build", "compute.gradient",
            "compute.trace", "compute.simplify", "compute.pack",
            "io.read", "gradient.prepare", "gradient.sweep",
            "trace.nodes", "trace.arcs", "simplify.cancel",
            "merge.stage", "merge.round", "io.serialize_output",
        ):
            assert expected in names, f"missing span {expected}"

    def test_every_block_has_a_compute_span(self):
        result = _traced_result()
        blocks = {e.args["block"] for e in result.stats.trace.events
                  if e.name == "compute.block"}
        assert blocks == set(range(8))

    def test_merge_rounds_record_on_rank_lanes(self):
        result = _traced_result()
        rounds = [e for e in result.stats.trace.events
                  if e.name == "merge.round"]
        assert rounds
        assert all(e.tid >= RANK_LANE_BASE for e in rounds)

    def test_stage_seconds_come_from_spans(self):
        result = _traced_result()
        record = result.stats.trace
        by_stage = {}
        for e in record.events:
            if e.name.startswith("compute.") and e.is_span:
                by_stage.setdefault(e.name, 0.0)
                by_stage[e.name] += e.dur
        for stage in ("build", "gradient", "trace", "simplify", "pack"):
            total = sum(b.stage_seconds[stage]
                        for b in result.stats.block_stats)
            assert total == pytest.approx(by_stage[f"compute.{stage}"])


class TestChromeExport:
    def test_schema(self, tmp_path):
        result = _traced_result()
        path = tmp_path / "trace.json"
        nbytes = result.stats.trace.write(path)
        assert nbytes == path.stat().st_size > 0
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events
        for ev in events:
            assert isinstance(ev["name"], str) and ev["name"]
            assert ev["ph"] in ("X", "i", "M")
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            if ev["ph"] in ("X", "i"):
                assert ev["ts"] >= 0  # normalized to earliest event
            if ev["ph"] == "X":
                assert ev["dur"] >= 0

    def test_metadata_labels_lanes(self):
        result = _traced_result()
        doc = result.stats.trace.to_chrome()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        labels = {e["args"]["name"] for e in meta if "name" in e["args"]}
        assert "driver" in labels
        assert "main" in labels
        assert any(lbl.startswith("rank ") for lbl in labels)

    def test_spans_nest_within_each_lane(self):
        result = _traced_result()
        doc = result.stats.trace.to_chrome()
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_lane = {}
        for e in spans:
            by_lane.setdefault((e["pid"], e["tid"]), []).append(e)
        for lane_spans in by_lane.values():
            # single-threaded recording => intervals nest or are disjoint
            lane_spans.sort(key=lambda e: (e["ts"], -e["dur"]))
            stack = []
            for e in lane_spans:
                while stack and e["ts"] >= stack[-1]["ts"] + stack[-1]["dur"]:
                    stack.pop()
                if stack:
                    parent = stack[-1]
                    assert e["ts"] + e["dur"] <= (
                        parent["ts"] + parent["dur"] + 1
                    )  # 1 us rounding slack
                stack.append(e)


@pytest.mark.slow
class TestPooledTrace:
    def test_worker_lanes_cover_every_block(self):
        result = _traced_result(workers=2, transport="shm")
        record = result.stats.trace
        driver_pid = [p for p, n in record.process_names.items()
                      if n == "driver"]
        assert len(driver_pid) == 1
        block_spans = [e for e in record.events
                       if e.name == "compute.block"]
        assert {e.args["block"] for e in block_spans} == set(range(8))
        # blocks were computed off-driver, in named worker processes
        worker_pids = {e.pid for e in block_spans}
        assert worker_pids and driver_pid[0] not in worker_pids
        for pid in worker_pids:
            assert record.process_names[pid].startswith("worker")

    def test_shm_lifecycle_events_present(self):
        result = _traced_result(workers=2, transport="shm")
        names = {e.name for e in result.stats.trace.events}
        assert "shm.publish" in names
        assert "shm.create" in names
        assert "shm.destroy" in names
