"""Tests for repro.analysis.segmentation: basin/mountain labeling."""

import numpy as np
import pytest

from repro.analysis.segmentation import (
    basin_sizes,
    segment_maxima,
    segment_minima,
)
from repro.data.synthetic import gaussian_bumps_field
from repro.mesh.cubical import CubicalComplex
from repro.morse.gradient import compute_discrete_gradient


def _field_of(values):
    return compute_discrete_gradient(CubicalComplex(values))


class TestMinimaBasins:
    def test_monotone_single_basin(self, monotone_field):
        g = _field_of(monotone_field)
        labels = segment_minima(g)
        assert labels.shape == monotone_field.shape
        assert np.all(labels == 0)

    def test_label_count_matches_minima(self, small_random_field):
        g = _field_of(small_random_field)
        labels = segment_minima(g)
        n_min = g.critical_counts()[0]
        assert labels.min() == 0
        assert labels.max() == n_min - 1
        assert len(np.unique(labels)) == n_min

    def test_every_vertex_labeled(self, small_random_field):
        g = _field_of(small_random_field)
        labels = segment_minima(g)
        assert (labels >= 0).all()

    def test_minimum_vertex_owns_its_basin(self, small_random_field):
        g = _field_of(small_random_field)
        cx = g.complex
        labels = segment_minima(g)
        for idx, m in enumerate(
            g.critical_cells_by_dim()[0].tolist()
        ):
            i, j, k = cx.refined_coords(m)
            assert labels[i // 2, j // 2, k // 2] == idx

    def test_two_well_basins_split_domain(self):
        """Two separated wells: the basin boundary sits between them."""
        t = np.linspace(0.0, 1.0, 15)
        X, Y, Z = np.meshgrid(t, t, t, indexing="ij")
        f = -np.exp(-((X - 0.25) ** 2 + (Y - 0.5) ** 2 + (Z - 0.5) ** 2)
                    / 0.05**2)
        f -= np.exp(-((X - 0.75) ** 2 + (Y - 0.5) ** 2 + (Z - 0.5) ** 2)
                    / 0.05**2)
        g = _field_of(f)
        labels = segment_minima(g)
        # the two deep wells land in different basins
        assert labels[3, 7, 7] != labels[11, 7, 7]
        sizes = basin_sizes(labels)
        # both wells capture a substantial share of the domain
        top_two = np.sort(sizes)[-2:]
        assert top_two.min() > f.size * 0.2


class TestMaximaMountains:
    def test_label_count_matches_maxima(self, small_random_field):
        g = _field_of(small_random_field)
        labels = segment_maxima(g)
        n_max = g.critical_counts()[3]
        assert labels.shape == tuple(
            n - 1 for n in small_random_field.shape
        )
        positive = np.unique(labels[labels >= 0])
        assert len(positive) == n_max  # every maximum owns a mountain

    def test_boundary_outflow_labeled_minus_one(self, monotone_field):
        """A monotone ramp has no maxima: every voxel flows out."""
        g = _field_of(monotone_field)
        labels = segment_maxima(g)
        assert (labels == -1).all()

    def test_interior_bump_claims_voxels(self, bump_field):
        g = _field_of(bump_field)
        labels = segment_maxima(g)
        assert (labels >= 0).any()

    def test_bump_count_recovered_by_segmentation(self):
        """Laney-style feature counting: mountains ~ bump count."""
        f = gaussian_bumps_field((18, 18, 18), 4, seed=12)
        g = _field_of(f)
        labels = segment_maxima(g)
        sizes = basin_sizes(labels)
        # each genuine bump claims a sizable mountain; spurious maxima
        # (if any) claim tiny ones
        big = np.count_nonzero(sizes > f.size * 0.01)
        assert 3 <= big <= 6

    def test_bump_center_belongs_to_its_maximum(self, bump_field):
        g = _field_of(bump_field)
        labels = segment_maxima(g)
        cx = g.complex
        (max_voxel,) = g.critical_cells_by_dim()[3].tolist()
        i, j, k = cx.refined_coords(max_voxel)
        assert labels[i // 2, j // 2, k // 2] == 0
        # the center of the bump is in that mountain
        assert labels[4, 4, 4] == 0


class TestBasinSizes:
    def test_sizes_sum_to_cells(self, small_random_field):
        g = _field_of(small_random_field)
        labels = segment_minima(g)
        assert basin_sizes(labels).sum() == labels.size
