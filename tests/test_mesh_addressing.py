"""Tests for repro.mesh.addressing: global addresses and signatures."""

import numpy as np
import pytest

from repro.mesh.addressing import (
    address_to_coords,
    boundary_signature,
    cut_planes_from_splits,
    global_refined_address,
    refined_dims,
)


def test_refined_dims():
    assert refined_dims((4, 5, 6)) == (7, 9, 11)
    assert refined_dims((2, 2, 2)) == (3, 3, 3)


def test_address_formula_matches_paper():
    # paper: a = (i+Sx) + (j+Sy)*XG + (k+Sz)*XG*YG
    dims = (7, 9, 11)
    assert global_refined_address(0, 0, 0, dims) == 0
    assert global_refined_address(3, 2, 1, dims) == 3 + 2 * 7 + 1 * 7 * 9
    assert global_refined_address(6, 8, 10, dims) == 7 * 9 * 11 - 1


def test_address_roundtrip():
    dims = (7, 9, 11)
    rng = np.random.default_rng(0)
    i = rng.integers(0, 7, size=100)
    j = rng.integers(0, 9, size=100)
    k = rng.integers(0, 11, size=100)
    addr = global_refined_address(i, j, k, dims)
    ri, rj, rk = address_to_coords(addr, dims)
    np.testing.assert_array_equal(ri, i)
    np.testing.assert_array_equal(rj, j)
    np.testing.assert_array_equal(rk, k)


def test_cut_planes_from_splits():
    np.testing.assert_array_equal(
        cut_planes_from_splits([3, 6]), np.array([6, 12])
    )
    assert cut_planes_from_splits([]).size == 0


class TestBoundarySignature:
    def setup_method(self):
        self.dims = (9, 9, 9)
        # one internal cut plane per axis
        self.cuts = (
            np.array([4]),
            np.array([4]),
            np.array([], dtype=np.int64),
        )

    def sig(self, i, j, k):
        return int(
            boundary_signature(
                np.array([i]), np.array([j]), np.array([k]),
                self.cuts, self.dims,
            )[0]
        )

    def test_interior_cell(self):
        assert self.sig(1, 1, 1) == 0

    def test_face_cell(self):
        assert self.sig(4, 1, 1) == 0b001
        assert self.sig(1, 4, 1) == 0b010

    def test_edge_cell(self):
        assert self.sig(4, 4, 1) == 0b011

    def test_no_z_cut(self):
        assert self.sig(1, 1, 4) == 0

    def test_out_of_range_plane_rejected(self):
        with pytest.raises(ValueError):
            boundary_signature(
                np.array([0]), np.array([0]), np.array([0]),
                (np.array([99]), np.array([]), np.array([])),
                self.dims,
            )
