"""Tests for repro.analysis.compare: complex matching."""

import numpy as np
import pytest

from repro.analysis.compare import compare_complexes, feature_signature
from repro.core.config import PipelineConfig
from repro.core.pipeline import (
    ParallelMSComplexPipeline,
    compute_morse_smale_complex,
)
from repro.data.synthetic import gaussian_bumps_field
from repro.morse.msc import MorseSmaleComplex


def _make(nodes):
    msc = MorseSmaleComplex((99, 99, 99))
    for addr, idx, val in nodes:
        msc.add_node(addr, idx, val)
    return msc


class TestMatching:
    def test_identical_complexes(self):
        a = _make([(0, 0, 1.0), (5, 1, 2.0)])
        b = _make([(0, 0, 1.0), (5, 1, 2.0)])
        cmp = compare_complexes(a, b)
        assert cmp.identical
        assert cmp.matched_by_address == 2
        assert cmp.recall == 1.0 and cmp.precision == 1.0

    def test_shifted_node_matches_by_signature(self):
        a = _make([(0, 0, 1.0), (5, 3, 2.0)])
        b = _make([(0, 0, 1.0), (7, 3, 2.0)])  # max shifted along plateau
        cmp = compare_complexes(a, b)
        assert cmp.matched_by_address == 1
        assert cmp.matched_by_signature == 1
        assert cmp.identical

    def test_genuinely_missing_node(self):
        a = _make([(0, 0, 1.0), (5, 3, 2.0)])
        b = _make([(0, 0, 1.0)])
        cmp = compare_complexes(a, b)
        assert cmp.recall == 0.5
        assert cmp.precision == 1.0
        assert cmp.only_reference[(3, 2.0)] == 1
        assert not cmp.identical

    def test_extra_node_in_test(self):
        a = _make([(0, 0, 1.0)])
        b = _make([(0, 0, 1.0), (9, 2, 0.5)])
        cmp = compare_complexes(a, b)
        assert cmp.precision == 0.5
        assert cmp.only_test[(2, 0.5)] == 1

    def test_min_value_filter(self):
        a = _make([(0, 0, 0.001), (5, 3, 2.0)])
        b = _make([(1, 0, 0.002), (5, 3, 2.0)])
        cmp = compare_complexes(a, b, min_value=0.1)
        assert cmp.identical
        assert cmp.reference_nodes == 1

    def test_same_address_different_index_not_matched_by_address(self):
        a = _make([(5, 1, 2.0)])
        b = _make([(5, 2, 2.0)])
        cmp = compare_complexes(a, b)
        assert cmp.matched == 0

    def test_empty_complexes(self):
        cmp = compare_complexes(_make([]), _make([]))
        assert cmp.identical
        assert cmp.recall == 1.0 and cmp.precision == 1.0

    def test_describe(self):
        cmp = compare_complexes(_make([(0, 0, 1.0)]), _make([]))
        assert "recall=0.000" in cmp.describe()


class TestFeatureSignature:
    def test_counts_multiplicity(self):
        msc = _make([(0, 3, 1.0), (9, 3, 1.0), (5, 0, 0.2)])
        sig = feature_signature(msc)
        assert sig[(3, 1.0)] == 2
        assert sig[(0, 0.2)] == 1

    def test_value_floor(self):
        msc = _make([(0, 3, 1.0), (5, 0, 0.0)])
        sig = feature_signature(msc, min_value=0.5)
        assert (0, 0.0) not in sig


class TestEndToEnd:
    def test_serial_vs_parallel_high_recall(self):
        field = gaussian_bumps_field((15, 15, 15), 5, seed=11)
        serial = compute_morse_smale_complex(field, persistence_threshold=0.05)
        cfg = PipelineConfig(num_blocks=8, persistence_threshold=0.05)
        parallel = ParallelMSComplexPipeline(cfg).run(field)
        cmp = compare_complexes(
            serial, parallel.merged_complexes[0], min_value=0.05
        )
        assert cmp.recall == 1.0
        assert cmp.precision == 1.0
