"""Config-fingerprint stability (the service cache-key foundation).

Two digests with two jobs:

- :meth:`ExecutionOptions.fingerprint` / :meth:`PipelineConfig.fingerprint`
  cover *every* knob — equal settings hash equal no matter the spelling
  (flat keywords, ``options=``, CLI flags, service requests), and any
  knob change changes the hash;
- :meth:`PipelineConfig.result_fingerprint` covers only what determines
  the output bytes — pure-scheduling knobs are deliberately excluded,
  so one cached artifact serves every execution spelling.
"""

from __future__ import annotations

import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import _facade_config
from repro.cli import build_parser
from repro.core.config import PipelineConfig
from repro.core.options import ExecutionOptions, canonical_fingerprint
from repro.service.scheduler import ComputeRequest


def _facade(**kwargs) -> PipelineConfig:
    base = dict(
        persistence=0.05, ranks=8, merge_radix=2, validate=False,
        options=None, faults=None, trace=False, metrics=False, flat={},
    )
    base.update(kwargs)
    return _facade_config("test", **base)


class TestCanonicalFingerprint:
    def test_key_order_independent(self):
        a = canonical_fingerprint("k", {"x": 1, "y": [2, 3]})
        b = canonical_fingerprint("k", {"y": [2, 3], "x": 1})
        assert a == b

    def test_kind_namespaces_the_digest(self):
        payload = {"x": 1}
        assert canonical_fingerprint("a", payload) != \
            canonical_fingerprint("b", payload)

    def test_rejects_unserializable_payloads(self):
        with pytest.raises(TypeError):
            canonical_fingerprint("k", {"x": object()})
        with pytest.raises(TypeError):
            canonical_fingerprint("k", {"x": float("nan")})


class TestSpellingIndependence:
    """Identical settings, four spellings, one fingerprint."""

    def test_flat_keywords_vs_options_object(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            flat = _facade(
                flat={"workers": 2, "transport": "mmap",
                      "max_retries": 1}
            )
        grouped = _facade(
            options=ExecutionOptions(
                workers=2, transport="mmap", max_retries=1
            )
        )
        assert flat.fingerprint() == grouped.fingerprint()
        assert flat.result_fingerprint() == grouped.result_fingerprint()

    def test_cli_flags_hash_like_the_options_object(self):
        # the exact ExecutionOptions construction of cli._cmd_compute,
        # from parsed flags — must hash like the library spelling
        args = build_parser().parse_args(
            ["compute", "vol.raw", "--dims", "16", "16", "16",
             "--workers", "2", "--transport", "mmap",
             "--max-retries", "1", "--hierarchy"]
        )
        from_cli = ExecutionOptions(
            workers=args.workers,
            executor=args.executor,
            merge_executor=args.merge_executor,
            transport=args.transport,
            kernel_backend=args.kernel_backend,
            block_timeout=args.block_timeout,
            max_retries=args.max_retries,
            retry_backoff=args.retry_backoff,
            degrade_on_failure=not args.no_degrade,
            hierarchy=args.hierarchy,
        )
        from_lib = ExecutionOptions(
            workers=2, transport="mmap", max_retries=1, hierarchy=True
        )
        assert from_cli.fingerprint() == from_lib.fingerprint()

    def test_service_request_hashes_like_the_facade(self, tmp_path):
        from repro.io.volume import VolumeSpec

        spec = VolumeSpec(str(tmp_path / "v.raw"), (8, 8, 8), "float64")
        request = ComputeRequest(
            volume=spec, persistence=0.05, ranks=8, merge_radix=2,
            hierarchy=True,
        )
        direct = _facade(options=ExecutionOptions(hierarchy=True))
        assert request.pipeline_config().fingerprint() == \
            direct.fingerprint()

    def test_deprecated_compute_keywords_route_identically(self):
        import numpy as np

        import repro

        field = np.zeros((4, 4, 4))
        field[1:3, 1:3, 1:3] = 1.0
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            flat = repro.compute(field, workers=1, hierarchy=True)
        grouped = repro.compute(
            field, options=ExecutionOptions(workers=1, hierarchy=True)
        )
        assert flat.combined_node_counts() == \
            grouped.combined_node_counts()


class TestResultFingerprintScope:
    def test_scheduling_knobs_are_excluded(self):
        lean = _facade()
        wide = _facade(
            options=ExecutionOptions(
                workers=4, executor="process", transport="mmap",
                merge_executor="pool", kernel_backend="pointer",
                block_timeout=5.0, max_retries=5, retry_backoff=0.2,
                degrade_on_failure=False, max_pool_restarts=1,
            )
        )
        # same answer bytes -> same cache-key half ...
        assert lean.result_fingerprint() == wide.result_fingerprint()
        # ... but a different run identity (sessions must not be shared
        # across scheduling settings)
        assert lean.fingerprint() != wide.fingerprint()

    @pytest.mark.parametrize(
        "change",
        [
            {"persistence": 0.1},
            {"ranks": 4},
            {"merge_radix": 8},
            {"merge_radix": "none"},
            {"options": ExecutionOptions(hierarchy=True)},
        ],
    )
    def test_every_result_shaping_knob_changes_it(self, change):
        assert _facade(**change).result_fingerprint() != \
            _facade().result_fingerprint()

    def test_radix_spelling_canonicalized(self):
        # merge_radix=2 over 8 ranks resolves to rounds [2, 2, 2]; the
        # explicit sequence spelling must land on the same fingerprint
        assert _facade(merge_radix=2).result_fingerprint() == \
            _facade(merge_radix=[2, 2, 2]).result_fingerprint()
        assert _facade(merge_radix=8).result_fingerprint() == \
            _facade(merge_radix=[8]).result_fingerprint()


#: every ExecutionOptions knob with a few valid draws each — compact on
#: purpose so hypothesis explores combinations, not invalid inputs
_KNOBS = {
    "workers": st.integers(1, 4),
    "executor": st.sampled_from(["auto", "serial", "process"]),
    "merge_executor": st.sampled_from(["auto", "serial", "pool"]),
    "transport": st.sampled_from(["auto", "pickle", "mmap"]),
    "kernel_backend": st.sampled_from(["auto", "dfs", "pointer"]),
    "block_timeout": st.sampled_from([None, 1.0, 30.0]),
    "max_retries": st.integers(0, 3),
    "retry_backoff": st.sampled_from([0.0, 0.05, 0.5]),
    "degrade_on_failure": st.booleans(),
    "max_pool_restarts": st.integers(0, 2),
    "hierarchy": st.booleans(),
}


class TestFingerprintProperties:
    @given(kwargs=st.fixed_dictionaries(_KNOBS))
    @settings(max_examples=50, deadline=None)
    def test_equal_options_equal_fingerprint(self, kwargs):
        assert ExecutionOptions(**kwargs).fingerprint() == \
            ExecutionOptions(**kwargs).fingerprint()

    @given(
        kwargs=st.fixed_dictionaries(_KNOBS),
        knob=st.sampled_from(sorted(_KNOBS)),
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_any_knob_change_changes_fingerprint(self, kwargs, knob, data):
        changed = dict(kwargs)
        changed[knob] = data.draw(
            _KNOBS[knob].filter(lambda v: v != kwargs[knob]),
            label=f"new {knob}",
        )
        assert ExecutionOptions(**kwargs).fingerprint() != \
            ExecutionOptions(**changed).fingerprint()

    @given(
        kwargs=st.fixed_dictionaries(_KNOBS),
        persistence=st.sampled_from([0.0, 0.05, 0.2]),
        ranks=st.sampled_from([1, 2, 8]),
    )
    @settings(max_examples=30, deadline=None)
    def test_result_fingerprint_constant_across_scheduling(
        self, kwargs, persistence, ranks
    ):
        hierarchy = kwargs.pop("hierarchy")
        varied = _facade(
            persistence=persistence, ranks=ranks,
            options=ExecutionOptions(hierarchy=hierarchy, **kwargs),
        )
        reference = _facade(
            persistence=persistence, ranks=ranks,
            options=ExecutionOptions(hierarchy=hierarchy),
        )
        assert varied.result_fingerprint() == \
            reference.result_fingerprint()
