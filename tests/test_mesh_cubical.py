"""Tests for repro.mesh.cubical: the flat-array cubical complex."""

import numpy as np
import pytest

from repro.mesh.cubical import CubicalComplex


@pytest.fixture
def cx(small_random_field):
    return CubicalComplex(small_random_field)


class TestStructure:
    def test_cell_counts(self, cx):
        # an (nx, ny, nz) grid has prod(2n-1) cells in total
        assert cx.num_cells == 11 * 13 * 15
        by_dim = cx.cells_by_dim
        assert sum(len(c) for c in by_dim) == cx.num_cells
        # vertices: nx*ny*nz; voxels: (nx-1)(ny-1)(nz-1)
        assert len(by_dim[0]) == 6 * 7 * 8
        assert len(by_dim[3]) == 5 * 6 * 7

    def test_euler_characteristic_of_box(self, cx):
        assert cx.euler_characteristic() == 1

    def test_celltype_and_dim(self, cx):
        for (i, j, k), d in [
            ((0, 0, 0), 0),
            ((1, 0, 0), 1),
            ((1, 1, 0), 2),
            ((1, 1, 1), 3),
        ]:
            p = cx.padded_index(i, j, k)
            assert cx.cell_dim[p] == d

    def test_coords_roundtrip(self, cx):
        for coords in [(0, 0, 0), (3, 4, 5), (10, 12, 14)]:
            p = cx.padded_index(*coords)
            assert cx.refined_coords(p) == coords

    def test_global_coords_with_origin(self, small_random_field):
        cx = CubicalComplex(
            small_random_field,
            refined_origin=(4, 6, 8),
            global_refined_dims=(31, 33, 35),
        )
        p = cx.padded_index(1, 2, 3)
        assert cx.global_coords(p) == (5, 8, 11)

    def test_origin_out_of_range_rejected(self, small_random_field):
        with pytest.raises(ValueError):
            CubicalComplex(
                small_random_field,
                refined_origin=(30, 0, 0),
                global_refined_dims=(31, 33, 35),
            )


class TestValues:
    def test_cell_value_is_max_of_vertices(self, small_random_field, cx):
        v = small_random_field
        # edge between vertices (0,0,0) and (1,0,0)
        p = cx.padded_index(1, 0, 0)
        assert cx.cell_value[p] == max(v[0, 0, 0], v[1, 0, 0])
        # voxel (cube) spanning vertices [0..1]^3
        p = cx.padded_index(1, 1, 1)
        assert cx.cell_value[p] == v[:2, :2, :2].max()
        # quad in the xy plane
        p = cx.padded_index(1, 1, 0)
        assert cx.cell_value[p] == v[:2, :2, 0].max()

    def test_sentinel_values(self, cx):
        # padded border cells must never win comparisons
        px, py, pz = cx.padded_shape
        assert cx.cell_value[0] == -np.inf
        assert not cx.valid[0]


class TestIncidence:
    def test_facets_of_edge_are_its_vertices(self, cx):
        p = cx.padded_index(3, 0, 0)  # x-edge between vertices 1 and 2
        facets = cx.facets(p)
        assert sorted(facets) == sorted(
            [cx.padded_index(2, 0, 0), cx.padded_index(4, 0, 0)]
        )

    def test_facet_cofacet_duality(self, cx):
        # alpha is a facet of beta iff beta is a cofacet of alpha
        rng = np.random.default_rng(1)
        all_cells = np.flatnonzero(cx.valid)
        for p in rng.choice(all_cells, size=50, replace=False):
            p = int(p)
            for f in cx.facets(p):
                assert p in cx.cofacets(f)
            for c in cx.cofacets(p):
                assert p in cx.facets(c)

    def test_facets_always_in_bounds(self, cx):
        for d in range(1, 4):
            for p in cx.cells_by_dim[d][:100].tolist():
                for f in cx.facets(p):
                    assert cx.valid[f]

    def test_corner_vertex_cofacets_clipped(self, cx):
        p = cx.padded_index(0, 0, 0)
        assert len(cx.cofacets(p)) == 3  # only +x, +y, +z edges exist

    def test_vertices_of_cell(self, cx):
        p = cx.padded_index(1, 1, 1)
        verts = cx.vertices_of_cell(p)
        assert len(verts) == 8
        assert all(cx.cell_dim[v] == 0 for v in verts)
        p = cx.padded_index(2, 2, 2)
        assert cx.vertices_of_cell(p) == [p]


class TestSoSOrder:
    def test_rank_is_dense_permutation(self, cx):
        ranks = cx.order_rank[cx.valid]
        assert sorted(ranks.tolist()) == list(range(cx.num_cells))

    def test_rank_respects_value_order_within_dim(self, cx):
        for d in range(4):
            cells = cx.cells_by_dim[d]  # already rank-sorted
            vals = cx.cell_value[cells]
            assert np.all(np.diff(vals) >= 0)

    def test_ties_broken_by_vertex_lists(self):
        # two edges with the same max but different second vertex values:
        # the one with the smaller second value must come first
        v = np.zeros((3, 2, 2))
        v[0, :, :] = 0.2
        v[1, :, :] = 1.0
        v[2, :, :] = 0.7
        cx = CubicalComplex(v)
        left = cx.padded_index(1, 0, 0)  # verts 0.2, 1.0
        right = cx.padded_index(3, 0, 0)  # verts 1.0, 0.7
        assert cx.cell_value[left] == cx.cell_value[right] == 1.0
        assert cx.order_rank[left] < cx.order_rank[right]

    def test_order_consistent_across_blocks(self, small_random_field):
        """Shared-face cells must rank identically from both sides."""
        v = small_random_field
        whole = CubicalComplex(v)
        left = CubicalComplex(
            v[:4], refined_origin=(0, 0, 0),
            global_refined_dims=whole.refined_shape,
        )
        right = CubicalComplex(
            v[3:], refined_origin=(6, 0, 0),
            global_refined_dims=whole.refined_shape,
        )
        # cells on the shared plane x=6 (refined): compare relative order
        shared_l, shared_r = [], []
        for j in range(13):
            for k in range(15):
                shared_l.append(left.padded_index(6, j, k))
                shared_r.append(right.padded_index(0, j, k))
        rl = left.order_rank[shared_l]
        rr = right.order_rank[shared_r]
        np.testing.assert_array_equal(np.argsort(rl), np.argsort(rr))
