"""Tests for repro.machine: torus topology and the cost model."""

import pytest

from repro.machine.bgp import BlueGenePParams
from repro.machine.costmodel import ComputeWork, CostModel, MergeWork
from repro.machine.topology import TorusTopology, balanced_torus_dims


class TestTorus:
    def test_balanced_dims_product(self):
        for n in (1, 2, 8, 32, 2048, 32768):
            a, b, c = balanced_torus_dims(n)
            assert a * b * c == n

    def test_power_of_two_near_cubic(self):
        assert balanced_torus_dims(512) == (8, 8, 8)
        assert balanced_torus_dims(4096) == (16, 16, 16)

    def test_hops_symmetric_and_zero_diag(self):
        t = TorusTopology(64)
        assert t.hops(5, 5) == 0
        for a, b in [(0, 1), (3, 60), (17, 40)]:
            assert t.hops(a, b) == t.hops(b, a)
            assert t.hops(a, b) >= 1

    def test_wraparound_shortens_paths(self):
        t = TorusTopology(64)  # 4x4x4
        # ranks 0 and 3 are 3 apart linearly but 1 hop around the torus
        assert t.hops(0, 3) == 1

    def test_diameter_bound(self):
        t = TorusTopology(64)
        assert t.diameter() == 6
        for a in range(64):
            assert t.hops(0, a) <= t.diameter()

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            TorusTopology(8).coords(8)


class TestCostModel:
    def setup_method(self):
        self.model = CostModel(BlueGenePParams(), num_procs=64)

    def test_compute_time_monotone_in_work(self):
        small = ComputeWork(cells=1000, geometry_cells=10, cancellations=1)
        large = ComputeWork(cells=9000, geometry_cells=90, cancellations=9)
        assert self.model.compute_time(large) > self.model.compute_time(
            small
        )

    def test_compute_work_accumulates(self):
        w = ComputeWork(cells=5, geometry_cells=2, cancellations=1)
        w += ComputeWork(cells=5, geometry_cells=3, cancellations=0)
        assert (w.cells, w.geometry_cells, w.cancellations) == (10, 5, 1)

    def test_message_time_zero_for_self(self):
        assert self.model.message_time(1000, 3, 3) == 0.0

    def test_message_time_grows_with_bytes_and_hops(self):
        t = self.model.topology
        near = next(
            d for d in range(1, 64) if t.hops(0, d) == 1
        )
        far = max(range(64), key=lambda d: t.hops(0, d))
        small_near = self.model.message_time(10, 0, near)
        big_near = self.model.message_time(10_000_000, 0, near)
        small_far = self.model.message_time(10, 0, far)
        assert big_near > small_near
        assert small_far > small_near

    def test_latency_floor(self):
        p = BlueGenePParams()
        assert self.model.message_time(0, 0, 1) >= p.latency

    def test_io_aggregate_cap(self):
        p = BlueGenePParams()
        few = CostModel(p, num_procs=4)
        many = CostModel(p, num_procs=100_000)
        # per-rank effective bandwidth shrinks once the aggregate saturates
        assert p.io_bandwidth(4) == 4 * p.io_per_process_bandwidth
        assert p.io_bandwidth(100_000) == p.io_aggregate_bandwidth
        bytes_per_rank = 10_000_000
        assert many.read_time(bytes_per_rank) > few.read_time(
            bytes_per_rank
        )

    def test_write_overhead_grows_with_procs(self):
        p = BlueGenePParams()
        t_small = CostModel(p, num_procs=32).write_time(0)
        t_large = CostModel(p, num_procs=32768).write_time(0)
        # the paper: output I/O becomes a primary limit at high P
        assert t_large > t_small

    def test_merge_time_components(self):
        zero = self.model.merge_time(MergeWork())
        some = self.model.merge_time(
            MergeWork(glued_elements=1000, cancellations=10,
                      packed_bytes=10_000)
        )
        assert zero == 0.0
        assert some > 0.0
