"""Property-based tests of the end-to-end parallel pipeline.

Hypothesis drives random fields, blockings, process counts, and merge
schedules through the full pipeline and asserts the global invariants:
Euler characteristic of full merges, output-block arithmetic, boundary
flag hygiene, and serial agreement of extrema for clean fields.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.config import PipelineConfig
from repro.core.pipeline import (
    ParallelMSComplexPipeline,
    compute_morse_smale_complex,
)
from repro.morse.validate import assert_ms_complex_valid


@st.composite
def pipeline_cases(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    nx = draw(st.integers(5, 9))
    ny = draw(st.integers(5, 9))
    nz = draw(st.integers(5, 9))
    rng = np.random.default_rng(seed)
    field = rng.random((nx, ny, nz))
    feasible_splits = []
    for sx in (1, 2):
        for sy in (1, 2):
            for sz in (1, 2):
                if (
                    nx - 1 >= sx * 2 - 1
                    and ny - 1 >= sy * 2 - 1
                    and nz - 1 >= sz * 2 - 1
                ):
                    feasible_splits.append((sx, sy, sz))
    splits = draw(st.sampled_from(feasible_splits))
    blocks = int(np.prod(splits))
    procs = draw(st.sampled_from(
        sorted({1, 2, blocks, max(1, blocks // 2)})
    ))
    threshold = draw(st.sampled_from([0.0, 0.1, 0.5]))
    return field, splits, blocks, min(procs, blocks), threshold


@settings(max_examples=10, deadline=None)
@given(pipeline_cases())
def test_full_merge_invariants(case):
    field, splits, blocks, procs, threshold = case
    cfg = PipelineConfig(
        num_blocks=blocks,
        num_procs=procs,
        splits=splits,
        persistence_threshold=threshold,
        merge_radices="full",
    )
    res = ParallelMSComplexPipeline(cfg).run(field)
    assert res.num_output_blocks == 1
    merged = res.merged_complexes[0]
    assert_ms_complex_valid(merged)
    # a fully merged contractible domain
    assert merged.euler_characteristic() == 1
    # no boundary flags survive a full merge
    assert not any(merged.node_boundary[n] for n in merged.alive_nodes())
    # every stage produced sane accounting
    s = res.stats
    assert s.total_time > 0
    assert len(s.block_stats) == blocks
    assert s.total_cells() == sum(b.cells for b in s.block_stats)


@settings(max_examples=8, deadline=None)
@given(pipeline_cases())
def test_partial_merge_block_arithmetic(case):
    field, splits, blocks, procs, threshold = case
    if blocks < 2:
        return
    cfg = PipelineConfig(
        num_blocks=blocks,
        num_procs=procs,
        splits=splits,
        persistence_threshold=threshold,
        merge_radices=[2],
    )
    res = ParallelMSComplexPipeline(cfg).run(field)
    assert res.num_output_blocks == blocks // 2
    for msc in res.output_blocks.values():
        assert_ms_complex_valid(msc)


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_extrema_agreement_on_clean_fields(seed):
    """Separated-feature fields: parallel extrema == serial extrema."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 1.0, 11)
    X, Y, Z = np.meshgrid(t, t, t, indexing="ij")
    field = np.zeros((11, 11, 11))
    for i in (0, 1):
        for j in (0, 1):
            c = np.array([0.25 + 0.5 * i, 0.25 + 0.5 * j, 0.5])
            c += rng.uniform(-0.04, 0.04, 3)
            field += np.exp(
                -((X - c[0]) ** 2 + (Y - c[1]) ** 2 + (Z - c[2]) ** 2)
                / 0.06**2
            )
    serial = compute_morse_smale_complex(field, persistence_threshold=0.3)
    cfg = PipelineConfig(num_blocks=8, persistence_threshold=0.3)
    parallel = ParallelMSComplexPipeline(cfg).run(field).merged_complexes[0]
    s, p = serial.node_counts_by_index(), parallel.node_counts_by_index()
    assert (s[0], s[3]) == (p[0], p[3])
