"""Tests for repro.morse.validate: the invariant checkers themselves."""

import numpy as np
import pytest

from repro.mesh.cubical import CubicalComplex
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.msc import MorseSmaleComplex
from repro.morse.tracing import extract_ms_complex
from repro.morse.validate import (
    assert_acyclic,
    assert_gradient_field_valid,
    assert_ms_complex_valid,
)
from repro.morse.vectorfield import CRITICAL, GradientField


def test_valid_field_passes(small_random_field):
    f = compute_discrete_gradient(CubicalComplex(small_random_field))
    assert_gradient_field_valid(f)
    assert_acyclic(f)


def test_acyclic_detects_cycle():
    """Hand-build a rotational V-path cycle through a 2x2 quad ring.

    Four quads arranged in a ring, each paired with the edge it shares
    with the previous quad, produce the canonical minimal V-path cycle
    that a discrete *gradient* field must not contain.
    """
    v2 = np.zeros((5, 5, 2))
    cx2 = CubicalComplex(v2)
    pairing2 = np.full(cx2.num_padded, CRITICAL, dtype=np.uint8)
    sx2, sy2, _ = cx2.steps

    def code2(off):
        return {sx2: 0, -sx2: 1, sy2: 2, -sy2: 3}[off]

    # quads at (1,1),(3,1),(3,3),(1,3); edges between them:
    # e_right of q00 = (2,1), e_top of q10 = (3,2), e_left of q11 = (2,3),
    # e_bottom of q01 = (1,2)
    q00 = cx2.padded_index(1, 1, 0)
    q10 = cx2.padded_index(3, 1, 0)
    q11 = cx2.padded_index(3, 3, 0)
    q01 = cx2.padded_index(1, 3, 0)
    e_a = cx2.padded_index(2, 1, 0)  # between q00 and q10
    e_b = cx2.padded_index(3, 2, 0)  # between q10 and q11
    e_c = cx2.padded_index(2, 3, 0)  # between q11 and q01
    e_d = cx2.padded_index(1, 2, 0)  # between q01 and q00
    # rotational pairing: e_a->q10, e_b->q11, e_c->q01, e_d->q00
    for e, q in [(e_a, q10), (e_b, q11), (e_c, q01), (e_d, q00)]:
        off = q - e
        pairing2[e] = code2(off)
        pairing2[q] = code2(-off)
    bad = GradientField(cx2, pairing2)
    with pytest.raises(AssertionError, match="cycle"):
        assert_acyclic(bad)


class TestMSComplexValidation:
    def test_valid_complex_passes(self, small_random_field):
        f = compute_discrete_gradient(CubicalComplex(small_random_field))
        assert_ms_complex_valid(extract_ms_complex(f))

    def test_duplicate_address_detected(self):
        msc = MorseSmaleComplex((5, 5, 5))
        msc.add_node(7, 0, 0.0)
        msc.add_node(7, 0, 0.0)
        with pytest.raises(AssertionError, match="duplicate"):
            assert_ms_complex_valid(msc)

    def test_dead_endpoint_detected(self):
        msc = MorseSmaleComplex((5, 5, 5))
        m = msc.add_node(0, 0, 0.0)
        s = msc.add_node(2, 1, 1.0)
        gid = msc.new_leaf_geometry(np.array([2, 1, 0]))
        msc.add_arc(s, m, gid)
        msc.kill_node(m)
        with pytest.raises(AssertionError, match="dead endpoint"):
            assert_ms_complex_valid(msc)

    def test_bad_geometry_detected(self):
        msc = MorseSmaleComplex((5, 5, 5))
        m = msc.add_node(0, 0, 0.0)
        s = msc.add_node(2, 1, 1.0)
        gid = msc.new_leaf_geometry(np.array([9, 1, 0]))  # wrong start
        msc.add_arc(s, m, gid)
        with pytest.raises(AssertionError, match="geometry"):
            assert_ms_complex_valid(msc)
