"""Tests for the simplification guards: multiplicity cap, new-arc limit,
and ghost protection."""

import numpy as np
import pytest

from repro.core.glue import glue_into
from repro.morse.msc import MorseSmaleComplex
from repro.morse.simplify import simplify_ms_complex


def _star_complex(fan=6):
    """A cancellable pair (U, L) whose cancellation creates ``fan**2`` arcs.

    L (a minimum) has ``fan`` other upper neighbors; U (a 1-saddle)
    has ... to build fan x fan we need U to have ``fan`` lower neighbors
    too, so we use a saddle-saddle pair (indices 1 and 2).
    """
    msc = MorseSmaleComplex((999, 999, 999))
    L = msc.add_node(10, 1, 1.0)
    U = msc.add_node(20, 2, 1.05)
    g = msc.new_leaf_geometry(np.array([20, 15, 10]))
    msc.add_arc(U, L, g)
    for i in range(fan):
        y = msc.add_node(100 + i, 2, 3.0 + i)
        gy = msc.new_leaf_geometry(np.array([100 + i, 50 + i, 10]))
        msc.add_arc(y, L, gy)
        x = msc.add_node(200 + i, 1, 0.1 + 0.01 * i)
        gx = msc.new_leaf_geometry(np.array([20, 60 + i, 200 + i]))
        msc.add_arc(U, x, gx)
    return msc, U, L


class TestMaxNewArcs:
    def test_expensive_cancellation_skipped(self):
        msc, U, L = _star_complex(fan=6)  # would create 36 arcs
        cancels = simplify_ms_complex(
            msc, 0.1, respect_boundary=False, max_new_arcs=10
        )
        assert cancels == []
        assert msc.node_alive[U] and msc.node_alive[L]

    def test_cheap_cancellation_allowed(self):
        msc, U, L = _star_complex(fan=2)  # creates 4 arcs
        cancels = simplify_ms_complex(
            msc, 0.1, respect_boundary=False, max_new_arcs=10
        )
        assert len(cancels) == 1
        assert not msc.node_alive[U]


class TestMultiplicityCap:
    def test_cap_limits_parallel_arcs(self):
        msc, U, L = _star_complex(fan=5)
        simplify_ms_complex(
            msc, 0.1, respect_boundary=False, max_arc_multiplicity=2
        )
        # every surviving pair has at most 2 parallel arcs
        for u in msc.alive_nodes():
            for v in msc.alive_nodes():
                if u < v:
                    assert len(msc.arcs_between(u, v)) <= 2

    def test_cap_below_two_rejected(self):
        msc, _U, _L = _star_complex(fan=2)
        with pytest.raises(ValueError):
            simplify_ms_complex(msc, 0.1, max_arc_multiplicity=1)

    def test_exact_mode_keeps_all_multiplicity(self):
        msc, U, L = _star_complex(fan=3)
        simplify_ms_complex(
            msc, 0.1, respect_boundary=False, max_arc_multiplicity=None
        )
        # fan=3 cancellation creates 9 arcs, none suppressed
        alive = msc.num_alive_arcs()
        assert alive == 3 + 3 + 9 - 6  # originals minus killed plus new

    def test_multiplicity_query(self):
        msc = MorseSmaleComplex((9, 9, 9))
        a = msc.add_node(0, 0, 0.0)
        b = msc.add_node(2, 1, 1.0)
        assert msc.multiplicity(a, b) == 0
        g1 = msc.new_leaf_geometry(np.array([2, 1, 0]))
        g2 = msc.new_leaf_geometry(np.array([2, 3, 0]))
        msc.add_arc(b, a, g1)
        msc.add_arc(b, a, g2)
        assert msc.multiplicity(a, b) == 2
        assert msc.multiplicity(b, a) == 2


class TestGhostProtection:
    def test_ghost_pair_never_cancelled(self):
        msc = MorseSmaleComplex((9, 9, 9))
        m = msc.add_node(0, 0, 0.0, ghost=True)
        s = msc.add_node(2, 1, 0.001)
        g = msc.new_leaf_geometry(np.array([2, 1, 0]))
        msc.add_arc(s, m, g)
        cancels = simplify_ms_complex(msc, 1.0, respect_boundary=False)
        assert cancels == []

    def test_ghost_reconciliation_in_glue(self):
        dims = (9, 9, 9)
        root = MorseSmaleComplex(dims)
        ghost_id = root.add_node(5, 3, 2.0, ghost=True)
        incoming = MorseSmaleComplex(dims)
        incoming.add_node(5, 3, 2.0, ghost=False)
        sad = incoming.add_node(3, 2, 1.0)
        g = incoming.new_leaf_geometry(np.array([5, 4, 3]))
        incoming.add_arc(0, sad, g)
        stats = glue_into(root, incoming, root.address_index())
        # the ghost became real and the incoming arc was NOT suppressed
        assert not root.node_ghost[ghost_id]
        assert stats.arcs_added == 1
        assert stats.arcs_skipped == 0

    def test_real_shared_nodes_still_suppress_plane_arcs(self):
        dims = (9, 9, 9)
        root = MorseSmaleComplex(dims)
        a = root.add_node(5, 1, 2.0, boundary=True)
        b = root.add_node(7, 0, 1.0, boundary=True)
        g = root.new_leaf_geometry(np.array([5, 6, 7]))
        root.add_arc(a, b, g)
        incoming = MorseSmaleComplex(dims)
        ia = incoming.add_node(5, 1, 2.0, boundary=True)
        ib = incoming.add_node(7, 0, 1.0, boundary=True)
        ig = incoming.new_leaf_geometry(np.array([5, 6, 7]))
        incoming.add_arc(ia, ib, ig)
        stats = glue_into(root, incoming, root.address_index())
        assert stats.arcs_skipped == 1
        assert root.num_alive_arcs() == 1
