"""Meta tests: public API surface, documentation coverage, and the
`repro.api` facade contract (routing, round-trips, deprecation shims)."""

import importlib
import inspect
import pkgutil
import warnings

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.core",
    "repro.data",
    "repro.io",
    "repro.machine",
    "repro.mesh",
    "repro.morse",
    "repro.parallel",
]


def _public_members(mod):
    names = getattr(mod, "__all__", None)
    if names is None:
        names = [n for n in vars(mod) if not n.startswith("_")]
    for name in names:
        yield name, getattr(mod, name)


@pytest.mark.parametrize("pkg", PACKAGES)
def test_all_exports_resolve(pkg):
    mod = importlib.import_module(pkg)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{pkg}.__all__ lists missing {name}"


@pytest.mark.parametrize("pkg", PACKAGES)
def test_package_docstrings(pkg):
    mod = importlib.import_module(pkg)
    assert mod.__doc__ and mod.__doc__.strip(), f"{pkg} lacks a docstring"


def _walk_modules():
    for pkg in PACKAGES:
        mod = importlib.import_module(pkg)
        if hasattr(mod, "__path__"):
            for info in pkgutil.iter_modules(mod.__path__):
                yield importlib.import_module(f"{pkg}.{info.name}")
        else:
            yield mod


def test_every_module_documented():
    undocumented = [
        m.__name__ for m in _walk_modules()
        if not (m.__doc__ and m.__doc__.strip())
    ]
    assert not undocumented, undocumented


def test_public_functions_and_classes_documented():
    missing = []
    for mod in _walk_modules():
        if not mod.__name__.startswith("repro"):
            continue
        for name, obj in _public_members(mod):
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if getattr(obj, "__module__", "").startswith("repro"):
                    if not (obj.__doc__ and obj.__doc__.strip()):
                        missing.append(f"{mod.__name__}.{name}")
    assert not missing, f"undocumented public items: {sorted(set(missing))}"


def test_version_exposed():
    assert repro.__version__ == "1.0.0"


def test_top_level_quickstart_names():
    # the README quickstart must keep working
    assert callable(repro.compute)
    assert callable(repro.compute_morse_smale_complex)
    assert callable(repro.ParallelMSComplexPipeline)
    assert callable(repro.PipelineConfig)


def test_top_level_all_is_curated_and_sorted():
    public = repro.__all__
    assert "compute" in public and "api" in public
    names = [n for n in public if not n.startswith("_")]
    assert names == sorted(names)


# ---------------------------------------------------------------------------
# the repro.api facade
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def facade_field():
    from repro.data.synthetic import gaussian_bumps_field

    return gaussian_bumps_field((17, 17, 17), 5, seed=4)


class TestFacade:
    def test_serial_route_returns_pipeline_result(self, facade_field):
        res = repro.compute(facade_field, persistence=0.05)
        assert isinstance(res, repro.PipelineResult)
        assert res.num_output_blocks == 1
        assert res.stats.num_blocks == 1
        assert res.stats.executor == "serial"
        assert res.stats.workers == 1
        assert res.stats.merge_round_times() == []

    def test_serial_route_matches_legacy_entry_point(self, facade_field):
        legacy = repro.compute_morse_smale_complex(
            facade_field, persistence_threshold=0.05
        )
        facade = repro.compute(facade_field, persistence=0.05)
        assert (
            facade.merged_complexes[0].node_counts_by_index()
            == legacy.node_counts_by_index()
        )

    def test_pipeline_route_matches_legacy_pipeline(self, facade_field):
        from repro.core.merge import pack_complex

        cfg = repro.PipelineConfig(
            num_blocks=8, persistence_threshold=0.05, max_radix=8
        )
        legacy = repro.ParallelMSComplexPipeline(cfg).run(facade_field)
        facade = repro.compute(
            facade_field, persistence=0.05, ranks=8, merge_radix=8
        )
        assert pack_complex(facade.merged_complexes[0]) == pack_complex(
            legacy.merged_complexes[0]
        )

    @pytest.mark.slow
    def test_workers_do_not_change_bits(self, facade_field):
        from repro.core.merge import pack_complex

        serial = repro.compute(facade_field, persistence=0.05, ranks=8)
        pooled = repro.compute(
            facade_field, persistence=0.05, ranks=8,
            options=repro.ExecutionOptions(workers=2),
        )
        assert pooled.stats.executor == "process"
        assert pack_complex(pooled.merged_complexes[0]) == pack_complex(
            serial.merged_complexes[0]
        )

    def test_merge_radix_forms(self, facade_field):
        none = repro.compute(
            facade_field, persistence=0.05, ranks=8, merge_radix="none"
        )
        assert none.num_output_blocks == 8
        partial = repro.compute(
            facade_field, persistence=0.05, ranks=8, merge_radix=[2]
        )
        assert partial.num_output_blocks == 4
        radix2 = repro.compute(
            facade_field, persistence=0.05, ranks=8, merge_radix=2
        )
        assert radix2.num_output_blocks == 1
        assert radix2.stats.radices == [2, 2, 2]

    def test_volume_spec_input(self, facade_field, tmp_path):
        from repro.io.volume import write_volume

        spec = write_volume(tmp_path / "f.raw", facade_field,
                            dtype="float64")
        res = repro.compute(spec, persistence=0.05, ranks=8)
        ref = repro.compute(facade_field, persistence=0.05, ranks=8)
        assert (
            res.merged_complexes[0].node_counts_by_index()
            == ref.merged_complexes[0].node_counts_by_index()
        )

    def test_keyword_only_and_validation(self, facade_field):
        with pytest.raises(TypeError):
            repro.compute(facade_field, 0.05)  # options are keyword-only
        with pytest.raises(ValueError):
            repro.compute(facade_field, ranks=0)
        with pytest.raises(ValueError):
            repro.compute(
                facade_field, options=repro.ExecutionOptions(workers=0)
            )
        with pytest.raises(ValueError):
            repro.compute(facade_field, merge_radix=3)
        with pytest.raises(ValueError):
            repro.compute(facade_field, merge_radix="full-ish")

    def test_result_write_round_trip(self, facade_field, tmp_path):
        from repro.io.mscfile import read_msc_file
        from repro.morse.msc import MorseSmaleComplex

        res = repro.compute(facade_field, persistence=0.05, ranks=8)
        path = tmp_path / "facade.msc"
        res.write(path)
        blocks = read_msc_file(path)
        assert len(blocks) == 1
        msc = MorseSmaleComplex.from_payload(blocks[0])
        assert (
            msc.node_counts_by_index()
            == res.merged_complexes[0].node_counts_by_index()
        )


# ---------------------------------------------------------------------------
# ExecutionOptions: the grouped execution-knob surface
# ---------------------------------------------------------------------------


class TestExecutionOptions:
    def test_defaults_and_round_trip(self):
        opts = repro.ExecutionOptions()
        assert opts.workers == 1
        assert opts.executor == "auto"
        assert opts.merge_executor == "auto"
        assert opts.transport == "auto"
        assert opts.kernel_backend == "auto"
        cfg = repro.PipelineConfig(num_blocks=8, options=opts)
        assert cfg.execution_options == opts

    def test_options_is_frozen(self):
        import dataclasses

        opts = repro.ExecutionOptions()
        with pytest.raises(dataclasses.FrozenInstanceError):
            opts.workers = 4

    def test_config_accepts_options_bundle(self):
        opts = repro.ExecutionOptions(workers=2, transport="shm",
                                      kernel_backend="pointer",
                                      retry_backoff=0.0)
        cfg = repro.PipelineConfig(num_blocks=8, options=opts)
        assert cfg.workers == 2
        assert cfg.transport == "shm"
        assert cfg.kernel_backend == "pointer"
        assert cfg.retry_backoff == 0.0
        assert cfg.execution_options == opts

    def test_config_rejects_options_plus_flat(self):
        with pytest.raises(TypeError, match="both options="):
            repro.PipelineConfig(
                num_blocks=8, workers=2,
                options=repro.ExecutionOptions(workers=2),
            )

    def test_config_rejects_non_options_value(self):
        with pytest.raises(TypeError, match="ExecutionOptions"):
            repro.PipelineConfig(num_blocks=8, options={"workers": 2})

    @pytest.mark.parametrize(
        "knob", ["executor", "merge_executor", "transport",
                 "kernel_backend"]
    )
    def test_choice_knobs_validate_early(self, knob):
        with pytest.raises(ValueError, match="choose one of"):
            repro.ExecutionOptions(**{knob: "bogus"})
        with pytest.raises(ValueError, match="choose one of"):
            repro.PipelineConfig(num_blocks=8, **{knob: "bogus"})

    def test_compute_both_spellings_bit_identical(self, facade_field):
        from repro.core.merge import pack_complex

        grouped = repro.compute(
            facade_field, persistence=0.05, ranks=8,
            options=repro.ExecutionOptions(retry_backoff=0.0),
        )
        with pytest.warns(DeprecationWarning, match="retry_backoff"):
            flat = repro.compute(
                facade_field, persistence=0.05, ranks=8,
                retry_backoff=0.0,
            )
        assert pack_complex(grouped.merged_complexes[0]) == pack_complex(
            flat.merged_complexes[0]
        )

    def test_compute_flat_keywords_warn(self, facade_field):
        with pytest.warns(DeprecationWarning, match="workers"):
            repro.compute(facade_field, persistence=0.05, workers=1)

    def test_compute_options_spelling_does_not_warn(self, facade_field):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.compute(facade_field, persistence=0.05,
                          options=repro.ExecutionOptions())

    def test_compute_rejects_options_plus_flat(self, facade_field):
        with pytest.raises(TypeError, match="both options="):
            repro.compute(
                facade_field, persistence=0.05, workers=2,
                options=repro.ExecutionOptions(workers=2),
            )


# ---------------------------------------------------------------------------
# deprecation shims (one-release compatibility)
# ---------------------------------------------------------------------------


class TestDeprecationShims:
    def test_positional_options_warn_but_work(self, facade_field):
        with pytest.warns(DeprecationWarning, match="positionally"):
            legacy = repro.compute_morse_smale_complex(facade_field, 0.05)
        modern = repro.compute_morse_smale_complex(
            facade_field, persistence_threshold=0.05
        )
        assert legacy.node_counts_by_index() == modern.node_counts_by_index()

    def test_too_many_positionals_raise(self, facade_field):
        with pytest.raises(TypeError):
            repro.compute_morse_smale_complex(
                facade_field, 0.05, True, False, "extra"
            )

    def test_keyword_use_does_not_warn(self, facade_field):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.compute_morse_smale_complex(
                facade_field, persistence_threshold=0.05, simplify=True
            )

    @pytest.mark.parametrize(
        "alias,canonical,value",
        [
            ("persistence", "persistence_threshold", 0.25),
            ("blocks", "num_blocks", 8),
            ("procs", "num_procs", 2),
        ],
    )
    def test_config_field_aliases_warn_and_map(self, alias, canonical, value):
        kwargs = {alias: value}
        if alias != "blocks":
            kwargs["num_blocks"] = 8
        with pytest.warns(DeprecationWarning, match=alias):
            cfg = repro.PipelineConfig(**kwargs)
        assert getattr(cfg, canonical) == value

    def test_alias_conflict_raises(self):
        with pytest.raises(TypeError):
            repro.PipelineConfig(num_blocks=8, blocks=8)

    def test_canonical_config_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.PipelineConfig(num_blocks=8, persistence_threshold=0.1)


# ---------------------------------------------------------------------------
# the hierarchy knob and the multiscale query surface
# ---------------------------------------------------------------------------


class TestHierarchyKnob:
    def test_default_off(self, facade_field):
        res = repro.compute(
            facade_field, persistence=0.05,
            options=repro.ExecutionOptions(),
        )
        assert res.hierarchies is None

    def test_options_spelling(self, facade_field):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            res = repro.compute(
                facade_field, persistence=0.05,
                options=repro.ExecutionOptions(hierarchy=True),
            )
        assert set(res.hierarchies) == set(res.output_blocks)
        assert all(h.num_levels >= 0 for h in res.hierarchies.values())

    def test_flat_spelling_warns_and_works(self, facade_field):
        with pytest.warns(DeprecationWarning, match="hierarchy"):
            res = repro.compute(facade_field, persistence=0.05,
                                hierarchy=True)
        assert res.hierarchies is not None

    def test_both_spellings_rejected(self, facade_field):
        with pytest.raises(TypeError, match="both options="):
            repro.compute(
                facade_field, persistence=0.05, hierarchy=True,
                options=repro.ExecutionOptions(hierarchy=True),
            )

    def test_config_spelling(self, facade_field):
        cfg = repro.PipelineConfig(num_blocks=1, persistence_threshold=0.05,
                                   hierarchy=True)
        res = repro.ParallelMSComplexPipeline(cfg).run(facade_field)
        assert res.hierarchies is not None
        assert cfg.execution_options.hierarchy is True

    def test_knob_is_additive(self, facade_field):
        """hierarchy=True never changes the complex by a byte."""
        from repro.core.merge import pack_complex

        plain = repro.compute(
            facade_field, persistence=0.05, ranks=4,
            options=repro.ExecutionOptions(retry_backoff=0.0),
        )
        with_h = repro.compute(
            facade_field, persistence=0.05, ranks=4,
            options=repro.ExecutionOptions(retry_backoff=0.0,
                                           hierarchy=True),
        )
        assert pack_complex(plain.merged_complexes[0]) == pack_complex(
            with_h.merged_complexes[0]
        )


class TestQuerySurface:
    def test_exported_at_top_level(self):
        assert repro.query is repro.api.query
        assert repro.load_hierarchy is repro.api.load_hierarchy
        assert "query" in repro.__all__
        assert "load_hierarchy" in repro.__all__

    def test_end_to_end(self, facade_field, tmp_path):
        res = repro.compute(
            facade_field, persistence=0.05,
            options=repro.ExecutionOptions(hierarchy=True),
        )
        path = tmp_path / "h.msc"
        res.write(str(path))
        hierarchies = repro.load_hierarchy(str(path))
        assert set(hierarchies) == set(res.hierarchies)
        answer = repro.query(str(path), persistence=0.1)
        assert answer.num_nodes >= 1
        assert answer.to_dict()["persistence"] == 0.1

    def test_query_selector_validation(self, facade_field, tmp_path):
        res = repro.compute(
            facade_field, persistence=0.05,
            options=repro.ExecutionOptions(hierarchy=True),
        )
        path = tmp_path / "h.msc"
        res.write(str(path))
        with pytest.raises(ValueError, match="exactly one"):
            repro.query(str(path))
        with pytest.raises(ValueError, match="exactly one"):
            repro.query(str(path), persistence=0.1, top_k=1)

    def test_write_without_hierarchy_then_query_errors(
        self, facade_field, tmp_path
    ):
        res = repro.compute(facade_field, persistence=0.05)
        path = tmp_path / "v1.msc"
        res.write(str(path))
        with pytest.raises(ValueError, match="no hierarchy recorded"):
            repro.query(str(path), persistence=0.1)
