"""Meta tests: public API surface and documentation coverage."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.core",
    "repro.data",
    "repro.io",
    "repro.machine",
    "repro.mesh",
    "repro.morse",
    "repro.parallel",
]


def _public_members(mod):
    names = getattr(mod, "__all__", None)
    if names is None:
        names = [n for n in vars(mod) if not n.startswith("_")]
    for name in names:
        yield name, getattr(mod, name)


@pytest.mark.parametrize("pkg", PACKAGES)
def test_all_exports_resolve(pkg):
    mod = importlib.import_module(pkg)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{pkg}.__all__ lists missing {name}"


@pytest.mark.parametrize("pkg", PACKAGES)
def test_package_docstrings(pkg):
    mod = importlib.import_module(pkg)
    assert mod.__doc__ and mod.__doc__.strip(), f"{pkg} lacks a docstring"


def _walk_modules():
    for pkg in PACKAGES:
        mod = importlib.import_module(pkg)
        if hasattr(mod, "__path__"):
            for info in pkgutil.iter_modules(mod.__path__):
                yield importlib.import_module(f"{pkg}.{info.name}")
        else:
            yield mod


def test_every_module_documented():
    undocumented = [
        m.__name__ for m in _walk_modules()
        if not (m.__doc__ and m.__doc__.strip())
    ]
    assert not undocumented, undocumented


def test_public_functions_and_classes_documented():
    missing = []
    for mod in _walk_modules():
        if not mod.__name__.startswith("repro"):
            continue
        for name, obj in _public_members(mod):
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if getattr(obj, "__module__", "").startswith("repro"):
                    if not (obj.__doc__ and obj.__doc__.strip()):
                        missing.append(f"{mod.__name__}.{name}")
    assert not missing, f"undocumented public items: {sorted(set(missing))}"


def test_version_exposed():
    assert repro.__version__ == "1.0.0"


def test_top_level_quickstart_names():
    # the README quickstart must keep working
    assert callable(repro.compute_morse_smale_complex)
    assert callable(repro.ParallelMSComplexPipeline)
    assert callable(repro.PipelineConfig)
