"""The JSON-over-HTTP daemon front end (repro.service.server).

Drives a real :class:`ServiceServer` on a loopback port through stdlib
``urllib`` only: every route, plus the error mapping (400 bad request,
404 unknown, 409 failed job, 504 wait timeout).  The daemon delegates
to the same :class:`ServiceClient` the in-process tests drive, so these
tests pin the HTTP translation layer, not the engine again.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.io.volume import write_volume
from repro.service import ServiceClient, make_server


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """One live daemon for the whole module (startup is the slow part)."""
    root = tmp_path_factory.mktemp("service-http")
    field = np.random.default_rng(7).random((8, 8, 8))
    spec = write_volume(root / "field.raw", field, dtype="float64")
    client = ServiceClient(root / "cache", max_jobs=1)
    server = make_server(client, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        yield base, spec
    finally:
        server.shutdown_service()
        thread.join(timeout=10)


def _get(base: str, path: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(base + path, timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(base: str, path: str, body: dict) -> tuple[int, dict]:
    req = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=120) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _submit_body(spec, **extra) -> dict:
    body = {
        "volume": {
            "path": spec.path,
            "dims": list(spec.dims),
            "dtype": spec.dtype,
        },
        "persistence": 0.05,
        "ranks": 2,
        "hierarchy": True,
        "wait": True,
    }
    body.update(extra)
    return body


def test_healthz(service):
    base, _ = service
    assert _get(base, "/v1/healthz") == (200, {"ok": True})


def test_submit_then_status_result_and_cache_hit(service):
    base, spec = service

    status, cold = _post(base, "/v1/submit", _submit_body(spec))
    assert status == 200
    assert cold["state"] == "done" and cold["cached"] is False
    assert cold["result"]["node_counts"]

    status, job = _get(base, f"/v1/jobs/{cold['job_id']}")
    assert status == 200 and job["state"] == "done"

    status, result = _get(base, f"/v1/jobs/{cold['job_id']}/result")
    assert status == 200
    assert result["result"] == cold["result"]
    assert result["artifact"].endswith(".msc")

    # identical resubmission: answered from the cache, new job id
    status, warm = _post(base, "/v1/submit", _submit_body(spec))
    assert status == 200
    assert warm["cached"] is True and warm["source"] == "cache"
    assert warm["job_id"] != cold["job_id"]
    assert warm["result"] == cold["result"]

    status, listing = _get(base, "/v1/jobs")
    assert status == 200
    ids = [j["job_id"] for j in listing["jobs"]]
    assert cold["job_id"] in ids and warm["job_id"] in ids


def test_query_sweep_and_stats(service):
    base, spec = service
    _, cold = _post(base, "/v1/submit", _submit_body(spec))
    key = cold["key"]

    status, sweep = _get(
        base, f"/v1/query?key={key}&persistence=0.01&persistence=0.2"
    )
    assert status == 200 and sweep["key"] == key
    totals = [
        sum(q["node_counts_by_index"]) for q in sweep["queries"]
    ]
    assert len(totals) == 2 and totals[0] >= totals[1] > 0

    status, top = _get(base, f"/v1/query?key={key}&top_k=3")
    assert status == 200 and len(top["queries"]) == 1

    status, stats = _get(base, "/v1/stats")
    assert status == 200
    assert 0.0 < stats["cache_hit_rate"] <= 1.0
    assert "service.http.submit.seconds" in stats["metrics"]


def test_error_mapping(service):
    base, spec = service

    # 400: malformed body / missing volume / bad options / bad query
    assert _post(base, "/v1/submit", {"nope": 1})[0] == 400
    status, err = _post(
        base, "/v1/submit", _submit_body(spec, options={"workers": "zzz"})
    )
    assert status == 400 and "options" in err["error"]
    key = "irrelevant"
    assert _get(base, f"/v1/query?key={key}")[0] == 400
    assert _get(
        base, f"/v1/query?key={key}&persistence=0.1&top_k=2"
    )[0] == 400

    # 404: unknown job, unknown route
    assert _get(base, "/v1/jobs/job-999999")[0] == 404
    assert _get(base, "/v1/nothing")[0] == 404

    # 404 via query of an unknown key (KeyError from the store)
    assert _get(base, "/v1/query?key=absent&persistence=0.1")[0] == 404

    # 400: an unreadable volume is rejected at admission (the content
    # hash needs the bytes), before any job exists
    body = _submit_body(spec)
    body["volume"]["path"] = spec.path + ".missing"
    status, err = _post(base, "/v1/submit", body)
    assert status == 400 and "volume" in err["error"]


def test_failed_job_result_is_409(service):
    base, spec = service

    # a microsecond per-job budget fails the job (readably), while the
    # submit request itself succeeds — the 200/409 split the API pins
    status, job = _post(
        base, "/v1/submit",
        _submit_body(spec, persistence=0.31, timeout=1e-6),
    )
    assert status == 200 and job["state"] == "failed"
    assert "timed out" in job["error"]

    status, err = _get(base, f"/v1/jobs/{job['job_id']}/result")
    assert status == 409
    assert job["job_id"] in err["error"]
