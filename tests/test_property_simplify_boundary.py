"""Property-based test of the boundary invariant of §IV-E.

"Arcs with a boundary endpoint are never cancelled": in the per-block
parallel setting, critical points on internal cut planes are the handles
later merge rounds glue along, so persistence simplification with
``respect_boundary=True`` must leave every boundary node alive and never
record a cancellation incident to one — at *any* threshold, on *any*
input.  This fuzzes synthetic volumes and thresholds to pin that down.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.cubical import CubicalComplex
from repro.mesh.grid import StructuredGrid
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.simplify import simplify_ms_complex
from repro.morse.tracing import extract_ms_complex
from repro.parallel.decomposition import decompose


def block_complex(field: np.ndarray, num_blocks: int, bid: int):
    """One block's unsimplified MS complex, exactly as the pipeline's
    compute stage builds it (boundary flags from the cut planes)."""
    decomp = decompose(field.shape, num_blocks)
    grid = StructuredGrid(field)
    box = decomp.block_box(decomp.block_coords(bid))
    cx = CubicalComplex(
        np.array(grid.extract_block(box), dtype=np.float64),
        refined_origin=box.refined_origin,
        global_refined_dims=decomp.global_refined_dims,
        cut_planes=decomp.cut_planes,
    )
    return extract_ms_complex(compute_discrete_gradient(cx))


def boundary_addresses(msc) -> set[int]:
    return {
        msc.node_address[n]
        for n in msc.alive_nodes()
        if msc.node_boundary[n]
    }


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    threshold=st.floats(min_value=0.0, max_value=1.2),
    num_blocks=st.sampled_from([2, 4, 8]),
)
def test_simplification_never_cancels_boundary_nodes(
    seed, threshold, num_blocks
):
    field = np.random.default_rng(seed).random((9, 9, 9))
    # corner blocks see the most cut planes; check first and last
    for bid in (0, num_blocks - 1):
        msc = block_complex(field, num_blocks, bid)
        boundary = boundary_addresses(msc)
        assert boundary, "cut planes must induce boundary nodes"
        address_of = list(msc.node_address)  # pre-compaction ids
        cancels = simplify_ms_complex(
            msc, threshold, respect_boundary=True
        )
        for c in cancels:
            assert c.upper_address not in boundary
            assert c.lower_address not in boundary
            for nid in c.killed_nodes:
                assert address_of[nid] not in boundary
        # every boundary node survives, bit-for-bit the same set
        assert boundary_addresses(msc) == boundary


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_infinite_threshold_still_respects_boundary(seed):
    """Even a threshold above the global range cancels no boundary node."""
    field = np.random.default_rng(seed).random((7, 7, 7))
    msc = block_complex(field, 8, 0)
    boundary = boundary_addresses(msc)
    simplify_ms_complex(msc, float(np.inf), respect_boundary=True)
    assert boundary_addresses(msc) == boundary


def test_invariant_is_sharp_without_boundary_protection():
    """Sanity: with respect_boundary=False the same input *does* cancel
    boundary nodes — the property above is not vacuously true."""
    field = np.random.default_rng(3).random((9, 9, 9))
    protected = block_complex(field, 8, 0)
    unprotected = block_complex(field, 8, 0)
    before = boundary_addresses(protected)
    simplify_ms_complex(protected, float(np.inf), respect_boundary=True)
    simplify_ms_complex(unprotected, float(np.inf), respect_boundary=False)
    assert boundary_addresses(protected) == before
    assert boundary_addresses(unprotected) != before
