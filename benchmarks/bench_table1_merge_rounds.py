"""Table I: cost of merging 2048 blocks (paper §VI-C1).

The paper merges 2048 input blocks across 2048 processes with the full
schedule [4, 8, 8, 8], then repeats with only the first 1, 2, 3 rounds.
Reading the final-round column top to bottom gives each round's
individual cost, showing that "as merging progresses, it becomes more
expensive, because MS complex blocks grow larger, take longer to
communicate, and gravitate toward fewer processes".

This reproduction runs the same schedule prefixes on a real 2048-block
decomposition (tiny blocks) and reports virtual merge seconds.  The
asserted shape: per-round cost increases monotonically and the last
round dominates the full merge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import sinusoidal_field
from bench_util import emit_table, run_pipeline

NUM_BLOCKS = 2048
SPLITS = (16, 16, 8)
DIMS = (33, 33, 17)
SCHEDULE_PREFIXES = ([4], [4, 8], [4, 8, 8], [4, 8, 8, 8])


@pytest.fixture(scope="module")
def merge_runs():
    field = sinusoidal_field(0, 4, dims=DIMS).astype(np.float64)
    runs = []
    for radices in SCHEDULE_PREFIXES:
        res = run_pipeline(
            field,
            num_blocks=NUM_BLOCKS,
            splits=SPLITS,
            persistence_threshold=0.05,
            merge_radices=radices,
        )
        runs.append((radices, res))
    return runs


def bench_table1_cost_of_each_round(merge_runs, benchmark):
    lines = [
        f"{'Rounds':>6} {'Radices':>10} {'Total Merge Time (s)':>21} "
        f"{'Final Round Merge Time (s)':>27}"
    ]
    totals, finals = [], []
    for radices, res in merge_runs:
        rounds = res.stats.merge_round_times()
        total = sum(rounds)
        final = rounds[-1]
        totals.append(total)
        finals.append(final)
        lines.append(
            f"{len(radices):>6} {' '.join(map(str, radices)):>10} "
            f"{total:>21.4f} {final:>27.4f}"
        )
    emit_table("table1_merge_rounds", lines)

    def check():
        # each added round costs more than the one before it
        assert all(b > a for a, b in zip(finals, finals[1:])), finals
        # totals accumulate monotonically
        assert all(b > a for a, b in zip(totals, totals[1:])), totals
        # the paper's Table I: the final (4th) round dominates the total
        assert finals[-1] > 0.5 * totals[-1], (finals[-1], totals[-1])

    benchmark.pedantic(check, rounds=1, iterations=1)
