"""Figure 9: strong scaling on the Jet mixture fraction dataset (§VI-D1).

The paper computes a full merge of the JET combustion volume
(768x896x512) from 32 to 8192 processes and plots total time plus the
read / compute / merge / write components: "At small numbers of
processes, time is dominated by computing, and at higher numbers of
processes by merging"; end-to-end strong-scaling efficiency is 35% at
2048 and 13% at 8192 processes — deliberately a worst case ("the object
of this test is to evaluate the worst-case performance").

This reproduction runs the JET proxy (see DESIGN.md) at 1/16 scale per
axis over a 16x process range with the same full-merge radix-8-preferred
schedule, reports the same series in virtual Blue Gene/P seconds, and
asserts the shape conclusions: compute dominates at low process counts,
merge at high ones, compute scales near-linearly, merge time grows, and
end-to-end efficiency decays well below compute-stage efficiency.
"""

from __future__ import annotations

import pytest

from repro.data.datasets import jet_mixture_fraction_proxy
from bench_util import emit_table, run_pipeline, strong_scaling_efficiency

DIMS = (48, 56, 32)  # paper: 768 x 896 x 512
PROCS = (4, 8, 16, 32, 64)  # paper: 32 .. 8192
THRESHOLD = 0.02


@pytest.fixture(scope="module")
def scaling_runs():
    field = jet_mixture_fraction_proxy(DIMS)
    runs = []
    for p in PROCS:
        res = run_pipeline(
            field,
            num_blocks=p,
            persistence_threshold=THRESHOLD,
            merge_radices="full" if p > 1 else "none",
        )
        assert res.num_output_blocks == 1
        runs.append((p, res))
    return runs


def bench_fig9_jet_strong_scaling(scaling_runs, benchmark):
    lines = [
        f"{'procs':>6} {'read':>8} {'compute':>9} {'merge':>8} "
        f"{'write':>8} {'total':>9} {'efficiency':>11} {'schedule':>14}"
    ]
    totals, computes, merges = [], [], []
    for p, res in scaling_runs:
        s = res.stats.stage_breakdown()
        totals.append(s["total"])
        computes.append(s["compute"])
        merges.append(s["merge"])
        eff = strong_scaling_efficiency(
            [scaling_runs[0][1].stats.total_time, s["total"]],
            [PROCS[0], p],
        )[1]
        lines.append(
            f"{p:>6} {s['read']:>8.3f} {s['compute']:>9.3f} "
            f"{s['merge']:>8.3f} {s['write']:>8.3f} {s['total']:>9.3f} "
            f"{eff:>11.2f} {res.schedule.describe():>14}"
        )
    emit_table("fig9_jet_strong_scaling", lines)

    def check():
        # compute stage scales near-linearly (weak link: none)
        ratio = computes[0] / computes[-1]
        assert ratio > (PROCS[-1] / PROCS[0]) * 0.5, computes
        # compute dominates at low process counts
        assert computes[0] > merges[0], (computes[0], merges[0])
        # merge dominates (or rivals) compute at the highest count
        assert merges[-1] > computes[-1], (merges[-1], computes[-1])
        # merge time grows with process count under a full merge
        assert merges[-1] > merges[0], merges
        # total time still decreases from the base, but efficiency < 1
        assert totals[-1] < totals[0]
        effs = strong_scaling_efficiency(totals, list(PROCS))
        assert effs[-1] < 0.7, effs  # flat scaling at high counts

    benchmark.pedantic(check, rounds=1, iterations=1)
