"""§V-B: the MS complex size model ``k*c + k*n^(1/3)``.

"The cost of storing the geometric embedding of the arcs was directly
proportional to the length of one side of the dataset. ... we can
estimate the storage requirements of the MS complex with
``k*c + k*n^(1/3)``, where k is the expected number of features and c is
a constant that represents the cost of storing one node or one arc."

This bench measures output sizes of the sinusoidal family and fits the
two dependencies: geometry bytes grow linearly with the side length
(``n^(1/3)``) at fixed feature count, and total size grows with the
feature count at fixed side length.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import compute_morse_smale_complex
from repro.data.synthetic import sinusoidal_field
from repro.morse.msc import GEOM_ADDRESS_BYTES
from bench_util import emit_table

SIDES = (17, 25, 33, 49)
COMPLEXITIES = (2, 4, 8)
FIXED_K = 2
FIXED_SIDE = 33


@pytest.fixture(scope="module")
def size_measurements():
    by_side = {}
    for n in SIDES:
        f = sinusoidal_field(n, FIXED_K).astype(np.float64)
        msc = compute_morse_smale_complex(f, persistence_threshold=0.05)
        by_side[n] = msc
    by_k = {}
    for k in COMPLEXITIES:
        f = sinusoidal_field(FIXED_SIDE, k).astype(np.float64)
        msc = compute_morse_smale_complex(f, persistence_threshold=0.05)
        by_k[k] = msc
    return by_side, by_k


def bench_size_model(size_measurements, benchmark):
    by_side, by_k = size_measurements
    lines = [
        "geometry vs side length (fixed complexity "
        f"k={FIXED_K}):",
        f"{'side':>6} {'nodes':>6} {'arcs':>6} {'geom cells':>11} "
        f"{'total bytes':>12}",
    ]
    geom_bytes = []
    for n in SIDES:
        msc = by_side[n]
        g = msc.total_geometry_length() * GEOM_ADDRESS_BYTES
        geom_bytes.append(g)
        lines.append(
            f"{n:>6} {msc.num_alive_nodes():>6} {msc.num_alive_arcs():>6} "
            f"{msc.total_geometry_length():>11} {msc.nbytes():>12}"
        )
    lines.append("")
    lines.append(f"size vs complexity (fixed side {FIXED_SIDE}):")
    lines.append(
        f"{'k':>4} {'nodes':>6} {'arcs':>6} {'geom cells':>11} "
        f"{'total bytes':>12}"
    )
    for k in COMPLEXITIES:
        msc = by_k[k]
        lines.append(
            f"{k:>4} {msc.num_alive_nodes():>6} {msc.num_alive_arcs():>6} "
            f"{msc.total_geometry_length():>11} {msc.nbytes():>12}"
        )
    # fit geometry ~ side^alpha; the paper's model says alpha ~ 1
    alpha = np.polyfit(np.log(SIDES), np.log(geom_bytes), 1)[0]
    lines.append("")
    lines.append(f"fitted exponent: geometry_bytes ~ side^{alpha:.2f} "
                 "(paper model: ~1, i.e. n^(1/3))")
    emit_table("size_model", lines)

    def check():
        # geometry term ~ linear in side length (allow discretization slop)
        assert 0.6 < alpha < 1.6, alpha
        # node/arc counts roughly constant across sides at fixed k
        node_counts = [by_side[n].num_alive_nodes() for n in SIDES]
        assert max(node_counts) <= 3 * min(node_counts), node_counts
        # size grows with feature count at fixed side
        sizes = [by_k[k].nbytes() for k in COMPLEXITIES]
        assert sizes[0] < sizes[1] < sizes[2], sizes

    benchmark.pedantic(check, rounds=1, iterations=1)
