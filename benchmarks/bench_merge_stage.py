"""Merge-stage benchmark: glue, re-simplify, and round wall times.

Times the three layers the merge-stage overhaul touches, against block
count and radix:

- ``glue_*``: the boundary-join kernel (:func:`repro.core.glue.glue_into`)
  gluing two half-domain complexes, and a radix-8 root absorbing all
  seven members plus the boundary-flag update;
- ``resimplify_radix8``: re-simplification of the radix-8 root after the
  glue (the incremental-seeding target);
- ``merge_stage_*``: real merge-stage wall of full pipeline runs — the
  sum of per-merge-event seconds — over three schedules (16 blocks in
  four radix-2 rounds, 16 blocks in two radix-4 rounds, 8 blocks in one
  radix-8 round).

Run directly for the machine-readable before/after record::

    PYTHONPATH=src python benchmarks/bench_merge_stage.py          # full
    PYTHONPATH=src python benchmarks/bench_merge_stage.py --smoke  # CI

The full run regenerates the repo-root ``BENCH_merge_stage.json``;
``--smoke`` runs a scaled-down single-rep pass and only sanity-checks
that every timer produced a finite, positive number.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.glue import AddressIndex, glue_into
from repro.core.merge import pack_complex, unpack_complex
from repro.core.pipeline import ParallelMSComplexPipeline
from repro.data.synthetic import gaussian_bumps_field
from repro.mesh.cubical import CubicalComplex
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.simplify import simplify_ms_complex
from repro.morse.tracing import extract_ms_complex
from repro.parallel.decomposition import decompose

#: the bench field: large enough that merge-stage time is dominated by
#: glue + re-simplification, mild noise (heavy noise drives the
#: documented quadratic hub stress case, not a representative timing)
DIMS = (32, 32, 32)
PERS = 0.05

#: pipeline merge-stage configurations: (name, num_blocks, radices)
STAGE_CONFIGS = [
    ("multi_round_b16_r2", 16, [2, 2, 2, 2]),
    ("radix4_b16", 16, [4, 4]),
    ("single_round_b8_r8", 8, [8]),
]

#: merge-stage timings of this exact harness measured immediately before
#: the merge-stage overhaul (dict-based glue loop, full-reheap
#: re-simplification, double-packed write stage); min over reps on the
#: same single-core host.  The acceptance gate compares
#: ``merge_stage_multi_round_b16_r2_s`` against this record.
PRE_PR_BASELINE = {
    "glue_radix8_s": 0.014704007000545971,
    "glue_two_blocks_s": 0.005317619999914314,
    "merge_stage_multi_round_b16_r2_s": 0.43947524900067947,
    "merge_stage_radix4_b16_s": 0.36609968499942624,
    "merge_stage_single_round_b8_r8_s": 0.15970109299996693,
    "resimplify_radix8_s": 0.07333446200027538,
}


def bench_field(dims=DIMS) -> np.ndarray:
    return gaussian_bumps_field(dims, 10, seed=1, noise=0.005)


def block_complexes(field: np.ndarray, splits: tuple[int, int, int]):
    """Per-block simplified+compacted complexes, as the compute stage
    hands them to the merge stage."""
    decomp = decompose(
        field.shape, int(np.prod(splits)), splits=splits
    )
    out = []
    for b in range(decomp.num_blocks):
        box = decomp.block_box(decomp.block_coords(b))
        cx = CubicalComplex(
            field[box.slices()],
            refined_origin=box.refined_origin,
            global_refined_dims=decomp.global_refined_dims,
            cut_planes=decomp.cut_planes,
        )
        msc = extract_ms_complex(compute_discrete_gradient(cx))
        simplify_ms_complex(msc, PERS, respect_boundary=True)
        msc.compact()
        out.append(msc)
    return out


def measure_glue_kernels(field: np.ndarray, reps: int = 7) -> dict:
    """Glue and re-simplify kernel timings (min over ``reps``).

    Same operations the baseline timed, on the current implementations:
    gluing uses the pipeline's sorted address index, the radix-8 root
    re-simplify seeds from the disturbed-node set exactly as
    :func:`repro.core.merge.perform_merge` does.
    """
    out = {}
    blobs2 = [pack_complex(p) for p in block_complexes(field, (2, 1, 1))]
    best = float("inf")
    for _ in range(reps):
        root, other = unpack_complex(blobs2[0]), unpack_complex(blobs2[1])
        idx = AddressIndex.from_complex(root)
        t0 = time.perf_counter()
        glue_into(root, other, idx)
        best = min(best, time.perf_counter() - t0)
    out["glue_two_blocks_s"] = best

    blobs8 = [pack_complex(p) for p in block_complexes(field, (2, 2, 2))]
    no_cuts = tuple(np.array([], dtype=np.int64) for _ in range(3))
    best_glue = best_simp = float("inf")
    for _ in range(reps):
        root = unpack_complex(blobs8[0])
        incoming = [unpack_complex(b) for b in blobs8[1:]]
        touched: set[int] = set()
        t0 = time.perf_counter()
        idx = AddressIndex.from_complex(root)
        for o in incoming:
            glue_into(root, o, idx, touched=touched)
        freed = root.update_boundary_flags(no_cuts, return_ids=True)
        t1 = time.perf_counter()
        touched.update(freed)
        simplify_ms_complex(
            root, PERS, respect_boundary=True, seed_nodes=touched
        )
        t2 = time.perf_counter()
        best_glue = min(best_glue, t1 - t0)
        best_simp = min(best_simp, t2 - t1)
    out["glue_radix8_s"] = best_glue
    out["resimplify_radix8_s"] = best_simp
    return out


def measure_merge_stage(
    field: np.ndarray, reps: int = 5, configs=STAGE_CONFIGS
) -> dict:
    """Full-pipeline merge-stage wall per schedule (min over ``reps``).

    The metric is the sum of per-merge-event real seconds — the work the
    merge stage actually performs, independent of how the virtual clock
    overlaps it — identical to how the baseline was captured.
    """
    out = {}
    for name, blocks, radices in configs:
        best = float("inf")
        for _ in range(reps):
            cfg = PipelineConfig(
                num_blocks=blocks,
                persistence_threshold=PERS,
                merge_radices=radices,
                retry_backoff=0.0,
            )
            r = ParallelMSComplexPipeline(cfg).run(field)
            best = min(
                best, sum(ev.real_seconds for ev in r.stats.merge_events)
            )
        out[f"merge_stage_{name}_s"] = best
    return out


def collect_before_after(kernel_reps: int = 7, stage_reps: int = 5) -> dict:
    """The full before/after record ``BENCH_merge_stage.json`` holds."""
    import os
    import sys

    field = bench_field()
    after = measure_glue_kernels(field, kernel_reps)
    after.update(measure_merge_stage(field, stage_reps))
    before = dict(PRE_PR_BASELINE)
    speedup = {
        k.removesuffix("_s"): before[k] / after[k]
        for k in before
        if after.get(k)
    }
    return {
        "field": "gaussian_bumps 32^3, 10 bumps, seed 1, noise 0.005",
        "harness": {
            "persistence_threshold": PERS,
            "metric": "sum of merge-event real_seconds per run; "
                      "min over reps (kernels likewise)",
            "kernel_reps": kernel_reps,
            "stage_reps": stage_reps,
            "configs": [
                {"name": n, "num_blocks": b, "radices": r}
                for n, b, r in STAGE_CONFIGS
            ],
        },
        "host": {
            "cores": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "before": before,
        "after": after,
        "speedup": speedup,
    }


def run_smoke() -> dict:
    """Scaled-down single-rep pass for CI: every timer must fire."""
    field = bench_field((16, 16, 16))
    res = measure_glue_kernels(field, reps=1)
    res.update(
        measure_merge_stage(
            field, reps=1, configs=[("smoke_b8_r2", 8, [2, 2, 2])]
        )
    )
    for k, v in res.items():
        assert np.isfinite(v) and v > 0, f"{k} produced {v!r}"
    return res


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def field_():
    return bench_field()


def bench_merge_glue_kernels(field_, benchmark):
    res = benchmark.pedantic(
        lambda: measure_glue_kernels(field_, reps=1), rounds=1, iterations=1
    )
    assert res["glue_radix8_s"] > 0


def bench_merge_stage_walls(field_, benchmark):
    res = benchmark.pedantic(
        lambda: measure_merge_stage(field_, reps=1), rounds=1, iterations=1
    )
    assert all(v > 0 for v in res.values())


def bench_merge_before_after_json(benchmark):
    """Regenerate the repo-root ``BENCH_merge_stage.json`` record."""
    from pathlib import Path

    from bench_util import attach_peak_rss, emit_json

    record = attach_peak_rss(collect_before_after())
    path = emit_json(
        "BENCH_merge_stage",
        record,
        path=Path(__file__).resolve().parent.parent
        / "BENCH_merge_stage.json",
    )
    print(f"\nwrote {path}; speedups: " + " ".join(
        f"{k}={v:.2f}x" for k, v in sorted(record["speedup"].items())
    ))
    assert record["speedup"]["merge_stage_multi_round_b16_r2"] > 1.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


if __name__ == "__main__":
    import argparse
    import json
    from pathlib import Path

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="scaled-down single-rep CI pass; no JSON output")
    args = ap.parse_args()

    if args.smoke:
        res = run_smoke()
        print("merge-stage smoke ok:")
        for k, v in sorted(res.items()):
            print(f"  {k}: {v:.4f}s")
    else:
        from bench_util import attach_peak_rss

        record = attach_peak_rss(collect_before_after())
        out = Path(__file__).resolve().parent.parent / "BENCH_merge_stage.json"
        out.write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {out}")
        for k, v in sorted(record["speedup"].items()):
            print(f"  {k}: {v:.3f}x")
