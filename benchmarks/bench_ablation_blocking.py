"""Ablation: blocks-per-process and load balance (paper §IV-A).

"We designed the domain decomposition with flexibility in mind;
depending on the distribution of nodes and arcs in the entire domain,
multiple blocks per process may increase the chances that the
computational load is better balanced across processes.  In our tests,
however, we found that computation scaled well using just one block per
process and we did not further evaluate load balance."

This ablation performs the evaluation the paper deferred: on a field
with strongly *clustered* features (all bumps in one octant — the
adversarial case for blocking), it measures per-rank compute-time
imbalance (max/mean of virtual compute seconds) at 1, 2, 4, and 8 blocks
per process.  Block-cyclic assignment of smaller blocks should smooth
the imbalance, at the cost of more boundary artifacts.
"""

from __future__ import annotations

import numpy as np
import pytest

from bench_util import emit_table, run_pipeline

PROCS = 8
BLOCKS_PER_PROC = (1, 2, 4, 8)


def clustered_field(n=33, seed=5):
    """All features packed into one octant: worst case for 8 blocks."""
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 1.0, n)
    X, Y, Z = np.meshgrid(t, t, t, indexing="ij")
    f = np.zeros((n, n, n))
    for _ in range(10):
        c = rng.uniform(0.05, 0.42, size=3)  # first octant only
        f += rng.uniform(0.5, 1.0) * np.exp(
            -((X - c[0]) ** 2 + (Y - c[1]) ** 2 + (Z - c[2]) ** 2)
            / 0.05**2
        )
    # no background noise: noise would spread tracing/cancellation work
    # uniformly and mask the clustering this ablation studies
    return f


@pytest.fixture(scope="module")
def ablation_runs():
    field = clustered_field()
    runs = []
    for bpp in BLOCKS_PER_PROC:
        res = run_pipeline(
            field,
            num_blocks=PROCS * bpp,
            num_procs=PROCS,
            persistence_threshold=0.05,
            merge_radices="full",
        )
        runs.append((bpp, res))
    return runs


def bench_ablation_blocks_per_process(ablation_runs, benchmark):
    lines = [
        f"{'blocks/proc':>11} {'cell imbal':>10} {'feature imbal':>13} "
        f"{'compute(s)':>11} {'merge(s)':>9} {'artifacts':>10}"
    ]
    cell_imb, feat_imb = [], []
    for bpp, res in ablation_runs:
        per_rank_cells = {}
        per_rank_features = {}
        for b in res.stats.block_stats:
            per_rank_cells[b.rank] = per_rank_cells.get(b.rank, 0) + b.cells
            per_rank_features[b.rank] = per_rank_features.get(
                b.rank, 0
            ) + b.geometry_cells_traced + b.cancellations
        def imb(d):
            vals = list(d.values())
            return max(vals) / (sum(vals) / len(vals))
        cell_imb.append(imb(per_rank_cells))
        feat_imb.append(imb(per_rank_features))
        s = res.stats.stage_breakdown()
        artifacts = sum(
            e.boundary_nodes_freed for e in res.stats.merge_events
        )
        lines.append(
            f"{bpp:>11} {cell_imb[-1]:>10.3f} {feat_imb[-1]:>13.3f} "
            f"{s['compute']:>11.4f} {s['merge']:>9.4f} {artifacts:>10}"
        )
    emit_table("ablation_blocks_per_process", lines)

    def check():
        # the paper's observation: computation per rank is governed by
        # cell counts, which block-cyclic assignment keeps near-uniform
        # at every blocks/proc setting ("computation scaled well using
        # just one block per process")
        assert all(i < 1.25 for i in cell_imb), cell_imb
        # the *feature* work (tracing + cancellation) is what clustering
        # skews; distributing more, smaller blocks evens it out
        assert feat_imb[-1] < feat_imb[0], feat_imb

    benchmark.pedantic(check, rounds=1, iterations=1)
