"""Overhead of the repro.obs tracing/metrics subsystem (docs/OBSERVABILITY.md).

Measures the same pooled shm pipeline run three ways — observability
off, trace only, trace + metrics — on the ISSUE's reference workload (a
24^3 gaussian-bumps field, 8 ranks, 2 workers) and records the relative
compute-stage overhead into the repo-root ``BENCH_trace_overhead.json``.
The acceptance bars: disabled tracing must be unmeasurable (< 1%) and
enabled tracing cheap (< 5%).

Run with::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_util import attach_peak_rss, emit_json, run_pipeline  # noqa: E402

from repro.data import gaussian_bumps_field  # noqa: E402

FIELD_KW = dict(dims=(24, 24, 24), num_bumps=8, seed=1)
RUN_KW = dict(
    num_blocks=8,
    workers=2,
    executor="process",
    transport="shm",
    persistence_threshold=0.02,
    retry_backoff=0.0,
)
REPS = 5


def _best_wall(field, reps: int = REPS, **extra) -> tuple[float, object]:
    """Min compute-stage wall seconds over ``reps`` runs (least noise)."""
    best, result = float("inf"), None
    for _ in range(reps):
        r = run_pipeline(field, **RUN_KW, **extra)
        if r.stats.compute_wall_seconds < best:
            best, result = r.stats.compute_wall_seconds, r
    return best, result


def main() -> int:
    field = gaussian_bumps_field(**FIELD_KW)

    off, r_off = _best_wall(field)
    traced, r_traced = _best_wall(field, trace=True)
    full, r_full = _best_wall(field, trace=True, metrics=True)

    # sanity: observability never perturbs the computed structure
    assert (
        r_off.output_blocks[0].to_payload().keys()
        == r_full.output_blocks[0].to_payload().keys()
    )
    counts_off = r_off.combined_node_counts()
    assert counts_off == r_traced.combined_node_counts()
    assert counts_off == r_full.combined_node_counts()

    record = {
        "field": "gaussian_bumps 24^3, 8 bumps, seed 1",
        "harness": {
            **{k: v for k, v in RUN_KW.items()},
            "reps": REPS,
            "metric": "stats.compute_wall_seconds, min over reps",
        },
        "host": {"python": sys.version.split()[0]},
        "compute_wall_seconds": {
            "disabled": off,
            "trace": traced,
            "trace_and_metrics": full,
        },
        "overhead": {
            "trace_vs_disabled": traced / off - 1.0,
            "trace_and_metrics_vs_disabled": full / off - 1.0,
        },
        "trace_events": len(r_full.stats.trace.events),
        "metrics_series": len(r_full.stats.metrics),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    attach_peak_rss(record)
    path = emit_json(
        "trace_overhead", record,
        path=Path(__file__).parent.parent / "BENCH_trace_overhead.json",
    )
    print(f"wrote {path}", file=sys.stderr)
    print(
        f"disabled={off:.3f}s trace={traced:.3f}s "
        f"trace+metrics={full:.3f}s "
        f"overhead trace={record['overhead']['trace_vs_disabled']:+.1%} "
        f"full={record['overhead']['trace_and_metrics_vs_disabled']:+.1%}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
