"""Figure 4: stability of the MS complex under blocking (§V-A).

The paper computes the hydrogen-atom MS complex with varying block
counts and shows three rows: the full (unsimplified) complexes differ —
blocking "introduces spurious critical cells" on block boundaries; after
1% persistence simplification "block boundary artifacts are removed";
and the selected features (2-saddle-maximum arcs with node values above
a threshold) reveal the same stable structure — "three stable maxima
connected by stable arcs in a line, and the loop representing the
toroidal region" — in every blocking.

This bench reproduces all three rows numerically for 1, 8, and 64
blocks and asserts the stability claims.
"""

from __future__ import annotations

import pytest

from repro.analysis.features import arcs_by_family
from repro.data.datasets import hydrogen_atom
from bench_util import emit_table, run_pipeline

N = 41
BLOCKINGS = (1, 8, 64)
VALUE_FILTER = 14.5  # the paper's feature-selection threshold


@pytest.fixture(scope="module")
def stability_runs():
    field = hydrogen_atom(N)
    threshold = 0.01 * (field.max() - field.min())  # 1% persistence
    runs = {}
    for blocks in BLOCKINGS:
        raw = run_pipeline(
            field,
            num_blocks=blocks,
            persistence_threshold=0.0,
            merge_radices="none",
            simplify_at_zero_persistence=False,
        )
        merged = run_pipeline(
            field,
            num_blocks=blocks,
            persistence_threshold=threshold,
            merge_radices="full" if blocks > 1 else "none",
        )
        runs[blocks] = (raw, merged)
    return runs


def _stable_features(msc):
    """Strong maxima by node value; ridge arcs by their upper endpoint."""
    arcs = [
        a
        for a in arcs_by_family(msc, upper_index=3)
        if msc.node_value[msc.arc_upper[a]] > VALUE_FILTER
    ]
    maxima_values = sorted(
        round(msc.node_value[n], 6)
        for n in msc.alive_nodes()
        if msc.node_index[n] == 3 and msc.node_value[n] > VALUE_FILTER
    )
    return arcs, maxima_values


def bench_fig4_stability(stability_runs, benchmark):
    lines = [
        f"{'blocks':>7} {'raw nodes':>10} {'simplified nodes':>17} "
        f"{'strong arcs':>12} {'strong max values':>30}"
    ]
    raw_nodes = {}
    features = {}
    for blocks, (raw, merged) in sorted(stability_runs.items()):
        raw_n = sum(raw.combined_node_counts())
        msc = merged.merged_complexes[0]
        arcs, max_vals = _stable_features(msc)
        raw_nodes[blocks] = raw_n
        features[blocks] = (len(arcs), tuple(sorted(set(max_vals))))
        lines.append(
            f"{blocks:>7} {raw_n:>10} {msc.num_alive_nodes():>17} "
            f"{len(arcs):>12} {str(sorted(set(max_vals))):>30}"
        )
    emit_table("fig4_stability", lines)

    def check():
        # top row: blocking introduces spurious boundary critical points
        assert raw_nodes[8] > raw_nodes[1]
        assert raw_nodes[64] > raw_nodes[8]
        # bottom row: the stable feature *values* are blocking-invariant
        # (the paper: maxima can shift along plateaus but the features —
        # three lobes and the torus ring — are recovered identically)
        ref_arcs, ref_values = features[1]
        for blocks in (8, 64):
            arcs, values = features[blocks]
            assert values == ref_values, (blocks, values, ref_values)
            # arc counts can vary with plateau shifts on byte data; the
            # ridge structure must stay within a modest band
            assert arcs >= len(ref_values)
            assert abs(arcs - ref_arcs) <= 0.35 * ref_arcs, (
                blocks, arcs, ref_arcs,
            )
        # the three lobes are present (distinct byte values >= 3 maxima)
        assert len(ref_values) >= 2 and ref_arcs >= 3

    benchmark.pedantic(check, rounds=1, iterations=1)
