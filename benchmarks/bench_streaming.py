"""Streaming benchmark: session throughput and out-of-core transport.

Measures the two claims the streaming rework makes:

- ``steady_state``: steps/second of an 8+ step time series processed
  through one persistent :class:`~repro.core.session.PipelineSession`
  (pools, shm slot, plan, and warmed tables reused every step) versus
  the prior shape — a fresh per-step
  :meth:`~repro.core.pipeline.ParallelMSComplexPipeline.run` that pays
  pool fork + segment publish + planning every time.  Both sides time
  steps ``[1:]`` so the session's one-time warm-up and the process
  pool's first fork are excluded symmetrically.
- ``mmap_independence``: driver-side transport bytes of the ``mmap``
  path across growing volume files.  The driver ships only block
  *specs* and stages zero volume bytes, so its byte counts must not
  scale with the volume — that is the whole out-of-core contract.

Both modes also assert bit-identity: the session steps, the ``mmap``
and ``pickle`` volume runs, and the one-shot in-memory run all write
byte-identical ``.msc`` output.

Run directly for the machine-readable record::

    PYTHONPATH=src python benchmarks/bench_streaming.py          # full
    PYTHONPATH=src python benchmarks/bench_streaming.py --smoke  # CI

The full run regenerates the repo-root ``BENCH_streaming.json``;
``--smoke`` runs a scaled-down serial pass and only sanity-checks the
timers, the zero-staging invariant, and bit-identity.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.options import ExecutionOptions
from repro.core.pipeline import ParallelMSComplexPipeline
from repro.core.session import PipelineSession
from repro.data.synthetic import gaussian_bumps_field
from repro.io.volume import VolumeSpec, write_volume

#: the throughput series: small enough steps that per-step setup
#: (pool fork, shm publish, planning) is a large share of a one-shot
#: run — the regime a real in-situ monitoring coupling streams in
#: (compute-bound steps amortize nothing; there the session simply ties)
DIMS = (12, 12, 12)
STEPS = 8
PERS = 0.05

#: sizes for the driver-byte independence sweep (8x volume growth)
MMAP_DIMS = [(16, 16, 16), (24, 24, 24), (32, 32, 32)]


def series_fields(steps: int = STEPS, dims=DIMS) -> list[np.ndarray]:
    """The time series: same dims every step, different bump layouts."""
    return [
        gaussian_bumps_field(dims, 10, seed=step, noise=0.005)
        for step in range(steps)
    ]


def stream_config(workers: int = 2) -> PipelineConfig:
    return PipelineConfig(
        num_blocks=8,
        num_procs=8,
        persistence_threshold=PERS,
        options=ExecutionOptions(workers=workers, retry_backoff=0.0),
    )


def measure_steady_state(
    fields: list[np.ndarray], workers: int = 2
) -> dict:
    """Seconds/step of per-step one-shot runs vs one session.

    Steps ``[1:]`` only, on both sides: the session amortizes its setup
    into step 0, and the baseline's first run also absorbs one-time
    process-wide warmup (imports, structure tables), so excluding the
    first step compares steady states fairly.
    """
    cfg = stream_config(workers)

    oneshot_secs = []
    for field in fields:
        t0 = time.perf_counter()
        result = ParallelMSComplexPipeline(cfg).run(field)
        oneshot_secs.append(time.perf_counter() - t0)
        assert result.output_blocks  # keep the run honest

    session_secs = []
    with PipelineSession(cfg) as session:
        for field in fields:
            t0 = time.perf_counter()
            result = session.run(field)
            session_secs.append(time.perf_counter() - t0)
            assert result.output_blocks
        reuse = {
            "pool_reuse_hits": session.stats.pool_reuse_hits,
            "plan_cache_hits": session.stats.plan_cache_hits,
            "shm_rebinds": session.stats.shm_rebinds,
            "shm_republishes": session.stats.shm_republishes,
        }

    steady_oneshot = sum(oneshot_secs[1:]) / len(oneshot_secs[1:])
    steady_session = sum(session_secs[1:]) / len(session_secs[1:])
    return {
        "steps": len(fields),
        "workers": workers,
        "oneshot_seconds_per_step": steady_oneshot,
        "session_seconds_per_step": steady_session,
        "oneshot_steps_per_sec": 1.0 / steady_oneshot,
        "session_steps_per_sec": 1.0 / steady_session,
        "speedup": steady_oneshot / steady_session,
        "session_reuse": reuse,
    }


def measure_mmap_independence(
    tmp_dir: Path, dims_list=MMAP_DIMS
) -> list[dict]:
    """Driver transport bytes of ``mmap`` runs across volume sizes."""
    cfg = PipelineConfig(
        num_blocks=8,
        num_procs=8,
        persistence_threshold=PERS,
        options=ExecutionOptions(transport="mmap", retry_backoff=0.0),
    )
    rows = []
    for dims in dims_list:
        field = gaussian_bumps_field(dims, 10, seed=1, noise=0.005)
        spec = write_volume(
            tmp_dir / f"vol_{dims[0]}.raw", field, dtype="float64"
        )
        result = ParallelMSComplexPipeline(cfg).run(volume=spec)
        t = result.stats.transport
        rows.append(
            {
                "dims": list(dims),
                "volume_bytes": spec.nbytes,
                "driver_staged_bytes": t.driver_staged_bytes,
                "dispatch_bytes": t.dispatch_bytes,
                "dispatches": t.dispatches,
            }
        )
    return rows


#: dims of the driver-staging RSS probe: 192^3 float64 = 54 MiB, large
#: enough to dominate interpreter baseline RSS, no pipeline compute
RSS_DIMS = (192, 192, 192)

_RSS_CHILD = r"""
import resource, sys
from repro.io.volume import VolumeSpec, read_block, read_volume
from repro.mesh.grid import Box

spec = VolumeSpec(sys.argv[2], {dims}, "float64")
if sys.argv[1] == "pickle":
    # what the driver stages for a pickle-transport volume run
    arr = read_volume(spec)
    assert arr.shape == spec.dims
else:
    # the mmap driver ships specs only; a worker-side block read is
    # included so the probe touches the file the same way a step does
    block = read_block(spec, Box((0, 0, 0), (8, 8, 8)))
    assert block.shape == (8, 8, 8)
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""


def measure_driver_staging_rss(tmp_dir: Path, dims=RSS_DIMS) -> dict:
    """Peak RSS (KiB) of a fresh process staging a volume each way.

    Isolates the *driver input staging* delta — ``pickle`` materializes
    the whole float64 grid, ``mmap`` ships only the spec — without the
    (transport-independent) per-block compute obscuring it.
    """
    import subprocess
    import sys

    path = tmp_dir / "rss_probe.raw"
    rng = np.random.default_rng(0)
    with open(path, "wb") as fh:
        # stream the file out chunk-wise: the bench itself should not
        # materialize the probe volume either
        plane = int(np.prod(dims[1:]))
        for _ in range(dims[0]):
            fh.write(rng.random(plane).tobytes())

    out = {"dims": list(dims), "volume_bytes": int(np.prod(dims)) * 8}
    for mode in ("pickle", "mmap"):
        proc = subprocess.run(
            [sys.executable, "-c", _RSS_CHILD.format(dims=tuple(dims)),
             mode, str(path)],
            capture_output=True, text=True, check=True,
        )
        out[f"{mode}_peak_rss_kib"] = int(proc.stdout.strip())
    return out


def check_bit_identity(tmp_dir: Path, dims=(12, 12, 12)) -> dict:
    """One field, every path: all outputs must be byte-identical."""
    field = gaussian_bumps_field(dims, 6, seed=3, noise=0.005)
    spec = write_volume(tmp_dir / "ident.raw", field, dtype="float64")

    def run_bytes(name: str, **kwargs) -> bytes:
        opts = ExecutionOptions(retry_backoff=0.0, **kwargs.pop("opts", {}))
        cfg = PipelineConfig(
            num_blocks=8, num_procs=8,
            persistence_threshold=PERS, options=opts,
        )
        result = ParallelMSComplexPipeline(cfg).run(**kwargs)
        out = tmp_dir / f"{name}.msc"
        result.write(str(out))
        return out.read_bytes()

    ref = run_bytes("memory", values=field)
    checks = {
        "mmap_volume": run_bytes(
            "mmap", volume=spec, opts={"transport": "mmap"}
        ) == ref,
        "pickle_volume": run_bytes(
            "pickle", volume=spec, opts={"transport": "pickle"}
        ) == ref,
    }

    cfg = stream_config(workers=1)
    with PipelineSession(cfg) as session:
        for step in range(2):
            r = session.run(field)
            out = tmp_dir / f"session_{step}.msc"
            r.write(str(out))
            checks[f"session_step{step}"] = out.read_bytes() == ref
    return checks


def collect_record(steps: int = STEPS) -> dict:
    """The full record ``BENCH_streaming.json`` holds."""
    import os
    import sys

    with tempfile.TemporaryDirectory() as td:
        tmp = Path(td)
        # RSS probe first: measure on a quiet interpreter, before the
        # throughput stages have churned pools and page cache
        rss = measure_driver_staging_rss(tmp)
        steady = measure_steady_state(series_fields(steps))
        mmap_rows = measure_mmap_independence(tmp)
        identity = check_bit_identity(tmp)

    driver_bytes = {r["driver_staged_bytes"] for r in mmap_rows}
    dispatch_bytes = {r["dispatch_bytes"] for r in mmap_rows}
    return {
        "field": (
            f"gaussian_bumps {DIMS[0]}^3, 10 bumps, per-step seeds, "
            "noise 0.005"
        ),
        "harness": {
            "persistence_threshold": PERS,
            "ranks": 8,
            "metric": (
                "mean wall seconds per step over steps [1:]; session "
                "and per-step baselines share the identical config"
            ),
        },
        "host": {
            "cores": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "steady_state": steady,
        "mmap_independence": {
            "rows": mmap_rows,
            "driver_staged_bytes_constant": len(driver_bytes) == 1,
            "dispatch_bytes_constant": len(dispatch_bytes) == 1,
        },
        "driver_staging_peak_rss": rss,
        "bit_identity": identity,
    }


def run_smoke() -> dict:
    """Scaled-down serial pass for CI: invariants only, no timing gate."""
    with tempfile.TemporaryDirectory() as td:
        tmp = Path(td)
        fields = series_fields(steps=3, dims=(12, 12, 12))
        cfg = stream_config(workers=1)
        with PipelineSession(cfg) as session:
            secs = []
            for field in fields:
                t0 = time.perf_counter()
                session.run(field)
                secs.append(time.perf_counter() - t0)
            assert session.stats.plan_cache_hits == len(fields) - 1
        for s in secs:
            assert np.isfinite(s) and s > 0

        rows = measure_mmap_independence(
            tmp, dims_list=[(12, 12, 12), (16, 16, 16)]
        )
        for r in rows:
            assert r["driver_staged_bytes"] == 0, r
            assert r["dispatch_bytes"] < r["volume_bytes"], r
        assert rows[0]["dispatch_bytes"] == rows[1]["dispatch_bytes"]

        identity = check_bit_identity(tmp)
        assert all(identity.values()), identity
    return {
        "steps_timed": len(secs),
        "mmap_rows": rows,
        "bit_identity": identity,
    }


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


def bench_streaming_steady_state(benchmark):
    res = benchmark.pedantic(
        lambda: measure_steady_state(series_fields(4), workers=2),
        rounds=1, iterations=1,
    )
    assert res["session_seconds_per_step"] > 0


def bench_streaming_before_after_json(benchmark):
    """Regenerate the repo-root ``BENCH_streaming.json`` record."""
    from bench_util import attach_peak_rss, emit_json

    record = attach_peak_rss(collect_record())
    path = emit_json(
        "BENCH_streaming",
        record,
        path=Path(__file__).resolve().parent.parent
        / "BENCH_streaming.json",
    )
    print(
        f"\nwrote {path}; steady-state speedup "
        f"{record['steady_state']['speedup']:.2f}x"
    )
    assert record["steady_state"]["speedup"] > 1.3
    assert record["mmap_independence"]["driver_staged_bytes_constant"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


if __name__ == "__main__":
    import argparse
    import json

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="scaled-down serial CI pass; no JSON output")
    ap.add_argument("--steps", type=int, default=STEPS,
                    help="time-series length for the full run")
    args = ap.parse_args()

    if args.smoke:
        res = run_smoke()
        print("streaming smoke ok:")
        print(f"  steps timed: {res['steps_timed']}")
        for r in res["mmap_rows"]:
            print(
                f"  mmap {tuple(r['dims'])}: volume {r['volume_bytes']}B,"
                f" driver staged {r['driver_staged_bytes']}B,"
                f" dispatched {r['dispatch_bytes']}B"
            )
        print(f"  bit identity: {res['bit_identity']}")
    else:
        from bench_util import attach_peak_rss

        record = attach_peak_rss(collect_record(args.steps))
        out = Path(__file__).resolve().parent.parent / "BENCH_streaming.json"
        out.write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n"
        )
        steady = record["steady_state"]
        print(f"wrote {out}")
        print(
            f"  steady-state: {steady['oneshot_steps_per_sec']:.2f} -> "
            f"{steady['session_steps_per_sec']:.2f} steps/s "
            f"({steady['speedup']:.2f}x)"
        )
        for r in record["mmap_independence"]["rows"]:
            print(
                f"  mmap {tuple(r['dims'])}: volume {r['volume_bytes']}B,"
                f" driver staged {r['driver_staged_bytes']}B,"
                f" dispatched {r['dispatch_bytes']}B"
            )
        rss = record["driver_staging_peak_rss"]
        print(
            f"  driver staging RSS ({tuple(rss['dims'])}, "
            f"{rss['volume_bytes'] >> 20} MiB file): "
            f"pickle {rss['pickle_peak_rss_kib'] >> 10} MiB, "
            f"mmap {rss['mmap_peak_rss_kib'] >> 10} MiB"
        )
        print(f"  bit identity: {record['bit_identity']}")
        assert steady["speedup"] > 1.3, (
            f"steady-state speedup {steady['speedup']:.2f}x below the "
            "1.3x acceptance gate"
        )
