"""Hierarchy-query benchmark: persisted lookups vs re-simplification.

The multiscale query engine's pitch is economic: capture the
cancellation hierarchy once, persist it in the ``.msc`` v2 footer, and
answer *any* persistence threshold as an O(log levels + output) lookup.
This harness quantifies the claim against hierarchy depth:

- ``query_per_s``: thresholds answered per second by
  :func:`repro.analysis.query.query` against a loaded hierarchy
  (load cost amortized away, as in an interactive exploration session);
- ``load_and_query_per_s``: the cold path — load the v2 file and answer
  one threshold, per second;
- ``fresh_per_s``: the pre-PR alternative — deserialize the stored
  block and run :func:`simplify_ms_complex` at the threshold, per
  second;
- ``speedup``: ``query_per_s / fresh_per_s``.

Cases sweep the hierarchy depth by growing the field (an unsimplified
random field's hierarchy has one level per cancellable pair).

Run directly for the machine-readable record::

    PYTHONPATH=src python benchmarks/bench_hierarchy_query.py          # full
    PYTHONPATH=src python benchmarks/bench_hierarchy_query.py --smoke  # CI

The full run regenerates the repo-root ``BENCH_hierarchy_query.json``;
``--smoke`` runs a scaled-down pass and only sanity-checks that queries
beat fresh simplification.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.analysis.query import load_hierarchy, query
from repro.core.config import PipelineConfig
from repro.core.pipeline import ParallelMSComplexPipeline
from repro.io.mscfile import read_msc_file
from repro.morse.msc import MorseSmaleComplex
from repro.morse.simplify import simplify_ms_complex

#: benchmark cases: (name, field dims) — depth grows with the field
CASES = [
    ("depth_small", (8, 8, 8)),
    ("depth_medium", (12, 12, 12)),
    ("depth_large", (16, 16, 16)),
]

#: thresholds per timing pass — enough that per-query cost dominates
QUERIES = 64


def build_case(dims, workdir, seed=7):
    """Persist an unsimplified single-block run with its hierarchy."""
    field = np.random.default_rng(seed).random(dims)
    cfg = PipelineConfig(
        num_blocks=1,
        persistence_threshold=0.0,
        simplify_at_zero_persistence=False,
        hierarchy=True,
    )
    result = ParallelMSComplexPipeline(cfg).run(field)
    path = Path(workdir) / f"case_{'x'.join(map(str, dims))}.msc"
    result.write(str(path))
    return path


def thresholds_for(hierarchies, n=QUERIES):
    """An even sweep over the case's full persistence range."""
    top = max(max(h.persistences, default=0.0)
              for h in hierarchies.values())
    return np.linspace(0.0, 1.05 * top, n)


def time_queries(path, n=QUERIES) -> dict:
    """Measure the three paths on one persisted case."""
    hierarchies = load_hierarchy(path)
    sweep = thresholds_for(hierarchies, n)

    t0 = time.perf_counter()
    for p in sweep:
        query(hierarchies, persistence=float(p))
    warm = time.perf_counter() - t0

    t0 = time.perf_counter()
    for p in sweep[: max(4, n // 8)]:
        query(str(path), persistence=float(p))
    cold = time.perf_counter() - t0
    cold_n = max(4, n // 8)

    payloads = read_msc_file(path)
    fresh_n = max(4, n // 8)
    t0 = time.perf_counter()
    for p in sweep[:fresh_n]:
        for payload in payloads.values():
            msc = MorseSmaleComplex.from_payload(payload)
            simplify_ms_complex(msc, float(p), respect_boundary=True)
    fresh = time.perf_counter() - t0

    depth = max(h.num_levels for h in hierarchies.values())
    qps = n / warm
    fps = fresh_n / fresh
    return {
        "depth": depth,
        "query_per_s": qps,
        "load_and_query_per_s": cold_n / cold,
        "fresh_per_s": fps,
        "speedup": qps / fps,
    }


def collect(cases=CASES, n=QUERIES, seed=7) -> dict:
    """Run every case and assemble the benchmark record."""
    record: dict = {"queries_per_pass": n, "cases": {}}
    with tempfile.TemporaryDirectory() as workdir:
        for name, dims in cases:
            path = build_case(dims, workdir, seed=seed)
            record["cases"][name] = {
                "dims": list(dims),
                **time_queries(path, n),
            }
    return record


def run_smoke() -> dict:
    """Scaled-down single-case pass for CI."""
    return collect(cases=[("smoke", (8, 8, 8))], n=16)


def bench_hierarchy_query_speedup(benchmark):
    """Queries out of the persisted hierarchy beat re-simplification,
    and increasingly so as the hierarchy deepens."""
    record = benchmark.pedantic(run_smoke, rounds=1, iterations=1)
    case = record["cases"]["smoke"]
    assert case["depth"] > 0
    assert case["speedup"] > 1.0


if __name__ == "__main__":
    import argparse
    import json

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="scaled-down single-case CI pass; no JSON output")
    args = ap.parse_args()

    if args.smoke:
        record = run_smoke()
        case = record["cases"]["smoke"]
        assert case["speedup"] > 1.0, case
        print("hierarchy-query smoke ok:")
        print(f"  depth: {case['depth']}")
        print(f"  query_per_s: {case['query_per_s']:.1f}")
        print(f"  fresh_per_s: {case['fresh_per_s']:.1f}")
        print(f"  speedup: {case['speedup']:.2f}x")
    else:
        from bench_util import attach_peak_rss

        record = attach_peak_rss(collect())
        out = (Path(__file__).resolve().parent.parent
               / "BENCH_hierarchy_query.json")
        out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
        for name, case in sorted(record["cases"].items()):
            print(f"  {name}: depth={case['depth']} "
                  f"query={case['query_per_s']:.1f}/s "
                  f"fresh={case['fresh_per_s']:.1f}/s "
                  f"speedup={case['speedup']:.2f}x")
