"""Out-of-core merge benchmark: bounded driver memory, bit-identity.

Measures the three claims the spill-to-disk merge rework makes:

- ``rss_flatness``: peak driver RSS of full pipeline runs (measured in
  a fresh subprocess per configuration, so each probe sees its own
  high-water mark) stays roughly flat as the block count grows 4x at a
  fixed small ``merge_spill_budget_bytes``.  The sweep holds per-block
  size fixed and grows the volume with the block count — the paper's
  weak-scaling regime, and the one the spool addresses: more blocks
  mean more packed blobs, and without a budget the driver's blob
  residency grows linearly with them (driver transients that scale with
  per-*block* size, by contrast, are compute/write-stage behavior the
  merge spool does not touch).  The sharp companion metric is the
  spool's ``resident_peak_bytes`` gauge — the packed-blob bytes the
  driver actually held — which the budget bounds directly while the
  unbounded run's gauge grows ~4x across the sweep.
- ``bit_identity``: the ``.msc`` written by a fully spilled run
  (budget 0, every snapshot round-trips through disk) is byte-identical
  to the resident-mode golden file (unlimited budget).
- ``unlimited_overhead``: merge-stage wall seconds with the budget left
  unlimited (the spool in pure pass-through) versus the pre-spool
  baseline, captured with this exact harness on the commit immediately
  before the rework.  The fast path must stay within 10%.

Run directly for the machine-readable record::

    PYTHONPATH=src python benchmarks/bench_outofcore.py          # full
    PYTHONPATH=src python benchmarks/bench_outofcore.py --smoke  # CI

The full run regenerates the repo-root ``BENCH_outofcore.json``;
``--smoke`` runs a scaled-down pass and only checks the invariants
(spills happened, outputs bit-identical, probes finite) without the
timing or RSS-ratio gates.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.options import ExecutionOptions
from repro.core.pipeline import ParallelMSComplexPipeline
from repro.data.synthetic import gaussian_bumps_field, write_volume_chunked

PERS = 0.05

#: the RSS-flatness sweep: 4x block growth at fixed per-block size
#: (weak scaling — the volume grows along z with the block count), big
#: enough that packed blobs are a visible share of driver memory, small
#: enough for a nightly run
RSS_SWEEP = (
    (8, (64, 64, 64)),
    (32, (64, 64, 256)),
)

#: the fixed spill budget of the sweep: far below the total packed-blob
#: bytes at either block count, so both runs are genuinely spilling
RSS_BUDGET = 1 << 20

#: merge-wall seconds of this exact harness (same field, configs, reps,
#: ``min`` aggregation) measured on the commit immediately before the
#: spool rework — the pooled merge pre-pass holding every packed blob
#: in driver dicts.  The acceptance gate compares the unlimited-budget
#: (pass-through spool) merge wall against this record.
PRE_PR_BASELINE = {
    "merge_wall_b16_r2_s": 0.8084980249986984,
    "merge_wall_b8_r8_s": 0.33222760500029835,
}

#: the overhead configs: (key, num_blocks, radices) — multi-round and
#: single-round shapes, matching the baseline capture
OVERHEAD_CONFIGS = [
    ("b16_r2", 16, [2, 2, 2, 2]),
    ("b8_r8", 8, [8]),
]

#: subprocess probe: one full pipeline run at (blocks, budget), peak
#: RSS and spool stats printed as JSON.  A fresh process per probe is
#: the only way ru_maxrss isolates one configuration — the high-water
#: mark never goes back down.
_CHILD = r"""
import json, resource, sys
from repro.core.config import PipelineConfig
from repro.core.options import ExecutionOptions
from repro.core.pipeline import ParallelMSComplexPipeline
from repro.io.volume import VolumeSpec

volume, nx, ny, nz, blocks, budget, out_path = sys.argv[1:8]
dims = (int(nx), int(ny), int(nz))
blocks = int(blocks)
budget = None if budget == "none" else int(budget)
rounds = max(1, blocks.bit_length() - 1)
cfg = PipelineConfig(
    num_blocks=blocks,
    persistence_threshold=0.05,
    merge_radices=[2] * rounds,
    options=ExecutionOptions(
        workers=2, merge_executor="pool", transport="mmap",
        retry_backoff=0.0, merge_spill_budget_bytes=budget,
    ),
)
r = ParallelMSComplexPipeline(cfg).run(
    volume=VolumeSpec(volume, dims, "float32")
)
if out_path != "-":
    r.write(out_path)
peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
if sys.platform == "darwin":
    peak //= 1024
print(json.dumps({
    "peak_rss_kib": int(peak),
    "merge_wall_s": r.stats.merge_wall_seconds,
    "spool": r.stats.spool,
}))
"""


def run_probe(
    volume: Path, dims, blocks: int, budget: int | None,
    out_path: Path | None = None,
) -> dict:
    """One fresh-process pipeline run; its peak RSS and spool stats."""
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, str(volume),
         *[str(n) for n in dims], str(blocks),
         "none" if budget is None else str(budget),
         str(out_path) if out_path is not None else "-"],
        capture_output=True, text=True, check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def probe_volume(tmp_dir: Path, dims) -> Path:
    """The probe input, streamed to disk by the chunked writer — the
    bench itself never materializes it either."""
    path = tmp_dir / f"probe_{'x'.join(str(n) for n in dims)}.raw"
    write_volume_chunked(
        path, "bumps", dims=tuple(dims), num_bumps=10, seed=1,
        slab_depth=8,
    )
    return path


def measure_rss_flatness(
    tmp_dir: Path, sweep=RSS_SWEEP, budget: int = RSS_BUDGET,
) -> dict:
    """Peak driver RSS across a 4x block-count growth at fixed budget.

    Weak scaling: each sweep point keeps per-block dims identical and
    grows the volume with the block count.  Also runs each point
    unbounded, so the record shows what the budget buys: the spilled
    runs' ``resident_peak_bytes`` pinned near the budget while the
    unbounded gauge grows with the block count.
    """
    rows = []
    for blocks, dims in sweep:
        volume = probe_volume(tmp_dir, dims)
        spilled = run_probe(volume, dims, blocks, budget)
        resident = run_probe(volume, dims, blocks, None)
        assert spilled["spool"]["spills"] > 0, spilled
        assert resident["spool"]["spills"] == 0, resident
        rows.append(
            {
                "blocks": blocks,
                "dims": list(dims),
                "budget_bytes": budget,
                "peak_rss_kib": spilled["peak_rss_kib"],
                "unbounded_peak_rss_kib": resident["peak_rss_kib"],
                "spool": spilled["spool"],
                "unbounded_resident_peak_bytes": (
                    resident["spool"]["resident_peak_bytes"]
                ),
            }
        )
    peaks = [r["peak_rss_kib"] for r in rows]
    return {
        "rows": rows,
        "rss_ratio_max_over_min": max(peaks) / min(peaks),
    }


def measure_bit_identity(tmp_dir: Path, dims=(24, 24, 24), blocks=8) -> dict:
    """Golden check: fully spilled output == resident-mode output."""
    volume = probe_volume(tmp_dir, dims)
    golden = tmp_dir / "golden_resident.msc"
    spilled = tmp_dir / "spilled.msc"
    resident_probe = run_probe(volume, dims, blocks, None, golden)
    spilled_probe = run_probe(volume, dims, blocks, 0, spilled)
    assert spilled_probe["spool"]["spills"] > 0, spilled_probe
    return {
        "blocks": blocks,
        "spilled_budget_bytes": 0,
        "spills": spilled_probe["spool"]["spills"],
        "bytes_spilled": spilled_probe["spool"]["bytes_spilled"],
        "read_backs": spilled_probe["spool"]["read_backs"],
        "resident_spills": resident_probe["spool"]["spills"],
        "identical": golden.read_bytes() == spilled.read_bytes(),
    }


def measure_unlimited_overhead(reps: int = 5) -> dict:
    """Merge wall with the budget unlimited, vs the pre-spool baseline.

    In-process (the metric is the merge stage's own wall clock, not
    RSS), ``min`` over reps like the baseline capture.
    """
    field = gaussian_bumps_field((32, 32, 32), 10, seed=1, noise=0.005)
    out = {}
    for key, blocks, radices in OVERHEAD_CONFIGS:
        best = float("inf")
        for _ in range(reps):
            cfg = PipelineConfig(
                num_blocks=blocks,
                persistence_threshold=PERS,
                merge_radices=radices,
                options=ExecutionOptions(
                    workers=2, merge_executor="pool", retry_backoff=0.0
                ),
            )
            r = ParallelMSComplexPipeline(cfg).run(field)
            assert r.stats.merge_executor == "pool"
            assert r.stats.spool is not None
            assert r.stats.spool["spills"] == 0
            best = min(best, r.stats.merge_wall_seconds)
        out[f"merge_wall_{key}_s"] = best
    overhead = {
        k.removeprefix("merge_wall_").removesuffix("_s"): (
            out[k] / PRE_PR_BASELINE[k] - 1.0
        )
        for k in PRE_PR_BASELINE
    }
    return {
        "merge_wall_s": out,
        "baseline_merge_wall_s": dict(PRE_PR_BASELINE),
        "overhead_vs_baseline": overhead,
    }


def collect_record() -> dict:
    """The full record ``BENCH_outofcore.json`` holds."""
    import os

    with tempfile.TemporaryDirectory() as td:
        tmp = Path(td)
        rss = measure_rss_flatness(tmp)
        identity = measure_bit_identity(tmp)
    overhead = measure_unlimited_overhead()
    return {
        "field": "gaussian_bumps, 10 bumps, seed 1 (chunked writer)",
        "harness": {
            "persistence_threshold": PERS,
            "workers": 2,
            "metric": (
                "peak driver ru_maxrss per fresh subprocess at fixed "
                "merge_spill_budget_bytes; merge_wall_seconds min over "
                "reps for the unlimited-budget overhead"
            ),
        },
        "host": {
            "cores": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "rss_flatness": rss,
        "bit_identity": identity,
        "unlimited_overhead": overhead,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def run_smoke() -> dict:
    """Scaled-down CI pass: invariants only, no timing or RSS gates."""
    with tempfile.TemporaryDirectory() as td:
        tmp = Path(td)
        identity = measure_bit_identity(tmp, dims=(16, 16, 16), blocks=8)
        assert identity["identical"], identity
        assert identity["spills"] > 0, identity
        assert identity["resident_spills"] == 0, identity
        volume = probe_volume(tmp, (16, 16, 16))
        probe = run_probe(volume, (16, 16, 16), 8, 4096)
        assert probe["peak_rss_kib"] > 0
        assert probe["spool"]["spills"] > 0
        assert np.isfinite(probe["merge_wall_s"])
    return {"bit_identity": identity, "budget_4096_probe": probe}


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


def bench_outofcore_bit_identity(benchmark):
    """Fully spilled merge output is byte-identical to resident mode."""
    res = benchmark.pedantic(run_smoke, rounds=1, iterations=1)
    assert res["bit_identity"]["identical"]


def bench_outofcore_before_after_json(benchmark):
    """Regenerate the repo-root ``BENCH_outofcore.json`` record."""
    from bench_util import attach_peak_rss, emit_json

    record = attach_peak_rss(collect_record())
    path = emit_json(
        "BENCH_outofcore",
        record,
        path=Path(__file__).resolve().parent.parent
        / "BENCH_outofcore.json",
    )
    ratio = record["rss_flatness"]["rss_ratio_max_over_min"]
    print(f"\nwrote {path}; rss ratio {ratio:.3f}")
    assert record["bit_identity"]["identical"]
    assert ratio <= 1.15
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


if __name__ == "__main__":
    import argparse

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="scaled-down CI pass; no JSON output")
    args = ap.parse_args()

    if args.smoke:
        res = run_smoke()
        ident = res["bit_identity"]
        print("out-of-core smoke ok:")
        print(f"  spilled vs resident .msc identical: {ident['identical']}")
        print(f"  spills: {ident['spills']} "
              f"({ident['bytes_spilled']}B), "
              f"read-backs: {ident['read_backs']}")
        probe = res["budget_4096_probe"]
        print(f"  4 KiB-budget probe: peak rss "
              f"{probe['peak_rss_kib']} KiB, "
              f"spills {probe['spool']['spills']}")
    else:
        sys.path.insert(0, str(Path(__file__).parent))
        from bench_util import attach_peak_rss

        record = attach_peak_rss(collect_record())
        out = Path(__file__).resolve().parent.parent / "BENCH_outofcore.json"
        out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
        rss = record["rss_flatness"]
        for r in rss["rows"]:
            print(
                f"  blocks={r['blocks']:>3} dims={tuple(r['dims'])} "
                f"budget="
                f"{r['budget_bytes']}B: peak rss "
                f"{r['peak_rss_kib'] >> 10} MiB (unbounded "
                f"{r['unbounded_peak_rss_kib'] >> 10} MiB), spool "
                f"resident peak {r['spool']['resident_peak_bytes']}B "
                f"(unbounded {r['unbounded_resident_peak_bytes']}B)"
            )
        print(f"  rss ratio (4x blocks): "
              f"{rss['rss_ratio_max_over_min']:.3f}")
        ident = record["bit_identity"]
        print(f"  spilled vs resident .msc identical: "
              f"{ident['identical']} "
              f"({ident['spills']} spills, {ident['read_backs']} "
              f"read-backs)")
        over = record["unlimited_overhead"]["overhead_vs_baseline"]
        for k, v in sorted(over.items()):
            print(f"  unlimited-budget merge wall {k}: {v:+.1%} "
                  f"vs pre-spool baseline")
        assert ident["identical"]
        assert rss["rss_ratio_max_over_min"] <= 1.15, rss
        assert all(v <= 0.10 for v in over.values()), over
