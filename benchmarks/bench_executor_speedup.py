"""Real shared-memory speedup of the compute stage (process pool).

The paper's compute stage is embarrassingly parallel: boundary-restricted
pairing makes each block's gradient / MS complex / simplification
independent of every other block, so fanning blocks out over OS worker
processes is a pure scheduling choice.  This bench runs a 65^3 sinusoid
in 8 blocks with 1, 2, and 4 workers and records:

- measured wall-clock of the compute stage per worker count,
- the cpu-seconds the blocks actually took (sum over blocks),
- the resulting speedup over the serial run,

and asserts the correctness half of the contract unconditionally: the
merged complex must be *bit-identical* across worker counts.  The
performance half (>= 2x at 4 workers) is asserted only when the host
actually has 4+ cores — on fewer cores the pool still runs and still
matches bit-for-bit, it just cannot be faster, and the table records the
host's core count so the numbers are interpretable.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.merge import pack_complex
from repro.data.synthetic import sinusoidal_field
from bench_util import emit_json, emit_table, run_pipeline

POINTS = 65  # 65^3 vertices -> 8 blocks of ~33^3
BLOCKS = 8
WORKERS = (1, 2, 4)
THRESHOLD = 0.05


@pytest.fixture(scope="module")
def runs():
    """One pipeline run per worker count on the same field."""
    field = sinusoidal_field(POINTS, 4).astype(np.float64)
    out = {}
    for w in WORKERS:
        out[w] = run_pipeline(
            field,
            num_blocks=BLOCKS,
            persistence_threshold=THRESHOLD,
            workers=w,
        )
    return out


def bench_executor_speedup(runs, benchmark):
    cores = os.cpu_count() or 1
    serial_wall = runs[1].stats.compute_wall_seconds
    lines = [
        f"host cores: {cores}   field: {POINTS}^3 sinusoid, "
        f"{BLOCKS} blocks, persistence {THRESHOLD}",
        f"{'workers':>8} {'executor':>9} {'wall(s)':>9} {'cpu(s)':>9} "
        f"{'speedup':>8} {'vs serial':>10}",
    ]
    entries = []
    for w, res in sorted(runs.items()):
        s = res.stats
        vs_serial = serial_wall / s.compute_wall_seconds
        lines.append(
            f"{w:>8} {s.executor:>9} {s.compute_wall_seconds:>9.3f} "
            f"{s.compute_cpu_seconds:>9.3f} {s.compute_speedup:>8.2f} "
            f"{vs_serial:>9.2f}x"
        )
        entries.append(
            {
                "workers": w,
                "executor": s.executor,
                "transport": s.transport.kind,
                "compute_wall_s": s.compute_wall_seconds,
                "compute_cpu_s": s.compute_cpu_seconds,
                "speedup_vs_serial": vs_serial,
                "dispatch_bytes": s.transport.dispatch_bytes,
                "shared_volume_bytes": s.transport.shared_volume_bytes,
                "stage_seconds": s.compute_stage_seconds(),
            }
        )
    emit_table("executor_speedup", lines)
    emit_json(
        "executor_speedup",
        {
            "field": f"{POINTS}^3 sinusoid",
            "blocks": BLOCKS,
            "persistence": THRESHOLD,
            "host_cores": cores,
            "runs": entries,
        },
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def bench_executor_bit_identity(runs, benchmark):
    """Worker count must never change a single output bit."""

    def check():
        ref = runs[1]
        ref_blob = pack_complex(ref.merged_complexes[0])
        for w in WORKERS[1:]:
            res = runs[w]
            assert res.stats.workers == w
            assert res.stats.executor == "process"
            assert pack_complex(res.merged_complexes[0]) == ref_blob, w
            assert (
                res.combined_node_counts() == ref.combined_node_counts()
            )
            for bs, bp in zip(ref.stats.block_stats, res.stats.block_stats):
                assert bs.cells == bp.cells
                assert bs.critical_counts == bp.critical_counts
                assert bs.cancellations == bp.cancellations

    benchmark.pedantic(check, rounds=1, iterations=1)


def bench_executor_scaling_on_multicore(runs, benchmark):
    """>= 2x at 4 workers — asserted only where 4 cores exist."""

    def check():
        cores = os.cpu_count() or 1
        if cores < 4:
            pytest.skip(
                f"host has {cores} core(s); speedup assertion needs 4"
            )
        serial = runs[1].stats.compute_wall_seconds
        pooled = runs[4].stats.compute_wall_seconds
        assert serial / pooled >= 2.0, (serial, pooled)

    benchmark.pedantic(check, rounds=1, iterations=1)
