"""Shared helpers for the paper-reproduction benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation section: it runs the real pipeline over the paper's parameter
sweep (at laptop scale), prints the same rows/series the paper reports
(virtual Blue Gene/P seconds from the machine model, exact structure
sizes from the real computation), saves the table under
``benchmarks/results/``, and asserts the *shape* conclusions the paper
draws (who wins, monotonicities, crossovers).
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.core.config import PipelineConfig
from repro.core.pipeline import ParallelMSComplexPipeline
from repro.core.result import PipelineResult

RESULTS_DIR = Path(__file__).parent / "results"


def run_pipeline(field, **config_kwargs) -> PipelineResult:
    """Run one pipeline configuration on an in-memory field."""
    cfg = PipelineConfig(**config_kwargs)
    return ParallelMSComplexPipeline(cfg).run(field)


def strong_scaling_efficiency(
    times: list[float], procs: list[int]
) -> list[float]:
    """Efficiency relative to the smallest process count (paper §VI-D1).

    "Efficiency is computed as the ratio of the factor decrease in time
    divided by the factor increase in number of processes."
    """
    base_t, base_p = times[0], procs[0]
    return [
        (base_t / t) / (p / base_p) if t > 0 else float("inf")
        for t, p in zip(times, procs)
    ]


def emit_table(name: str, lines: list[str]) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    text = "\n".join(lines)
    # bypass pytest capture so the table is visible in bench output
    print(f"\n===== {name} =====\n{text}\n", file=sys.stderr)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def peak_rss_kib() -> int:
    """Peak resident-set size of this process so far, in KiB.

    Uniform sampling point for every benchmark record: ``ru_maxrss`` is
    a high-water mark the kernel maintains for free, so reading it costs
    nothing and needs no sampling thread.  Linux reports the value in
    KiB already; macOS reports bytes and is normalized here.
    """
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        peak //= 1024
    return int(peak)


def attach_peak_rss(record: dict) -> dict:
    """Stamp ``record["peak_rss_kib"]`` with the current high-water mark.

    Call just before :func:`emit_json` so every ``BENCH_*.json`` carries
    the same memory metric.  Returns the record for chaining.  Note the
    mark covers the whole process lifetime (imports, warm-up, every
    sweep run so far), not one measurement in isolation — per-config
    driver RSS needs a subprocess probe (see ``bench_outofcore``).
    """
    record["peak_rss_kib"] = peak_rss_kib()
    return record


def emit_json(name: str, payload: dict, path: Path | None = None) -> Path:
    """Persist a machine-readable benchmark record as JSON.

    Defaults to ``benchmarks/results/<name>.json``; pass ``path`` to
    write elsewhere (e.g. the repo-root ``BENCH_kernels.json``).
    Returns the written path.
    """
    import json

    if path is None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
