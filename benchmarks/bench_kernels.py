"""Microbenchmarks of the pipeline's computational kernels.

Not a paper table — these time the stages the cost model prices
(gradient sweep, V-path tracing, simplification, gluing, serialization)
so that regressions in the hot paths are visible, and so the calibrated
cells/second constants in :mod:`repro.machine.bgp` can be compared with
what this Python implementation actually achieves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.glue import glue_into
from repro.core.merge import pack_complex, unpack_complex
from repro.mesh.cubical import CubicalComplex
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.simplify import simplify_ms_complex
from repro.morse.tracing import extract_ms_complex
from repro.data.synthetic import gaussian_bumps_field
from repro.parallel.decomposition import decompose

# mild noise: heavy noise on overlapping bumps drives the (documented)
# quadratic hub behavior of exact persistence simplification, which is a
# stress case, not a representative kernel timing
FIELD = gaussian_bumps_field((24, 24, 24), 8, seed=1, noise=0.005)


@pytest.fixture(scope="module")
def complex_():
    return CubicalComplex(FIELD)


@pytest.fixture(scope="module")
def field_(complex_):
    return compute_discrete_gradient(complex_)


@pytest.fixture(scope="module")
def msc_(field_):
    return extract_ms_complex(field_)


def bench_kernel_complex_build(benchmark):
    cx = benchmark(lambda: CubicalComplex(FIELD))
    assert cx.euler_characteristic() == 1


def bench_kernel_gradient_sweep(complex_, benchmark):
    g = benchmark(lambda: compute_discrete_gradient(complex_))
    assert g.morse_euler_characteristic() == 1


def bench_kernel_vpath_tracing(field_, benchmark):
    msc = benchmark(lambda: extract_ms_complex(field_))
    assert msc.num_alive_nodes() > 0


def bench_kernel_simplification(field_, benchmark):
    def run():
        msc = extract_ms_complex(field_)
        simplify_ms_complex(
            msc, 0.1, respect_boundary=False, max_new_arcs=5000
        )
        return msc

    msc = benchmark(run)
    assert msc.num_alive_nodes() >= 1


def bench_kernel_pack_unpack(msc_, benchmark):
    import copy

    compacted = copy.deepcopy(msc_)
    compacted.compact()

    def run():
        return unpack_complex(pack_complex(compacted))

    back = benchmark(run)
    assert back.num_alive_nodes() == compacted.num_alive_nodes()


def bench_kernel_glue(benchmark):
    decomp = decompose(FIELD.shape, 2)
    parts = []
    for b in range(2):
        box = decomp.block_box(decomp.block_coords(b))
        cx = CubicalComplex(
            FIELD[box.slices()],
            refined_origin=box.refined_origin,
            global_refined_dims=decomp.global_refined_dims,
            cut_planes=decomp.cut_planes,
        )
        msc = extract_ms_complex(compute_discrete_gradient(cx))
        msc.compact()
        parts.append(msc)

    def run():
        root = unpack_complex(pack_complex(parts[0]))
        other = unpack_complex(pack_complex(parts[1]))
        return glue_into(root, other, root.address_index())

    stats = benchmark(run)
    assert stats.shared_nodes > 0
