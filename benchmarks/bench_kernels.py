"""Microbenchmarks of the pipeline's computational kernels.

Not a paper table — these time the stages the cost model prices
(gradient sweep, V-path tracing, simplification, gluing, serialization)
so that regressions in the hot paths are visible, and so the calibrated
cells/second constants in :mod:`repro.machine.bgp` can be compared with
what this Python implementation actually achieves.

Besides the pytest-benchmark entry points, the module is runnable::

    PYTHONPATH=src python benchmarks/bench_kernels.py          # full
    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke  # CI

The full run regenerates the repo-root ``BENCH_kernels.json``,
including a dfs-vs-pointer A/B of the two V-path tracing backends;
``--smoke`` runs a scaled-down single-rep pass that checks every timer
fires and that both tracing backends produce identical complexes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.glue import glue_into
from repro.core.merge import pack_complex, unpack_complex
from repro.mesh.cubical import CubicalComplex
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.simplify import simplify_ms_complex
from repro.morse.tracing import extract_ms_complex
from repro.data.synthetic import gaussian_bumps_field
from repro.parallel.decomposition import decompose

# mild noise: heavy noise on overlapping bumps drives the (documented)
# quadratic hub behavior of exact persistence simplification, which is a
# stress case, not a representative kernel timing
FIELD = gaussian_bumps_field((24, 24, 24), 8, seed=1, noise=0.005)


@pytest.fixture(scope="module")
def complex_():
    return CubicalComplex(FIELD)


@pytest.fixture(scope="module")
def field_(complex_):
    return compute_discrete_gradient(complex_)


@pytest.fixture(scope="module")
def msc_(field_):
    return extract_ms_complex(field_)


def bench_kernel_complex_build(benchmark):
    cx = benchmark(lambda: CubicalComplex(FIELD))
    assert cx.euler_characteristic() == 1


def bench_kernel_gradient_sweep(complex_, benchmark):
    g = benchmark(lambda: compute_discrete_gradient(complex_))
    assert g.morse_euler_characteristic() == 1


def bench_kernel_vpath_tracing(field_, benchmark):
    msc = benchmark(lambda: extract_ms_complex(field_))
    assert msc.num_alive_nodes() > 0


def bench_kernel_simplification(field_, benchmark):
    def run():
        msc = extract_ms_complex(field_)
        simplify_ms_complex(
            msc, 0.1, respect_boundary=False, max_new_arcs=5000
        )
        return msc

    msc = benchmark(run)
    assert msc.num_alive_nodes() >= 1


def bench_kernel_pack_unpack(msc_, benchmark):
    import copy

    compacted = copy.deepcopy(msc_)
    compacted.compact()

    def run():
        return unpack_complex(pack_complex(compacted))

    back = benchmark(run)
    assert back.num_alive_nodes() == compacted.num_alive_nodes()


def bench_kernel_glue(benchmark):
    decomp = decompose(FIELD.shape, 2)
    parts = []
    for b in range(2):
        box = decomp.block_box(decomp.block_coords(b))
        cx = CubicalComplex(
            FIELD[box.slices()],
            refined_origin=box.refined_origin,
            global_refined_dims=decomp.global_refined_dims,
            cut_planes=decomp.cut_planes,
        )
        msc = extract_ms_complex(compute_discrete_gradient(cx))
        msc.compact()
        parts.append(msc)

    def run():
        root = unpack_complex(pack_complex(parts[0]))
        other = unpack_complex(pack_complex(parts[1]))
        return glue_into(root, other, root.address_index())

    stats = benchmark(run)
    assert stats.shared_nodes > 0


# ---------------------------------------------------------------------------
# machine-readable before/after record (repo-root BENCH_kernels.json)
# ---------------------------------------------------------------------------

#: kernel and end-to-end timings of this exact harness measured before
#: the compute-stage hot-path overhaul (min over reps on the same
#: single-core host; see ``harness`` in the emitted JSON)
PRE_PR_BASELINE = {
    "complex_build_s": 0.048314171000129136,
    "gradient_s": 0.0973293819997707,
    "trace_s": 0.24593847100004496,
    "pool_nosimp_wall_s": 0.5715092420000474,
}

#: the end-to-end harness: the 24^3 bumps field in 8 blocks on a
#: 2-worker process pool, no simplification, no retry backoff — the
#: configuration both the baseline and the "after" wall are measured on
E2E_CONFIG = dict(
    num_blocks=8,
    persistence_threshold=0.0,
    simplify_at_zero_persistence=False,
    workers=2,
    executor="process",
    retry_backoff=0.0,
)


def _best_of(fn, reps: int) -> float:
    import time

    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


#: per-field caches extract_ms_complex memoizes; dropped between reps so
#: every timing pays the one-time build the pipeline pays per block
_TRACE_CACHE_ATTRS = ("_trace_state", "_pointer_state",
                      "_continuation_tables")


def _cold_trace(grad, kernel_backend: str = "auto"):
    for attr in _TRACE_CACHE_ATTRS:
        if hasattr(grad, attr):
            delattr(grad, attr)
    return extract_ms_complex(grad, kernel_backend=kernel_backend)


def measure_kernels(reps: int = 7) -> dict:
    """Serial kernel timings on the full field (min over ``reps``)."""
    out = {}
    out["complex_build_s"] = _best_of(lambda: CubicalComplex(FIELD), reps)
    cx = CubicalComplex(FIELD)
    out["gradient_s"] = _best_of(
        lambda: compute_discrete_gradient(cx), reps
    )
    grad = compute_discrete_gradient(cx)
    out["trace_s"] = _best_of(lambda: _cold_trace(grad), reps)
    return out


def measure_backend_ab(reps: int = 7) -> dict:
    """Cold dfs-vs-pointer A/B of the tracing kernel on the full field.

    Both numbers include the per-block one-time costs (continuation
    tables, pointer arrays) so the ratio reflects what a pipeline block
    actually pays when the backend knob flips.
    """
    grad = compute_discrete_gradient(CubicalComplex(FIELD))
    out = {
        "trace_dfs_s": _best_of(lambda: _cold_trace(grad, "dfs"), reps),
        "trace_pointer_s": _best_of(
            lambda: _cold_trace(grad, "pointer"), reps
        ),
    }
    out["tracing_backend_ab"] = out["trace_dfs_s"] / out["trace_pointer_s"]
    return out


def measure_compute_wall(transport: str = "shm", reps: int = 5) -> float:
    """End-to-end compute-stage wall on the pool (min over ``reps``)."""
    from bench_util import run_pipeline

    walls = []
    for _ in range(reps):
        res = run_pipeline(FIELD, transport=transport, **E2E_CONFIG)
        walls.append(res.stats.compute_wall_seconds)
    return min(walls)


def collect_before_after(
    kernel_reps: int = 7, e2e_reps: int = 5
) -> dict:
    """The full before/after record ``BENCH_kernels.json`` holds."""
    import os
    import sys

    after = measure_kernels(kernel_reps)
    ab = measure_backend_ab(kernel_reps)
    after["trace_dfs_s"] = ab["trace_dfs_s"]
    after["trace_pointer_s"] = ab["trace_pointer_s"]
    after["pool_nosimp_wall_s"] = measure_compute_wall("shm", e2e_reps)
    after["transport"] = "shm"
    before = dict(PRE_PR_BASELINE)
    speedup = {
        k.removesuffix("_s"): before[k] / after[k]
        for k in before
        if after.get(k)
    }
    speedup["compute_stage_end_to_end"] = (
        before["pool_nosimp_wall_s"] / after["pool_nosimp_wall_s"]
    )
    speedup["tracing_backend_ab"] = ab["tracing_backend_ab"]
    return {
        "field": "gaussian_bumps 24^3, 8 bumps, seed 1, noise 0.005",
        "harness": {
            **E2E_CONFIG,
            "metric": "stats.compute_wall_seconds, min over reps",
            "kernel_reps": kernel_reps,
            "e2e_reps": e2e_reps,
        },
        "host": {
            "cores": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "before": before,
        "after": after,
        "speedup": speedup,
    }


def bench_kernel_before_after_json(benchmark):
    """Regenerate the repo-root ``BENCH_kernels.json`` record."""
    from pathlib import Path

    from bench_util import attach_peak_rss, emit_json

    record = attach_peak_rss(collect_before_after())
    path = emit_json(
        "BENCH_kernels",
        record,
        path=Path(__file__).resolve().parent.parent / "BENCH_kernels.json",
    )
    print(f"\nwrote {path}; speedups: " + " ".join(
        f"{k}={v:.2f}x" for k, v in sorted(record["speedup"].items())
    ))
    assert record["speedup"]["compute_stage_end_to_end"] > 1.0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def run_smoke() -> dict:
    """Scaled-down single-rep CI pass: every timer must fire, and the
    two tracing backends must produce identical complexes."""
    res = measure_kernels(reps=1)
    res.update(measure_backend_ab(reps=1))
    for k, v in res.items():
        assert np.isfinite(v) and v > 0, f"{k} produced {v!r}"
    grad = compute_discrete_gradient(CubicalComplex(FIELD))
    dfs = pack_complex(_cold_trace(grad, "dfs"))
    pointer = pack_complex(_cold_trace(grad, "pointer"))
    assert dfs == pointer, "tracing backends diverged on the bench field"
    return res


if __name__ == "__main__":
    import argparse
    import json
    from pathlib import Path

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="scaled-down single-rep CI pass; no JSON output")
    args = ap.parse_args()

    if args.smoke:
        res = run_smoke()
        print("kernel smoke ok (backends bit-identical):")
        for k, v in sorted(res.items()):
            print(f"  {k}: {v:.4f}{'x' if k.endswith('_ab') else 's'}")
    else:
        from bench_util import attach_peak_rss

        record = attach_peak_rss(collect_before_after())
        out = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
        out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}")
        for k, v in sorted(record["speedup"].items()):
            print(f"  {k}: {v:.3f}x")
