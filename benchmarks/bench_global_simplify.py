"""§VII-B extension: global persistence simplification.

The paper anticipates that global simplification "performed using a
series of nearest-neighbor communication operations ... will allow us to
further reduce the size of the output data and to reduce the complexity
of the resulting MS complex".  This bench quantifies that prediction on
a partial-merge output: unresolved-boundary node counts before, after
nearest-neighbor sweeps, and at the full-merge reference, together with
the communication volume the sweeps cost.
"""

from __future__ import annotations

import pytest

from repro.core.globalsimplify import global_persistence_simplification
from repro.data.synthetic import gaussian_bumps_field
from bench_util import emit_table, run_pipeline

FIELD_ARGS = dict(dims=(25, 25, 25), num_bumps=8, seed=9)
THRESHOLD = 0.05
BLOCKS = 64


@pytest.fixture(scope="module")
def runs():
    field = gaussian_bumps_field(
        FIELD_ARGS["dims"], FIELD_ARGS["num_bumps"], seed=FIELD_ARGS["seed"]
    )
    partial = run_pipeline(
        field,
        num_blocks=BLOCKS,
        persistence_threshold=THRESHOLD,
        merge_radices=[8],  # partial merge: 8 output blocks remain
    )
    full = run_pipeline(
        field,
        num_blocks=BLOCKS,
        persistence_threshold=THRESHOLD,
        merge_radices="full",
    )
    before_nodes = sum(partial.combined_node_counts())
    gs_stats = global_persistence_simplification(
        partial, THRESHOLD, sweeps=2
    )
    return partial, full, before_nodes, gs_stats


def bench_global_simplification(runs, benchmark):
    partial, full, before_nodes, gs = runs
    after_nodes = sum(partial.combined_node_counts())
    full_nodes = sum(full.combined_node_counts())
    lines = [
        f"{'configuration':>34} {'nodes':>6} {'output blocks':>14}",
        f"{'partial merge (radix-8, 1 round)':>34} {before_nodes:>6} "
        f"{8:>14}",
        f"{'  + global simplification':>34} {after_nodes:>6} {8:>14}",
        f"{'full merge reference':>34} {full_nodes:>6} {1:>14}",
        "",
        gs.describe(),
    ]
    emit_table("global_simplify", lines)

    def check():
        # the paper's prediction: complexity reduced without full merging
        assert after_nodes < before_nodes, (before_nodes, after_nodes)
        assert gs.cancellations > 0
        # the interior features (maxima) converge to the full-merge
        # reference; background minima on plane intersections are the
        # documented residue of pairwise sweeps
        got = partial.combined_node_counts()
        ref = full.combined_node_counts()
        assert got[3] == ref[3]
        # the data stayed distributed
        assert partial.num_output_blocks == 8
        assert gs.message_bytes > 0

    benchmark.pedantic(check, rounds=1, iterations=1)
