"""Predictive machine comparison: Blue Gene/P vs Cray XT5 (§VII-B).

The paper ported the implementation to the Jaguar XT5 but published no
numbers.  With the work counts held fixed (the computation is identical)
and only the machine constants swapped, the cost model predicts how the
Fig. 9 picture changes: Jaguar's ~10x faster cores shrink the whole
compute+merge side, but collective I/O shrinks far less — so on the
faster machine the non-compute share of the end-to-end time is larger at
every process count and the run becomes I/O-bound at lower process
counts.  (The paper's own §VII-A conclusion — "the cost of merging and
of output I/O were the primary limitations" — bites harder on Jaguar.)
"""

from __future__ import annotations

import pytest

from repro.data.datasets import jet_mixture_fraction_proxy
from repro.machine.xt5 import jaguar_xt5
from bench_util import emit_table, run_pipeline

DIMS = (48, 56, 32)
PROCS = (4, 16, 64)
THRESHOLD = 0.02


@pytest.fixture(scope="module")
def machine_runs():
    field = jet_mixture_fraction_proxy(DIMS)
    out = {}
    for name, machine in (("bgp", None), ("xt5", jaguar_xt5())):
        rows = []
        for p in PROCS:
            kwargs = dict(
                num_blocks=p,
                persistence_threshold=THRESHOLD,
                merge_radices="full",
            )
            if machine is not None:
                kwargs["machine"] = machine
            rows.append((p, run_pipeline(field, **kwargs)))
        out[name] = rows
    return out


def bench_machine_comparison(machine_runs, benchmark):
    lines = [
        f"{'machine':>8} {'procs':>6} {'compute':>9} {'merge':>8} "
        f"{'total':>9} {'compute+merge share':>20}"
    ]
    share = {}
    for name, rows in machine_runs.items():
        share[name] = []
        for p, res in rows:
            s = res.stats.stage_breakdown()
            frac = (s["compute"] + s["merge"]) / s["total"]
            share[name].append(frac)
            lines.append(
                f"{name:>8} {p:>6} {s['compute']:>9.3f} "
                f"{s['merge']:>8.3f} {s['total']:>9.3f} {frac:>20.3f}"
            )
    emit_table("machine_comparison", lines)

    def check():
        # identical topology was computed on both machines
        for (pb, rb), (px, rx) in zip(
            machine_runs["bgp"], machine_runs["xt5"]
        ):
            assert pb == px
            assert (
                rb.merged_complexes[0].node_counts_by_index()
                == rx.merged_complexes[0].node_counts_by_index()
            )
            # faster cores: xt5 computes much faster in absolute terms
            assert rx.stats.compute_time < rb.stats.compute_time / 5
            assert rx.stats.total_time < rb.stats.total_time
        # the faster machine is I/O-bound earlier: its compute+merge
        # share of the total is smaller at every process count
        for fb, fx in zip(share["bgp"], share["xt5"]):
            assert fx < fb, (share["bgp"], share["xt5"])

    benchmark.pedantic(check, rounds=1, iterations=1)
