"""Service benchmark: cold compute vs content-addressed cache serving.

Measures the service tentpole's two operational claims:

- ``warm_vs_cold``: wall latency of a cold submit (admission + full
  pipeline + artifact persist) against a warm submit of the identical
  request (admission + store hit, zero compute).  The acceptance gate
  is a >= 50x speedup — the cache must turn a compute into a lookup.
- ``coalescing``: N identical concurrent submissions while the first
  is still in flight run the pipeline exactly once, and the observed
  hit + coalesce rate under a repeat-heavy workload.

Both modes also pin correctness while timing: the warm answer's
artifact is byte-identical to the cold compute's, and a query sweep
over the cached hierarchy answers without touching the scheduler.

Run directly for the machine-readable record::

    PYTHONPATH=src python benchmarks/bench_service.py          # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke  # CI

The full run regenerates the repo-root ``BENCH_service.json``;
``--smoke`` runs a scaled-down pass and asserts the invariants (one
compute per distinct request, bit-identity, warm << cold) without the
50x timing gate.
"""

from __future__ import annotations

import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import repro
from repro.core.options import ExecutionOptions
from repro.data.synthetic import gaussian_bumps_field
from repro.io.volume import write_volume
from repro.service import ServiceClient

#: the benchmark request: large enough that a cold compute costs real
#: milliseconds (so the warm/cold ratio measures the cache, not noise)
DIMS = (24, 24, 24)
SMOKE_DIMS = (10, 10, 10)
PERS = 0.05
RANKS = 8
#: warm submits averaged per measurement (they are ~sub-millisecond)
WARM_REPEATS = 20


def _volume(tmp: Path, dims) -> tuple:
    tmp.mkdir(parents=True, exist_ok=True)
    field = gaussian_bumps_field(dims, 8, seed=11, noise=0.005)
    spec = write_volume(tmp / "bench.raw", field, dtype="float64")
    return field, spec


def measure_warm_vs_cold(tmp: Path, dims=DIMS,
                         warm_repeats: int = WARM_REPEATS) -> dict:
    """Cold submit latency vs the identical warm submit, plus identity."""
    _field, spec = _volume(tmp, dims)
    kwargs = dict(persistence=PERS, ranks=RANKS, hierarchy=True)

    with ServiceClient(tmp / "cache", max_jobs=1) as svc:
        t0 = time.perf_counter()
        cold = svc.submit(spec, wait=True, **kwargs)
        cold_seconds = time.perf_counter() - t0
        assert cold.state == "done" and cold.source == "cold", cold.error

        warm_samples = []
        for _ in range(warm_repeats):
            t0 = time.perf_counter()
            warm = svc.submit(spec, **kwargs)
            warm_samples.append(time.perf_counter() - t0)
            assert warm.source == "cache" and warm.state == "done"
            assert warm.record == cold.record

        # identity: the cached artifact is byte-for-byte what a direct
        # compute of the same request writes (same facade, no service)
        golden = tmp / "golden.msc"
        repro.compute(
            spec, persistence=PERS, ranks=RANKS,
            options=ExecutionOptions(hierarchy=True),
        ).write(golden)
        identical = (
            svc.artifact_path(cold.key).read_bytes()
            == golden.read_bytes()
        )

        # a persistence sweep answered from the cached hierarchy footer
        t0 = time.perf_counter()
        sweep = [
            svc.query(key=cold.key, persistence=p)
            for p in (0.01, 0.05, 0.1, 0.2, 0.4)
        ]
        query_seconds = (time.perf_counter() - t0) / len(sweep)
        stats = svc.stats()

    warm_seconds = sum(warm_samples) / len(warm_samples)
    return {
        "dims": list(dims),
        "ranks": RANKS,
        "persistence": PERS,
        "cold_submit_seconds": cold_seconds,
        "warm_submit_seconds": warm_seconds,
        "warm_repeats": warm_repeats,
        "speedup": cold_seconds / warm_seconds,
        "query_seconds_per_threshold": query_seconds,
        "artifact_bit_identical": identical,
        "cache_hit_rate": stats["cache_hit_rate"],
    }


def measure_coalescing(tmp: Path, dims=DIMS, submitters: int = 8) -> dict:
    """N identical concurrent submissions -> exactly one pipeline run."""
    _field, spec = _volume(tmp, dims)
    kwargs = dict(persistence=PERS, ranks=RANKS)

    with ServiceClient(tmp / "cache", max_jobs=2) as svc:
        t0 = time.perf_counter()
        with ThreadPoolExecutor(submitters) as pool:
            jobs = list(pool.map(
                lambda _: svc.submit(spec, **kwargs), range(submitters)
            ))
        final = svc.wait(jobs[0].job_id)
        elapsed = time.perf_counter() - t0
        snap = svc.metrics.snapshot()

    distinct = {j.job_id for j in jobs}
    cache_hits = snap.get("service.cache.hits", {}).get("value", 0)
    return {
        "submitters": submitters,
        "distinct_jobs": len(distinct),
        "coalesced_submits": final.coalesced_submits,
        # a submitter losing the race to the finished job becomes a
        # cache hit instead of a coalesce — either way, no second run
        "cache_hit_submits": cache_hits,
        "pipeline_runs": snap["service.jobs.done"]["value"],
        "wall_seconds": elapsed,
    }


def collect_record() -> dict:
    """The full record ``BENCH_service.json`` holds."""
    import os
    import sys

    with tempfile.TemporaryDirectory() as td:
        tmp = Path(td)
        warm_cold = measure_warm_vs_cold(tmp / "wc")
        coalescing = measure_coalescing(tmp / "co")

    return {
        "field": f"gaussian_bumps {DIMS[0]}^3, 8 bumps, noise 0.005",
        "harness": {
            "metric": (
                "wall seconds per submit() call, warm averaged over "
                f"{WARM_REPEATS} repeats; one client, max_jobs=1"
            ),
            "gate": "warm submit >= 50x faster than cold",
        },
        "host": {
            "cores": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "warm_vs_cold": warm_cold,
        "coalescing": coalescing,
    }


def run_smoke() -> dict:
    """Scaled-down CI pass: invariants only, no 50x timing gate."""
    with tempfile.TemporaryDirectory() as td:
        tmp = Path(td)
        warm_cold = measure_warm_vs_cold(
            tmp / "wc", dims=SMOKE_DIMS, warm_repeats=5
        )
        assert warm_cold["artifact_bit_identical"], warm_cold
        assert warm_cold["warm_submit_seconds"] < \
            warm_cold["cold_submit_seconds"], warm_cold

        coalescing = measure_coalescing(
            tmp / "co", dims=SMOKE_DIMS, submitters=4
        )
        assert coalescing["pipeline_runs"] == 1, coalescing
        deduped = (coalescing["coalesced_submits"]
                   + coalescing["cache_hit_submits"])
        assert deduped == coalescing["submitters"] - 1, coalescing
    return {"warm_vs_cold": warm_cold, "coalescing": coalescing}


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


def bench_service_warm_vs_cold(benchmark):
    with tempfile.TemporaryDirectory() as td:
        res = benchmark.pedantic(
            lambda: measure_warm_vs_cold(Path(td), dims=SMOKE_DIMS,
                                         warm_repeats=5),
            rounds=1, iterations=1,
        )
    assert res["artifact_bit_identical"]


def bench_service_before_after_json(benchmark):
    """Regenerate the repo-root ``BENCH_service.json`` record."""
    from bench_util import attach_peak_rss, emit_json

    record = attach_peak_rss(collect_record())
    path = emit_json(
        "BENCH_service",
        record,
        path=Path(__file__).resolve().parent.parent
        / "BENCH_service.json",
    )
    wc = record["warm_vs_cold"]
    print(
        f"\nwrote {path}; warm submit {wc['speedup']:.0f}x faster "
        f"({wc['cold_submit_seconds']*1e3:.1f} ms -> "
        f"{wc['warm_submit_seconds']*1e6:.0f} us)"
    )
    assert wc["artifact_bit_identical"]
    assert wc["speedup"] >= 50.0
    assert record["coalescing"]["pipeline_runs"] == 1
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


if __name__ == "__main__":
    import argparse
    import json

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true",
                    help="scaled-down CI pass; no JSON output")
    args = ap.parse_args()

    if args.smoke:
        res = run_smoke()
        wc, co = res["warm_vs_cold"], res["coalescing"]
        print("service smoke ok:")
        print(
            f"  cold {wc['cold_submit_seconds']*1e3:.1f} ms, warm "
            f"{wc['warm_submit_seconds']*1e3:.3f} ms "
            f"({wc['speedup']:.1f}x), bit identical: "
            f"{wc['artifact_bit_identical']}"
        )
        print(
            f"  coalescing: {co['submitters']} submitters -> "
            f"{co['pipeline_runs']} pipeline run(s), "
            f"{co['coalesced_submits']} coalesced"
        )
    else:
        from bench_util import attach_peak_rss

        record = attach_peak_rss(collect_record())
        out = Path(__file__).resolve().parent.parent / "BENCH_service.json"
        out.write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n"
        )
        wc, co = record["warm_vs_cold"], record["coalescing"]
        print(f"wrote {out}")
        print(
            f"  warm vs cold: {wc['cold_submit_seconds']*1e3:.1f} ms -> "
            f"{wc['warm_submit_seconds']*1e6:.0f} us "
            f"({wc['speedup']:.0f}x); bit identical: "
            f"{wc['artifact_bit_identical']}"
        )
        print(
            f"  coalescing: {co['submitters']} submitters -> "
            f"{co['pipeline_runs']} pipeline run(s), "
            f"{co['coalesced_submits']} coalesced in "
            f"{co['wall_seconds']*1e3:.1f} ms"
        )
        assert wc["speedup"] >= 50.0, (
            f"warm submit only {wc['speedup']:.1f}x faster than cold"
        )
