"""Table II: merge strategies for a full merge of 256 blocks (§VI-C2).

The paper compares five round/radix strategies that all merge 256 input
blocks to one output block and reports compute+merge time:

    3 rounds  [4 8 8]     144.040 s   (best)
    3 rounds  [8 8 4]     144.528 s
    4 rounds  [4 4 2 8]   144.955 s
    4 rounds  [4 4 4 4]   145.012 s
    8 rounds  [2 x 8]     149.174 s   (worst)

Generalized guideline: "A smaller number of rounds with higher radices
is desired ... the remaining smaller radices are slightly better in
early rounds rather than later."  This bench runs the same five
strategies on a real 256-block decomposition and asserts the two shape
conclusions: the 3-round high-radix strategies beat the 8-round radix-2
strategy, and the differences between near-optimal strategies are small
(within a few percent of the total), exactly as in the paper.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import sinusoidal_field
from bench_util import emit_table, run_pipeline

NUM_BLOCKS = 256
SPLITS = (8, 8, 4)
DIMS = (33, 33, 17)
STRATEGIES = (
    [4, 8, 8],
    [8, 8, 4],
    [4, 4, 2, 8],
    [4, 4, 4, 4],
    [2] * 8,
)


@pytest.fixture(scope="module")
def strategy_runs():
    field = sinusoidal_field(0, 4, dims=DIMS).astype(np.float64)
    runs = []
    for radices in STRATEGIES:
        res = run_pipeline(
            field,
            num_blocks=NUM_BLOCKS,
            splits=SPLITS,
            persistence_threshold=0.05,
            merge_radices=radices,
        )
        assert res.num_output_blocks == 1
        runs.append((radices, res))
    return runs


def bench_table2_merge_strategies(strategy_runs, benchmark):
    lines = [
        f"{'Rounds':>6} {'Round Radices':>16} "
        f"{'Compute + Merge Time (s)':>25}"
    ]
    times = []
    for radices, res in strategy_runs:
        t = res.stats.compute_time + res.stats.merge_time
        times.append(t)
        lines.append(
            f"{len(radices):>6} {' '.join(map(str, radices)):>16} "
            f"{t:>25.4f}"
        )
    emit_table("table2_merge_strategy", lines)

    def check():
        t_488, t_884, t_4428, t_4444, t_2x8 = times
        # high-radix few-round strategies beat radix-2 everywhere
        assert max(t_488, t_884, t_4428, t_4444) < t_2x8, times
        # best-in-table is one of the 3-round strategies
        assert min(times) in (t_488, t_884), times
        # near-optimal strategies stay close together (the paper's gap
        # is <1%; at toy scale per-round fixed costs weigh more, so the
        # band is wider but the separation from radix-2 remains clear)
        near = [t_488, t_884, t_4428, t_4444]
        assert max(near) / min(near) < 1.30, times
        assert t_2x8 / min(near) > max(near) / min(near), times

    benchmark.pedantic(check, rounds=1, iterations=1)
