"""Figure 6: compute time, merge time, and output size vs processes,
data size, and data complexity (paper §VI-B).

The paper's 3x3 log-log panel grid: for three complexities (features per
side), plot compute time, merge time, and output size against process
count, one line per data size.  Scaled down from the paper's 256..1024
points per side / up-to-16k processes to laptop size, the sweep
regenerates the same series and asserts the paper's four conclusions:

1. compute time scales linearly with process count and depends on data
   size, not complexity (weak scaling efficiency ~1: it "only depends on
   the size of the blocks"),
2. merge time is unaffected by data size but grows with complexity,
3. output size grows slowly with process count (boundary artifacts of a
   constant number of merge rounds) and strongly with complexity,
4. at low complexity the output is dominated by arc geometry, which
   grows with the side length of the dataset.

Figure 5 (renderings of the complexity family) is exercised implicitly:
the same generator at three complexities, with measured feature counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import sinusoidal_field
from bench_util import emit_table, run_pipeline

COMPLEXITIES = (2, 4, 8)  # features per side (paper: 2..32)
SIZES = (17, 25, 33)  # points per side (paper: 256..1024)
PROCS = (1, 8, 64)  # processes = blocks (paper: 16..16384)
THRESHOLD = 0.05


@pytest.fixture(scope="module")
def sweep():
    """Run the full parameter sweep once; benches share the results."""
    results = {}
    for k in COMPLEXITIES:
        for n in SIZES:
            field = sinusoidal_field(n, k).astype(np.float64)
            for p in PROCS:
                if p > 1 and (n - 1) < 2 * round(p ** (1 / 3)):
                    continue
                # the paper runs a *constant* number of merge rounds for
                # this study ("two rounds of radix-8"), so more processes
                # leave more output blocks with unresolved boundary
                # artifacts; we use one radix-8 round at laptop scale
                res = run_pipeline(
                    field,
                    num_blocks=p,
                    persistence_threshold=THRESHOLD,
                    merge_radices=[8] if p > 1 else "none",
                )
                results[(k, n, p)] = res
    return results


def bench_fig6_panels(sweep, benchmark):
    # compute(s)/merge(s) are modeled Blue Gene/P seconds from the
    # virtual clock; wall(s)/cpu(s) are the measured compute stage of
    # this run's executor (serial here — see bench_executor_speedup for
    # the process-pool speedup study)
    lines = [
        f"{'complexity':>10} {'size':>5} {'procs':>6} "
        f"{'compute(s)':>11} {'merge(s)':>10} {'output(B)':>10} "
        f"{'maxima':>7} {'wall(s)':>9} {'cpu(s)':>9}"
    ]
    for (k, n, p), res in sorted(sweep.items()):
        s = res.stats
        maxima = res.combined_node_counts()[3]
        lines.append(
            f"{k:>10} {n:>5} {p:>6} {s.compute_time:>11.4f} "
            f"{s.merge_time:>10.4f} {s.output_bytes:>10} {maxima:>7} "
            f"{s.compute_wall_seconds:>9.3f} {s.compute_cpu_seconds:>9.3f}"
        )
    emit_table("fig6_scaling", lines)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def bench_fig6_compute_weak_scaling(sweep, benchmark):
    """Conclusion 1: compute time ~ cells/proc, independent of complexity."""

    def check():
        for k in COMPLEXITIES:
            for n in SIZES:
                t1 = sweep[(k, n, 1)].stats.compute_time
                t64 = sweep[(k, n, 64)].stats.compute_time
                # strong scaling of the compute stage is near-linear
                assert t1 / t64 > 16, (k, n, t1, t64)
        # complexity leaves compute time within a small factor in the
        # paper's regime (features << cells); our scaled-down volumes
        # approach that regime from above, so the complexity effect must
        # shrink as the volume grows and be small at the largest size
        spreads = []
        for n in SIZES:
            times = [sweep[(k, n, 1)].stats.compute_time
                     for k in COMPLEXITIES]
            spreads.append(max(times) / min(times))
        assert all(b < a for a, b in zip(spreads, spreads[1:])), spreads
        assert spreads[-1] < 1.6, spreads
        # data size dominates compute time
        for k in COMPLEXITIES:
            assert (
                sweep[(k, 33, 1)].stats.compute_time
                > 2 * sweep[(k, 17, 1)].stats.compute_time
            )

    benchmark.pedantic(check, rounds=1, iterations=1)


def bench_fig6_merge_complexity(sweep, benchmark):
    """Conclusion 2: merge time tracks complexity, not data size."""

    def check():
        for p in (8, 64):
            # complexity raises merge time at fixed size and procs
            for n in SIZES:
                lo = sweep[(COMPLEXITIES[0], n, p)].stats.merge_time
                hi = sweep[(COMPLEXITIES[-1], n, p)].stats.merge_time
                assert hi > lo, (n, p, lo, hi)
        # size changes merge time far less than complexity does; judged
        # at 8 processes, where blocks are large enough that boundary
        # surface does not dominate the complexes (at 64 processes the
        # smallest volume has 3^3-vertex blocks, outside the paper's
        # feature-dominated regime)
        p = 8
        for k in COMPLEXITIES:
            sizes = [sweep[(k, n, p)].stats.merge_time for n in SIZES]
            size_ratio = max(sizes) / min(sizes)
            compl = [
                sweep[(kk, SIZES[0], p)].stats.merge_time
                for kk in COMPLEXITIES
            ]
            compl_ratio = max(compl) / min(compl)
            assert compl_ratio > size_ratio * 0.9, (
                p, k, size_ratio, compl_ratio,
            )

    benchmark.pedantic(check, rounds=1, iterations=1)


def bench_fig6_output_size(sweep, benchmark):
    """Conclusions 3+4: output grows with procs and complexity; at low
    complexity geometry (∝ side length) dominates."""

    def check():
        # at a constant number of merge rounds, more processes leave
        # more output blocks whose unresolved boundary artifacts add
        # nodes to the output (the paper's within-panel slope); node
        # counts are the robust measure — byte sizes can be swamped by
        # parallel-arc geometry on the degenerate sinusoid
        for k in COMPLEXITIES:
            for n in SIZES:
                assert sweep[(k, n, 64)].num_output_blocks == 8
                assert sweep[(k, n, 8)].num_output_blocks == 1
                if (n - 1) / k < 4:
                    # fewer than ~4 samples per feature: below the
                    # resolution the paper's study operates at, where
                    # blocking noise swamps the artifact slope
                    continue
                assert sum(
                    sweep[(k, n, 64)].combined_node_counts()
                ) > sum(sweep[(k, n, 8)].combined_node_counts()), (k, n)
        # and for the tie-free low-complexity family, bytes too
        for n in SIZES:
            assert (
                sweep[(2, n, 64)].stats.output_bytes
                > sweep[(2, n, 8)].stats.output_bytes
            ), n
        # complexity dominates output size
        for n in SIZES:
            assert (
                sweep[(8, n, 8)].stats.output_bytes
                > sweep[(2, n, 8)].stats.output_bytes
            )
        # at low complexity, output grows with side length (geometry term)
        for p in PROCS:
            assert (
                sweep[(2, 33, p)].stats.output_bytes
                > sweep[(2, 17, p)].stats.output_bytes
            )
        # feature count matches the generator's intent: k^3/2 maxima
        for k in COMPLEXITIES:
            maxima = sweep[(k, 33, 1)].combined_node_counts()[3]
            assert k**3 / 6 <= maxima <= k**3, (k, maxima)

    benchmark.pedantic(check, rounds=1, iterations=1)
