"""Figure 10: strong scaling on the Rayleigh-Taylor dataset (§VI-D2).

The paper's largest benchmark: density of a 1152^3 Rayleigh-Taylor
mixing simulation, run to 32,768 processes with a *partial* merge of two
radix-8 rounds.  The result: "The strong scaling efficiency of the
compute+merge time is 66%, and it is 35% for the overall end-to-end
time" — the partial merge is the realistic scenario where the algorithm
stays efficient at high process counts, with I/O the primary remaining
limit.

This reproduction runs the RT proxy over a 64x process range with the
same two-round radix-8 partial merge and asserts: efficiency of
compute+merge exceeds overall efficiency, both degrade gracefully, and
the partial merge keeps merge costs far below the Fig. 9 full-merge
behavior (merge does not overtake compute).
"""

from __future__ import annotations

import pytest

from repro.data.datasets import rayleigh_taylor_proxy
from bench_util import emit_table, run_pipeline, strong_scaling_efficiency

DIMS = (49, 49, 49)  # paper: 1152^3
PROCS = (8, 64, 512)  # paper: 1024 .. 32768
THRESHOLD = 0.1


@pytest.fixture(scope="module")
def scaling_runs():
    field = rayleigh_taylor_proxy(DIMS)
    runs = []
    for p in PROCS:
        radices = [8, 8] if p >= 64 else [8]  # two-round partial merge
        res = run_pipeline(
            field,
            num_blocks=p,
            persistence_threshold=THRESHOLD,
            merge_radices=radices,
        )
        runs.append((p, res))
    return runs


def bench_fig10_rt_strong_scaling(scaling_runs, benchmark):
    lines = [
        f"{'procs':>6} {'out blocks':>10} {'compute+merge':>14} "
        f"{'total':>9} {'eff(c+m)':>9} {'eff(total)':>11}"
    ]
    cm_times, totals = [], []
    for p, res in scaling_runs:
        s = res.stats.stage_breakdown()
        cm = s["compute"] + s["merge"]
        cm_times.append(cm)
        totals.append(s["total"])
        eff_cm = strong_scaling_efficiency(
            [cm_times[0], cm], [PROCS[0], p]
        )[1]
        eff_tot = strong_scaling_efficiency(
            [totals[0], s["total"]], [PROCS[0], p]
        )[1]
        lines.append(
            f"{p:>6} {res.num_output_blocks:>10} {cm:>14.3f} "
            f"{s['total']:>9.3f} {eff_cm:>9.2f} {eff_tot:>11.2f}"
        )
    emit_table("fig10_rt_strong_scaling", lines)

    def check():
        effs_cm = strong_scaling_efficiency(cm_times, list(PROCS))
        effs_tot = strong_scaling_efficiency(totals, list(PROCS))
        # the paper's headline: compute+merge efficiency (66%) beats
        # end-to-end efficiency (35%) at the largest scale
        assert effs_cm[-1] > effs_tot[-1], (effs_cm, effs_tot)
        # compute+merge keeps scaling usefully under a partial merge
        assert effs_cm[-1] > 0.2, effs_cm
        # times still shrink with more processes
        assert cm_times[-1] < cm_times[0]
        assert totals[-1] < totals[0]

    benchmark.pedantic(check, rounds=1, iterations=1)


def bench_fig10_partial_vs_full_merge(scaling_runs, benchmark):
    """Fig. 7/§VI-D context: partial merging trades output blocks for
    much cheaper merge rounds compared to a full merge."""
    field = rayleigh_taylor_proxy(DIMS)
    p = 512
    partial = next(res for q, res in scaling_runs if q == p)
    full = run_pipeline(
        field,
        num_blocks=p,
        persistence_threshold=THRESHOLD,
        merge_radices="full",
    )
    lines = [
        f"{'merge':>8} {'out blocks':>10} {'merge time':>11} "
        f"{'output bytes':>13}",
        f"{'partial':>8} {partial.num_output_blocks:>10} "
        f"{partial.stats.merge_time:>11.3f} "
        f"{partial.stats.output_bytes:>13}",
        f"{'full':>8} {full.num_output_blocks:>10} "
        f"{full.stats.merge_time:>11.3f} {full.stats.output_bytes:>13}",
    ]
    emit_table("fig10_partial_vs_full", lines)

    def check():
        assert partial.num_output_blocks == 8
        assert full.num_output_blocks == 1
        assert full.stats.merge_time > partial.stats.merge_time
        # unresolved boundary artifacts make the partial output larger
        assert partial.stats.output_bytes >= full.stats.output_bytes

    benchmark.pedantic(check, rounds=1, iterations=1)
