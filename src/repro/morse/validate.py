"""Structural invariants of gradient fields and MS complexes.

These checks back the test suite and can be enabled in the pipeline for
debugging.  They encode the discrete-Morse-theory facts the paper's
algorithm relies on:

- a complete gradient field pairs every cell at most once, mutually, and
  acyclically (it is a *gradient* field, not just a vector field);
- the alternating sum of critical cells equals the Euler characteristic
  of the block (1 for a full box);
- MS complex arcs connect nodes differing in Morse index by one, and the
  complex stays consistent under cancellation and gluing.
"""

from __future__ import annotations

import numpy as np

from repro.morse.msc import MorseSmaleComplex
from repro.morse.vectorfield import CRITICAL, GradientField

__all__ = [
    "assert_gradient_field_valid",
    "assert_acyclic",
    "assert_ms_complex_valid",
]


def assert_gradient_field_valid(field: GradientField) -> None:
    """Completeness, mutuality, and dimension checks (vectorized)."""
    field.assert_complete()


def assert_acyclic(field: GradientField) -> None:
    """Verify that no V-path revisits a cell.

    Walks the V-path successor graph: tail cells point through their head
    to the head's other facets.  Uses an iterative coloring DFS; cost is
    linear in the number of (cell, successor) edges, so keep to small test
    complexes.
    """
    cx = field.complex
    pairing = field.pairing
    offs = field.dir_offsets
    dim = cx.cell_dim

    def successors(alpha: int) -> list[int]:
        code = pairing[alpha]
        if code >= CRITICAL:
            return []
        beta = alpha + offs[code]
        if dim[beta] != dim[alpha] + 1:
            return []
        t = int(cx.celltype[beta])
        return [beta + f for f in cx.facet_offsets[t] if beta + f != alpha]

    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[int, int] = {}
    for d in range(3):
        for start in cx.cells_by_dim[d].tolist():
            if color.get(start, WHITE) != WHITE:
                continue
            stack = [(start, iter(successors(start)))]
            color[start] = GRAY
            while stack:
                node, it = stack[-1]
                nxt = next(it, None)
                if nxt is None:
                    color[node] = BLACK
                    stack.pop()
                    continue
                c = color.get(nxt, WHITE)
                if c == GRAY:
                    raise AssertionError(
                        f"V-path cycle through cell {nxt} (dim {dim[nxt]})"
                    )
                if c == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, iter(successors(nxt))))


def assert_ms_complex_valid(
    msc: MorseSmaleComplex, check_geometry: bool = True
) -> None:
    """Well-formedness of the living complex.

    Checks index relations on arcs, endpoint liveness, adjacency
    consistency, address uniqueness among living nodes, and (optionally)
    that each living leaf geometry starts/ends at its arc's node
    addresses.
    """
    alive_nodes = set(msc.alive_nodes())
    seen_addr: dict[int, int] = {}
    for nid in alive_nodes:
        addr = msc.node_address[nid]
        if addr in seen_addr:
            raise AssertionError(
                f"duplicate node address {addr} "
                f"(nodes {seen_addr[addr]} and {nid})"
            )
        seen_addr[addr] = nid

    for aid in msc.alive_arcs():
        u, l = msc.arc_upper[aid], msc.arc_lower[aid]
        if u not in alive_nodes or l not in alive_nodes:
            raise AssertionError(f"arc {aid} has a dead endpoint")
        if msc.node_index[u] != msc.node_index[l] + 1:
            raise AssertionError(f"arc {aid} violates the index relation")
        if aid not in msc.node_arcs[u] or aid not in msc.node_arcs[l]:
            raise AssertionError(f"arc {aid} missing from endpoint adjacency")
        if check_geometry:
            geo = msc.geometry_addresses(aid)
            if geo.size:
                if geo[0] != msc.node_address[u]:
                    raise AssertionError(
                        f"arc {aid} geometry does not start at its upper node"
                    )
                if geo[-1] != msc.node_address[l]:
                    raise AssertionError(
                        f"arc {aid} geometry does not end at its lower node"
                    )
