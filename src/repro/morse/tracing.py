"""V-path tracing: from gradient field to MS complex 1-skeleton (§IV-D).

"The finest-scale MS complex is computed by tracing V-paths in the
discrete gradient field from critical cells.  In a first pass through the
gradient, all critical cells are added to the MS complex as nodes.
V-paths are traced downwards from each node, and an arc is added to the
MS complex for every path terminating at a critical cell.  The list of
cells in the V-path forms the geometric embedding of the arc."

V-paths branch: descending from a head cell, every facet other than the
one we arrived through continues a separate path, so the trace is a
depth-first enumeration of all descending V-paths.  Paths through a cell
that is the head of a lower-dimensional vector terminate without creating
an arc.  Because the gradient field is acyclic, the enumeration always
terminates; distinct paths between the same pair of critical cells yield
distinct arcs (arc multiplicity matters for cancellation validity).
"""

from __future__ import annotations

import numpy as np

from repro.morse.msc import MorseSmaleComplex
from repro.morse.vectorfield import CRITICAL, GradientField

__all__ = ["extract_ms_complex", "trace_down"]


def trace_down(field: GradientField, crit: int) -> list[list[int]]:
    """Enumerate descending V-paths from critical cell ``crit``.

    Returns one path per descending V-path that terminates at a critical
    cell; each path is the list of padded cell indices from ``crit``
    (inclusive) down to the terminating critical cell (inclusive).
    """
    cx = field.complex
    pairing = field.pairing
    dir_offsets = field.dir_offsets
    cell_dim = cx.cell_dim
    facet_offsets = cx.facet_offsets
    celltype = cx.celltype

    results: list[list[int]] = []
    path = [crit]
    # frame: (iterator over candidate tail cells, number of path entries
    # appended when the frame was pushed)
    t = int(celltype[crit])
    frames = [(iter([crit + off for off in facet_offsets[t]]), 1)]
    while frames:
        it, _npop = frames[-1]
        alpha = next(it, None)
        if alpha is None:
            _, npop = frames.pop()
            del path[len(path) - npop:]
            continue
        code = pairing[alpha]
        if code == CRITICAL:
            results.append(path + [alpha])
            continue
        partner = alpha + dir_offsets[code]
        if cell_dim[partner] != cell_dim[alpha] + 1:
            # alpha is the head of a lower vector: dead branch
            continue
        # descend through the head cell `partner`
        path.append(alpha)
        path.append(partner)
        tp = int(celltype[partner])
        frames.append(
            (
                iter(
                    [
                        partner + off
                        for off in facet_offsets[tp]
                        if partner + off != alpha
                    ]
                ),
                2,
            )
        )
    return results


def extract_ms_complex(
    field: GradientField,
    max_paths_per_node: int | None = None,
) -> MorseSmaleComplex:
    """Build the block-local MS complex 1-skeleton from a gradient field.

    Nodes carry the cell's global address, Morse index, value, and a
    boundary flag (set when the cell lies on an internal cut plane of the
    domain decomposition, i.e. its boundary signature is non-zero).

    Parameters
    ----------
    field:
        A complete discrete gradient field.
    max_paths_per_node:
        Optional safety cap on the number of V-paths enumerated from one
        node (pathological fields can have exponentially many); ``None``
        enumerates all.
    """
    cx = field.complex
    region_lo = tuple(o // 2 for o in cx.refined_origin)
    region_hi = tuple(
        o // 2 + n for o, n in zip(cx.refined_origin, cx.vertex_shape)
    )
    msc = MorseSmaleComplex(
        cx.global_refined_dims, region_lo, region_hi
    )

    crit_by_dim = field.critical_cells_by_dim()
    node_of_cell: dict[int, int] = {}
    for d in range(4):
        for p in crit_by_dim[d].tolist():
            nid = msc.add_node(
                address=int(cx.global_address[p]),
                index=d,
                value=float(cx.cell_value[p]),
                boundary=bool(cx.boundary_sig[p] != 0),
            )
            node_of_cell[p] = nid

    addresses = cx.global_address
    for d in range(1, 4):
        for p in crit_by_dim[d].tolist():
            paths = trace_down(field, p)
            if max_paths_per_node is not None:
                paths = paths[:max_paths_per_node]
            upper = node_of_cell[p]
            for path in paths:
                lower = node_of_cell[path[-1]]
                gid = msc.new_leaf_geometry(addresses[path])
                msc.add_arc(upper, lower, gid)
    return msc
