"""V-path tracing: from gradient field to MS complex 1-skeleton (§IV-D).

"The finest-scale MS complex is computed by tracing V-paths in the
discrete gradient field from critical cells.  In a first pass through the
gradient, all critical cells are added to the MS complex as nodes.
V-paths are traced downwards from each node, and an arc is added to the
MS complex for every path terminating at a critical cell.  The list of
cells in the V-path forms the geometric embedding of the arc."

V-paths branch: descending from a head cell, every facet other than the
one we arrived through continues a separate path, so the trace is a
depth-first enumeration of all descending V-paths.  Paths through a cell
that is the head of a lower-dimensional vector terminate without creating
an arc.  Because the gradient field is acyclic, the enumeration always
terminates; distinct paths between the same pair of critical cells yield
distinct arcs (arc multiplicity matters for cancellation validity).

Two tracing backends
--------------------
Both backends consume the same flat continuation arrays
(:meth:`~repro.morse.vectorfield.GradientField.continuation_tables`)
and construct **bit-identical** complexes; the ``kernel_backend`` knob
(``{auto, dfs, pointer}``) selects one per field.

``dfs``
    The per-path depth-first tracer.  The DFS allocates nothing per
    frame and touches two lookup tables per step: ``cont[alpha]``
    resolves a candidate cell in one list access and ``ckey[alpha]``
    indexes the memoized ``trace_facets`` table with the head cell's
    continuation facets.  Frames are parallel int stacks, and unbranched
    descent runs in an inline chain loop with no stack traffic.  Fastest
    on small fields, where whole-array passes cannot amortize.

``pointer``
    The vectorized pointer-jumping tracer (after the GPU MS-complex and
    distributed path-compression formulations, arXiv:2009.03707 /
    2409.03771).  Unbranched runs of the descent are compressed with
    iterated pointer doubling — O(log L) whole-array numpy passes build
    a jump table from every cell to the end of its unbranched chain —
    and the remaining branch/emit points are expanded level-
    synchronously as whole-frontier array passes.  Exact DFS enumeration
    order is reconstructed with a leaf-counting backward pass and a
    segmented-prefix-sum forward pass over the branching forest, and
    arc geometry is materialized with a vectorized chain walk.  Fastest
    on production-sized fields.

``auto``
    Picks ``pointer`` exactly when the field has at least
    :data:`AUTO_POINTER_MIN_CELLS` cells, ``dfs`` otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.morse.msc import MorseSmaleComplex
from repro.morse.vectorfield import (
    CONT_CRITICAL,
    CONT_DEAD,
    GradientField,
)
from repro.obs.trace import get_tracer

__all__ = [
    "AUTO_POINTER_MIN_CELLS",
    "KERNEL_BACKENDS",
    "extract_ms_complex",
    "resolve_kernel_backend",
    "trace_down",
]

#: tracing-backend choices: "dfs" runs the per-path depth-first tracer,
#: "pointer" the vectorized pointer-jumping tracer, "auto" picks by
#: field size (see :func:`resolve_kernel_backend`)
KERNEL_BACKENDS = ("auto", "dfs", "pointer")

#: smallest cell count for which ``kernel_backend="auto"`` selects the
#: pointer backend; below it the whole-array passes cannot amortize
#: their setup and the DFS wins (measured on the bench field, see
#: ``benchmarks/bench_kernels.py``)
AUTO_POINTER_MIN_CELLS = 12288


def resolve_kernel_backend(backend: str, field: GradientField) -> str:
    """Concrete tracing backend for ``field`` after resolving ``auto``."""
    if backend not in KERNEL_BACKENDS:
        raise ValueError(
            f"invalid kernel_backend {backend!r}: choose one of "
            f"{{{', '.join(KERNEL_BACKENDS)}}}"
        )
    if backend == "auto":
        return (
            "pointer"
            if field.complex.num_cells >= AUTO_POINTER_MIN_CELLS
            else "dfs"
        )
    return backend


# ---------------------------------------------------------------------------
# the per-path DFS backend
# ---------------------------------------------------------------------------


def _trace_state(field: GradientField):
    """Per-field DFS hot-loop state, built once and cached on the field.

    Returns ``(cont, ckey, ctab, facet_offsets, celltype)``: the
    continuation tables of
    :meth:`~repro.morse.vectorfield.GradientField.continuation_tables`
    as plain lists (one list access per DFS step), the flattened
    memoized ``trace_facets`` table, and the per-cell type table.
    """
    state = getattr(field, "_trace_state", None)
    if state is None:
        cx = field.complex
        cont, ckey = field.continuation_tables()
        ctab = tuple(
            cands
            for per_type in cx.tables.trace_facets
            for cands in per_type
        )
        state = (
            cont.tolist(),
            ckey.tolist(),
            ctab,
            cx.facet_offsets,
            cx.celltype.tolist(),
        )
        field._trace_state = state
    return state


def trace_down(
    field: GradientField, crit: int, kernel_backend: str = "dfs"
) -> list[list[int]]:
    """Enumerate descending V-paths from critical cell ``crit``.

    Returns one path per descending V-path that terminates at a critical
    cell; each path is the list of padded cell indices from ``crit``
    (inclusive) down to the terminating critical cell (inclusive).
    ``kernel_backend`` selects the tracer (both enumerate identically;
    the default DFS is fastest for a single source).
    """
    backend = resolve_kernel_backend(kernel_backend, field)
    if backend == "pointer":
        flat, lens, _, _ = _trace_down_many_pointer(field, [crit])
        flat = flat.tolist()
    else:
        flat, lens, _ = _trace_down_flat(field, crit)
    results: list[list[int]] = []
    pos = 0
    for length in lens:
        results.append(flat[pos:pos + length])
        pos += length
    return results


def _trace_down_flat(
    field: GradientField, crit: int
) -> tuple[list[int], list[int], list[int]]:
    """:func:`trace_down` with paths packed into one flat list.

    Returns ``(flat, lens, terminals)``: the concatenated paths, each
    path's length, and each path's terminating critical cell.
    """
    flat, lens, terminals, _ = _trace_down_many(field, [crit])
    return flat, lens, terminals


def _trace_down_many(
    field: GradientField,
    sources: list[int],
    max_paths_per_node: int | None = None,
) -> tuple[list[int], list[int], list[int], list[int]]:
    """Trace descending V-paths from a whole batch of critical cells.

    Returns ``(flat, lens, terminals, counts)``: the concatenated paths
    of every source, each path's length, each path's terminating
    critical cell, and the number of paths per source — the form
    :func:`extract_ms_complex` consumes, so one batch of sources needs a
    single table-state unpack and its path addresses convert with a
    single fancy index instead of one small call and array per source.
    Per-source enumeration order is exactly :func:`trace_down`'s.
    """
    cont, ckey, ctab, facet_offsets, celltype = _trace_state(field)

    flat: list[int] = []
    lens: list[int] = []
    terminals: list[int] = []
    counts: list[int] = []
    # parallel DFS stacks: base cell, its candidate facet-offset tuple,
    # next candidate index, and path entries to pop when exhausted;
    # drained empty by each source's DFS, so shared across sources
    bases: list[int] = []
    cands: list[tuple] = []
    nexts: list[int] = []
    npops: list[int] = []
    for crit in sources:
        first_path = len(lens)
        first_flat = len(flat)
        path = [crit]
        bases.append(crit)
        cands.append(facet_offsets[celltype[crit]])
        nexts.append(0)
        npops.append(1)
        while bases:
            i = nexts[-1]
            cand = cands[-1]
            if i == len(cand):
                bases.pop()
                cands.pop()
                nexts.pop()
                del path[len(path) - npops.pop():]
                continue
            nexts[-1] = i + 1
            alpha = bases[-1] + cand[i]
            head = cont[alpha]
            if head < 0:
                if head == CONT_CRITICAL:
                    flat.extend(path)
                    flat.append(alpha)
                    lens.append(len(path) + 1)
                    terminals.append(alpha)
                continue
            # inline chain descent: single-continuation heads (every
            # 1-cell) advance without any stack traffic
            chain = 0
            while True:
                path.append(alpha)
                path.append(head)
                chain += 2
                nxt = ctab[ckey[alpha]]
                if len(nxt) > 1:
                    bases.append(head)
                    cands.append(nxt)
                    nexts.append(0)
                    npops.append(chain)
                    break
                alpha = head + nxt[0]
                head = cont[alpha]
                if head >= 0:
                    continue
                if head == CONT_CRITICAL:
                    flat.extend(path)
                    flat.append(alpha)
                    lens.append(len(path) + 1)
                    terminals.append(alpha)
                del path[len(path) - chain:]
                break
        npaths = len(lens) - first_path
        if (
            max_paths_per_node is not None
            and npaths > max_paths_per_node
        ):
            keep = first_path + max_paths_per_node
            del flat[first_flat + sum(lens[first_path:keep]):]
            del lens[keep:]
            del terminals[keep:]
            npaths = max_paths_per_node
        counts.append(npaths)
    return flat, lens, terminals, counts


# ---------------------------------------------------------------------------
# the vectorized pointer-jumping backend
# ---------------------------------------------------------------------------

#: safety bound on pointer-doubling rounds (2^64 chain steps is
#: impossible; hitting it means the gradient field is cyclic/corrupt)
_MAX_DOUBLING_ROUNDS = 64


class _PointerState:
    """Per-field flat tables of the pointer-jumping tracer.

    Built with whole-array numpy passes once per field and cached
    (``field._pointer_state``); holds the shared continuation arrays,
    the flattened candidate tables, and the chain-compression jump
    table produced by pointer doubling:

    - ``chain_next[alpha]`` — the unique continuation of an *unbranched,
      non-emitting* descent step through ``alpha`` (its head has exactly
      one live candidate and none critical), else ``-1``;
    - ``jump[alpha]`` / ``dist[alpha]`` — the first branch/emit/terminal
      cell reached by following ``chain_next`` from ``alpha``, and the
      number of chain steps to it (0 for non-chain cells).
    """

    __slots__ = (
        "cont", "ckey", "chain_next", "jump", "dist",
        "cand_flat", "cand_start", "cand_len",
        "ftab_flat", "fstart", "flen", "celltype",
        "doubling_rounds",
    )

    def __init__(self, field: GradientField) -> None:
        cx = field.complex
        cont, ckey = field.continuation_tables()
        n = cx.num_padded
        self.cont = cont
        self.ckey = ckey
        self.celltype = cx.celltype.astype(np.int64)

        # flattened continuation-facet table (key = celltype*6 + code)
        cand_lists = [
            per_code
            for per_type in cx.tables.trace_facets
            for per_code in per_type
        ]
        self.cand_len = np.array(
            [len(c) for c in cand_lists], dtype=np.int64
        )
        self.cand_start = np.zeros(len(cand_lists) + 1, dtype=np.int64)
        np.cumsum(self.cand_len, out=self.cand_start[1:])
        self.cand_flat = np.array(
            [off for c in cand_lists for off in c], dtype=np.int64
        )

        # flattened initial-candidate table (all facets, per celltype)
        self.flen = np.array(
            [len(f) for f in cx.facet_offsets], dtype=np.int64
        )
        self.fstart = np.zeros(len(cx.facet_offsets) + 1, dtype=np.int64)
        np.cumsum(self.flen, out=self.fstart[1:])
        self.ftab_flat = np.array(
            [o for f in cx.facet_offsets for o in f], dtype=np.int64
        )

        # classify every continuing cell's step: enumerate its head's
        # candidates once, field-wide, and mark the steps that neither
        # branch nor emit an arc — the compressible chain cells
        alphas = np.flatnonzero(cont >= 0)
        chain_next = np.full(n, -1, dtype=np.int64)
        if alphas.size:
            key = ckey[alphas]
            k = self.cand_len[key]
            parent = np.repeat(np.arange(alphas.size, dtype=np.int64), k)
            within = np.arange(int(k.sum()), dtype=np.int64) - np.repeat(
                np.cumsum(k) - k, k
            )
            beta = cont[alphas][parent] + self.cand_flat[
                np.repeat(self.cand_start[key], k) + within
            ]
            bc = cont[beta]
            ncrit = np.bincount(
                parent, weights=(bc == CONT_CRITICAL), minlength=alphas.size
            )
            nlive = np.bincount(
                parent, weights=(bc >= 0), minlength=alphas.size
            )
            chain = (ncrit == 0) & (nlive == 1)
            sel = (bc >= 0) & chain[parent]
            chain_next[alphas[parent[sel]]] = beta[sel]
        self.chain_next = chain_next

        # pointer doubling: O(log L) whole-array passes compress every
        # unbranched chain to (endpoint, length)
        jump = np.arange(n, dtype=np.int64)
        ischain = chain_next >= 0
        jump[ischain] = chain_next[ischain]
        dist = ischain.astype(np.int64)
        rounds = 0
        while np.any(ischain[jump]):
            dist = dist + dist[jump]
            jump = jump[jump]
            rounds += 1
            if rounds > _MAX_DOUBLING_ROUNDS:  # pragma: no cover
                raise RuntimeError(
                    "pointer doubling did not converge: the gradient "
                    "field contains a cycle"
                )
        self.jump = jump
        self.dist = dist
        self.doubling_rounds = rounds


def _pointer_state(field: GradientField) -> _PointerState:
    state = getattr(field, "_pointer_state", None)
    if state is None:
        state = _PointerState(field)
        field._pointer_state = state
    return state


def _trace_down_many_pointer(
    field: GradientField,
    sources,
    max_paths_per_node: int | None = None,
):
    """Pointer-jumping equivalent of :func:`_trace_down_many`.

    Returns the same ``(flat, lens, terminals, counts)`` contract with
    ``flat`` as an int64 array and the rest as plain lists; every value
    is identical to the DFS tracer's, enumeration order included.

    The descent forest is expanded level-synchronously over *branch
    points* only — unbranched runs between them were compressed into
    single jumps by the per-field pointer doubling — and each level is
    a handful of whole-frontier numpy passes.  DFS enumeration order
    (lexicographic in the branch-choice sequence) is reconstructed
    exactly: a backward pass counts the arcs below every forest entry,
    a forward segmented-prefix-sum pass converts those counts into each
    arc's absolute DFS position, and a vectorized chain walk fills the
    geometric embeddings.
    """
    st = _pointer_state(field)
    cont = st.cont
    src = np.asarray(sources, dtype=np.int64)
    nsrc = int(src.size)
    empty = np.empty(0, dtype=np.int64)
    if nsrc == 0:
        return empty, [], [], []

    tracer = get_tracer()

    # ---- level-synchronous frontier expansion -------------------------
    # Level 0 entries are the sources themselves; an entry at level
    # l >= 1 is a branch/emit point, carrying the compressed chain
    # segment that led to it: (seg = first cell of the segment,
    # pairs = chain steps + 1 -> the segment contributes 2*pairs cells).
    # Expanding a level yields terminal candidates (arcs) and the next
    # level's entries; acyclicity bounds the level count.
    ent_alpha = [src]                                  # expansion cell
    ent_base = [src]                                   # candidate base
    ent_seg = [src]
    ent_pairs = [np.zeros(nsrc, dtype=np.int64)]
    ent_parent = [np.full(nsrc, -1, dtype=np.int64)]
    ent_rank = [np.zeros(nsrc, dtype=np.int64)]
    ent_plen = [np.ones(nsrc, dtype=np.int64)]         # cells so far
    arc_parent: list[np.ndarray] = []
    arc_rank: list[np.ndarray] = []
    arc_beta: list[np.ndarray] = []

    with tracer.span("trace.pointer.expand", cat="kernel") as span:
        level = 0
        while ent_alpha[level].size:
            alpha = ent_alpha[level]
            if level == 0:
                key = st.celltype[alpha]
                k = st.flen[key]
                starts = st.fstart[key]
                tab = st.ftab_flat
            else:
                key = st.ckey[alpha]
                k = st.cand_len[key]
                starts = st.cand_start[key]
                tab = st.cand_flat
            parent = np.repeat(np.arange(alpha.size, dtype=np.int64), k)
            rank = np.arange(int(k.sum()), dtype=np.int64) - np.repeat(
                np.cumsum(k) - k, k
            )
            beta = ent_base[level][parent] + tab[
                np.repeat(starts, k) + rank
            ]
            bc = cont[beta]

            is_arc = bc == CONT_CRITICAL
            arc_parent.append(parent[is_arc])
            arc_rank.append(rank[is_arc])
            arc_beta.append(beta[is_arc])

            live = bc >= 0
            seg = beta[live]
            # compress the unbranched run from each live candidate to
            # its first branch/emit point in one jump
            alpha_star = st.jump[seg]
            pairs = st.dist[seg] + 1
            ent_alpha.append(alpha_star)
            ent_base.append(cont[alpha_star])
            ent_seg.append(seg)
            ent_pairs.append(pairs)
            ent_parent.append(parent[live])
            ent_rank.append(rank[live])
            ent_plen.append(
                ent_plen[level][parent[live]] + 2 * pairs
            )
            level += 1
        span.annotate(
            levels=level,
            doubling_rounds=st.doubling_rounds,
            frontier_peak=int(max(e.size for e in ent_alpha)),
        )

    nlev = level  # levels 0 .. nlev-1 hold entries that were expanded
    narcs = int(sum(a.size for a in arc_parent))
    if narcs == 0:
        return empty, [], [], [0] * nsrc

    # ---- DFS-order reconstruction -------------------------------------
    with tracer.span("trace.pointer.order", cat="kernel") as span:
        # backward pass: arcs below every entry
        nleaves: list[np.ndarray] = [empty] * nlev
        for lv in range(nlev - 1, -1, -1):
            cnt = np.bincount(
                arc_parent[lv], minlength=ent_alpha[lv].size
            ).astype(np.int64)
            if lv + 1 < nlev:
                cnt += np.bincount(
                    ent_parent[lv + 1],
                    weights=nleaves[lv + 1].astype(np.float64),
                    minlength=ent_alpha[lv].size,
                ).astype(np.int64)
            nleaves[lv] = cnt
        counts = nleaves[0]

        # forward pass: absolute DFS position per arc.  Within a parent,
        # items (arcs and child subtrees) are ordered by candidate rank;
        # an exclusive segmented prefix sum of their subtree sizes turns
        # the parent's absolute start into each item's.
        start = np.cumsum(counts) - counts
        arc_pos: list[np.ndarray] = []
        for lv in range(nlev):
            na = arc_parent[lv].size
            if lv + 1 < nlev:
                par = np.concatenate([arc_parent[lv], ent_parent[lv + 1]])
                rnk = np.concatenate([arc_rank[lv], ent_rank[lv + 1]])
                w = np.concatenate(
                    [np.ones(na, dtype=np.int64), nleaves[lv + 1]]
                )
            else:
                par = arc_parent[lv]
                rnk = arc_rank[lv]
                w = np.ones(na, dtype=np.int64)
            if par.size == 0:
                arc_pos.append(empty)
                if lv + 1 < nlev:
                    start = empty
                continue
            order = np.lexsort((rnk, par))
            par_s = par[order]
            w_s = w[order]
            cw = np.cumsum(w_s) - w_s
            newseg = np.empty(par_s.size, dtype=bool)
            newseg[0] = True
            np.not_equal(par_s[1:], par_s[:-1], out=newseg[1:])
            segid = np.cumsum(newseg) - 1
            pos_s = start[par_s] + (cw - cw[newseg][segid])
            pos = np.empty(par.size, dtype=np.int64)
            pos[order] = pos_s
            arc_pos.append(pos[:na])
            if lv + 1 < nlev:
                start = pos[na:]

        # gather all arcs into DFS order (arc positions are a
        # permutation of 0..narcs-1, grouped by source)
        all_pos = np.concatenate(arc_pos)
        all_beta = np.concatenate(arc_beta)
        all_parent = np.concatenate(arc_parent)
        all_lev = np.concatenate(
            [
                np.full(arc_parent[lv].size, lv, dtype=np.int64)
                for lv in range(nlev)
            ]
        )
        all_len = np.concatenate(
            [
                ent_plen[lv][arc_parent[lv]] + 1
                for lv in range(nlev)
            ]
        )
        inv = np.empty(narcs, dtype=np.int64)
        inv[all_pos] = np.arange(narcs, dtype=np.int64)
        beta_d = all_beta[inv]
        parent_d = all_parent[inv]
        lev_d = all_lev[inv]
        len_d = all_len[inv]

        if max_paths_per_node is not None:
            src_start = np.cumsum(counts) - counts
            arc_src = np.repeat(np.arange(nsrc, dtype=np.int64), counts)
            within_src = np.arange(narcs, dtype=np.int64) - src_start[arc_src]
            keep = within_src < max_paths_per_node
            beta_d = beta_d[keep]
            parent_d = parent_d[keep]
            lev_d = lev_d[keep]
            len_d = len_d[keep]
            counts = np.minimum(counts, max_paths_per_node)
            narcs = int(beta_d.size)
        span.annotate(arcs=narcs)

    # ---- geometry materialization -------------------------------------
    with tracer.span("trace.pointer.geometry", cat="kernel") as span:
        lens = len_d
        starts = np.cumsum(lens) - lens
        flat = np.empty(int(lens.sum()), dtype=np.int64)
        flat[starts + lens - 1] = beta_d

        # walk each arc's ancestor entries top-down, collecting one
        # (segment start, pairs, output end) record per ancestor
        cur_ent = parent_d.copy()
        cur_lev = lev_d.copy()
        epos = starts + lens - 2
        seg_cell: list[np.ndarray] = []
        seg_pairs: list[np.ndarray] = []
        seg_end: list[np.ndarray] = []
        for lv in range(nlev - 1, 0, -1):
            m = cur_lev == lv
            if not np.any(m):
                continue
            e = cur_ent[m]
            pairs = ent_pairs[lv][e]
            seg_cell.append(ent_seg[lv][e])
            seg_pairs.append(pairs)
            seg_end.append(epos[m])
            epos[m] -= 2 * pairs
            cur_ent[m] = ent_parent[lv][e]
            cur_lev[m] = lv - 1
        # every walk bottomed out at level 0: the source cell
        flat[starts] = src[cur_ent]

        # vectorized chain walk: all segments of all arcs advance one
        # (cell, head) pair per pass
        if seg_cell:
            c = np.concatenate(seg_cell)
            rem = np.concatenate(seg_pairs)
            p = np.concatenate(seg_end) - 2 * rem + 1
            while c.size:
                flat[p] = c
                flat[p + 1] = cont[c]
                rem = rem - 1
                m = rem > 0
                c = st.chain_next[c[m]]
                p = p[m] + 2
                rem = rem[m]
        span.annotate(cells=int(flat.size))

    return flat, lens.tolist(), beta_d.tolist(), counts.tolist()


# ---------------------------------------------------------------------------
# 1-skeleton extraction
# ---------------------------------------------------------------------------


def extract_ms_complex(
    field: GradientField,
    max_paths_per_node: int | None = None,
    kernel_backend: str = "auto",
) -> MorseSmaleComplex:
    """Build the block-local MS complex 1-skeleton from a gradient field.

    Nodes carry the cell's global address, Morse index, value, and a
    boundary flag (set when the cell lies on an internal cut plane of the
    domain decomposition, i.e. its boundary signature is non-zero).

    Parameters
    ----------
    field:
        A complete discrete gradient field.
    max_paths_per_node:
        Optional safety cap on the number of V-paths enumerated from one
        node (pathological fields can have exponentially many); ``None``
        enumerates all.
    kernel_backend:
        Tracing backend: ``"dfs"`` (per-path depth-first), ``"pointer"``
        (vectorized pointer jumping), or ``"auto"`` (default; by field
        size).  The constructed complex is bit-identical either way —
        the backend is a pure scheduling choice.
    """
    backend = resolve_kernel_backend(kernel_backend, field)
    cx = field.complex
    region_lo = tuple(o // 2 for o in cx.refined_origin)
    region_hi = tuple(
        o // 2 + n for o, n in zip(cx.refined_origin, cx.vertex_shape)
    )
    msc = MorseSmaleComplex(
        cx.global_refined_dims, region_lo, region_hi
    )

    tracer = get_tracer()
    nodes_span = tracer.span("trace.nodes", cat="kernel")
    nodes_span.__enter__()
    crit_by_dim = field.critical_cells_by_dim()
    # cell -> node id as a flat array (node ids are assigned densely in
    # (dim, SoS) order, matching repeated add_node calls)
    node_of_cell_np = np.full(cx.num_padded, -1, dtype=np.int64)
    nid = 0
    for d in range(4):
        cells = crit_by_dim[d]
        msc.add_nodes(
            cx.global_address[cells].tolist(),
            d,
            cx.cell_value[cells].tolist(),
            (cx.boundary_sig[cells] != 0).tolist(),
        )
        node_of_cell_np[cells] = np.arange(
            nid, nid + cells.size, dtype=np.int64
        )
        nid += cells.size
    node_of_cell = node_of_cell_np.tolist()
    nodes_span.annotate(nodes=nid)
    nodes_span.__exit__(None, None, None)

    arcs_span = tracer.span("trace.arcs", cat="kernel", backend=backend)
    arcs_span.__enter__()
    addresses = cx.global_address
    trace_many = (
        _trace_down_many_pointer if backend == "pointer" else _trace_down_many
    )
    for d in range(1, 4):
        sources = crit_by_dim[d].tolist()
        if not sources:
            continue
        flat, lens, terminals, counts = trace_many(
            field, sources, max_paths_per_node
        )
        # one address gather for every path of every source of this
        # dimension, sliced into per-arc leaf geometries
        addrs = addresses[flat]
        leaves = []
        pos = 0
        for length in lens:
            leaves.append(addrs[pos:pos + length])
            pos += length
        msc.add_leaf_arc_groups(
            [node_of_cell[p] for p in sources],
            counts,
            [node_of_cell[t] for t in terminals],
            leaves,
        )
    arcs_span.annotate(arcs=msc.num_alive_arcs())
    arcs_span.__exit__(None, None, None)
    return msc
