"""V-path tracing: from gradient field to MS complex 1-skeleton (§IV-D).

"The finest-scale MS complex is computed by tracing V-paths in the
discrete gradient field from critical cells.  In a first pass through the
gradient, all critical cells are added to the MS complex as nodes.
V-paths are traced downwards from each node, and an arc is added to the
MS complex for every path terminating at a critical cell.  The list of
cells in the V-path forms the geometric embedding of the arc."

V-paths branch: descending from a head cell, every facet other than the
one we arrived through continues a separate path, so the trace is a
depth-first enumeration of all descending V-paths.  Paths through a cell
that is the head of a lower-dimensional vector terminate without creating
an arc.  Because the gradient field is acyclic, the enumeration always
terminates; distinct paths between the same pair of critical cells yield
distinct arcs (arc multiplicity matters for cancellation validity).

Implementation notes
--------------------
The DFS allocates nothing per frame and touches two lookup tables per
step, both built *vectorized* once per field: ``cont[alpha]`` resolves
a candidate cell in one list access (its head-cell partner if the path
continues, ``CONT_CRITICAL`` if it ends an arc, ``CONT_DEAD`` if it is
the head of a lower vector), and ``ckey[alpha]`` indexes the memoized
``trace_facets`` table with the head cell's continuation facets (all
but the arrival facet).  Frames are parallel int stacks instead of
per-frame iterators, and unbranched descent (head cells with a single
continuation — every 1-cell head) runs in an inline chain loop with no
stack traffic at all.  The enumeration order is exactly the old
per-frame loop's, so the constructed complex is bit-identical.
"""

from __future__ import annotations

import numpy as np

from repro.morse.msc import MorseSmaleComplex
from repro.morse.vectorfield import CRITICAL, GradientField
from repro.obs.trace import get_tracer

__all__ = ["extract_ms_complex", "trace_down"]

#: continuation-table markers (must be negative: real cells are >= 0)
CONT_CRITICAL = -2
CONT_DEAD = -1


def _trace_state(field: GradientField):
    """Per-field hot-loop state, built once and cached on the field.

    Returns ``(cont, ckey, ctab, facet_offsets, celltype)`` where for
    every cell ``alpha`` reachable as a descent candidate:

    - ``cont[alpha]`` is the padded index of the head cell the path
      continues through, or ``CONT_CRITICAL`` / ``CONT_DEAD``;
    - ``ckey[alpha]`` indexes ``ctab`` (the flattened memoized
      ``trace_facets`` table) with the head cell's continuation facet
      offsets — its facets minus the one leading back to ``alpha``.
    """
    state = getattr(field, "_trace_state", None)
    if state is None:
        cx = field.complex
        pairing = field.pairing
        n = cx.num_padded
        offs = np.asarray(field.dir_offsets, dtype=np.int64)

        cont = np.full(n, CONT_DEAD, dtype=np.int64)
        cont[pairing == CRITICAL] = CONT_CRITICAL
        paired = np.flatnonzero(cx.valid & (pairing < CRITICAL))
        partner = paired + offs[pairing[paired]]
        # the path continues only through tails (partner one dim up);
        # heads of lower vectors stay CONT_DEAD
        tails = cx.cell_dim[partner] == cx.cell_dim[paired] + 1
        cont[paired[tails]] = partner[tails]

        ckey = np.zeros(n, dtype=np.int64)
        ckey[paired[tails]] = (
            cx.celltype[partner[tails]].astype(np.int64) * 6
            + pairing[paired[tails]]
        )
        ctab = tuple(
            cands
            for per_type in cx.tables.trace_facets
            for cands in per_type
        )
        state = (
            cont.tolist(),
            ckey.tolist(),
            ctab,
            cx.facet_offsets,
            cx.celltype.tolist(),
        )
        field._trace_state = state
    return state


def trace_down(field: GradientField, crit: int) -> list[list[int]]:
    """Enumerate descending V-paths from critical cell ``crit``.

    Returns one path per descending V-path that terminates at a critical
    cell; each path is the list of padded cell indices from ``crit``
    (inclusive) down to the terminating critical cell (inclusive).
    """
    flat, lens, _ = _trace_down_flat(field, crit)
    results: list[list[int]] = []
    pos = 0
    for length in lens:
        results.append(flat[pos:pos + length])
        pos += length
    return results


def _trace_down_flat(
    field: GradientField, crit: int
) -> tuple[list[int], list[int], list[int]]:
    """:func:`trace_down` with paths packed into one flat list.

    Returns ``(flat, lens, terminals)``: the concatenated paths, each
    path's length, and each path's terminating critical cell.
    """
    flat, lens, terminals, _ = _trace_down_many(field, [crit])
    return flat, lens, terminals


def _trace_down_many(
    field: GradientField,
    sources: list[int],
    max_paths_per_node: int | None = None,
) -> tuple[list[int], list[int], list[int], list[int]]:
    """Trace descending V-paths from a whole batch of critical cells.

    Returns ``(flat, lens, terminals, counts)``: the concatenated paths
    of every source, each path's length, each path's terminating
    critical cell, and the number of paths per source — the form
    :func:`extract_ms_complex` consumes, so one batch of sources needs a
    single table-state unpack and its path addresses convert with a
    single fancy index instead of one small call and array per source.
    Per-source enumeration order is exactly :func:`trace_down`'s.
    """
    cont, ckey, ctab, facet_offsets, celltype = _trace_state(field)

    flat: list[int] = []
    lens: list[int] = []
    terminals: list[int] = []
    counts: list[int] = []
    # parallel DFS stacks: base cell, its candidate facet-offset tuple,
    # next candidate index, and path entries to pop when exhausted;
    # drained empty by each source's DFS, so shared across sources
    bases: list[int] = []
    cands: list[tuple] = []
    nexts: list[int] = []
    npops: list[int] = []
    for crit in sources:
        first_path = len(lens)
        first_flat = len(flat)
        path = [crit]
        bases.append(crit)
        cands.append(facet_offsets[celltype[crit]])
        nexts.append(0)
        npops.append(1)
        while bases:
            i = nexts[-1]
            cand = cands[-1]
            if i == len(cand):
                bases.pop()
                cands.pop()
                nexts.pop()
                del path[len(path) - npops.pop():]
                continue
            nexts[-1] = i + 1
            alpha = bases[-1] + cand[i]
            head = cont[alpha]
            if head < 0:
                if head == CONT_CRITICAL:
                    flat.extend(path)
                    flat.append(alpha)
                    lens.append(len(path) + 1)
                    terminals.append(alpha)
                continue
            # inline chain descent: single-continuation heads (every
            # 1-cell) advance without any stack traffic
            chain = 0
            while True:
                path.append(alpha)
                path.append(head)
                chain += 2
                nxt = ctab[ckey[alpha]]
                if len(nxt) > 1:
                    bases.append(head)
                    cands.append(nxt)
                    nexts.append(0)
                    npops.append(chain)
                    break
                alpha = head + nxt[0]
                head = cont[alpha]
                if head >= 0:
                    continue
                if head == CONT_CRITICAL:
                    flat.extend(path)
                    flat.append(alpha)
                    lens.append(len(path) + 1)
                    terminals.append(alpha)
                del path[len(path) - chain:]
                break
        npaths = len(lens) - first_path
        if (
            max_paths_per_node is not None
            and npaths > max_paths_per_node
        ):
            keep = first_path + max_paths_per_node
            del flat[first_flat + sum(lens[first_path:keep]):]
            del lens[keep:]
            del terminals[keep:]
            npaths = max_paths_per_node
        counts.append(npaths)
    return flat, lens, terminals, counts


def extract_ms_complex(
    field: GradientField,
    max_paths_per_node: int | None = None,
) -> MorseSmaleComplex:
    """Build the block-local MS complex 1-skeleton from a gradient field.

    Nodes carry the cell's global address, Morse index, value, and a
    boundary flag (set when the cell lies on an internal cut plane of the
    domain decomposition, i.e. its boundary signature is non-zero).

    Parameters
    ----------
    field:
        A complete discrete gradient field.
    max_paths_per_node:
        Optional safety cap on the number of V-paths enumerated from one
        node (pathological fields can have exponentially many); ``None``
        enumerates all.
    """
    cx = field.complex
    region_lo = tuple(o // 2 for o in cx.refined_origin)
    region_hi = tuple(
        o // 2 + n for o, n in zip(cx.refined_origin, cx.vertex_shape)
    )
    msc = MorseSmaleComplex(
        cx.global_refined_dims, region_lo, region_hi
    )

    tracer = get_tracer()
    nodes_span = tracer.span("trace.nodes", cat="kernel")
    nodes_span.__enter__()
    crit_by_dim = field.critical_cells_by_dim()
    # cell -> node id as a flat array (node ids are assigned densely in
    # (dim, SoS) order, matching repeated add_node calls)
    node_of_cell_np = np.full(cx.num_padded, -1, dtype=np.int64)
    nid = 0
    for d in range(4):
        cells = crit_by_dim[d]
        msc.add_nodes(
            cx.global_address[cells].tolist(),
            d,
            cx.cell_value[cells].tolist(),
            (cx.boundary_sig[cells] != 0).tolist(),
        )
        node_of_cell_np[cells] = np.arange(
            nid, nid + cells.size, dtype=np.int64
        )
        nid += cells.size
    node_of_cell = node_of_cell_np.tolist()
    nodes_span.annotate(nodes=nid)
    nodes_span.__exit__(None, None, None)

    arcs_span = tracer.span("trace.arcs", cat="kernel")
    arcs_span.__enter__()
    addresses = cx.global_address
    for d in range(1, 4):
        sources = crit_by_dim[d].tolist()
        if not sources:
            continue
        flat, lens, terminals, counts = _trace_down_many(
            field, sources, max_paths_per_node
        )
        # one address gather for every path of every source of this
        # dimension, sliced into per-arc leaf geometries
        addrs = addresses[flat]
        leaves = []
        pos = 0
        for length in lens:
            leaves.append(addrs[pos:pos + length])
            pos += length
        msc.add_leaf_arc_groups(
            [node_of_cell[p] for p in sources],
            counts,
            [node_of_cell[t] for t in terminals],
            leaves,
        )
    arcs_span.annotate(arcs=msc.num_alive_arcs())
    arcs_span.__exit__(None, None, None)
    return msc
