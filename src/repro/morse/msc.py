"""The 1-skeleton of a Morse-Smale complex (paper §IV-D).

Nodes are critical cells, arcs are V-paths connecting critical cells
differing in dimension by one, and every arc carries a *geometry object*
— the list of (global) cell addresses of the cells along its V-path.
Following the data structure of Gyulassy et al. [11], nodes, arcs and
geometry objects are constant-sized records in flat arrays, optimized for
efficient simplification:

- cancelling a pair of nodes marks records dead rather than moving memory,
- new arcs created by a cancellation reference the geometry objects of
  the deleted arcs ("the geometry of the new arcs is inherited from the
  deleted arcs ... a new geometry object is created that references the
  geometry objects that were merged"),
- :meth:`MorseSmaleComplex.compact` performs the paper's
  pre-communication cleanup (§IV-F1): dead records are dropped, composite
  geometries are flattened, and only the living (coarsest) level of the
  hierarchy is retained.

Node identity across blocks is the cell's global address, which encodes
its geometric location in the global refined grid; gluing two block
complexes matches boundary nodes by address (§IV-F3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ArcGeometry", "MorseSmaleComplex", "NODE_RECORD_BYTES",
           "ARC_RECORD_BYTES", "GEOM_ADDRESS_BYTES"]

#: Serialized record sizes, used for output-size accounting (§V-B): the
#: paper models MS complex storage as ``k*c + k*n^(1/3)`` where ``c`` is
#: the constant per-node/arc record cost and the second term is geometry.
NODE_RECORD_BYTES = 8 + 1 + 8 + 1  # address, index, value, boundary flag
ARC_RECORD_BYTES = 4 + 4 + 8  # two node ids + geometry offset
GEOM_ADDRESS_BYTES = 8


@dataclass(slots=True)
class ArcGeometry:
    """Geometric embedding of an arc.

    ``leaf`` holds the V-path cell addresses ordered from the arc's upper
    node to its lower node.  A *composite* geometry (created by
    cancellation) instead references child geometries as
    ``(geometry id, reversed)`` segments; it is flattened into a leaf by
    :meth:`MorseSmaleComplex.compact`.
    """

    leaf: np.ndarray | None = None
    segments: list[tuple[int, bool]] | None = None
    #: total number of cell addresses (cached; junction duplicates counted)
    length: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.leaf is not None


@dataclass
class Cancellation:
    """Record of one persistence cancellation, for hierarchy queries.

    The id lists refer to the complex *before* compaction; they let
    :class:`repro.analysis.hierarchy.MSComplexHierarchy` reconstruct the
    complex at any persistence level (multi-resolution queries).
    """

    persistence: float
    upper_address: int
    lower_address: int
    upper_index: int  # Morse index of the upper (destroyed) node
    arcs_removed: int
    arcs_created: int
    killed_nodes: list[int] = field(default_factory=list)
    killed_arcs: list[int] = field(default_factory=list)
    created_arcs: list[int] = field(default_factory=list)


class MorseSmaleComplex:
    """Flat-array 1-skeleton of a (block-local or merged) MS complex.

    Parameters
    ----------
    global_refined_dims:
        Refined extents of the whole dataset; node addresses index this
        grid.
    region_lo, region_hi:
        Vertex box (half-open) of the dataset region this complex covers.
        Grows as complexes are merged; used to recompute boundary flags.
    """

    def __init__(
        self,
        global_refined_dims: tuple[int, int, int],
        region_lo: tuple[int, int, int] = (0, 0, 0),
        region_hi: tuple[int, int, int] | None = None,
    ) -> None:
        self.global_refined_dims = tuple(int(d) for d in global_refined_dims)
        self.region_lo = tuple(int(c) for c in region_lo)
        if region_hi is None:
            region_hi = tuple((d + 1) // 2 for d in self.global_refined_dims)
        self.region_hi = tuple(int(c) for c in region_hi)

        # node records
        self.node_address: list[int] = []
        self.node_index: list[int] = []  # Morse index (= cell dimension)
        self.node_value: list[float] = []
        self.node_boundary: list[bool] = []
        #: ghost nodes are remote-endpoint placeholders introduced by the
        #: global-simplification split (§VII-B extension): they belong to
        #: another block, are never cancelled here, and are not counted
        #: as this block's features
        self.node_ghost: list[bool] = []
        self.node_alive: list[bool] = []
        self.node_arcs: list[list[int]] = []  # incident arc ids (lazy-pruned)

        # arc records: upper node has index d, lower node index d-1
        self.arc_upper: list[int] = []
        self.arc_lower: list[int] = []
        self.arc_geom: list[int] = []
        self.arc_alive: list[bool] = []

        self.geoms: list[ArcGeometry] = []

        #: living-arc multiplicity per node pair, keyed (min id, max id).
        #: Maintained by add_arc only: arcs die only when an endpoint
        #: dies, so for a *living* pair the count equals the alive-arc
        #: multiplicity, which is all the simplifier ever consults.
        self.pair_multiplicity: dict[tuple[int, int], int] = {}

        #: cancellations applied so far (coarsest-last); compact() keeps it
        self.hierarchy: list[Cancellation] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_node(
        self,
        address: int,
        index: int,
        value: float,
        boundary: bool = False,
        ghost: bool = False,
    ) -> int:
        """Append a node record; returns its id."""
        if not 0 <= index <= 3:
            raise ValueError(f"Morse index must be 0..3, got {index}")
        nid = len(self.node_address)
        self.node_address.append(int(address))
        self.node_index.append(int(index))
        self.node_value.append(float(value))
        self.node_boundary.append(bool(boundary))
        self.node_ghost.append(bool(ghost))
        self.node_alive.append(True)
        self.node_arcs.append([])
        return nid

    def new_leaf_geometry(self, addresses: np.ndarray) -> int:
        """Register a leaf geometry object; returns its id."""
        arr = np.asarray(addresses, dtype=np.int64)
        gid = len(self.geoms)
        self.geoms.append(ArcGeometry(leaf=arr, length=int(arr.size)))
        return gid

    def new_composite_geometry(self, segments: list[tuple[int, bool]]) -> int:
        """Register a composite geometry referencing child geometries."""
        length = sum(self.geoms[g].length for g, _ in segments)
        gid = len(self.geoms)
        self.geoms.append(ArcGeometry(segments=list(segments), length=length))
        return gid

    def add_arc(self, upper: int, lower: int, geom: int) -> int:
        """Append an arc between nodes ``upper`` (index d) and ``lower`` (d-1)."""
        if self.node_index[upper] != self.node_index[lower] + 1:
            raise ValueError(
                "arc endpoints must differ in Morse index by exactly 1 "
                f"(got {self.node_index[upper]} and {self.node_index[lower]})"
            )
        aid = len(self.arc_upper)
        self.arc_upper.append(upper)
        self.arc_lower.append(lower)
        self.arc_geom.append(geom)
        self.arc_alive.append(True)
        self.node_arcs[upper].append(aid)
        self.node_arcs[lower].append(aid)
        key = (upper, lower) if upper < lower else (lower, upper)
        self.pair_multiplicity[key] = (
            self.pair_multiplicity.get(key, 0) + 1
        )
        return aid

    def add_nodes(
        self,
        addresses: list[int],
        index,
        values: list[float],
        boundaries: list[bool],
        ghosts: list[bool] | None = None,
    ) -> int:
        """Bulk-append node records; returns the first new id.

        Produces records identical to repeated :meth:`add_node` calls
        (ids ``first .. first + len(addresses) - 1`` in list order),
        using C-speed list extends instead of per-node calls — this is
        the node half of 1-skeleton extraction.  ``index`` is either one
        Morse index shared by the whole batch (the extraction case) or a
        per-node sequence (the glue case, where a batch interleaves
        indexes); ``ghosts`` defaults to all-real nodes.
        """
        k = len(addresses)
        if isinstance(index, int):
            if not 0 <= index <= 3:
                raise ValueError(f"Morse index must be 0..3, got {index}")
            indexes = [index] * k
        else:
            indexes = list(index)
            if len(indexes) != k:
                raise ValueError(
                    f"per-node index sequence has {len(indexes)} entries "
                    f"for {k} addresses"
                )
            for i in indexes:
                if not 0 <= i <= 3:
                    raise ValueError(f"Morse index must be 0..3, got {i}")
        first = len(self.node_address)
        self.node_address.extend(addresses)
        self.node_index.extend(indexes)
        self.node_value.extend(values)
        self.node_boundary.extend(boundaries)
        self.node_ghost.extend([False] * k if ghosts is None else ghosts)
        self.node_alive.extend([True] * k)
        self.node_arcs.extend([] for _ in range(k))
        return first

    def add_leaf_arcs(
        self,
        upper: int,
        lowers: list[int],
        leaves: list[np.ndarray],
    ) -> None:
        """Bulk-append leaf arcs sharing the source node ``upper``.

        ``lowers`` and ``leaves`` give each arc's lower node id and leaf
        address array, in arc order.  Produces records identical to
        repeated ``new_leaf_geometry`` + ``add_arc`` calls, using bulk
        list extends for the per-arc record fields — this is the arc
        half of 1-skeleton extraction.
        """
        k = len(lowers)
        if k == 0:
            return
        node_index = self.node_index
        li = node_index[upper] - 1
        for lower in lowers:
            if node_index[lower] != li:
                raise ValueError(
                    "arc endpoints must differ in Morse index by exactly "
                    f"1 (got {li + 1} and {node_index[lower]})"
                )
        aid = len(self.arc_upper)
        gid = len(self.geoms)
        self.geoms.extend(
            ArcGeometry(leaf=leaf, length=leaf.size) for leaf in leaves
        )
        self.arc_upper.extend([upper] * k)
        self.arc_lower.extend(lowers)
        self.arc_geom.extend(range(gid, gid + k))
        self.arc_alive.extend([True] * k)
        node_arcs = self.node_arcs
        node_arcs[upper].extend(range(aid, aid + k))
        mult = self.pair_multiplicity
        mult_get = mult.get
        for lower in lowers:
            node_arcs[lower].append(aid)
            key = (upper, lower) if upper < lower else (lower, upper)
            mult[key] = mult_get(key, 0) + 1
            aid += 1

    def add_leaf_arc_groups(
        self,
        uppers: list[int],
        counts: list[int],
        lowers: list[int],
        leaves: list[np.ndarray],
    ) -> None:
        """Bulk-append the leaf arcs of many source nodes at once.

        ``uppers`` and ``counts`` give each source node and its number
        of arcs; ``lowers`` and ``leaves`` are the concatenated per-arc
        lower node ids and leaf address arrays, grouped by source in
        order.  Produces records identical to one
        :meth:`add_leaf_arcs` call per source, amortizing the per-arc
        list appends over a whole batch — this is the arc half of
        1-skeleton extraction, called once per Morse index.
        """
        total = len(lowers)
        if total == 0:
            return
        # whole-batch validation and grouping run as numpy passes: the
        # per-arc python work below is O(distinct endpoints), not
        # O(arcs), which keeps record building off the tracing-kernel
        # critical path for both backends
        node_index = np.asarray(self.node_index, dtype=np.int64)
        up = np.asarray(uppers, dtype=np.int64)
        cnt = np.asarray(counts, dtype=np.int64)
        low = np.asarray(lowers, dtype=np.int64)
        rep_up = np.repeat(up, cnt)
        li = node_index[rep_up] - 1
        bad = np.flatnonzero(node_index[low] != li)
        if bad.size:
            i = int(bad[0])
            raise ValueError(
                "arc endpoints must differ in Morse index by "
                f"exactly 1 (got {int(li[i]) + 1} and "
                f"{int(node_index[low[i]])})"
            )
        aid0 = len(self.arc_upper)
        gid = len(self.geoms)
        geoms = self.geoms
        geoms_append = geoms.append
        new = ArcGeometry.__new__
        for leaf in leaves:
            g = new(ArcGeometry)
            g.leaf = leaf
            g.segments = None
            g.length = leaf.size
            geoms_append(g)
        self.arc_upper.extend(rep_up.tolist())
        self.arc_lower.extend(lowers)
        self.arc_geom.extend(range(gid, gid + total))
        self.arc_alive.extend([True] * total)
        node_arcs = self.node_arcs
        aid_start = aid0 + np.cumsum(cnt) - cnt
        for upper, k, a0 in zip(uppers, counts, aid_start.tolist()):
            if k:
                node_arcs[upper].extend(range(a0, a0 + k))
        # group per-lower incident-arc appends; the stable sort keeps
        # each lower's aids in the increasing order repeated appends
        # would have produced
        order = np.argsort(low, kind="stable")
        low_s = low[order]
        aid_s = (aid0 + order).tolist()
        starts = np.flatnonzero(np.r_[True, low_s[1:] != low_s[:-1]])
        bounds = np.append(starts, total).tolist()
        low_u = low_s[starts].tolist()
        for lower, s, e in zip(low_u, bounds, bounds[1:]):
            node_arcs[lower].extend(aid_s[s:e])
        # per-(upper, lower) multiplicity, accumulated per distinct pair
        lo = np.minimum(rep_up, low)
        hi = np.maximum(rep_up, low)
        combo, pair_n = np.unique(lo << 32 | hi, return_counts=True)
        mult = self.pair_multiplicity
        mult_get = mult.get
        for c, n in zip(combo.tolist(), pair_n.tolist()):
            key = (c >> 32, c & 0xFFFFFFFF)
            mult[key] = mult_get(key, 0) + n

    def multiplicity(self, u: int, v: int) -> int:
        """Number of living arcs between two living nodes."""
        key = (u, v) if u < v else (v, u)
        return self.pair_multiplicity.get(key, 0)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def alive_nodes(self) -> list[int]:
        """Ids of living nodes."""
        return [i for i, a in enumerate(self.node_alive) if a]

    def alive_arcs(self) -> list[int]:
        """Ids of living arcs."""
        return [i for i, a in enumerate(self.arc_alive) if a]

    def num_alive_nodes(self) -> int:
        return sum(self.node_alive)

    def num_alive_arcs(self) -> int:
        return sum(self.arc_alive)

    def incident_arcs(self, nid: int) -> list[int]:
        """Living arcs incident to node ``nid`` (prunes dead entries in place)."""
        arcs = [a for a in self.node_arcs[nid] if self.arc_alive[a]]
        self.node_arcs[nid] = arcs
        return list(arcs)

    def other_endpoint(self, aid: int, nid: int) -> int:
        """The endpoint of arc ``aid`` that is not ``nid``."""
        u, l = self.arc_upper[aid], self.arc_lower[aid]
        if nid == u:
            return l
        if nid == l:
            return u
        raise ValueError(f"node {nid} is not an endpoint of arc {aid}")

    def arcs_between(self, u: int, v: int) -> list[int]:
        """Living arcs connecting nodes ``u`` and ``v``."""
        base = u if len(self.node_arcs[u]) <= len(self.node_arcs[v]) else v
        other = v if base == u else u
        return [
            a
            for a in self.incident_arcs(base)
            if self.other_endpoint(a, base) == other
        ]

    def persistence(self, aid: int) -> float:
        """Absolute function-value difference of the arc's endpoints."""
        return abs(
            self.node_value[self.arc_upper[aid]]
            - self.node_value[self.arc_lower[aid]]
        )

    def node_counts_by_index(self) -> tuple[int, int, int, int]:
        """Living node counts as (minima, 1-saddles, 2-saddles, maxima).

        Ghost nodes are excluded: they are another block's features.
        """
        counts = [0, 0, 0, 0]
        for i, alive in enumerate(self.node_alive):
            if alive and not self.node_ghost[i]:
                counts[self.node_index[i]] += 1
        return tuple(counts)

    def euler_characteristic(self) -> int:
        """Alternating sum of living node counts (= region Euler number)."""
        c0, c1, c2, c3 = self.node_counts_by_index()
        return c0 - c1 + c2 - c3

    def address_index(self) -> dict[int, int]:
        """Map global address -> node id over living nodes."""
        return {
            self.node_address[i]: i
            for i, alive in enumerate(self.node_alive)
            if alive
        }

    def geometry_addresses(self, aid: int) -> np.ndarray:
        """Expanded V-path addresses of arc ``aid``, upper node to lower."""
        return self._expand_geometry(self.arc_geom[aid])

    def _expand_geometry(self, gid: int) -> np.ndarray:
        """Flatten a (possibly composite) geometry into one address array.

        Iterative: cancellation chains nest composites arbitrarily deep,
        far beyond the interpreter recursion limit.
        """
        root = self.geoms[gid]
        if root.is_leaf:
            return root.leaf
        parts: list[np.ndarray] = []
        stack: list[tuple[int, bool]] = [(gid, False)]
        while stack:
            g, rev = stack.pop()
            geo = self.geoms[g]
            if geo.is_leaf:
                parts.append(geo.leaf[::-1] if rev else geo.leaf)
            else:
                segs = geo.segments if rev else geo.segments[::-1]
                # pushed in reverse so children pop in emission order
                for child, crev in segs:
                    stack.append((child, crev != rev))
        if not parts:
            return np.empty(0, dtype=np.int64)
        out = [parts[0]]
        for seg in parts[1:]:
            # drop duplicated junction cell between consecutive segments
            if out[-1].size and seg.size and out[-1][-1] == seg[0]:
                seg = seg[1:]
            out.append(seg)
        return np.concatenate(out)

    def total_geometry_length(self) -> int:
        """Total stored V-path cell count over living arcs."""
        return sum(
            self.geoms[self.arc_geom[a]].length
            for a, alive in enumerate(self.arc_alive)
            if alive
        )

    def nbytes(self) -> int:
        """Serialized size estimate (paper §V-B: ``k*c + geometry``)."""
        return (
            self.num_alive_nodes() * NODE_RECORD_BYTES
            + self.num_alive_arcs() * ARC_RECORD_BYTES
            + self.total_geometry_length() * GEOM_ADDRESS_BYTES
        )

    def summary(self) -> str:
        """Human-readable one-line summary of the living complex."""
        c0, c1, c2, c3 = self.node_counts_by_index()
        return (
            f"MS complex: {self.num_alive_nodes()} nodes "
            f"(min={c0}, 1sad={c1}, 2sad={c2}, max={c3}), "
            f"{self.num_alive_arcs()} arcs, "
            f"geometry={self.total_geometry_length()} cells, "
            f"~{self.nbytes()} bytes"
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def kill_node(self, nid: int) -> None:
        """Mark a node dead (its arcs must be killed by the caller)."""
        self.node_alive[nid] = False

    def kill_arc(self, aid: int) -> None:
        """Mark an arc dead."""
        self.arc_alive[aid] = False

    def add_leaf_arcs_flat(
        self,
        uppers: np.ndarray,
        lowers: np.ndarray,
        geoms: list[ArcGeometry],
    ) -> None:
        """Bulk-append arcs with prebuilt leaf geometry objects.

        ``uppers`` and ``lowers`` are int64 arrays of endpoint node ids,
        one arc each in arc order; ``geoms`` the matching leaf
        :class:`ArcGeometry` objects, *adopted* rather than copied —
        callers hand over geometries of a complex being consumed (the
        glue path, where the member complex is discarded after the
        merge).  Produces records identical to sequential
        ``new_leaf_geometry`` + ``add_arc`` calls, with the incidence
        and multiplicity updates vectorized over the whole batch.
        """
        k = int(lowers.size)
        if k == 0:
            return
        node_index = np.asarray(self.node_index, dtype=np.int64)
        bad = node_index[uppers] != node_index[lowers] + 1
        if bad.any():
            i = int(np.argmax(bad))
            raise ValueError(
                "arc endpoints must differ in Morse index by exactly 1 "
                f"(got {int(node_index[uppers[i]])} and "
                f"{int(node_index[lowers[i]])})"
            )
        aid0 = len(self.arc_upper)
        gid0 = len(self.geoms)
        self.geoms.extend(geoms)
        self.arc_upper.extend(uppers.tolist())
        self.arc_lower.extend(lowers.tolist())
        self.arc_geom.extend(range(gid0, gid0 + k))
        self.arc_alive.extend([True] * k)
        # each arc lands in both endpoints' incidence lists in ascending
        # arc-id order — the order sequential add_arc calls would append
        aids = np.arange(aid0, aid0 + k, dtype=np.int64)
        nodes = np.concatenate([uppers, lowers])
        both = np.concatenate([aids, aids])
        order = np.lexsort((both, nodes))
        nodes_s = nodes[order]
        starts = np.concatenate(
            ([0], np.nonzero(np.diff(nodes_s))[0] + 1)
        )
        node_arcs = self.node_arcs
        for start, chunk in zip(
            starts.tolist(), np.split(both[order], starts[1:])
        ):
            node_arcs[int(nodes_s[start])].extend(chunk.tolist())
        span = np.int64(len(self.node_address))
        packed = (
            np.minimum(uppers, lowers) * span + np.maximum(uppers, lowers)
        )
        pairs, mult = np.unique(packed, return_counts=True)
        pm = self.pair_multiplicity
        pm_get = pm.get
        for p, m in zip(pairs.tolist(), mult.tolist()):
            key = (p // span.item(), p % span.item())
            pm[key] = pm_get(key, 0) + m

    def compact(self) -> None:
        """Drop dead records and flatten composite geometries (§IV-F1).

        This is the paper's "cleaning up the memory after computing the
        simplified MS complex": only living elements survive, and each
        living arc's geometry becomes a single concrete address array.
        The cancellation hierarchy (a list of address-based records) is
        preserved for analysis queries.
        """
        # Fast path: nothing was cancelled and every geometry is already
        # a concrete leaf — the rebuild below would reproduce the current
        # records exactly (node_arcs and pair_multiplicity are maintained
        # in arc-id order by construction), so skip it.
        if (
            len(self.geoms) == len(self.arc_geom)
            and all(self.node_alive)
            and all(self.arc_alive)
            and all(g.is_leaf for g in self.geoms)
        ):
            return

        alive_n = np.asarray(self.node_alive, dtype=bool)
        node_map = np.cumsum(alive_n) - 1  # valid at alive indices only
        keep = np.nonzero(alive_n)[0]
        num_nodes = int(keep.size)
        self.node_address = (
            np.asarray(self.node_address, dtype=np.int64)[keep].tolist()
        )
        self.node_index = (
            np.asarray(self.node_index, dtype=np.int64)[keep].tolist()
        )
        self.node_value = (
            np.asarray(self.node_value, dtype=np.float64)[keep].tolist()
        )
        self.node_boundary = (
            np.asarray(self.node_boundary, dtype=bool)[keep].tolist()
        )
        self.node_ghost = (
            np.asarray(self.node_ghost, dtype=bool)[keep].tolist()
        )

        arc_keep = np.nonzero(np.asarray(self.arc_alive, dtype=bool))[0]
        num_arcs = int(arc_keep.size)
        new_up = node_map[np.asarray(self.arc_upper, dtype=np.int64)[arc_keep]]
        new_lo = node_map[np.asarray(self.arc_lower, dtype=np.int64)[arc_keep]]
        new_geoms: list[ArcGeometry] = []
        for a in arc_keep.tolist():
            geo = self.geoms[self.arc_geom[a]]
            if not geo.is_leaf:
                flat = self._expand_geometry(self.arc_geom[a])
                geo = ArcGeometry(leaf=flat, length=int(flat.size))
            new_geoms.append(geo)

        self.node_alive = [True] * num_nodes
        self.arc_upper = new_up.tolist()
        self.arc_lower = new_lo.tolist()
        self.arc_geom = list(range(num_arcs))
        self.arc_alive = [True] * num_arcs
        self.geoms = new_geoms

        if num_arcs:
            # each arc appears in both endpoints' incidence lists, in
            # ascending arc-id order (the order sequential add_arc built)
            aids = np.arange(num_arcs, dtype=np.int64)
            nodes = np.concatenate([new_up, new_lo])
            both = np.concatenate([aids, aids])
            order = np.lexsort((both, nodes))
            counts = np.bincount(nodes, minlength=num_nodes)
            self.node_arcs = [
                chunk.tolist()
                for chunk in np.split(both[order], np.cumsum(counts)[:-1])
            ]
            key_lo = np.minimum(new_up, new_lo)
            key_hi = np.maximum(new_up, new_lo)
            pairs, mult = np.unique(
                key_lo * num_nodes + key_hi, return_counts=True
            )
            self.pair_multiplicity = {
                (int(p // num_nodes), int(p % num_nodes)): int(m)
                for p, m in zip(pairs, mult)
            }
        else:
            self.node_arcs = [[] for _ in range(num_nodes)]
            self.pair_multiplicity = {}

    def update_boundary_flags(self, cut_planes, return_ids: bool = False):
        """Recompute node boundary flags from the remaining cut planes.

        After a merge round removes cut planes interior to the merged
        region, "the boundary status of each node is updated according to
        the bounds of the merged blocks.  The newly interior nodes become
        candidates for cancellation" (§IV-F3).  Returns the number of
        nodes whose flag changed from boundary to interior — or, with
        ``return_ids=True``, their ids in ascending order (the seed set
        for incremental re-simplification).  Ghost nodes keep their
        protection unconditionally.
        """
        if not self.node_address:
            return [] if return_ids else 0
        gx, gy, _gz = self.global_refined_dims
        tables = []
        for axis in range(3):
            table = np.zeros(self.global_refined_dims[axis], dtype=bool)
            planes = np.asarray(cut_planes[axis], dtype=np.int64)
            if planes.size:
                table[planes] = True
            tables.append(table)
        addr = np.asarray(self.node_address, dtype=np.int64)
        ci = addr % gx
        cj = (addr // gx) % gy
        ck = addr // (gx * gy)
        on_boundary = tables[0][ci] | tables[1][cj] | tables[2][ck]
        active = np.asarray(self.node_alive, dtype=bool) & ~np.asarray(
            self.node_ghost, dtype=bool
        )
        old = np.asarray(self.node_boundary, dtype=bool)
        freed_mask = active & old & ~on_boundary
        self.node_boundary = np.where(active, on_boundary, old).tolist()
        if return_ids:
            return np.nonzero(freed_mask)[0].tolist()
        return int(freed_mask.sum())

    # ------------------------------------------------------------------
    # serialization (consumed by repro.io.mscfile and the merge stage)
    # ------------------------------------------------------------------

    def to_payload(self) -> dict[str, np.ndarray]:
        """Pack the living complex into flat numpy arrays.

        Requires a compacted complex (call :meth:`compact` first): every
        geometry must be a leaf so the payload is a fixed set of arrays.
        """
        for g in self.geoms:
            if not g.is_leaf:
                raise ValueError("to_payload requires a compacted complex")
        geom_data = (
            np.concatenate([g.leaf for g in self.geoms])
            if self.geoms
            else np.empty(0, dtype=np.int64)
        )
        geom_offsets = np.zeros(len(self.geoms) + 1, dtype=np.int64)
        for i, g in enumerate(self.geoms):
            geom_offsets[i + 1] = geom_offsets[i] + g.leaf.size
        return {
            "global_refined_dims": np.asarray(
                self.global_refined_dims, dtype=np.int64
            ),
            "region": np.asarray(
                self.region_lo + self.region_hi, dtype=np.int64
            ),
            "node_address": np.asarray(self.node_address, dtype=np.int64),
            "node_index": np.asarray(self.node_index, dtype=np.uint8),
            "node_value": np.asarray(self.node_value, dtype=np.float64),
            "node_boundary": np.asarray(self.node_boundary, dtype=bool),
            "node_ghost": np.asarray(self.node_ghost, dtype=bool),
            "arc_upper": np.asarray(self.arc_upper, dtype=np.int64),
            "arc_lower": np.asarray(self.arc_lower, dtype=np.int64),
            "arc_geom": np.asarray(self.arc_geom, dtype=np.int64),
            "geom_data": geom_data,
            "geom_offsets": geom_offsets,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, np.ndarray]) -> "MorseSmaleComplex":
        """Inverse of :meth:`to_payload`."""
        dims = tuple(int(d) for d in payload["global_refined_dims"])
        region = [int(c) for c in payload["region"]]
        msc = cls(dims, tuple(region[:3]), tuple(region[3:]))
        ghosts = payload.get("node_ghost")
        if ghosts is None:
            ghosts = np.zeros(len(payload["node_address"]), dtype=bool)
        for addr, idx, val, bnd, gho in zip(
            payload["node_address"],
            payload["node_index"],
            payload["node_value"],
            payload["node_boundary"],
            ghosts,
        ):
            msc.add_node(
                int(addr), int(idx), float(val), bool(bnd), bool(gho)
            )
        offs = payload["geom_offsets"]
        data = payload["geom_data"]
        gid_map = [
            msc.new_leaf_geometry(data[offs[i]: offs[i + 1]])
            for i in range(len(offs) - 1)
        ]
        for u, l, g in zip(
            payload["arc_upper"], payload["arc_lower"], payload["arc_geom"]
        ):
            msc.add_arc(int(u), int(l), gid_map[int(g)])
        return msc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.summary()}>"
