"""Discrete gradient vector field construction (paper §IV-C).

The algorithm is the greedy assignment of Gyulassy et al. [10] adapted to
the parallel setting: cells are processed "sorted by increasing dimension,
and then by increasing function value"; in this order a cell is "paired in
gradient arrows in the direction of steepest descent, if possible,
otherwise marked critical"; a d-cell can be paired with a co-facet only
when it is "the only unassigned facet of one of its unassigned co-facets".
Function-value ties are broken by the improved simulation of simplicity
(the complex's precomputed SoS rank), which "greatly reduces the number of
zero-persistence critical points found" in flat regions.

Boundary restriction
--------------------
"For a cell on the boundary of two or more blocks, we only consider for
pairing other cells also on the boundary of those same blocks."  We
realize this with the boundary signature of each cell (the set of internal
cut planes of the global decomposition it lies on): a pairing is allowed
only between cells of *equal* signature, and signature classes are
processed from most constrained to least (block corners, then block edges,
then block faces, then interiors).  Because the signature is a global
property of the decomposition and the processing order inside a class
depends only on global cell addresses and vertex values, two blocks
sharing a face compute bit-identical gradient arrows on it — the property
that anchors the gluing step of the merge stage (§IV-F3).

Acyclicity
----------
A cell is paired with a co-facet only when every *other* facet of that
co-facet is already assigned, so the assignment times strictly decrease
along any V-path; hence no V-path can revisit a cell and the constructed
vector field is a discrete *gradient* field.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.cubical import CubicalComplex
from repro.morse.vectorfield import (
    CRITICAL,
    SENTINEL,
    UNASSIGNED,
    GradientField,
)

__all__ = ["compute_discrete_gradient"]

_POPCOUNT3 = (0, 1, 1, 2, 1, 2, 2, 3)


def compute_discrete_gradient(complex_: CubicalComplex) -> GradientField:
    """Compute the discrete gradient vector field of a block.

    Returns a :class:`~repro.morse.vectorfield.GradientField` in which
    every valid cell is either paired or critical.  The computation is
    deterministic and, for cells on shared block boundaries, depends only
    on data available identically to all blocks sharing that boundary.
    """
    n = complex_.num_padded

    # Hot loop state as plain Python lists: element access on lists is
    # several times faster than numpy scalar indexing, and this loop is
    # the compute-stage bottleneck (profiled; see guides on optimizing
    # scalar-heavy loops).
    pairing = [UNASSIGNED] * n
    assigned = bytearray(n)  # 0/1 flags; sentinels pre-assigned below
    celltype = complex_.celltype.tolist()
    sig = complex_.boundary_sig.tolist()
    valid = complex_.valid
    rank = complex_.order_rank  # numpy int64; touched only for candidates

    invalid_idx = np.flatnonzero(~valid)
    for p in invalid_idx.tolist():
        pairing[p] = SENTINEL
        assigned[p] = 1

    facet_offsets = complex_.facet_offsets
    cofacet_offsets = complex_.cofacet_offsets

    # direction code of a flat offset
    sx, sy, sz = complex_.steps
    dircode = {sx: 0, -sx: 1, sy: 2, -sy: 3, sz: 4, -sz: 5}

    # Sweep order: signature classes from most constrained to least
    # (popcount 3, 2, 1, 0), then increasing dimension, then SoS rank.
    # One vectorized lexsort over all valid cells replaces the former 16
    # per-(class, dimension) masked argsorts, so a worker process spends
    # its time in the greedy loop below, not in sorting.  The SoS rank is
    # a total order (global address tie-break), so the permutation — and
    # hence the constructed field — is exactly the grouped order.
    sig_np = complex_.boundary_sig
    pop_of_sig = np.array(_POPCOUNT3 + (0,) * 248, dtype=np.uint8)
    valid_cells = np.flatnonzero(valid)
    neg_pop = -pop_of_sig[sig_np[valid_cells]].astype(np.int8)
    # np.lexsort: last key is primary
    perm = np.lexsort(
        (rank[valid_cells], complex_.cell_dim[valid_cells], neg_pop)
    )
    sweep = valid_cells[perm].tolist()

    for a in sweep:
        if assigned[a]:
            continue
        sa = sig[a]
        best = -1
        best_rank = None
        for off in cofacet_offsets[celltype[a]]:
            b = a + off
            # sentinel cells carry signature 255, so they can
            # never match sa and are skipped without a bounds test
            if assigned[b] or sig[b] != sa:
                continue
            ok = True
            for foff in facet_offsets[celltype[b]]:
                f = b + foff
                if f != a and not assigned[f]:
                    ok = False
                    break
            if ok:
                rb = rank[b]
                if best < 0 or rb < best_rank:
                    best = b
                    best_rank = rb
        if best >= 0:
            pairing[a] = dircode[best - a]
            pairing[best] = dircode[a - best]
            assigned[a] = 1
            assigned[best] = 1
        else:
            pairing[a] = CRITICAL
            assigned[a] = 1

    field = GradientField(complex_, np.asarray(pairing, dtype=np.uint8))
    return field
