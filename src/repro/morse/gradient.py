"""Discrete gradient vector field construction (paper §IV-C).

The algorithm is the greedy assignment of Gyulassy et al. [10] adapted to
the parallel setting: cells are processed "sorted by increasing dimension,
and then by increasing function value"; in this order a cell is "paired in
gradient arrows in the direction of steepest descent, if possible,
otherwise marked critical"; a d-cell can be paired with a co-facet only
when it is "the only unassigned facet of one of its unassigned co-facets".
Function-value ties are broken by the improved simulation of simplicity
(the complex's precomputed SoS rank), which "greatly reduces the number of
zero-persistence critical points found" in flat regions.

Boundary restriction
--------------------
"For a cell on the boundary of two or more blocks, we only consider for
pairing other cells also on the boundary of those same blocks."  We
realize this with the boundary signature of each cell (the set of internal
cut planes of the global decomposition it lies on): a pairing is allowed
only between cells of *equal* signature, and signature classes are
processed from most constrained to least (block corners, then block edges,
then block faces, then interiors).  Because the signature is a global
property of the decomposition and the processing order inside a class
depends only on global cell addresses and vertex values, two blocks
sharing a face compute bit-identical gradient arrows on it — the property
that anchors the gluing step of the merge stage (§IV-F3).

Acyclicity
----------
A cell is paired with a co-facet only when every *other* facet of that
co-facet is already assigned, so the assignment times strictly decrease
along any V-path; hence no V-path can revisit a cell and the constructed
vector field is a discrete *gradient* field.

Implementation notes
--------------------
The greedy sweep is the compute-stage bottleneck, so the loop body is
kept free of everything that can be hoisted: the sweep permutation is
one vectorized lexsort, the sentinel/bookkeeping arrays are bulk-built
from numpy before the loop, per-cell attributes are plain Python lists
(several times faster than numpy scalar indexing), and the candidate
walk uses the complex's memoized per-celltype tables — each cofacet
offset comes pre-bundled with its direction codes and with the cofacet's
facet offsets minus the one leading back, so the inner loop performs
only the unavoidable assignment/signature tests.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.cubical import CubicalComplex
from repro.morse.vectorfield import (
    CRITICAL,
    SENTINEL,
    UNASSIGNED,
    GradientField,
)
from repro.obs.trace import get_tracer

__all__ = ["compute_discrete_gradient"]

#: popcount of each possible boundary signature byte (hoisted: built
#: once at import, not per block)
_POP_OF_SIG = np.array(
    [bin(v).count("1") for v in range(256)], dtype=np.uint8
)


def compute_discrete_gradient(complex_: CubicalComplex) -> GradientField:
    """Compute the discrete gradient vector field of a block.

    Returns a :class:`~repro.morse.vectorfield.GradientField` in which
    every valid cell is either paired or critical.  The computation is
    deterministic and, for cells on shared block boundaries, depends only
    on data available identically to all blocks sharing that boundary.
    """
    tracer = get_tracer()
    valid = complex_.valid
    rank_np = complex_.order_rank
    sig_np = complex_.boundary_sig

    with tracer.span("gradient.prepare", cat="kernel"):
        # Bulk pre-pass: sentinel marking and the assigned flags come
        # straight from the valid mask — no per-cell Python loop.
        pairing = np.where(valid, np.uint8(UNASSIGNED), np.uint8(SENTINEL))
        assigned = bytearray((~valid).view(np.uint8).tobytes())

        # Sweep order: signature classes from most constrained to least
        # (popcount 3, 2, 1, 0), then increasing dimension, then SoS
        # rank.  One vectorized lexsort over all valid cells replaces
        # per-class masked argsorts, so a worker process spends its time
        # in the greedy loop below, not in sorting.  The SoS rank is a
        # total order (global address tie-break), so the permutation —
        # and hence the constructed field — is exactly the grouped order.
        valid_cells = np.flatnonzero(valid)
        neg_pop = -_POP_OF_SIG[sig_np[valid_cells]].astype(np.int8)
        # np.lexsort: last key is primary
        perm = np.lexsort(
            (rank_np[valid_cells], complex_.cell_dim[valid_cells], neg_pop)
        )
        sweep = valid_cells[perm].tolist()

    sweep_span = tracer.span("gradient.sweep", cat="kernel",
                             cells=len(sweep))
    sweep_span.__enter__()

    # Hot loop state as plain Python lists: element access on lists is
    # several times faster than numpy scalar indexing.
    pairing = pairing.tolist()
    celltype = complex_.celltype.tolist()
    sig = sig_np.tolist()
    rank = rank_np.tolist()

    # memoized per-celltype candidate tables: for each cofacet offset,
    # (offset, tail->head code, head->tail code, other facet offsets)
    candidates = complex_.tables.pair_candidates

    for a in sweep:
        if assigned[a]:
            continue
        sa = sig[a]
        ta = celltype[a]
        best = -1
        best_rank = 0
        best_fwd = 0
        best_back = 0
        for off, fwd, back, others in candidates[ta]:
            b = a + off
            # sentinel cells carry signature 255, so they can
            # never match sa and are skipped without a bounds test
            if assigned[b] or sig[b] != sa:
                continue
            ok = True
            for foff in others:
                if not assigned[b + foff]:
                    ok = False
                    break
            if ok:
                rb = rank[b]
                if best < 0 or rb < best_rank:
                    best = b
                    best_rank = rb
                    best_fwd = fwd
                    best_back = back
        if best >= 0:
            pairing[a] = best_fwd
            pairing[best] = best_back
            assigned[a] = 1
            assigned[best] = 1
        else:
            pairing[a] = CRITICAL
            assigned[a] = 1
    sweep_span.__exit__(None, None, None)

    field = GradientField(complex_, np.asarray(pairing, dtype=np.uint8))
    return field
