"""Persistence diagrams from the cancellation hierarchy.

The simplification sequence (§III-C) pairs critical points: each
cancellation destroys an (index d, index d-1) pair whose function values
bound a topological feature's lifetime.  Collecting the pairs gives the
*persistence diagram* of the simplification — the summary plot used
throughout topological data analysis to separate features from noise
(the paper's persistence-threshold parameter studies read horizontal
slices of this diagram).

Note: the pairs produced by greedy persistence-ordered cancellation are
the standard practical approximation used by the MS-complex literature;
for ties and nested features they can differ from the homological
persistence pairing, which is irrelevant for thresholding use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.morse.msc import MorseSmaleComplex

__all__ = ["PersistencePair", "persistence_diagram", "diagram_statistics"]


@dataclass(frozen=True)
class PersistencePair:
    """One cancelled pair: feature birth/death values and type."""

    birth: float  # value of the lower of the two critical points
    death: float  # value of the upper of the two
    upper_index: int  # 1 = min-saddle, 2 = saddle-saddle, 3 = saddle-max
    persistence: float


def persistence_diagram(
    msc: MorseSmaleComplex, upper_index: int | None = None
) -> list[PersistencePair]:
    """Pairs recorded by the complex's simplification, optionally filtered.

    Run :func:`repro.morse.simplify.simplify_ms_complex` with a large
    threshold first; the diagram reflects whatever was cancelled.  Build
    the diagram *before* compacting the complex — compaction drops the
    cancelled nodes whose values the pairs refer to.
    """
    if upper_index is not None and upper_index not in (1, 2, 3):
        raise ValueError("upper_index must be 1, 2, or 3")
    value_of = {
        addr: msc.node_value[nid]
        for nid, addr in enumerate(msc.node_address)
    }
    out = []
    for c in msc.hierarchy:
        if upper_index is not None and c.upper_index != upper_index:
            continue
        try:
            v_lo = value_of[c.lower_address]
            v_up = value_of[c.upper_address]
        except KeyError:
            raise LookupError(
                "cancelled node values are no longer available; build "
                "the diagram before compacting the complex"
            ) from None
        out.append(
            PersistencePair(
                birth=min(v_lo, v_up),
                death=max(v_lo, v_up),
                upper_index=c.upper_index,
                persistence=c.persistence,
            )
        )
    return out


def diagram_statistics(pairs: list[PersistencePair]) -> dict[str, float]:
    """Summary statistics of a diagram (counts, persistence quantiles)."""
    if not pairs:
        return {
            "count": 0.0,
            "max_persistence": 0.0,
            "median_persistence": 0.0,
            "total_persistence": 0.0,
        }
    p = np.array([x.persistence for x in pairs])
    return {
        "count": float(p.size),
        "max_persistence": float(p.max()),
        "median_persistence": float(np.median(p)),
        "total_persistence": float(p.sum()),
    }
