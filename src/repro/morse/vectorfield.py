"""One-byte-per-cell storage of a discrete gradient vector field.

Matches the paper's storage scheme (§IV-C): the refined grid "stores the
discrete gradient pairing, criticality, and additional temporary values
compactly in one byte per element".  Each valid cell holds one of:

- a direction code 0..5: the cell is paired with its facet/cofacet
  neighbor one step along ``(+x, -x, +y, -y, +z, -z)`` respectively
  (whether the neighbor is the head or the tail follows from the two
  cells' dimensions),
- ``CRITICAL`` (6): the cell is unpaired, i.e. a critical cell,
- ``UNASSIGNED`` (7): not yet processed (only during construction),
- ``SENTINEL`` (255): padding outside the block.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.cubical import CubicalComplex

__all__ = [
    "GradientField",
    "CRITICAL",
    "UNASSIGNED",
    "SENTINEL",
    "CONT_CRITICAL",
    "CONT_DEAD",
]

CRITICAL = 6
UNASSIGNED = 7
SENTINEL = 255

#: continuation-table markers (must be negative: real cells are >= 0)
CONT_CRITICAL = -2
CONT_DEAD = -1


class GradientField:
    """A discrete gradient vector field over a block's cubical complex.

    Instances are produced by
    :func:`repro.morse.gradient.compute_discrete_gradient`; the class
    itself only provides queries over the packed byte array.
    """

    def __init__(self, complex_: CubicalComplex, pairing: np.ndarray) -> None:
        if pairing.shape != (complex_.num_padded,):
            raise ValueError("pairing array does not match the complex")
        self.complex = complex_
        #: uint8 per padded cell; see module docstring for the encoding
        self.pairing = pairing
        #: flat-offset per direction code (x fastest, matching the mesh)
        sx, sy, sz = complex_.steps
        self.dir_offsets = (sx, -sx, sy, -sy, sz, -sz)

    # -- queries --------------------------------------------------------

    def is_critical(self, p: int) -> bool:
        """Whether padded cell index ``p`` is a critical cell."""
        return self.pairing[p] == CRITICAL

    def pair_of(self, p: int) -> int:
        """Padded index of the cell paired with ``p`` (undefined if critical)."""
        code = self.pairing[p]
        if code >= CRITICAL:
            raise ValueError(f"cell {p} is not paired (code {code})")
        return p + self.dir_offsets[code]

    def critical_cells(self) -> np.ndarray:
        """Padded indices of all critical cells, in SoS order per dimension."""
        crit = self.pairing == CRITICAL
        out = []
        for d in range(4):
            cells = self.complex.cells_by_dim[d]
            out.append(cells[crit[cells]])
        return np.concatenate(out)

    def critical_cells_by_dim(self) -> tuple[np.ndarray, ...]:
        """Critical padded indices split by cell dimension (index)."""
        crit = self.pairing == CRITICAL
        return tuple(
            cells[crit[cells]] for cells in self.complex.cells_by_dim
        )

    def critical_counts(self) -> tuple[int, int, int, int]:
        """Counts of (minima, 1-saddles, 2-saddles, maxima)."""
        return tuple(len(c) for c in self.critical_cells_by_dim())

    def morse_euler_characteristic(self) -> int:
        """Alternating sum of critical cell counts.

        For a discrete gradient field on a full block (a contractible box)
        this must equal 1 — the block's Euler characteristic.  The tests
        use this as the primary structural invariant.
        """
        c0, c1, c2, c3 = self.critical_counts()
        return c0 - c1 + c2 - c3

    def assert_complete(self) -> None:
        """Raise if any valid cell is still unassigned or inconsistently paired."""
        valid = self.complex.valid
        codes = self.pairing[valid]
        if np.any(codes == UNASSIGNED):
            raise AssertionError("gradient field has unassigned cells")
        # mutual pairing: the pair of a paired cell points back
        paired = np.flatnonzero(valid & (self.pairing < CRITICAL))
        offs = np.asarray(self.dir_offsets, dtype=np.int64)
        partner = paired + offs[self.pairing[paired]]
        if np.any(self.pairing[partner] >= CRITICAL):
            raise AssertionError(
                "paired cell points at a critical/unassigned/sentinel cell"
            )
        back = partner + offs[self.pairing[partner]]
        if not np.array_equal(back, paired):
            raise AssertionError("gradient pairing is not mutual")
        dims = self.complex.cell_dim
        if np.any(np.abs(dims[paired].astype(int) - dims[partner].astype(int)) != 1):
            raise AssertionError("paired cells must differ in dimension by 1")

    def continuation_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Flat V-path continuation arrays ``(cont, ckey)``, built once.

        For every padded cell ``alpha`` reachable as a descent
        candidate:

        - ``cont[alpha]`` is the padded index of the head cell a
          descending V-path through ``alpha`` continues into, or
          :data:`CONT_CRITICAL` (the path ends an arc at ``alpha``) /
          :data:`CONT_DEAD` (``alpha`` heads a lower vector: the path
          dies);
        - ``ckey[alpha]`` indexes the flattened memoized
          ``trace_facets`` table with the head cell's continuation
          facet offsets — its facets minus the one leading back to
          ``alpha`` — as ``celltype(head) * 6 + pairing_code(alpha)``.

        Both tracing backends (the per-path DFS and the vectorized
        pointer-jumping tracer) consume these arrays; they are built
        with whole-array numpy passes and cached on the field.
        """
        tables = getattr(self, "_continuation_tables", None)
        if tables is None:
            cx = self.complex
            pairing = self.pairing
            n = cx.num_padded
            offs = np.asarray(self.dir_offsets, dtype=np.int64)

            cont = np.full(n, CONT_DEAD, dtype=np.int64)
            cont[pairing == CRITICAL] = CONT_CRITICAL
            paired = np.flatnonzero(cx.valid & (pairing < CRITICAL))
            partner = paired + offs[pairing[paired]]
            # the path continues only through tails (partner one dim
            # up); heads of lower vectors stay CONT_DEAD
            tails = cx.cell_dim[partner] == cx.cell_dim[paired] + 1
            cont[paired[tails]] = partner[tails]

            ckey = np.zeros(n, dtype=np.int64)
            ckey[paired[tails]] = (
                cx.celltype[partner[tails]].astype(np.int64) * 6
                + pairing[paired[tails]]
            )
            cont.setflags(write=False)
            ckey.setflags(write=False)
            tables = (cont, ckey)
            self._continuation_tables = tables
        return tables

    def nbytes(self) -> int:
        """Storage footprint of the packed field (1 byte per element)."""
        return int(self.pairing.nbytes)
