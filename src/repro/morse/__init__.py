"""Discrete Morse theory substrate.

Implements the compute stage of the paper:

- :mod:`repro.morse.gradient` — discrete gradient vector field construction
  with boundary-restricted pairing and simulation of simplicity (§IV-C),
- :mod:`repro.morse.vectorfield` — one-byte-per-cell gradient storage,
- :mod:`repro.morse.msc` — the flat node/arc/geometry MS-complex structure,
- :mod:`repro.morse.tracing` — V-path tracing from critical cells (§IV-D),
- :mod:`repro.morse.simplify` — persistence-ordered cancellation (§IV-E),
- :mod:`repro.morse.validate` — structural invariants used by the tests.
"""

from repro.morse.vectorfield import GradientField
from repro.morse.gradient import compute_discrete_gradient
from repro.morse.msc import MorseSmaleComplex, ArcGeometry
from repro.morse.tracing import extract_ms_complex
from repro.morse.simplify import simplify_ms_complex, Cancellation
from repro.morse.persistence import (
    PersistencePair,
    diagram_statistics,
    persistence_diagram,
)

__all__ = [
    "ArcGeometry",
    "Cancellation",
    "GradientField",
    "MorseSmaleComplex",
    "PersistencePair",
    "compute_discrete_gradient",
    "diagram_statistics",
    "extract_ms_complex",
    "persistence_diagram",
    "simplify_ms_complex",
]
