"""Persistence-based simplification of the MS complex (paper §IV-E).

"A function f is simplified by repeated cancellation of pairs of critical
points that differ in index by one. ... A cancellation removes two nodes
and the arcs connecting them from the MS complex, and creates new arcs
reconnecting nodes in their neighborhood.  Persistence ... is computed as
the absolute difference in function value of the canceled pair of nodes.
Repeated application of the cancellation operation in order of persistence
results in a hierarchy of MS complexes."

Cancellation validity follows the standard combinatorial rules:

- the two nodes must be connected by *exactly one* living arc (reversing
  a non-unique V-path would create a gradient cycle),
- in the parallel setting, arcs with a boundary endpoint are never
  cancelled (§IV-E): boundary nodes are the "handles" needed for gluing.

New arcs created by a cancellation of pair ``(U, L)`` connect every other
upper neighbor ``y`` of ``L`` to every other lower neighbor ``x`` of
``U``; their geometry is the composite path ``y -> L -> U -> x`` built
from the three deleted arcs' geometry objects.
"""

from __future__ import annotations

import heapq

from repro.morse.msc import Cancellation, MorseSmaleComplex
from repro.obs.trace import get_tracer

__all__ = ["simplify_ms_complex", "Cancellation"]


def simplify_ms_complex(
    msc: MorseSmaleComplex,
    threshold: float,
    respect_boundary: bool = True,
    max_cancellations: int | None = None,
    max_new_arcs: int | None = None,
    max_arc_multiplicity: int | None = 4,
    seed_nodes=None,
) -> list[Cancellation]:
    """Cancel node pairs in order of persistence up to ``threshold``.

    Parameters
    ----------
    msc:
        Complex to simplify in place.
    threshold:
        Maximum persistence (absolute value difference) to cancel.  The
        input threshold "determines how far the simplification will
        proceed".
    respect_boundary:
        When True (the parallel per-block setting), arcs with a boundary
        endpoint are not cancellation candidates.  Serial simplification
        passes False.
    max_cancellations:
        Optional cap, mainly for tests and incremental hierarchies.
    max_new_arcs:
        Optional guard against quadratic blow-up: a cancellation that
        would create more than this many arcs is skipped permanently
        (node degrees only grow, so it can never become cheaper).  The
        default (None) performs exact simplification.  Ties in
        persistence are always broken toward the cheaper cancellation,
        which curbs hub formation on plateau-heavy data.
    max_arc_multiplicity:
        Cap on parallel arcs kept between one node pair.  A cancellation
        that would push a pair's multiplicity beyond the cap does not
        materialize the extra copies.  Because cancellation validity
        only distinguishes multiplicity 1 from >= 2, and multiplicity
        between living nodes never decreases, any cap >= 2 provably
        leaves the *surviving critical points* (and the hierarchy of
        node cancellations) identical to the exact computation — only
        redundant parallel arc copies (and their geometry) are dropped.
        Noisy data drives quadratic parallel-arc growth without this
        cap; pass ``None`` for the exact full arc multiset.
    seed_nodes:
        Optional iterable of node ids; when given, only arcs incident to
        these nodes seed the candidate heap instead of every living arc.
        This is the incremental re-simplification entry point for the
        merge stage: if the complex was previously simplified at the
        *same* threshold (with ``respect_boundary=True``) and the only
        changes since were (a) gluing in new nodes/arcs, (b) unghosting
        matched nodes, and (c) boundary flags dropped by
        ``update_boundary_flags``, then seeding with exactly the glued,
        matched, unghosted, and freed nodes provably yields the same
        cancellation hierarchy as a full re-heap: every arc the previous
        pass left alive was skipped for a reason (persistence above
        threshold, boundary/ghost endpoint, non-unique connection) that
        can only be lifted by one of those tracked events, and
        cancellations triggered from the seeds re-push every arc they
        create.  Seeds are expanded to arcs in ascending arc-id order so
        heap tie-breaking (the push counter) matches the full-heap
        ordering among live candidates.  ``None`` (the default) keeps
        the exhaustive behavior.

    Returns
    -------
    The list of cancellations performed, in order (appended to
    ``msc.hierarchy`` as well).
    """
    if threshold < 0:
        raise ValueError("persistence threshold must be non-negative")
    if max_arc_multiplicity is not None and max_arc_multiplicity < 2:
        raise ValueError(
            "max_arc_multiplicity must be >= 2 (1 would change which "
            "pairs are cancellable)"
        )

    span = get_tracer().span(
        "simplify.cancel", cat="kernel", threshold=threshold
    )
    span.__enter__()

    heap: list[tuple[float, int, int, int]] = []
    counter = 0

    def push(aid: int) -> None:
        # tie-break equal persistences by an (inexpensive, push-time)
        # estimate of how many arcs the cancellation would create; this
        # keeps plateau sweeps from repeatedly feeding high-degree hubs
        nonlocal counter
        cost = len(msc.node_arcs[msc.arc_upper[aid]]) * len(
            msc.node_arcs[msc.arc_lower[aid]]
        )
        heapq.heappush(
            heap, (msc.persistence(aid), cost, counter, aid)
        )
        counter += 1

    if seed_nodes is None:
        for aid in msc.alive_arcs():
            push(aid)
    else:
        # ascending-aid pushes keep the counter-based tie-breaking
        # consistent with the full-heap seeding order
        seed_arcs = {
            a
            for n in seed_nodes
            if msc.node_alive[n]
            for a in msc.node_arcs[n]
            if msc.arc_alive[a]
        }
        for aid in sorted(seed_arcs):
            push(aid)

    performed: list[Cancellation] = []
    while heap:
        if max_cancellations is not None and len(performed) >= max_cancellations:
            break
        pers, _, _, aid = heapq.heappop(heap)
        if pers > threshold:
            break
        if not msc.arc_alive[aid]:
            continue
        upper, lower = msc.arc_upper[aid], msc.arc_lower[aid]
        if not (msc.node_alive[upper] and msc.node_alive[lower]):
            continue
        if msc.node_ghost[upper] or msc.node_ghost[lower]:
            continue  # remote placeholders are never cancelled locally
        if respect_boundary and (
            msc.node_boundary[upper] or msc.node_boundary[lower]
        ):
            continue
        # unique-connection requirement; multiplicity between a living
        # pair never decreases, so skipped arcs need not be re-queued
        if len(msc.arcs_between(upper, lower)) != 1:
            continue
        if max_new_arcs is not None:
            up = len(msc.incident_arcs(lower)) - 1
            down = len(msc.incident_arcs(upper)) - 1
            if up * down > max_new_arcs:
                continue  # degrees only grow: skip permanently

        created_ids, killed_ids = _cancel(
            msc, aid, upper, lower, push, max_arc_multiplicity
        )
        record = Cancellation(
            persistence=pers,
            upper_address=msc.node_address[upper],
            lower_address=msc.node_address[lower],
            upper_index=msc.node_index[upper],
            arcs_removed=len(killed_ids),
            arcs_created=len(created_ids),
            killed_nodes=[upper, lower],
            killed_arcs=killed_ids,
            created_arcs=created_ids,
        )
        msc.hierarchy.append(record)
        performed.append(record)
    span.annotate(cancellations=len(performed))
    span.__exit__(None, None, None)
    return performed


def _cancel(
    msc: MorseSmaleComplex, aid, upper, lower, push, max_multiplicity
) -> tuple[list[int], list[int]]:
    """Apply one cancellation; returns (created arc ids, killed arc ids)."""
    upper_arcs = [a for a in msc.incident_arcs(upper) if a != aid]
    lower_arcs = [a for a in msc.incident_arcs(lower) if a != aid]

    # arcs U -> x (x of index d-1, x != L) and y -> L (y of index d)
    down_from_upper = [a for a in upper_arcs if msc.arc_upper[a] == upper]
    up_from_lower = [a for a in lower_arcs if msc.arc_lower[a] == lower]

    created: list[int] = []
    for p in up_from_lower:
        y = msc.arc_upper[p]
        for q in down_from_upper:
            x = msc.arc_lower[q]
            if (
                max_multiplicity is not None
                and msc.multiplicity(y, x) >= max_multiplicity
            ):
                continue  # redundant parallel copy; see docstring
            gid = msc.new_composite_geometry(
                [
                    (msc.arc_geom[p], False),  # y -> L
                    (msc.arc_geom[aid], True),  # L -> U (reversed arc)
                    (msc.arc_geom[q], False),  # U -> x
                ]
            )
            new_aid = msc.add_arc(y, x, gid)
            push(new_aid)
            created.append(new_aid)

    killed = [aid] + upper_arcs + lower_arcs
    for a in killed:
        msc.kill_arc(a)
    msc.kill_node(upper)
    msc.kill_node(lower)
    return created, killed
