"""Rasterization of MS complex geometry into volumes and slices.

The paper's figures render the 1-skeleton as tubes and spheres over the
data (Figs. 1, 4, 7, 8).  This reproduction has no renderer, so this
module produces the numeric equivalents: label volumes with arcs and
nodes burned in (for export to any volume viewer) and quick ASCII
projections for terminal inspection — enough to "see" the filament
structures the figures show.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.addressing import address_to_coords
from repro.morse.msc import MorseSmaleComplex

__all__ = ["rasterize", "project_ascii", "LABELS"]

#: voxel labels used by :func:`rasterize`
LABELS = {
    "background": 0,
    "arc": 1,
    "minimum": 2,
    "1-saddle": 3,
    "2-saddle": 4,
    "maximum": 5,
}


def rasterize(
    msc: MorseSmaleComplex,
    arcs: list[int] | None = None,
    nodes: bool = True,
) -> np.ndarray:
    """Burn arcs and nodes into a uint8 label volume.

    The volume has the dataset's *vertex* dims; refined coordinates are
    halved (cells map to their containing voxel neighborhood).  Arc
    cells get label 1; nodes get ``2 + Morse index`` (overwriting arc
    labels so endpoints stay visible).
    """
    gdims = msc.global_refined_dims
    vdims = tuple((d + 1) // 2 for d in gdims)
    vol = np.zeros(vdims, dtype=np.uint8)

    arcs = msc.alive_arcs() if arcs is None else arcs
    for aid in arcs:
        addrs = msc.geometry_addresses(aid)
        gi, gj, gk = address_to_coords(addrs, gdims)
        vol[gi // 2, gj // 2, gk // 2] = LABELS["arc"]

    if nodes:
        for nid in msc.alive_nodes():
            if msc.node_ghost[nid]:
                continue
            gi, gj, gk = address_to_coords(
                int(msc.node_address[nid]), gdims
            )
            vol[gi // 2, gj // 2, gk // 2] = 2 + msc.node_index[nid]
    return vol


def project_ascii(
    volume: np.ndarray,
    axis: int = 2,
    chars: str = " .o+#X",
) -> str:
    """Max-project a label volume along an axis into ASCII art.

    With the default character map, arc paths show as '.', minima as
    'o', 1-saddles as '+', 2-saddles as '#', maxima as 'X'.
    """
    if volume.ndim != 3:
        raise ValueError("expected a 3D label volume")
    if not 0 <= axis <= 2:
        raise ValueError("axis must be 0, 1, or 2")
    proj = volume.max(axis=axis)
    rows = []
    # transpose so the first remaining axis runs horizontally
    for row in proj.T[::-1]:
        rows.append(
            "".join(chars[min(int(v), len(chars) - 1)] for v in row)
        )
    return "\n".join(rows)
