"""Quantitative comparison of MS complexes (paper §V-A, Fig. 4).

The paper argues stability qualitatively: stable critical points (those
with non-singular Hessian neighborhoods) are preserved under blocking,
while critical points in flat regions "can shift dramatically".  This
module quantifies that: two complexes are matched node-by-node, first by
exact global address, then by (Morse index, value) signature — which is
invariant under the half-cell shifts discretization allows — and the
remainder is reported as unmatched.  The resulting
:class:`ComplexComparison` provides the precision/recall-style numbers
used by the stability tests and the Fig. 4 bench.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.morse.msc import MorseSmaleComplex

__all__ = ["ComplexComparison", "compare_complexes", "feature_signature"]


def feature_signature(
    msc: MorseSmaleComplex,
    min_value: float | None = None,
    decimals: int = 9,
) -> Counter:
    """Multiset of (Morse index, rounded value) over living nodes.

    Invariant under the node-location shifts that blocking can cause
    (a critical cell shifting along a plateau keeps its cell value).
    """
    sig: Counter = Counter()
    for nid in msc.alive_nodes():
        v = msc.node_value[nid]
        if min_value is not None and v <= min_value:
            continue
        sig[(msc.node_index[nid], round(v, decimals))] += 1
    return sig


@dataclass
class ComplexComparison:
    """Node-matching report between a reference and a test complex."""

    matched_by_address: int = 0
    matched_by_signature: int = 0
    only_reference: Counter = field(default_factory=Counter)
    only_test: Counter = field(default_factory=Counter)
    reference_nodes: int = 0
    test_nodes: int = 0

    @property
    def matched(self) -> int:
        return self.matched_by_address + self.matched_by_signature

    @property
    def recall(self) -> float:
        """Fraction of reference nodes found in the test complex."""
        if self.reference_nodes == 0:
            return 1.0
        return self.matched / self.reference_nodes

    @property
    def precision(self) -> float:
        """Fraction of test nodes present in the reference complex."""
        if self.test_nodes == 0:
            return 1.0
        return self.matched / self.test_nodes

    @property
    def identical(self) -> bool:
        return not self.only_reference and not self.only_test

    def describe(self) -> str:
        return (
            f"matched {self.matched}/{self.reference_nodes} reference "
            f"nodes ({self.matched_by_address} by address, "
            f"{self.matched_by_signature} by signature); "
            f"unmatched: {sum(self.only_reference.values())} reference, "
            f"{sum(self.only_test.values())} test; "
            f"recall={self.recall:.3f} precision={self.precision:.3f}"
        )


def compare_complexes(
    reference: MorseSmaleComplex,
    test: MorseSmaleComplex,
    min_value: float | None = None,
    decimals: int = 9,
) -> ComplexComparison:
    """Match nodes of two complexes by address, then by signature.

    Parameters
    ----------
    reference, test:
        The complexes to compare (e.g. serial vs merged-parallel).
    min_value:
        Ignore nodes at or below this value (mask out unstable background
        features, as the paper's Fig. 4 filter does).
    decimals:
        Value rounding for signature matching.
    """
    cmp = ComplexComparison()

    def nodes(msc):
        out = {}
        for nid in msc.alive_nodes():
            v = msc.node_value[nid]
            if min_value is not None and v <= min_value:
                continue
            out[nid] = (
                msc.node_address[nid],
                (msc.node_index[nid], round(v, decimals)),
            )
        return out

    ref_nodes = nodes(reference)
    test_nodes = nodes(test)
    cmp.reference_nodes = len(ref_nodes)
    cmp.test_nodes = len(test_nodes)

    by_addr = {addr: nid for nid, (addr, _sig) in test_nodes.items()}
    leftover_ref = []
    used_test: set[int] = set()
    for nid, (addr, sig) in ref_nodes.items():
        t = by_addr.get(addr)
        if t is not None and t not in used_test and (
            test_nodes[t][1] == sig
        ):
            cmp.matched_by_address += 1
            used_test.add(t)
        else:
            leftover_ref.append((nid, sig))

    remaining_test = Counter(
        sig for t, (_a, sig) in test_nodes.items() if t not in used_test
    )
    for _nid, sig in leftover_ref:
        if remaining_test[sig] > 0:
            remaining_test[sig] -= 1
            cmp.matched_by_signature += 1
        else:
            cmp.only_reference[sig] += 1
    cmp.only_test = Counter(
        {sig: c for sig, c in remaining_test.items() if c > 0}
    )
    return cmp
