"""Feature queries over MS complex 1-skeletons.

These are the interactive queries of the paper's analysis pipeline
(Fig. 1 and Fig. 4): selecting arc families (e.g. the 2-saddle-maximum
arcs that trace filament structures / three-dimensional ridge lines),
thresholding by node value ("nodes with value greater than 14.5"), and
persistence parameter studies over the cancellation hierarchy ("viewing
the filament structures for multiple threshold values and at multiple
topological scales").
"""

from __future__ import annotations

import numpy as np

from repro.morse.msc import MorseSmaleComplex

__all__ = [
    "arcs_by_family",
    "filter_arcs_by_value",
    "nodes_by_index",
    "significant_extrema",
    "persistence_curve",
]

#: arc families of the 1-skeleton by the upper node's Morse index
ARC_FAMILIES = {
    1: "minimum-1-saddle",
    2: "1-saddle-2-saddle",
    3: "2-saddle-maximum",
}


def nodes_by_index(msc: MorseSmaleComplex, index: int) -> list[int]:
    """Living node ids with the given Morse index."""
    if not 0 <= index <= 3:
        raise ValueError("Morse index must be 0..3")
    return [
        nid for nid in msc.alive_nodes() if msc.node_index[nid] == index
    ]


def arcs_by_family(msc: MorseSmaleComplex, upper_index: int) -> list[int]:
    """Living arc ids whose upper node has the given Morse index.

    ``upper_index=3`` selects the 2-saddle-maximum arcs used for
    filament/ridge extraction; ``upper_index=1`` the minimum-1-saddle
    arcs (valley lines).
    """
    if upper_index not in ARC_FAMILIES:
        raise ValueError(f"upper_index must be in {sorted(ARC_FAMILIES)}")
    return [
        aid
        for aid in msc.alive_arcs()
        if msc.node_index[msc.arc_upper[aid]] == upper_index
    ]


def filter_arcs_by_value(
    msc: MorseSmaleComplex,
    arcs: list[int],
    min_value: float | None = None,
    max_value: float | None = None,
) -> list[int]:
    """Keep arcs whose *both* endpoint values fall in the given range.

    This is the paper's Fig. 4 feature selection: "choosing
    2-saddle-maximum arcs and nodes with value greater than 14.5".
    """
    out = []
    for aid in arcs:
        lo = msc.node_value[msc.arc_lower[aid]]
        hi = msc.node_value[msc.arc_upper[aid]]
        if min_value is not None and min(lo, hi) <= min_value:
            continue
        if max_value is not None and max(lo, hi) >= max_value:
            continue
        out.append(aid)
    return out


def significant_extrema(
    msc: MorseSmaleComplex,
    index: int,
    min_value: float | None = None,
    max_value: float | None = None,
) -> list[int]:
    """Extrema (or saddles) of the given index passing a value filter.

    For the JET analysis the relevant features are "important minima"
    (``index=0`` with ``max_value`` on mixture fraction); for the porous
    material, high-valued maxima.
    """
    out = []
    for nid in nodes_by_index(msc, index):
        v = msc.node_value[nid]
        if min_value is not None and v <= min_value:
            continue
        if max_value is not None and v >= max_value:
            continue
        out.append(nid)
    return out


def persistence_curve(
    msc: MorseSmaleComplex, num_points: int = 64
) -> tuple[np.ndarray, np.ndarray]:
    """Remaining critical point count as a function of persistence.

    Derived from the cancellation hierarchy: each cancellation at
    persistence ``p`` removes two nodes, so the curve starts at the
    pre-simplification node count and steps down.  Returns
    ``(thresholds, counts)`` suitable for a parameter-study plot.
    """
    if num_points < 2:
        raise ValueError("num_points must be >= 2")
    base = msc.num_alive_nodes()
    pers = sorted(c.persistence for c in msc.hierarchy)
    total0 = base + 2 * len(pers)
    top = pers[-1] if pers else 1.0
    thresholds = np.linspace(0.0, top, num_points)
    counts = np.empty(num_points, dtype=np.int64)
    for i, t in enumerate(thresholds):
        cancelled = np.searchsorted(pers, t, side="right")
        counts[i] = total0 - 2 * cancelled
    return thresholds, counts
