"""Persisted multiscale query engine (paper §III-C, Fig. 1 right side).

One pipeline run with the ``hierarchy`` execution option persists the
cancellation hierarchy of every output block into the ``.msc`` v2
footer; this module answers persistence queries against that file with
**zero re-simplification**: :func:`load_hierarchy` materializes the
hierarchies once, and :func:`query` locates a level per block in
O(log #levels) (a bisection over the running persistence maximum) and
materializes only the surviving nodes/arcs.  The answers are
node/arc-identical to a fresh ``simplify_ms_complex`` run at the same
threshold on the stored complexes — the equivalence the property suite
(``tests/test_property_hierarchy_query.py``) pins.

::

    import repro
    res = repro.compute(field, options=repro.ExecutionOptions(hierarchy=True))
    res.write("out.msc")

    hier = repro.api.load_hierarchy("out.msc")   # load once ...
    for p in thresholds:                         # ... query many times
        print(repro.api.query(hier, persistence=p).node_counts_by_index())
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.hierarchy import HierarchyLevelView, MSComplexHierarchy
from repro.io.mscfile import read_msc_hierarchies

__all__ = ["QueryResult", "load_hierarchy", "query"]


@dataclass(frozen=True)
class QueryResult:
    """One multiscale query answer across all persisted blocks.

    ``views`` maps each block id to its
    :class:`~repro.analysis.hierarchy.HierarchyLevelView` at the
    resolved level; ``levels`` holds the per-block hierarchy level the
    query resolved to.  ``persistence`` echoes the threshold queried
    (for ``top_k`` queries it is the largest cancellation persistence
    actually applied, 0.0 when none were).
    """

    persistence: float
    #: resolved hierarchy level per block id
    levels: dict[int, int]
    #: materialized complex per block id
    views: dict[int, HierarchyLevelView]

    def node_counts_by_index(self) -> tuple[int, int, int, int]:
        """Node counts by Morse index over all blocks.

        Nodes shared by several blocks' views (the replicated boundary
        layer of a partial merge) are counted once, by address.
        """
        seen: set[int] = set()
        counts = [0, 0, 0, 0]
        for bid in sorted(self.views):
            for addr, idx, _v in self.views[bid].nodes:
                if addr not in seen:
                    seen.add(addr)
                    counts[idx] += 1
        return tuple(counts)

    @property
    def num_nodes(self) -> int:
        """Distinct surviving nodes over all blocks."""
        return sum(self.node_counts_by_index())

    @property
    def num_arcs(self) -> int:
        """Surviving arcs summed over all blocks."""
        return sum(len(v.arcs) for v in self.views.values())

    def to_dict(self) -> dict:
        """A JSON-friendly summary (the ``repro query --json`` record)."""
        counts = self.node_counts_by_index()
        return {
            "persistence": self.persistence,
            "levels": {str(b): lvl for b, lvl in sorted(self.levels.items())},
            "node_counts_by_index": list(counts),
            "num_nodes": self.num_nodes,
            "num_arcs": self.num_arcs,
        }


def load_hierarchy(
    source: str | Path | bytes,
) -> dict[int, MSComplexHierarchy]:
    """Load the persisted cancellation hierarchies of a ``.msc`` v2 file.

    ``source`` is a file path or the complete ``.msc`` image as
    ``bytes`` — the form the service result cache holds hot entries in,
    so a cached artifact answers queries without touching disk.
    Returns one :class:`~repro.analysis.hierarchy.MSComplexHierarchy`
    per output block id.  Load once and pass the result to
    :func:`query` to answer many thresholds without re-reading the file.
    Raises a readable :class:`ValueError` when the file has no hierarchy
    section (v1 files, or runs without the ``hierarchy`` option).
    """
    return {
        bid: MSComplexHierarchy.from_arrays(arrays)
        for bid, arrays in read_msc_hierarchies(source).items()
    }


def query(
    source: str | Path | bytes | dict[int, MSComplexHierarchy],
    *,
    persistence: float | None = None,
    top_k: int | None = None,
) -> QueryResult:
    """Answer one multiscale query against a persisted hierarchy.

    ``source`` is a ``.msc`` v2 path, its file image as ``bytes``, or
    the mapping returned by
    :func:`load_hierarchy` (pass the loaded mapping when sweeping many
    thresholds — the file is then touched exactly once).  Exactly one of
    ``persistence`` (materialize the complex a fresh simplification at
    that threshold would produce) and ``top_k`` (keep the ``k``
    coarsest-scale cancellations undone) must be given.  No
    simplification runs: the level is a bisection per block, the output
    a vectorized interval filter.
    """
    if (persistence is None) == (top_k is None):
        raise ValueError(
            "query() needs exactly one of persistence= and top_k="
        )
    hierarchies = (
        source
        if isinstance(source, dict)
        else load_hierarchy(source)
    )
    levels: dict[int, int] = {}
    views: dict[int, HierarchyLevelView] = {}
    applied = 0.0
    for bid in sorted(hierarchies):
        h = hierarchies[bid]
        if persistence is not None:
            level = h.level_of_persistence(persistence)
        else:
            level = h.level_for_top_k(top_k)
        levels[bid] = level
        views[bid] = h.view_at_level(level)
        if level:
            applied = max(applied, max(h.persistences[:level]))
    effective = persistence if persistence is not None else applied
    return QueryResult(
        persistence=float(effective), levels=levels, views=views
    )
