"""Multi-resolution MS complex hierarchy (paper §III-C and Fig. 1).

"Repeated application of the cancellation operation in order of
persistence results in a hierarchy of MS complexes and a
multi-resolution representation of the scalar function."  The paper's
analysis pipeline exploits this: the scientist "may interactively ...
select different threshold values to define features" without
recomputing anything.

:class:`MSComplexHierarchy` captures a simplification run as
birth/death intervals over cancellation levels: level ``L`` is the
complex after the first ``L`` cancellations.  Queries at any persistence
value are O(log #levels) to locate the level plus output size to
materialize, with no mutation of the original complex.

Build it from a complex that has been simplified but **not yet
compacted** (compaction renumbers ids); the hierarchy copies everything
it needs, so the source complex may be compacted or discarded afterward.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.morse.msc import MorseSmaleComplex

__all__ = ["MSComplexHierarchy", "HierarchyLevelView"]

_INF = np.iinfo(np.int64).max


@dataclass(frozen=True)
class HierarchyLevelView:
    """The complex at one hierarchy level: node and arc tuples."""

    level: int
    persistence: float
    #: (address, Morse index, value) per living node
    nodes: list[tuple[int, int, float]]
    #: (upper address, lower address) per living arc
    arcs: list[tuple[int, int]]

    def node_counts_by_index(self) -> tuple[int, int, int, int]:
        counts = [0, 0, 0, 0]
        for _a, idx, _v in self.nodes:
            counts[idx] += 1
        return tuple(counts)


class MSComplexHierarchy:
    """Birth/death interval representation of a cancellation sequence."""

    def __init__(
        self,
        node_records: list[tuple[int, int, float]],
        node_death: np.ndarray,
        arc_records: list[tuple[int, int]],
        arc_birth: np.ndarray,
        arc_death: np.ndarray,
        persistences: list[float],
    ) -> None:
        self._nodes = node_records
        self._node_death = node_death
        self._arcs = arc_records
        self._arc_birth = arc_birth
        self._arc_death = arc_death
        #: persistence of each cancellation, in application order
        self.persistences = persistences

    # -- construction -----------------------------------------------------

    @classmethod
    def from_complex(cls, msc: MorseSmaleComplex) -> "MSComplexHierarchy":
        """Capture the hierarchy of a simplified, uncompacted complex.

        Raises if any hierarchy record references ids outside the
        complex's tables — the symptom of building from a compacted
        complex.
        """
        n_nodes = len(msc.node_address)
        n_arcs = len(msc.arc_upper)
        node_death = np.full(n_nodes, _INF, dtype=np.int64)
        arc_birth = np.zeros(n_arcs, dtype=np.int64)
        arc_death = np.full(n_arcs, _INF, dtype=np.int64)

        for level, c in enumerate(msc.hierarchy, start=1):
            for nid in c.killed_nodes:
                if not 0 <= nid < n_nodes:
                    raise ValueError(
                        "hierarchy references unknown node ids; build the "
                        "hierarchy before compacting the complex"
                    )
                node_death[nid] = level
            for aid in c.killed_arcs:
                arc_death[aid] = level
            for aid in c.created_arcs:
                arc_birth[aid] = level

        # consistency: a record that the complex still considers alive
        # must have an open interval, and vice versa
        for nid, alive in enumerate(msc.node_alive):
            if alive != (node_death[nid] == _INF):
                raise ValueError(
                    "complex liveness disagrees with hierarchy records"
                )

        node_records = [
            (msc.node_address[i], msc.node_index[i], msc.node_value[i])
            for i in range(n_nodes)
        ]
        arc_records = [
            (
                msc.node_address[msc.arc_upper[a]],
                msc.node_address[msc.arc_lower[a]],
            )
            for a in range(n_arcs)
        ]
        return cls(
            node_records,
            node_death,
            arc_records,
            arc_birth,
            arc_death,
            [c.persistence for c in msc.hierarchy],
        )

    # -- queries ------------------------------------------------------------

    @property
    def num_levels(self) -> int:
        """Number of cancellation levels (level 0 = unsimplified)."""
        return len(self.persistences)

    def level_of_persistence(self, persistence: float) -> int:
        """Highest level whose cancellations all have persistence <= p.

        Cancellation persistences are non-decreasing *as a threshold
        sweep*: a level's simplification may interleave (new arcs can be
        cheaper than the pair that created them), so the level is located
        by scanning for the last prefix bounded by ``persistence``.
        """
        level = 0
        for i, p in enumerate(self.persistences, start=1):
            if p <= persistence:
                level = i
        return level

    def counts_at_level(self, level: int) -> tuple[int, int, int, int]:
        """Node counts by Morse index at a hierarchy level."""
        self._check_level(level)
        counts = [0, 0, 0, 0]
        for (_a, idx, _v), death in zip(self._nodes, self._node_death):
            if death > level:
                counts[idx] += 1
        return tuple(counts)

    def view_at_level(self, level: int) -> HierarchyLevelView:
        """Materialize the complex (nodes + arcs) at a hierarchy level."""
        self._check_level(level)
        nodes = [
            rec
            for rec, death in zip(self._nodes, self._node_death)
            if death > level
        ]
        arcs = [
            rec
            for rec, birth, death in zip(
                self._arcs, self._arc_birth, self._arc_death
            )
            if birth <= level < death
        ]
        pers = self.persistences[level - 1] if level else 0.0
        return HierarchyLevelView(
            level=level, persistence=pers, nodes=nodes, arcs=arcs
        )

    def view_at_persistence(self, persistence: float) -> HierarchyLevelView:
        """Materialize the complex at a persistence threshold."""
        return self.view_at_level(self.level_of_persistence(persistence))

    def node_count_curve(self) -> tuple[list[float], list[int]]:
        """(persistence, surviving node count) at every level boundary."""
        total = len(self._nodes)
        xs, ys = [0.0], [total]
        for level, p in enumerate(self.persistences, start=1):
            xs.append(p)
            ys.append(total - 2 * level)
        return xs, ys

    def _check_level(self, level: int) -> None:
        if not 0 <= level <= self.num_levels:
            raise ValueError(
                f"level {level} out of range 0..{self.num_levels}"
            )
