"""Multi-resolution MS complex hierarchy (paper §III-C and Fig. 1).

"Repeated application of the cancellation operation in order of
persistence results in a hierarchy of MS complexes and a
multi-resolution representation of the scalar function."  The paper's
analysis pipeline exploits this: the scientist "may interactively ...
select different threshold values to define features" without
recomputing anything.

:class:`MSComplexHierarchy` captures a simplification run as
birth/death intervals over cancellation levels: level ``L`` is the
complex after the first ``L`` cancellations.  Queries at any persistence
value are O(log #levels) to locate the level plus output size to
materialize, with no mutation of the original complex.

Build it from a complex that has been simplified but **not yet
compacted** (compaction renumbers ids), or capture one from a compacted
complex with :meth:`MSComplexHierarchy.capture` (which sweeps a
throwaway copy); the hierarchy copies everything it needs, so the source
complex may be compacted or discarded afterward.  The flat-array
round-trip (:meth:`~MSComplexHierarchy.to_arrays` /
:meth:`~MSComplexHierarchy.from_arrays`) is what the ``.msc`` v2
hierarchy footer persists (see :mod:`repro.io.mscfile`).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.morse.msc import MorseSmaleComplex

__all__ = ["MSComplexHierarchy", "HierarchyLevelView"]

_INF = np.iinfo(np.int64).max


@dataclass(frozen=True)
class HierarchyLevelView:
    """The complex at one hierarchy level: node and arc tuples."""

    level: int
    persistence: float
    #: (address, Morse index, value) per living node
    nodes: list[tuple[int, int, float]]
    #: (upper address, lower address) per living arc
    arcs: list[tuple[int, int]]

    def node_counts_by_index(self) -> tuple[int, int, int, int]:
        counts = [0, 0, 0, 0]
        for _a, idx, _v in self.nodes:
            counts[idx] += 1
        return tuple(counts)


class MSComplexHierarchy:
    """Birth/death interval representation of a cancellation sequence."""

    def __init__(
        self,
        node_records: list[tuple[int, int, float]],
        node_death: np.ndarray,
        arc_records: list[tuple[int, int]],
        arc_birth: np.ndarray,
        arc_death: np.ndarray,
        persistences: list[float],
    ) -> None:
        self._nodes = node_records
        self._node_death = np.asarray(node_death, dtype=np.int64)
        self._arcs = arc_records
        self._arc_birth = np.asarray(arc_birth, dtype=np.int64)
        self._arc_death = np.asarray(arc_death, dtype=np.int64)
        #: persistence of each cancellation, in application order
        self.persistences = list(persistences)
        # columnar copies of the records: vectorized materialization
        self._node_addr = np.asarray(
            [r[0] for r in node_records], dtype=np.int64
        )
        self._node_index = np.asarray(
            [r[1] for r in node_records], dtype=np.uint8
        )
        self._node_value = np.asarray(
            [r[2] for r in node_records], dtype=np.float64
        )
        self._arc_upper = np.asarray(
            [r[0] for r in arc_records], dtype=np.int64
        )
        self._arc_lower = np.asarray(
            [r[1] for r in arc_records], dtype=np.int64
        )
        # Running maximum of the persistences.  It is non-decreasing by
        # construction, so a query threshold locates its level with one
        # bisection: the longest prefix of cancellations that a fresh
        # bounded-threshold run would also have applied (see
        # level_of_persistence).
        self._prefix_max = (
            np.maximum.accumulate(
                np.asarray(self.persistences, dtype=np.float64)
            )
            if self.persistences
            else np.empty(0, dtype=np.float64)
        )

    # -- construction -----------------------------------------------------

    @classmethod
    def from_complex(cls, msc: MorseSmaleComplex) -> "MSComplexHierarchy":
        """Capture the hierarchy of a simplified, uncompacted complex.

        Raises if any hierarchy record references ids outside the
        complex's tables — the symptom of building from a compacted
        complex.
        """
        n_nodes = len(msc.node_address)
        n_arcs = len(msc.arc_upper)
        node_death = np.full(n_nodes, _INF, dtype=np.int64)
        arc_birth = np.zeros(n_arcs, dtype=np.int64)
        arc_death = np.full(n_arcs, _INF, dtype=np.int64)

        for level, c in enumerate(msc.hierarchy, start=1):
            for nid in c.killed_nodes:
                if not 0 <= nid < n_nodes:
                    raise ValueError(
                        "hierarchy references unknown node ids; build the "
                        "hierarchy before compacting the complex"
                    )
                node_death[nid] = level
            for aid in c.killed_arcs:
                arc_death[aid] = level
            for aid in c.created_arcs:
                arc_birth[aid] = level

        # consistency: a record that the complex still considers alive
        # must have an open interval, and vice versa
        for nid, alive in enumerate(msc.node_alive):
            if alive != (node_death[nid] == _INF):
                raise ValueError(
                    "complex liveness disagrees with hierarchy records"
                )

        node_records = [
            (msc.node_address[i], msc.node_index[i], msc.node_value[i])
            for i in range(n_nodes)
        ]
        arc_records = [
            (
                msc.node_address[msc.arc_upper[a]],
                msc.node_address[msc.arc_lower[a]],
            )
            for a in range(n_arcs)
        ]
        return cls(
            node_records,
            node_death,
            arc_records,
            arc_birth,
            arc_death,
            [c.persistence for c in msc.hierarchy],
        )

    @classmethod
    def capture(cls, msc: MorseSmaleComplex) -> "MSComplexHierarchy":
        """Capture the full hierarchy of a compacted complex.

        Sweeps a throwaway payload copy of ``msc`` to infinite
        persistence (``respect_boundary=True``, so shared-boundary and
        ghost nodes of partially merged blocks stay protected exactly as
        a fresh bounded run would protect them) and records the
        cancellation sequence.  Level 0 of the returned hierarchy *is*
        ``msc`` as stored; ``msc`` itself is never mutated.

        Because a bounded fresh run replays the identical heap evolution
        as this infinite sweep up to its threshold, querying the result
        at any persistence ``p`` yields exactly the node/arc sets of
        ``simplify_ms_complex(copy, p)`` on a copy of ``msc`` — the
        equivalence the persisted query engine relies on.
        """
        from repro.morse.simplify import simplify_ms_complex

        sweep = MorseSmaleComplex.from_payload(msc.to_payload())
        simplify_ms_complex(sweep, np.inf, respect_boundary=True)
        return cls.from_complex(sweep)

    # -- persistence (flat-array round-trip) ------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        """The hierarchy as flat numpy arrays (the ``.msc`` v2 layout).

        Nine parallel arrays: per-node ``node_address`` / ``node_index``
        / ``node_value`` / ``node_death``, per-arc ``arc_upper_address``
        / ``arc_lower_address`` / ``arc_birth`` / ``arc_death``, and the
        per-level ``persistences``.  Death/birth levels use
        ``int64 max`` for "never dies".  The inverse is
        :meth:`from_arrays`; the round-trip is bit-exact.
        """
        return {
            "node_address": self._node_addr.copy(),
            "node_index": self._node_index.copy(),
            "node_value": self._node_value.copy(),
            "node_death": self._node_death.copy(),
            "arc_upper_address": self._arc_upper.copy(),
            "arc_lower_address": self._arc_lower.copy(),
            "arc_birth": self._arc_birth.copy(),
            "arc_death": self._arc_death.copy(),
            "persistences": np.asarray(
                self.persistences, dtype=np.float64
            ),
        }

    @classmethod
    def from_arrays(
        cls, arrays: dict[str, np.ndarray]
    ) -> "MSComplexHierarchy":
        """Rebuild a hierarchy from its :meth:`to_arrays` representation."""
        node_records = list(
            zip(
                arrays["node_address"].tolist(),
                arrays["node_index"].tolist(),
                arrays["node_value"].tolist(),
            )
        )
        arc_records = list(
            zip(
                arrays["arc_upper_address"].tolist(),
                arrays["arc_lower_address"].tolist(),
            )
        )
        return cls(
            node_records,
            arrays["node_death"],
            arc_records,
            arrays["arc_birth"],
            arrays["arc_death"],
            arrays["persistences"].tolist(),
        )

    # -- queries ------------------------------------------------------------

    @property
    def num_levels(self) -> int:
        """Number of cancellation levels (level 0 = unsimplified)."""
        return len(self.persistences)

    def level_of_persistence(self, persistence: float) -> int:
        """Highest level whose cancellations all have persistence <= p.

        Simplification may interleave (a cancellation can create arcs
        cheaper than the pair that created them), so the raw persistence
        sequence is not monotone; the level is the length of the longest
        *prefix* bounded by ``persistence``, found by bisecting the
        precomputed running maximum — O(log #levels).  This is exactly
        the set of cancellations a fresh ``simplify_ms_complex`` run at
        threshold ``persistence`` performs, because such a run replays
        the identical heap evolution and stops at the first pop whose
        persistence exceeds the threshold.
        """
        return int(
            bisect.bisect_right(self._prefix_max, persistence)
        )

    def level_for_top_k(self, k: int) -> int:
        """The level that leaves the ``k`` coarsest cancellations undone.

        The running persistence maximum is non-decreasing, so the last
        ``k`` levels of the hierarchy are its ``k`` most persistent
        (coarsest-scale) simplification steps; viewing the complex at
        ``num_levels - k`` keeps exactly those features separate.  ``k``
        of 0 is the fully simplified complex; ``k >= num_levels`` is the
        unsimplified one.
        """
        if k < 0:
            raise ValueError(f"top_k must be >= 0, got {k}")
        return max(0, self.num_levels - k)

    def counts_at_level(self, level: int) -> tuple[int, int, int, int]:
        """Node counts by Morse index at a hierarchy level."""
        self._check_level(level)
        alive = self._node_death > level
        counts = np.bincount(self._node_index[alive], minlength=4)
        return tuple(int(c) for c in counts[:4])

    def view_at_level(self, level: int) -> HierarchyLevelView:
        """Materialize the complex (nodes + arcs) at a hierarchy level."""
        self._check_level(level)
        nsel = np.nonzero(self._node_death > level)[0]
        nodes = list(
            zip(
                self._node_addr[nsel].tolist(),
                self._node_index[nsel].tolist(),
                self._node_value[nsel].tolist(),
            )
        )
        asel = np.nonzero(
            (self._arc_birth <= level) & (level < self._arc_death)
        )[0]
        arcs = list(
            zip(
                self._arc_upper[asel].tolist(),
                self._arc_lower[asel].tolist(),
            )
        )
        pers = self.persistences[level - 1] if level else 0.0
        return HierarchyLevelView(
            level=level, persistence=pers, nodes=nodes, arcs=arcs
        )

    def view_at_persistence(self, persistence: float) -> HierarchyLevelView:
        """Materialize the complex at a persistence threshold."""
        return self.view_at_level(self.level_of_persistence(persistence))

    def node_count_curve(self) -> tuple[list[float], list[int]]:
        """(persistence, surviving node count) at every level boundary."""
        total = len(self._nodes)
        xs, ys = [0.0], [total]
        for level, p in enumerate(self.persistences, start=1):
            xs.append(p)
            ys.append(total - 2 * level)
        return xs, ys

    def _check_level(self, level: int) -> None:
        if not 0 <= level <= self.num_levels:
            raise ValueError(
                f"level {level} out of range 0..{self.num_levels}"
            )
