"""Downstream analysis of MS complex 1-skeletons.

The paper's motivation (Fig. 1): once the complex is computed, "all
subsequent analysis queries this structure" — interactive threshold
studies, feature extraction, and graph statistics such as "length, cycle
count, and the minimum cut" of filament structures.

- :mod:`repro.analysis.features` — node/arc filters, persistence-level
  queries over the cancellation hierarchy,
- :mod:`repro.analysis.graphtools` — the 1-skeleton as a networkx graph
  with the statistics the paper's analysis pipeline reports,
- :mod:`repro.analysis.compare` — stability quantification (§V-A),
- :mod:`repro.analysis.hierarchy` — multi-resolution level queries,
- :mod:`repro.analysis.query` — re-simplification-free persistence
  queries against hierarchies persisted in ``.msc`` v2 files,
- :mod:`repro.analysis.segmentation` — ascending/descending manifold
  labeling (basin segmentation),
- :mod:`repro.analysis.raster` — label volumes and ASCII projections of
  the complex geometry.
"""

from repro.analysis.compare import (
    ComplexComparison,
    compare_complexes,
    feature_signature,
)
from repro.analysis.hierarchy import HierarchyLevelView, MSComplexHierarchy
from repro.analysis.query import QueryResult, load_hierarchy, query
from repro.analysis.raster import project_ascii, rasterize
from repro.analysis.segmentation import (
    basin_sizes,
    segment_maxima,
    segment_minima,
)
from repro.analysis.features import (
    arcs_by_family,
    filter_arcs_by_value,
    nodes_by_index,
    persistence_curve,
    significant_extrema,
)
from repro.analysis.graphtools import (
    arc_length,
    cycle_count,
    filament_statistics,
    minimum_cut,
    to_networkx,
)

__all__ = [
    "ComplexComparison",
    "HierarchyLevelView",
    "MSComplexHierarchy",
    "QueryResult",
    "arc_length",
    "arcs_by_family",
    "basin_sizes",
    "compare_complexes",
    "cycle_count",
    "segment_maxima",
    "segment_minima",
    "feature_signature",
    "filament_statistics",
    "filter_arcs_by_value",
    "load_hierarchy",
    "minimum_cut",
    "nodes_by_index",
    "persistence_curve",
    "project_ascii",
    "query",
    "rasterize",
    "significant_extrema",
    "to_networkx",
]
