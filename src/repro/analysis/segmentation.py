"""Gradient-flow segmentation: ascending and descending manifolds.

The MS complex is "a segmentation of a scalar field into regions of
uniform gradient flow behavior" (paper §I).  The 1-skeleton the pipeline
computes carries the graph structure; this module recovers the full-
dimensional segmentation from the discrete gradient field itself:

- the **ascending 3-manifold** of a minimum is the set of vertices whose
  V-path origin is that minimum (the minimum's *basin*),
- the **descending 3-manifold** of a maximum is the set of voxels whose
  ascending flow terminates at that maximum (the maximum's *mountain*).

These are the segmentations the paper's related work analyzes — Laney et
al. count bubbles from descending 2-manifolds of a Rayleigh-Taylor
density, Bremer et al. count burning regions — so providing them makes
the library usable for those workflows end to end.

Flow is traced at the (0,1) level for minima (vertex-edge vectors) and
the (2,3) level for maxima (quad-voxel vectors) by a breadth-first walk
over reversed V-paths from each extremum.  Vertex-level flow is a
forest, so minima basins are exact; voxel-level V-paths branch, and a
voxel reachable from several maxima is claimed deterministically by the
first one reached in the global (SoS-seeded) breadth-first order — the
standard practical rule.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.mesh.cubical import CubicalComplex
from repro.morse.vectorfield import CRITICAL, GradientField

__all__ = ["segment_minima", "segment_maxima", "basin_sizes"]


def segment_minima(field: GradientField) -> np.ndarray:
    """Label every vertex with the id of the minimum of its basin.

    Returns an int32 array of the block's vertex shape; values are
    indices into the SoS-ordered list of critical vertices (minima), so
    ``labels.max() + 1 == number of minima``.
    """
    cx = field.complex
    pairing = field.pairing
    offs = field.dir_offsets

    minima = field.critical_cells_by_dim()[0]
    label_of: dict[int, int] = {}
    order = deque()
    for idx, m in enumerate(minima.tolist()):
        label_of[m] = idx
        order.append(m)

    while order:
        u = order.popleft()
        # edges incident to vertex u whose vector starts at the *other*
        # vertex flow into u: that other vertex belongs to u's basin
        for e in cx.cofacets(u):
            code = pairing[e]
            if code >= CRITICAL:
                continue
            w = e + offs[code]
            if w == u or cx.cell_dim[w] != 0:
                continue  # e is paired with a quad or with u itself
            if w not in label_of:
                label_of[w] = label_of[u]
                order.append(w)

    labels = np.full(cx.vertex_shape, -1, dtype=np.int32)
    for v, lab in label_of.items():
        i, j, k = cx.refined_coords(v)
        labels[i // 2, j // 2, k // 2] = lab
    if (labels < 0).any():
        raise AssertionError("some vertices were not reached by any basin")
    return labels


def segment_maxima(field: GradientField) -> np.ndarray:
    """Label every voxel with the id of the maximum of its mountain.

    Returns an int32 array of shape ``vertex_shape - 1`` (one entry per
    hexahedral cell); values index the SoS-ordered critical voxels.
    Voxels whose ascending flow exits through the domain boundary belong
    to no maximum and are labeled ``-1`` (on a manifold with boundary,
    boundary-monotone regions have no interior maximum — the same reason
    a monotone ramp has a single critical vertex and nothing else).
    """
    cx = field.complex
    pairing = field.pairing
    offs = field.dir_offsets

    maxima = field.critical_cells_by_dim()[3]
    label_of: dict[int, int] = {}
    order = deque()
    for idx, m in enumerate(maxima.tolist()):
        label_of[m] = idx
        order.append(m)

    while order:
        b = order.popleft()
        # quads of voxel b that are tails of *other* voxels: descending
        # flow leaves b through them into the neighbor voxel
        for q in cx.facets(b):
            code = pairing[q]
            if code >= CRITICAL:
                continue
            b2 = q + offs[code]
            if b2 == b or cx.cell_dim[b2] != 3:
                continue
            if b2 not in label_of:
                label_of[b2] = label_of[b]
                order.append(b2)

    shape = tuple(n - 1 for n in cx.vertex_shape)
    labels = np.full(shape, -1, dtype=np.int32)
    for v, lab in label_of.items():
        i, j, k = cx.refined_coords(v)
        labels[i // 2, j // 2, k // 2] = lab
    return labels


def basin_sizes(labels: np.ndarray) -> np.ndarray:
    """Cell count of each basin/mountain, indexed by label.

    ``-1`` (boundary-outflow) cells are excluded from the counts.
    """
    flat = labels.ravel()
    return np.bincount(flat[flat >= 0])
