"""Graph statistics over the 1-skeleton (paper Fig. 1 analysis).

"As an embedded graph, the filaments can be analyzed using graph
algorithms, extracting statistics such as length, cycle count, and the
minimum cut."
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.mesh.addressing import address_to_coords
from repro.morse.msc import MorseSmaleComplex

__all__ = [
    "to_networkx",
    "arc_length",
    "cycle_count",
    "minimum_cut",
    "filament_statistics",
]


def arc_length(
    msc: MorseSmaleComplex,
    aid: int,
    spacing: tuple[float, float, float] = (1.0, 1.0, 1.0),
) -> float:
    """Geometric length of an arc's embedded V-path.

    Cell addresses along the path are decoded to refined coordinates
    (which live on a half-cell lattice), so physical lengths use half the
    vertex spacing per refined step.
    """
    addrs = msc.geometry_addresses(aid)
    if addrs.size < 2:
        return 0.0
    gi, gj, gk = address_to_coords(addrs, msc.global_refined_dims)
    pts = np.stack(
        [
            gi * 0.5 * spacing[0],
            gj * 0.5 * spacing[1],
            gk * 0.5 * spacing[2],
        ],
        axis=1,
    )
    return float(np.linalg.norm(np.diff(pts, axis=0), axis=1).sum())


def to_networkx(
    msc: MorseSmaleComplex,
    arcs: list[int] | None = None,
    spacing: tuple[float, float, float] = (1.0, 1.0, 1.0),
) -> nx.MultiGraph:
    """Build a multigraph of (a subset of) the 1-skeleton.

    Nodes are keyed by global address and carry ``index`` and ``value``;
    edges carry ``arc_id``, ``length`` and ``persistence``.  A multigraph
    preserves arc multiplicity (two V-paths between the same node pair
    are a genuine cycle in the complex).
    """
    g = nx.MultiGraph()
    arcs = msc.alive_arcs() if arcs is None else arcs
    for aid in arcs:
        for nid in (msc.arc_upper[aid], msc.arc_lower[aid]):
            addr = msc.node_address[nid]
            if not g.has_node(addr):
                g.add_node(
                    addr,
                    index=msc.node_index[nid],
                    value=msc.node_value[nid],
                )
        g.add_edge(
            msc.node_address[msc.arc_upper[aid]],
            msc.node_address[msc.arc_lower[aid]],
            arc_id=aid,
            length=arc_length(msc, aid, spacing),
            persistence=msc.persistence(aid),
        )
    return g


def cycle_count(g: nx.MultiGraph) -> int:
    """Number of independent cycles (cyclomatic number m - n + c)."""
    if g.number_of_nodes() == 0:
        return 0
    return (
        g.number_of_edges()
        - g.number_of_nodes()
        + nx.number_connected_components(g)
    )


def minimum_cut(g: nx.MultiGraph, source, target) -> int:
    """Minimum number of arcs separating two nodes of the skeleton."""
    if source not in g or target not in g:
        raise ValueError("source/target must be nodes of the graph")
    simple = nx.Graph()
    simple.add_nodes_from(g.nodes)
    for u, v, _k in g.edges(keys=True):
        if simple.has_edge(u, v):
            simple[u][v]["capacity"] += 1
        else:
            simple.add_edge(u, v, capacity=1)
    return int(nx.minimum_cut_value(simple, source, target))


def filament_statistics(g: nx.MultiGraph) -> dict[str, float]:
    """Summary statistics of a filament network (paper Fig. 1, right).

    Returns total length, arc count, node count, connected components,
    cycle count, and mean arc length.
    """
    lengths = [d["length"] for _u, _v, d in g.edges(data=True)]
    total = float(np.sum(lengths)) if lengths else 0.0
    return {
        "nodes": float(g.number_of_nodes()),
        "arcs": float(g.number_of_edges()),
        "components": float(nx.number_connected_components(g))
        if g.number_of_nodes()
        else 0.0,
        "cycles": float(cycle_count(g)),
        "total_length": total,
        "mean_arc_length": total / len(lengths) if lengths else 0.0,
    }
