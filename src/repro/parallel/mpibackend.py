"""Real-MPI execution of rank programs (mpi4py adapter).

The pipeline's rank programs are transport-agnostic: generators yielding
:class:`~repro.parallel.comm.Send` / ``Recv`` / ``Barrier`` requests.
:class:`VirtualMPI` services them in-process; this module services them
over **mpi4py** instead, so the identical program — domain decomposition,
boundary-consistent gradients, radix-k merging — runs on a real cluster:

    # driver.py
    from repro.parallel.mpibackend import MPIBackend
    backend = MPIBackend()           # raises if mpi4py is unavailable
    result = backend.run(my_rank_program, ctx)

    $ mpiexec -n 64 python driver.py

Each MPI process executes its own rank's generator; ``Send`` maps to
``comm.send`` (pickle transport, matching the virtual runtime's payload
semantics), ``Recv`` to ``comm.recv`` with the same source/tag
discipline, and ``Barrier`` to ``comm.Barrier``.  ``run`` returns the
local rank's return value (gather it yourself if the driver needs all
of them — collecting implicitly would surprise memory budgets at scale).

The execution environment of this reproduction has no MPI, so the test
suite exercises this adapter against a stub MPI implementation; on a
real cluster nothing else changes.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.parallel.comm import Barrier, Comm, Recv, Send

__all__ = ["MPIBackend", "drive_program"]


def drive_program(
    gen,
    send: Callable[[Any, int, int], None],
    recv: Callable[[int, int], Any],
    barrier: Callable[[], None],
) -> Any:
    """Drive one rank's generator against transport callables.

    The common core of every backend: advance the generator, dispatch
    each yielded request through the provided transport, feed received
    payloads back in, and return the generator's return value.
    """
    value = None
    while True:
        try:
            req = gen.send(value)
        except StopIteration as stop:
            return stop.value
        value = None
        if isinstance(req, Send):
            send(req.payload, req.dest, req.tag)
        elif isinstance(req, Recv):
            value = recv(req.src, req.tag)
        elif isinstance(req, Barrier):
            barrier()
        else:
            raise TypeError(f"program yielded unknown request {req!r}")


class MPIBackend:
    """Execute rank programs over mpi4py.

    Parameters
    ----------
    comm:
        An mpi4py-style communicator (``Get_rank``, ``Get_size``,
        ``send``, ``recv``, ``Barrier``).  Defaults to
        ``mpi4py.MPI.COMM_WORLD``; importing lazily keeps the rest of
        the package usable without MPI installed.
    """

    def __init__(self, comm: Any | None = None) -> None:
        if comm is None:
            try:
                from mpi4py import MPI  # pragma: no cover - needs MPI
            except ImportError as exc:  # pragma: no cover - trivial
                raise RuntimeError(
                    "mpi4py is not available; install it (and an MPI "
                    "runtime) or use repro.parallel.runtime.VirtualMPI"
                ) from exc
            comm = MPI.COMM_WORLD  # pragma: no cover - needs MPI
        self.mpi_comm = comm
        self.rank = int(comm.Get_rank())
        self.size = int(comm.Get_size())

    def run(self, main: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``main(comm, *args, **kwargs)`` for the local rank.

        Returns this rank's return value.  Tags pass through unchanged,
        so programs written for :class:`VirtualMPI` work verbatim.
        """
        program_comm = Comm(self.rank, self.size)
        gen = main(program_comm, *args, **kwargs)
        return drive_program(
            gen,
            send=lambda payload, dest, tag: self.mpi_comm.send(
                payload, dest=dest, tag=tag
            ),
            recv=lambda src, tag: self.mpi_comm.recv(
                source=src, tag=tag
            ),
            barrier=lambda: self.mpi_comm.Barrier(),
        )
