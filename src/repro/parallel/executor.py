"""Shared-memory execution backends for the compute stage.

The paper's compute stage is embarrassingly parallel per block: the
boundary-restricted gradient pairing (§IV-C) makes every block's result
independent of every other block's, so the ``read block → gradient →
trace → simplify`` chain can run on any number of OS processes without
changing a single output bit.  This module provides the pluggable
executor the pipeline uses to exploit that:

- :class:`SerialExecutor` runs the worker function in-process, in spec
  order — the reference schedule and the default.
- :class:`ProcessPoolBlockExecutor` fans the specs out over a
  :class:`concurrent.futures.ProcessPoolExecutor` worker pool and
  returns the payloads in spec order.
- :class:`FaultTolerantExecutor` wraps either backend with per-block
  timeouts, bounded retries with exponential backoff, worker-pool
  restarts after crashes, and graceful degradation to in-process serial
  execution when the pool is unhealthy.

All satisfy the :class:`BlockExecutor` protocol.  Because the worker
function is pure (no shared mutable state; picklable inputs and
outputs), the backends are bit-identical by construction: the only
thing an executor chooses is *where* (and how often) each block is
computed, never what is computed.  Tests assert this identity
end-to-end, including under injected faults (see
:mod:`repro.parallel.faults`).
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import (
    ProcessPoolExecutor,
    TimeoutError as FuturesTimeoutError,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from repro.obs.trace import NULL_TRACER, Tracer

logger = logging.getLogger(__name__)

__all__ = [
    "BlockExecutor",
    "SerialExecutor",
    "ProcessPoolBlockExecutor",
    "FaultTolerantExecutor",
    "RetryPolicy",
    "FaultToleranceError",
    "BlockTimeoutError",
    "CorruptPayloadError",
    "ComputeStageError",
    "make_executor",
    "available_workers",
]

#: Executor kinds accepted by :func:`make_executor` and
#: :class:`repro.core.config.PipelineConfig.executor`.
EXECUTOR_KINDS = ("auto", "serial", "process")


def available_workers() -> int:
    """Number of usable CPU cores on this machine (at least 1)."""
    return os.cpu_count() or 1


@runtime_checkable
class BlockExecutor(Protocol):
    """Protocol of a compute-stage execution backend.

    An executor maps a pure, picklable worker function over a sequence
    of block specs and returns the results *in spec order*.  It must be
    deterministic: for a pure function, the returned list may not depend
    on scheduling.
    """

    #: worker-pool width this executor models (1 for serial)
    workers: int

    def map_blocks(
        self, fn: Callable[[Any], Any], specs: Sequence[Any]
    ) -> list[Any]:
        """Apply ``fn`` to every spec; results in spec order."""
        ...

    def close(self) -> None:
        """Release any OS resources (idempotent)."""
        ...


class SerialExecutor:
    """Run the worker function in-process, one spec at a time.

    The reference schedule: no pickling, no processes, no concurrency.
    """

    workers = 1

    def map_blocks(
        self, fn: Callable[[Any], Any], specs: Sequence[Any]
    ) -> list[Any]:
        """Apply ``fn`` to every spec sequentially, in spec order."""
        return [fn(spec) for spec in specs]

    def close(self) -> None:
        """Nothing to release."""

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ProcessPoolBlockExecutor:
    """Fan block computations out over a pool of OS processes.

    Wraps :class:`concurrent.futures.ProcessPoolExecutor`; the pool is
    created lazily on first use so constructing a config never forks.
    ``Executor.map`` preserves input order, and the worker function is
    pure, so results are bit-identical to :class:`SerialExecutor`
    regardless of which process computed which block.
    """

    def __init__(self, workers: int | None = None) -> None:
        if workers is None:
            workers = available_workers()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self._pool: ProcessPoolExecutor | None = None

    def map_blocks(
        self, fn: Callable[[Any], Any], specs: Sequence[Any]
    ) -> list[Any]:
        """Apply ``fn`` to every spec across the pool; results in spec
        order."""
        specs = list(specs)
        if not specs:
            return []
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return list(self._pool.map(fn, specs))

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ProcessPoolBlockExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# fault tolerance
# ---------------------------------------------------------------------------


class FaultToleranceError(RuntimeError):
    """Base of every error the fault-tolerance layer classifies."""


class BlockTimeoutError(FaultToleranceError):
    """A block's computation exceeded the configured per-block timeout."""


class CorruptPayloadError(FaultToleranceError):
    """A block's payload failed validation (checksum / identity)."""


class ComputeStageError(FaultToleranceError):
    """A block could not be computed within the retry budget.

    Raised with a readable message (block id, attempt count, last
    error); callers such as the CLI present it without a traceback.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """How the fault-tolerance layer responds to block failures.

    Parameters
    ----------
    block_timeout:
        Per-block wall-clock budget in seconds, enforced on the process
        backend (``None`` waits forever).  The serial backend cannot
        interrupt an in-process call, so there a timeout only classifies
        workers that raise :class:`BlockTimeoutError` themselves (e.g.
        the fault harness's simulated hangs).
    max_retries:
        Additional attempts granted to a block after its first failure.
        ``0`` fails fast.
    backoff:
        Base of the exponential backoff slept between attempts of one
        block: attempt ``k`` (1-based retry) sleeps
        ``backoff * backoff_factor**(k-1)`` seconds.  ``0`` disables
        sleeping entirely, which keeps chaos tests wall-clock free.
    backoff_factor:
        Growth factor of the backoff sequence.
    degrade_on_failure:
        When the pool is unhealthy (a block exhausted its pooled
        retries, or the pool broke/clogged more than
        ``max_pool_restarts`` times), fall back to in-process serial
        execution for everything still pending instead of raising.
    max_pool_restarts:
        Worker-pool rebuilds tolerated before the pool is declared
        unhealthy.
    """

    block_timeout: float | None = None
    max_retries: int = 2
    backoff: float = 0.05
    backoff_factor: float = 2.0
    degrade_on_failure: bool = True
    max_pool_restarts: int = 2

    def __post_init__(self) -> None:
        if self.block_timeout is not None and self.block_timeout <= 0:
            raise ValueError("block_timeout must be positive or None")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be >= 0, backoff_factor >= 1")
        if self.max_pool_restarts < 0:
            raise ValueError("max_pool_restarts must be >= 0")

    def backoff_seconds(self, attempt: int) -> float:
        """Sleep before (1-based) retry ``attempt`` of one block."""
        if self.backoff <= 0:
            return 0.0
        return self.backoff * self.backoff_factor ** (attempt - 1)


def _invoke(fn, spec, attempt, plan, context):
    """Run one block attempt, routing through the fault plan if any.

    Module-level so the process backend can pickle it; ``plan`` is any
    object with a ``run(fn, spec, attempt, context)`` method (see
    :class:`repro.parallel.faults.FaultPlan`) or ``None``.
    """
    if plan is None:
        return fn(spec)
    return plan.run(fn, spec, attempt, context)


class FaultTolerantExecutor:
    """Retry/timeout/degradation wrapper around the raw backends.

    Dispatches blocks one future at a time (rather than ``pool.map``) so
    each block gets its own timeout, its own retry budget, and survives
    the crash of any worker process.  Failure responses, in order:

    1. a failed or timed-out block is re-dispatched up to
       ``policy.max_retries`` times, with exponential backoff;
    2. a broken pool (worker death) is rebuilt and every unfinished
       block re-dispatched, up to ``policy.max_pool_restarts`` times —
       a pool whose workers are all clogged by timed-out blocks counts
       as broken;
    3. past those budgets the executor *degrades*: all remaining blocks
       (with fresh retry budgets) run in-process on the serial path,
       and the degradation is recorded in ``stats``;
    4. if even serial execution exhausts a block's retries — or
       degradation is disabled — a readable :class:`ComputeStageError`
       is raised.

    Because the worker function is pure, a retried block returns the
    same bytes as a first-try block: fault handling never changes
    results, only scheduling.  All counters land in the
    :class:`repro.core.stats.FaultToleranceStats` passed as ``stats``.

    ``validator`` (optional) is called as ``validator(spec, payload)``
    after every successful attempt and raises
    :class:`CorruptPayloadError` to trigger a retry — the pipeline uses
    it for payload checksums.  ``sleep`` is injectable so tests can
    record backoff without waiting.

    The executor also owns the zero-copy transport's shared-memory
    segment, when one is used: :meth:`publish_volume` copies the volume
    into a fresh segment exactly once and returns the picklable handle
    the block specs carry; the segment outlives worker-pool restarts and
    degradation to serial (both read paths resolve through the same
    handle), and :meth:`close` always unlinks it, so no run can leak a
    segment.  ``transport`` (optional,
    :class:`repro.core.stats.TransportStats`) accumulates per-dispatch
    byte counts — retries included — from the specs'
    ``transport_nbytes``.

    Observability: retries, pool restarts, and degradations log at
    WARNING on the ``repro.parallel.executor`` logger, and — when a
    ``tracer`` (:class:`repro.obs.trace.Tracer`) is passed — are marked
    as instant events on the run timeline, alongside the shared-memory
    segment's publish/unlink lifecycle.
    """

    def __init__(
        self,
        kind: str = "serial",
        workers: int = 1,
        policy: RetryPolicy | None = None,
        plan: Any = None,
        validator: Callable[[Any, Any], None] | None = None,
        stats: Any = None,
        sleep: Callable[[float], None] = time.sleep,
        transport: Any = None,
        tracer: Tracer | None = None,
    ) -> None:
        if kind not in ("serial", "process"):
            raise ValueError(
                f"kind must be 'serial' or 'process', got {kind!r}"
            )
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.kind = kind
        self.workers = int(workers) if kind == "process" else 1
        self.policy = policy or RetryPolicy()
        self.plan = plan
        self.validator = validator
        if stats is None:
            from repro.core.stats import FaultToleranceStats

            stats = FaultToleranceStats()
        self.stats = stats
        self.transport = transport
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._sleep = sleep
        self._pool: ProcessPoolExecutor | None = None
        self._degraded = False
        self._suspect_workers = 0  # pooled slots clogged by hung blocks
        from repro.parallel.transport import SharedVolumeSlot

        self._volume_slot = SharedVolumeSlot()
        self._published_this_run = False

    # -- public protocol -------------------------------------------------

    def begin_run(
        self,
        stats: Any = None,
        transport: Any = None,
        tracer: Tracer | None = None,
    ) -> None:
        """Rebind the per-run sinks so a persistent session can reuse
        this executor for its next step.

        Swaps in the new run's :class:`FaultToleranceStats` /
        :class:`TransportStats` / tracer and re-arms
        :meth:`publish_volume` (each run still publishes at most once).
        The worker pool, the shared-memory slot, and the degradation
        state are deliberately *not* reset: a pool that already degraded
        to serial stays serial, and pool-restart budgets are per run
        because the swapped-in stats start at zero.
        """
        if stats is not None:
            self.stats = stats
        self.transport = transport
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._published_this_run = False

    def map_blocks(
        self,
        fn: Callable[[Any], Any],
        specs: Sequence[Any],
        on_result: Callable[[Any, Any], None] | None = None,
    ) -> list[Any]:
        """Apply ``fn`` to every spec with fault tolerance; spec order.

        ``on_result(spec, payload)``, when given, fires once per block
        the moment its payload has validated — *before* the rest of the
        wave completes.  The driver uses it to strip heavy payload
        bytes into the blob spool as they land, so a whole round's
        results are never resident simultaneously.  It only ever fires
        for validated successes (retried or re-dispatched attempts
        fire it once, on the attempt that finally lands).
        """
        specs = list(specs)
        results: list[Any] = [None] * len(specs)
        pending = [(i, 0) for i in range(len(specs))]
        while pending:
            if self.kind == "process" and not self._degraded:
                pending = self._pool_round(fn, specs, results, pending,
                                           on_result)
            else:
                pending = self._serial_round(fn, specs, results, pending,
                                             on_result)
        return results

    def publish_volume(self, values: Any) -> Any:
        """Publish a vertex volume for the zero-copy transport.

        Copies ``values`` into this executor's shared-memory slot and
        returns the :class:`~repro.parallel.transport.SharedVolumeHandle`
        to embed in block specs.  The slot lives until :meth:`close`;
        across session runs (see :meth:`begin_run`) it is *rebound* in
        place when the new volume fits the existing segment's capacity,
        so steady-state streaming steps create no segments at all.  At
        most one publish per run.
        """
        if self._published_this_run:
            raise RuntimeError("executor already published a volume")
        handle, reused = self._volume_slot.publish(values)
        self._published_this_run = True
        if self.transport is not None:
            self.transport.shared_volume_bytes += handle.nbytes
            if reused:
                self.transport.shm_rebinds += 1
            else:
                self.transport.shm_republishes += 1
        self.tracer.event(
            "shm.publish", cat="transport",
            segment=handle.name, bytes=handle.nbytes, rebound=reused,
        )
        return handle

    def close(self) -> None:
        """Shut the worker pool down and unlink the published segment.

        Idempotent; does not wait for workers clogged by timed-out
        blocks.  The shared-memory slot (if any) is unlinked here and
        only here, after every dispatch path — pooled, restarted pool,
        or degraded serial — is done with it.
        """
        if self._pool is not None:
            self._pool.shutdown(
                wait=self._suspect_workers == 0, cancel_futures=True
            )
            self._pool = None
        if self._volume_slot.active:
            self.tracer.event(
                "shm.unlink", cat="transport",
                segment=self._volume_slot.handle.name,
            )
            self._volume_slot.unlink()

    def __enter__(self) -> "FaultTolerantExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- failure bookkeeping ----------------------------------------------

    @staticmethod
    def _block_id(spec: Any) -> Any:
        return getattr(spec, "block_id", spec)

    def _classify(self, exc: BaseException) -> None:
        if isinstance(exc, BlockTimeoutError):
            self.stats.timeouts += 1
        elif isinstance(exc, CorruptPayloadError):
            self.stats.corrupt_payloads += 1
        else:
            self.stats.crashes += 1

    def _degrade(self, reason: str, cause: BaseException | None) -> None:
        """Switch to serial execution, or raise if degradation is off."""
        if not self.policy.degrade_on_failure:
            raise ComputeStageError(reason) from cause
        if not self._degraded:
            self._degraded = True
            self.stats.degraded = True
            self.stats.degradation_events.append(reason)
            logger.warning("%s", reason)
            self.tracer.event(
                "executor.degrade", cat="executor", reason=reason
            )

    def _next_attempt(
        self, spec: Any, attempt: int, exc: BaseException, where: str
    ) -> int:
        """Record one failed attempt; return the follow-up attempt number.

        Returns ``0`` when the block's budget on the current backend is
        exhausted and the executor degraded (fresh serial budget);
        raises :class:`ComputeStageError` when there is nowhere left to
        go.
        """
        self._classify(exc)
        nxt = attempt + 1
        if nxt > self.policy.max_retries:
            reason = (
                f"block {self._block_id(spec)} failed {nxt} attempt(s) "
                f"on the {where} backend; last error: "
                f"{type(exc).__name__}: {exc}"
            )
            if where == "serial":
                raise ComputeStageError(reason) from exc
            self._degrade(f"degraded to serial executor: {reason}", exc)
            return 0
        self.stats.retries += 1
        logger.warning(
            "block %s: attempt %d failed on the %s backend "
            "(%s: %s); retrying",
            self._block_id(spec), attempt + 1, where,
            type(exc).__name__, exc,
        )
        self.tracer.event(
            "executor.retry", cat="executor",
            block=self._block_id(spec), attempt=nxt,
            backend=where, error=type(exc).__name__,
        )
        pause = self.policy.backoff_seconds(nxt)
        if pause > 0:
            self.stats.backoff_seconds += pause
            self._sleep(pause)
        return nxt

    def _validate(self, spec: Any, payload: Any) -> None:
        if self.validator is not None:
            self.validator(spec, payload)

    def _charge_dispatch(self, spec: Any, shipped: bool) -> None:
        """Account one compute dispatch of ``spec``.

        ``shipped`` is True when the spec actually crossed a process
        boundary (pooled dispatch); in-process attempts count as
        dispatches but ship nothing.
        """
        if self.transport is None:
            return
        self.transport.dispatches += 1
        if shipped:
            self.transport.dispatch_bytes += getattr(
                spec, "transport_nbytes", 0
            )

    # -- serial path -------------------------------------------------------

    def _serial_round(self, fn, specs, results, pending,
                      on_result=None) -> list:
        """Run every pending block in-process, retrying inline."""
        for idx, attempt in pending:
            spec = specs[idx]
            while True:
                try:
                    self._charge_dispatch(spec, shipped=False)
                    payload = _invoke(fn, spec, attempt, self.plan, "serial")
                    self._validate(spec, payload)
                    if on_result is not None:
                        on_result(spec, payload)
                    results[idx] = payload
                    break
                except Exception as exc:
                    attempt = self._next_attempt(spec, attempt, exc, "serial")
        return []

    # -- pooled path -------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if (
            self._pool is not None
            and self._suspect_workers >= self.workers
        ):
            self._restart_pool(
                "all worker slots clogged by timed-out blocks", None
            )
        if self._degraded:
            return None
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _restart_pool(self, why: str, cause: BaseException | None) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._suspect_workers = 0
        self.stats.pool_restarts += 1
        logger.warning(
            "worker pool restarted (%d/%d allowed): %s",
            self.stats.pool_restarts, self.policy.max_pool_restarts, why,
        )
        self.tracer.event(
            "executor.pool_restart", cat="executor",
            count=self.stats.pool_restarts, reason=why,
        )
        if self.stats.pool_restarts > self.policy.max_pool_restarts:
            self._degrade(
                f"degraded to serial executor: worker pool restarted "
                f"{self.stats.pool_restarts} times (limit "
                f"{self.policy.max_pool_restarts}); last reason: {why}",
                cause,
            )

    def _pool_round(self, fn, specs, results, pending,
                    on_result=None) -> list:
        """Dispatch one wave of pending blocks to the pool."""
        pool = self._ensure_pool()
        if pool is None:  # degraded while recycling a clogged pool
            return pending
        for idx, _attempt in pending:
            self._charge_dispatch(specs[idx], shipped=True)
        futures = [
            (idx, attempt,
             pool.submit(_invoke, fn, specs[idx], attempt, self.plan, "pool"))
            for idx, attempt in pending
        ]
        next_round: list[tuple[int, int]] = []
        for pos, (idx, attempt, fut) in enumerate(futures):
            spec = specs[idx]
            try:
                payload = fut.result(timeout=self.policy.block_timeout)
                self._validate(spec, payload)
                if on_result is not None:
                    on_result(spec, payload)
                results[idx] = payload
            except FuturesTimeoutError:
                fut.cancel()
                self._suspect_workers += 1
                exc = BlockTimeoutError(
                    f"block {self._block_id(spec)} exceeded the "
                    f"{self.policy.block_timeout}s per-block timeout"
                )
                next_round.append(
                    (idx, self._next_attempt(spec, attempt, exc, "pool"))
                )
            except BrokenProcessPool as exc:
                # a worker died; this and every later future of the wave
                # is lost — rebuild the pool and re-dispatch them all,
                # without charging the (likely innocent) blocks' budgets
                self._restart_pool(f"worker process died: {exc}", exc)
                next_round.extend(
                    (j, a) for j, a, _ in futures[pos:]
                )
                break
            except BlockTimeoutError as exc:
                # a simulated hang raised inside the worker: same
                # classification as a real timeout, minus the clogged slot
                next_round.append(
                    (idx, self._next_attempt(spec, attempt, exc, "pool"))
                )
            except Exception as exc:
                next_round.append(
                    (idx, self._next_attempt(spec, attempt, exc, "pool"))
                )
        return next_round


def make_executor(kind: str = "auto", workers: int = 1) -> BlockExecutor:
    """Resolve an executor name to a backend instance.

    ``"serial"`` always runs in-process; ``"process"`` always builds a
    worker pool (even with ``workers=1``, useful for testing the pool
    path); ``"auto"`` picks the pool exactly when ``workers > 1``.
    """
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"executor must be one of {EXECUTOR_KINDS}, got {kind!r}"
        )
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if kind == "serial" or (kind == "auto" and workers == 1):
        return SerialExecutor()
    return ProcessPoolBlockExecutor(workers)
