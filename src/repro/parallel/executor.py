"""Shared-memory execution backends for the compute stage.

The paper's compute stage is embarrassingly parallel per block: the
boundary-restricted gradient pairing (§IV-C) makes every block's result
independent of every other block's, so the ``read block → gradient →
trace → simplify`` chain can run on any number of OS processes without
changing a single output bit.  This module provides the pluggable
executor the pipeline uses to exploit that:

- :class:`SerialExecutor` runs the worker function in-process, in spec
  order — the reference schedule and the default.
- :class:`ProcessPoolBlockExecutor` fans the specs out over a
  :class:`concurrent.futures.ProcessPoolExecutor` worker pool and
  returns the payloads in spec order.

Both satisfy the :class:`BlockExecutor` protocol.  Because the worker
function is pure (no shared mutable state; picklable inputs and
outputs), the two backends are bit-identical by construction: the only
thing an executor chooses is *where* each block is computed, never what
is computed.  Tests assert this identity end-to-end.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

__all__ = [
    "BlockExecutor",
    "SerialExecutor",
    "ProcessPoolBlockExecutor",
    "make_executor",
    "available_workers",
]

#: Executor kinds accepted by :func:`make_executor` and
#: :class:`repro.core.config.PipelineConfig.executor`.
EXECUTOR_KINDS = ("auto", "serial", "process")


def available_workers() -> int:
    """Number of usable CPU cores on this machine (at least 1)."""
    return os.cpu_count() or 1


@runtime_checkable
class BlockExecutor(Protocol):
    """Protocol of a compute-stage execution backend.

    An executor maps a pure, picklable worker function over a sequence
    of block specs and returns the results *in spec order*.  It must be
    deterministic: for a pure function, the returned list may not depend
    on scheduling.
    """

    #: worker-pool width this executor models (1 for serial)
    workers: int

    def map_blocks(
        self, fn: Callable[[Any], Any], specs: Sequence[Any]
    ) -> list[Any]:
        """Apply ``fn`` to every spec; results in spec order."""
        ...

    def close(self) -> None:
        """Release any OS resources (idempotent)."""
        ...


class SerialExecutor:
    """Run the worker function in-process, one spec at a time.

    The reference schedule: no pickling, no processes, no concurrency.
    """

    workers = 1

    def map_blocks(
        self, fn: Callable[[Any], Any], specs: Sequence[Any]
    ) -> list[Any]:
        """Apply ``fn`` to every spec sequentially, in spec order."""
        return [fn(spec) for spec in specs]

    def close(self) -> None:
        """Nothing to release."""

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ProcessPoolBlockExecutor:
    """Fan block computations out over a pool of OS processes.

    Wraps :class:`concurrent.futures.ProcessPoolExecutor`; the pool is
    created lazily on first use so constructing a config never forks.
    ``Executor.map`` preserves input order, and the worker function is
    pure, so results are bit-identical to :class:`SerialExecutor`
    regardless of which process computed which block.
    """

    def __init__(self, workers: int | None = None) -> None:
        if workers is None:
            workers = available_workers()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self._pool: ProcessPoolExecutor | None = None

    def map_blocks(
        self, fn: Callable[[Any], Any], specs: Sequence[Any]
    ) -> list[Any]:
        """Apply ``fn`` to every spec across the pool; results in spec
        order."""
        specs = list(specs)
        if not specs:
            return []
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return list(self._pool.map(fn, specs))

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ProcessPoolBlockExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def make_executor(kind: str = "auto", workers: int = 1) -> BlockExecutor:
    """Resolve an executor name to a backend instance.

    ``"serial"`` always runs in-process; ``"process"`` always builds a
    worker pool (even with ``workers=1``, useful for testing the pool
    path); ``"auto"`` picks the pool exactly when ``workers > 1``.
    """
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"executor must be one of {EXECUTOR_KINDS}, got {kind!r}"
        )
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if kind == "serial" or (kind == "auto" and workers == 1):
        return SerialExecutor()
    return ProcessPoolBlockExecutor(workers)
