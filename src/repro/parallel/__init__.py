"""Virtual distributed-memory substrate.

The paper's implementation is MPI on an IBM Blue Gene/P.  The execution
environment of this reproduction has no MPI, so this subpackage provides
a deterministic virtual equivalent:

- :mod:`repro.parallel.decomposition` — bisection domain decomposition
  and block-cyclic process assignment (§IV-A),
- :mod:`repro.parallel.radixk` — configurable merge-round schedules
  (rounds × radix, §IV-F2), modeled on the Radix-k compositing algorithm,
- :mod:`repro.parallel.comm` — message-passing primitives and collectives
  expressed as coroutine requests,
- :mod:`repro.parallel.runtime` — the :class:`VirtualMPI` scheduler that
  executes SPMD rank programs (generators) with deterministic delivery,
  deadlock detection, and a byte-accurate message log for the machine
  model,
- :mod:`repro.parallel.executor` — real shared-memory backends
  (:class:`SerialExecutor`, :class:`ProcessPoolBlockExecutor`) that the
  compute stage fans its per-block work out over,
- :mod:`repro.parallel.mpibackend` — the mpi4py adapter that runs the
  *same* rank programs on a real MPI cluster.

The rank programs exercise exactly the communication structure a real
MPI run would (point-to-point merge-group sends, barriers, gathers); only
the transport is simulated — or real, with the MPI backend.
"""

from repro.parallel.decomposition import BlockDecomposition, decompose
from repro.parallel.executor import (
    BlockExecutor,
    BlockTimeoutError,
    ComputeStageError,
    CorruptPayloadError,
    FaultTolerantExecutor,
    FaultToleranceError,
    ProcessPoolBlockExecutor,
    RetryPolicy,
    SerialExecutor,
    make_executor,
)
from repro.parallel.faults import FaultPlan
from repro.parallel.radixk import MergeSchedule, MergeRound, full_merge_radices
from repro.parallel.runtime import VirtualMPI, pool_makespan
from repro.parallel.comm import Comm

__all__ = [
    "BlockDecomposition",
    "BlockExecutor",
    "BlockTimeoutError",
    "Comm",
    "ComputeStageError",
    "CorruptPayloadError",
    "FaultPlan",
    "FaultTolerantExecutor",
    "FaultToleranceError",
    "MergeRound",
    "MergeSchedule",
    "ProcessPoolBlockExecutor",
    "RetryPolicy",
    "SerialExecutor",
    "VirtualMPI",
    "decompose",
    "full_merge_radices",
    "make_executor",
    "pool_makespan",
]
