"""Deterministic, seedable fault injection for chaos testing.

The fault-tolerance layer (per-block retries, timeouts, pool restarts,
degradation — see :class:`repro.parallel.executor.FaultTolerantExecutor`
and :func:`repro.core.merge.merge_with_retries`) exists for failure
modes that are, by nature, rare and racy.  This module makes those
paths exercisable by ordinary pytest runs: a :class:`FaultPlan`
describes *exactly* which (block, attempt) pairs fail and how, so every
chaos scenario is reproducible bit-for-bit, with no wall-clock or
scheduling luck involved.

Fault kinds:

``crash``
    Raise :class:`InjectedCrash` inside the worker — models a worker
    hitting an unhandled exception (OOM, cosmic-ray assertion).
``hang``
    By default *simulated*: raise :class:`InjectedHang`, a subclass of
    :class:`~repro.parallel.executor.BlockTimeoutError`, which the
    executor classifies exactly like a real per-block timeout — minus
    the waiting.  With ``simulate=False`` the worker really sleeps
    ``hang_seconds``, for end-to-end tests of the timeout machinery.
``exit``
    Kill the worker process with ``os._exit`` — models a segfault /
    OOM-killer death and exercises the broken-pool restart path.  Only
    honored in the ``"pool"`` context (in-process it would kill the
    driver).
``corrupt``
    Let the block compute normally, then flip bytes of the payload's
    serialized complex — models transport/storage corruption; caught by
    the pipeline's payload checksum validation.

A plan is picklable (plain frozen dataclasses and ints), so it rides
into pool workers unchanged.  Faults are keyed by attempt number —
``attempts=(0,)`` (the default) makes a fault *transient*: the first
try fails, the retry succeeds, and the run must end bit-identical to a
fault-free run.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterable

from repro.parallel.executor import BlockTimeoutError

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "MergeFaultAdapter",
    "MergeFaultSpec",
    "InjectedFault",
    "InjectedCrash",
    "InjectedHang",
]

_KINDS = ("crash", "hang", "exit", "corrupt")
_CONTEXTS = ("pool", "serial")


class InjectedFault(RuntimeError):
    """Base of all injected failures (so tests can tell them apart)."""


class InjectedCrash(InjectedFault):
    """A deterministic, injected worker crash."""


class InjectedHang(BlockTimeoutError, InjectedFault):
    """A simulated hang: classified by the executor as a timeout."""


@dataclass(frozen=True)
class FaultSpec:
    """One compute-stage fault: what goes wrong, where, and when.

    ``attempts`` lists the attempt numbers (0-based) on which the fault
    fires; ``contexts`` restricts it to the pooled and/or serial
    execution path (an ``exit`` fault is forced pool-only regardless).
    """

    kind: str
    block_id: int
    attempts: tuple[int, ...] = (0,)
    contexts: tuple[str, ...] = _CONTEXTS
    hang_seconds: float = 0.0
    simulate: bool = True

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        for c in self.contexts:
            if c not in _CONTEXTS:
                raise ValueError(f"unknown context {c!r}")
        if self.kind == "exit":
            object.__setattr__(self, "contexts", ("pool",))

    def matches(self, block_id: Any, attempt: int, context: str) -> bool:
        return (
            self.block_id == block_id
            and attempt in self.attempts
            and context in self.contexts
        )


@dataclass(frozen=True)
class MergeFaultSpec:
    """One merge-round fault at a group root.

    ``kind`` is ``"crash"`` (raise before the merge computation),
    ``"corrupt"`` (truncate one incoming member blob, so unpacking
    fails and the root retries from its pristine snapshot), or
    ``"exit"`` (kill the worker process — only honored when the merge
    runs on a pooled merge executor; the serial in-rank path ignores
    it, since it would kill the driver).
    """

    kind: str
    round_idx: int
    root_block: int
    attempts: tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "corrupt", "exit"):
            raise ValueError(
                f"merge fault kind must be 'crash', 'corrupt' or "
                f"'exit', got {self.kind!r}"
            )

    def matches(self, round_idx: int, root_block: int, attempt: int) -> bool:
        return (
            self.round_idx == round_idx
            and self.root_block == root_block
            and attempt in self.attempts
        )


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic fault schedule for one pipeline run.

    Implements the injection protocol the executor dispatches through
    (:meth:`run`) plus the merge-round hook factory
    (:meth:`merge_hook`).  Compose plans with ``+``; build common
    single-fault plans with the ``crash_on`` / ``hang_on`` /
    ``corrupt_on`` / ``exit_on`` constructors.
    """

    faults: tuple[FaultSpec, ...] = ()
    merge_faults: tuple[MergeFaultSpec, ...] = ()
    seed: int = 0

    # -- constructors -----------------------------------------------------

    @classmethod
    def crash_on(
        cls,
        block_ids: Iterable[int],
        attempts: tuple[int, ...] = (0,),
        contexts: tuple[str, ...] = _CONTEXTS,
    ) -> "FaultPlan":
        return cls(faults=tuple(
            FaultSpec("crash", b, attempts, contexts) for b in block_ids
        ))

    @classmethod
    def hang_on(
        cls,
        block_ids: Iterable[int],
        attempts: tuple[int, ...] = (0,),
        *,
        simulate: bool = True,
        hang_seconds: float = 0.0,
        contexts: tuple[str, ...] = _CONTEXTS,
    ) -> "FaultPlan":
        return cls(faults=tuple(
            FaultSpec("hang", b, attempts, contexts,
                      hang_seconds=hang_seconds, simulate=simulate)
            for b in block_ids
        ))

    @classmethod
    def corrupt_on(
        cls,
        block_ids: Iterable[int],
        attempts: tuple[int, ...] = (0,),
        seed: int = 0,
        contexts: tuple[str, ...] = _CONTEXTS,
    ) -> "FaultPlan":
        return cls(
            faults=tuple(
                FaultSpec("corrupt", b, attempts, contexts)
                for b in block_ids
            ),
            seed=seed,
        )

    @classmethod
    def exit_on(
        cls, block_ids: Iterable[int], attempts: tuple[int, ...] = (0,)
    ) -> "FaultPlan":
        return cls(faults=tuple(
            FaultSpec("exit", b, attempts) for b in block_ids
        ))

    @classmethod
    def merge_crash_on(
        cls,
        events: Iterable[tuple[int, int]],
        attempts: tuple[int, ...] = (0,),
    ) -> "FaultPlan":
        """Crash the merge at each ``(round_idx, root_block)`` event."""
        return cls(merge_faults=tuple(
            MergeFaultSpec("crash", r, b, attempts) for r, b in events
        ))

    @classmethod
    def merge_corrupt_on(
        cls,
        events: Iterable[tuple[int, int]],
        attempts: tuple[int, ...] = (0,),
    ) -> "FaultPlan":
        """Corrupt an incoming blob at each ``(round, root)`` event."""
        return cls(merge_faults=tuple(
            MergeFaultSpec("corrupt", r, b, attempts) for r, b in events
        ))

    @classmethod
    def merge_exit_on(
        cls,
        events: Iterable[tuple[int, int]],
        attempts: tuple[int, ...] = (0,),
    ) -> "FaultPlan":
        """Kill the pooled merge worker at each ``(round, root)`` event."""
        return cls(merge_faults=tuple(
            MergeFaultSpec("exit", r, b, attempts) for r, b in events
        ))

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return replace(
            self,
            faults=self.faults + other.faults,
            merge_faults=self.merge_faults + other.merge_faults,
            seed=self.seed or other.seed,
        )

    # -- compute-stage injection (the executor's plan protocol) ----------

    def run(
        self, fn: Callable[[Any], Any], spec: Any, attempt: int, context: str
    ) -> Any:
        """Run one block attempt, injecting any scheduled faults."""
        block_id = getattr(spec, "block_id", None)
        matching = [
            f for f in self.faults if f.matches(block_id, attempt, context)
        ]
        for f in matching:
            if f.kind == "crash":
                raise InjectedCrash(
                    f"injected crash: block {block_id} attempt {attempt}"
                )
            if f.kind == "hang":
                if f.simulate:
                    raise InjectedHang(
                        f"injected hang: block {block_id} attempt {attempt}"
                    )
                time.sleep(f.hang_seconds)
            if f.kind == "exit" and context == "pool":
                os._exit(1)
        payload = fn(spec)
        for f in matching:
            if f.kind == "corrupt":
                payload = self._corrupt_payload(payload, block_id, attempt)
        return payload

    def _corrupt_payload(self, payload: Any, block_id: Any, attempt: int) -> Any:
        """Flip a few interior bytes of ``payload.blob``, deterministically.

        Interior flips (rather than truncation) model silent bit-rot:
        the blob may still *parse*, so only checksum validation can
        catch it — which is exactly what the pipeline's validator does.
        """
        blob = bytearray(payload.blob)
        if not blob:
            return payload
        rng = random.Random(f"{self.seed}:{block_id}:{attempt}")
        for _ in range(3):
            pos = rng.randrange(len(blob))
            blob[pos] ^= 0xFF
        payload.blob = bytes(blob)
        return payload

    # -- merge-round injection -------------------------------------------

    def merge_hook(
        self, round_idx: int, root_block: int
    ) -> Callable[[int, list[bytes]], list[bytes]] | None:
        """Injection hook for one merge event, or ``None`` if unaffected.

        The returned callable takes ``(attempt, incoming_blobs)`` and
        either raises :class:`InjectedCrash` or returns the (possibly
        corrupted) blob list; it is called by
        :func:`repro.core.merge.merge_with_retries` before each attempt.
        """
        matching = [
            f for f in self.merge_faults
            if f.round_idx == round_idx and f.root_block == root_block
        ]
        if not matching:
            return None

        def hook(attempt: int, blobs: list[bytes]) -> list[bytes]:
            for f in matching:
                if not f.matches(round_idx, root_block, attempt):
                    continue
                # "exit" is pool-only; the in-rank path ignores it
                if f.kind == "crash":
                    raise InjectedCrash(
                        f"injected merge crash: round {round_idx} "
                        f"root {root_block} attempt {attempt}"
                    )
                if f.kind == "corrupt" and blobs:
                    rng = random.Random(
                        f"{self.seed}:{round_idx}:{root_block}:{attempt}"
                    )
                    i = rng.randrange(len(blobs))
                    blobs = list(blobs)
                    # truncation guarantees the unpack fails loudly
                    blobs[i] = blobs[i][: max(1, len(blobs[i]) // 2)]
            return blobs

        return hook


@dataclass(frozen=True)
class MergeFaultAdapter:
    """Adapts a plan's *merge* faults to the executor's plan protocol.

    The pooled merge stage dispatches
    :class:`repro.core.merge.MergeSpec` work orders through the same
    :class:`~repro.parallel.executor.FaultTolerantExecutor` as the
    compute stage; this wrapper routes only the plan's
    :class:`MergeFaultSpec` entries to those dispatches (matched by the
    spec's ``(round_idx, root_block)``, never by the compute-stage
    ``block_id`` faults).  Crash and corrupt faults land the same way
    the serial merge hook injects them — a raised
    :class:`InjectedCrash`, or one truncated member blob using the same
    deterministic rng stream — so a scenario behaves identically on
    either merge backend; ``exit`` kills the pool worker to exercise
    the broken-pool restart and degrade-to-serial paths.
    """

    plan: FaultPlan

    def run(
        self, fn: Callable[[Any], Any], spec: Any, attempt: int, context: str
    ) -> Any:
        matching = [
            f for f in self.plan.merge_faults
            if f.matches(spec.round_idx, spec.root_block, attempt)
        ]
        for f in matching:
            if f.kind == "crash":
                raise InjectedCrash(
                    f"injected merge crash: round {spec.round_idx} "
                    f"root {spec.root_block} attempt {attempt}"
                )
            if f.kind == "exit" and context == "pool":
                os._exit(1)
        if any(f.kind == "corrupt" for f in matching) and spec.member_blobs:
            from repro.io.spool import blob_bytes

            rng = random.Random(
                f"{self.plan.seed}:{spec.round_idx}:"
                f"{spec.root_block}:{attempt}"
            )
            blobs = list(spec.member_blobs)
            i = rng.randrange(len(blobs))
            # a spilled handle is materialized before truncation so the
            # corruption hits the unpacked bytes, not the tiny ref
            whole = blob_bytes(blobs[i])
            blobs[i] = whole[: max(1, len(whole) // 2)]
            spec = replace(spec, member_blobs=tuple(blobs))
        return fn(spec)
