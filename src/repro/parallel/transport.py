"""Block transports: zero-copy POSIX shared memory and on-disk mmap.

With the ``pickle`` transport every :class:`~repro.core.pipeline.BlockSpec`
carries its block's ghost-padded vertex subarray by value, so every
dispatch — and every fault-tolerance retry — re-serializes the samples
through the pool's pipe: O(blocks × block_bytes) shipped per compute
stage.  The ``shm`` transport publishes the volume *once* into a
:mod:`multiprocessing.shared_memory` segment; specs then carry only a
:class:`SharedVolumeHandle` (segment name + shape + dtype, a few dozen
bytes) and each worker attaches to the segment and slices its own block
view.  Retries re-read from the segment instead of re-pickling, and the
per-dispatch cost drops to O(blocks × spec_header).

The ``mmap`` transport is the out-of-core path for volume-*file* inputs
(:class:`~repro.io.volume.VolumeSpec`): specs carry only the file spec
plus the block box, and each worker memory-maps the file and gathers its
own subarray (see :func:`repro.io.volume.read_block`).  The driver never
materializes the volume at all, so peak driver memory is independent of
volume size — the reproduction of the paper's MPI-IO subarray reads
(§IV-B) at "volumes much larger than RAM" scale.

Segment lifecycle is owned by the driver-side
:class:`~repro.parallel.executor.FaultTolerantExecutor`: it publishes
through a reusable :class:`SharedVolumeSlot`, hands the handle to the
specs, and unlinks the slot when it closes — including after pool
restarts (the segment outlives any worker pool) and after degradation to
serial execution (in the driver process
:func:`SharedVolumeHandle.open` resolves to the creator's own mapping,
no attach needed).  A persistent :class:`~repro.core.session.PipelineSession`
keeps its executor — and therefore the slot — alive across runs: each
step *rebinds* the existing segment in place when the new volume fits
its capacity, and republishes a larger segment only when it grows.

Worker-side attachments are cached per process, so a worker computing
many blocks of one volume attaches once.  On Python < 3.13 the stdlib
registers *attachments* with the resource tracker too (bpo-39959),
which would spuriously unlink the creator's segment at interpreter
shutdown; :func:`_attach` unregisters non-creator attachments to keep
exactly one owner — the creator — responsible for the unlink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.obs.trace import get_tracer

__all__ = [
    "TRANSPORT_KINDS",
    "SharedVolume",
    "SharedVolumeHandle",
    "SharedVolumeSlot",
    "attached_segment_names",
]

#: Transport kinds accepted by config / API / CLI.  For in-memory
#: inputs ``"auto"`` resolves to ``"shm"`` exactly when the compute
#: stage runs on a process pool; for volume-file inputs it resolves to
#: ``"mmap"`` (workers subarray-read straight from disk).
TRANSPORT_KINDS = ("auto", "pickle", "shm", "mmap")

#: Estimated pickled size of one BlockSpec header (everything except the
#: vertex samples); used for transport byte accounting only.
SPEC_HEADER_BYTES = 256


@dataclass
class _Attachment:
    """One process's view of an open segment.

    ``flat`` is a uint8 view of the whole mapping; typed views are built
    per ``(shape, dtype)`` on demand and cached, so a slot rebound to a
    new step with the same geometry reuses the worker's existing view
    (the bytes underneath were updated in place).
    """

    seg: shared_memory.SharedMemory | None
    flat: np.ndarray
    views: dict = field(default_factory=dict)


#: per-process cache of open segments, keyed by segment name (the
#: creator registers its own mapping with ``seg=None`` — no re-attach)
_ATTACHED: dict[str, _Attachment] = {}


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its ownership."""
    seg = shared_memory.SharedMemory(name=name)
    try:
        # Python < 3.13 registers attachments with the resource tracker
        # as if this process created the segment; undo that so only the
        # creator unlinks (see module docstring).
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass
    return seg


def attached_segment_names() -> tuple[str, ...]:
    """Names of segments this process currently has open (for tests)."""
    return tuple(sorted(_ATTACHED))


@dataclass(frozen=True)
class SharedVolumeHandle:
    """Picklable reference to a published volume: ships in every spec.

    A handle is all a worker needs to reconstruct a read-only view of
    the full vertex array; it costs a few dozen bytes on the wire
    regardless of volume size.
    """

    name: str
    shape: tuple[int, int, int]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Size of the published volume in bytes."""
        return int(np.prod(self.shape)) * np.dtype(self.dtype).itemsize

    def open(self) -> np.ndarray:
        """The published vertex array (cached attach, read-only view).

        In the creator process this returns the creator's own mapping —
        which is how the serial and degraded-to-serial paths read the
        volume without any shared-memory round trip.
        """
        att = _ATTACHED.get(self.name)
        if att is None:
            get_tracer().event(
                "shm.attach", cat="transport",
                segment=self.name, bytes=self.nbytes,
            )
            seg = _attach(self.name)
            flat = np.ndarray((seg.size,), dtype=np.uint8, buffer=seg.buf)
            att = _Attachment(seg, flat)
            _ATTACHED[self.name] = att
        key = (self.shape, self.dtype)
        view = att.views.get(key)
        if view is None:
            view = (
                att.flat[: self.nbytes]
                .view(np.dtype(self.dtype))
                .reshape(self.shape)
            )
            view.setflags(write=False)
            att.views[key] = view
        return view


class SharedVolume:
    """Driver-side owner of one published volume segment.

    Copies ``values`` into a fresh POSIX shared-memory segment exactly
    once; :attr:`handle` is the picklable reference workers attach to.
    :meth:`rebind` repoints the segment at a new step's volume in place
    when it fits the segment's capacity (the streaming-session fast
    path).  :meth:`unlink` releases the segment (idempotent); the owning
    executor calls it from ``close()`` so no run can leak a segment.
    """

    def __init__(self, values: np.ndarray) -> None:
        values = self._check(values)
        self._seg = shared_memory.SharedMemory(
            create=True, size=values.nbytes
        )
        get_tracer().event(
            "shm.create", cat="transport",
            segment=self._seg.name, bytes=values.nbytes,
        )
        self._capacity = values.nbytes
        flat = np.ndarray(
            (self._seg.size,), dtype=np.uint8, buffer=self._seg.buf
        )
        # the creator's own mapping doubles as the in-process "attach"
        _ATTACHED[self._seg.name] = _Attachment(None, flat)
        self._write(values)

    @staticmethod
    def _check(values: np.ndarray) -> np.ndarray:
        values = np.ascontiguousarray(values)
        if values.ndim != 3:
            raise ValueError("shared volume must be a 3D vertex array")
        return values

    def _write(self, values: np.ndarray) -> None:
        att = _ATTACHED[self._seg.name]
        dst = (
            att.flat[: values.nbytes]
            .view(values.dtype)
            .reshape(values.shape)
        )
        dst[...] = values
        # geometry may have changed: typed views are rebuilt on demand
        att.views.clear()
        self.handle = SharedVolumeHandle(
            name=self._seg.name,
            shape=tuple(int(n) for n in values.shape),
            dtype=values.dtype.str,
        )

    @property
    def nbytes(self) -> int:
        return self.handle.nbytes

    @property
    def capacity(self) -> int:
        """Bytes the segment can hold (its size at creation)."""
        return self._capacity if self._seg is not None else 0

    def rebind(self, values: np.ndarray) -> bool:
        """Repoint the segment at ``values`` in place, if it fits.

        Returns ``False`` (segment untouched) when ``values`` exceeds
        the segment's capacity — the caller republishes then.  On
        success the existing :attr:`handle` name is kept, so worker
        processes reuse their cached attachment.
        """
        values = self._check(values)
        if self._seg is None or values.nbytes > self._capacity:
            return False
        self._write(values)
        return True

    def unlink(self) -> None:
        """Close and remove the segment (idempotent)."""
        if self._seg is None:
            return
        get_tracer().event(
            "shm.destroy", cat="transport", segment=self._seg.name
        )
        _ATTACHED.pop(self._seg.name, None)
        try:
            self._seg.close()
            self._seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._seg = None

    def __enter__(self) -> "SharedVolume":
        return self

    def __exit__(self, *exc: object) -> None:
        self.unlink()


class SharedVolumeSlot:
    """Reusable shared-memory slot for streaming sessions.

    Grows to the largest step published so far: :meth:`publish` rebinds
    the existing segment in place when the new volume fits its capacity
    (no segment churn, workers keep their attachment) and republishes a
    fresh, larger segment only when it does not.  One-shot runs publish
    exactly once, so the slot behaves identically to a bare
    :class:`SharedVolume` there.
    """

    def __init__(self) -> None:
        self._volume: SharedVolume | None = None
        #: steps served by rebinding the existing segment in place
        self.rebinds = 0
        #: steps that created (or grew) the segment
        self.republishes = 0

    @property
    def active(self) -> bool:
        return self._volume is not None

    @property
    def handle(self) -> SharedVolumeHandle | None:
        return self._volume.handle if self._volume is not None else None

    @property
    def nbytes(self) -> int:
        return self._volume.nbytes if self._volume is not None else 0

    def publish(self, values: np.ndarray) -> tuple[SharedVolumeHandle, bool]:
        """Publish one step's volume; returns ``(handle, reused)``."""
        if self._volume is not None and self._volume.rebind(values):
            self.rebinds += 1
            get_tracer().event(
                "shm.rebind", cat="transport",
                segment=self._volume.handle.name,
                bytes=self._volume.nbytes,
            )
            return self._volume.handle, True
        if self._volume is not None:
            self._volume.unlink()
        self._volume = SharedVolume(values)
        self.republishes += 1
        return self._volume.handle, False

    def unlink(self) -> None:
        """Release the slot's segment, if any (idempotent)."""
        if self._volume is not None:
            self._volume.unlink()
            self._volume = None
