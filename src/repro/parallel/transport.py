"""Zero-copy block transport over POSIX shared memory.

With the ``pickle`` transport every :class:`~repro.core.pipeline.BlockSpec`
carries its block's ghost-padded vertex subarray by value, so every
dispatch — and every fault-tolerance retry — re-serializes the samples
through the pool's pipe: O(blocks × block_bytes) shipped per compute
stage.  The ``shm`` transport publishes the volume *once* into a
:mod:`multiprocessing.shared_memory` segment; specs then carry only a
:class:`SharedVolumeHandle` (segment name + shape + dtype, a few dozen
bytes) and each worker attaches to the segment and slices its own block
view.  Retries re-read from the segment instead of re-pickling, and the
per-dispatch cost drops to O(blocks × spec_header).

Lifecycle is owned by the driver-side
:class:`~repro.parallel.executor.FaultTolerantExecutor`: it creates the
segment via :class:`SharedVolume`, hands the handle to the specs, and
unlinks the segment when it closes — including after pool restarts (the
segment outlives any worker pool) and after degradation to serial
execution (in the driver process :func:`SharedVolumeHandle.open`
resolves to the creator's own mapping, no attach needed).

Worker-side attachments are cached per process, so a worker computing
many blocks of one volume attaches once.  On Python < 3.13 the stdlib
registers *attachments* with the resource tracker too (bpo-39959),
which would spuriously unlink the creator's segment at interpreter
shutdown; :func:`_attach` unregisters non-creator attachments to keep
exactly one owner — the creator — responsible for the unlink.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.obs.trace import get_tracer

__all__ = [
    "TRANSPORT_KINDS",
    "SharedVolume",
    "SharedVolumeHandle",
    "attached_segment_names",
]

#: Transport kinds accepted by config / API / CLI.  ``"auto"`` resolves
#: to ``"shm"`` exactly when the compute stage runs on a process pool.
TRANSPORT_KINDS = ("auto", "pickle", "shm")

#: Estimated pickled size of one BlockSpec header (everything except the
#: vertex samples); used for transport byte accounting only.
SPEC_HEADER_BYTES = 256

#: per-process cache of open segments: name -> (SharedMemory | None, ndarray)
#: (the creator registers its own array with ``None`` — no re-attach).
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory | None, np.ndarray]] = {}


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its ownership."""
    seg = shared_memory.SharedMemory(name=name)
    try:
        # Python < 3.13 registers attachments with the resource tracker
        # as if this process created the segment; undo that so only the
        # creator unlinks (see module docstring).
        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass
    return seg


def attached_segment_names() -> tuple[str, ...]:
    """Names of segments this process currently has open (for tests)."""
    return tuple(sorted(_ATTACHED))


@dataclass(frozen=True)
class SharedVolumeHandle:
    """Picklable reference to a published volume: ships in every spec.

    A handle is all a worker needs to reconstruct a read-only view of
    the full vertex array; it costs a few dozen bytes on the wire
    regardless of volume size.
    """

    name: str
    shape: tuple[int, int, int]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Size of the published volume in bytes."""
        return int(np.prod(self.shape)) * np.dtype(self.dtype).itemsize

    def open(self) -> np.ndarray:
        """The published vertex array (cached attach, read-only view).

        In the creator process this returns the creator's own mapping —
        which is how the serial and degraded-to-serial paths read the
        volume without any shared-memory round trip.
        """
        entry = _ATTACHED.get(self.name)
        if entry is None:
            get_tracer().event(
                "shm.attach", cat="transport",
                segment=self.name, bytes=self.nbytes,
            )
            seg = _attach(self.name)
            view = np.ndarray(
                self.shape, dtype=np.dtype(self.dtype), buffer=seg.buf
            )
            view.setflags(write=False)
            entry = (seg, view)
            _ATTACHED[self.name] = entry
        return entry[1]


class SharedVolume:
    """Driver-side owner of one published volume segment.

    Copies ``values`` into a fresh POSIX shared-memory segment exactly
    once; :attr:`handle` is the picklable reference workers attach to.
    :meth:`unlink` releases the segment (idempotent); the owning
    executor calls it from ``close()`` so no run can leak a segment.
    """

    def __init__(self, values: np.ndarray) -> None:
        values = np.ascontiguousarray(values)
        if values.ndim != 3:
            raise ValueError("shared volume must be a 3D vertex array")
        self._seg = shared_memory.SharedMemory(
            create=True, size=values.nbytes
        )
        get_tracer().event(
            "shm.create", cat="transport",
            segment=self._seg.name, bytes=values.nbytes,
        )
        arr = np.ndarray(
            values.shape, dtype=values.dtype, buffer=self._seg.buf
        )
        arr[...] = values
        arr.setflags(write=False)
        self.handle = SharedVolumeHandle(
            name=self._seg.name,
            shape=tuple(int(n) for n in values.shape),
            dtype=values.dtype.str,
        )
        # the creator's own mapping doubles as the in-process "attach"
        _ATTACHED[self._seg.name] = (None, arr)

    @property
    def nbytes(self) -> int:
        return self.handle.nbytes

    def unlink(self) -> None:
        """Close and remove the segment (idempotent)."""
        if self._seg is None:
            return
        get_tracer().event(
            "shm.destroy", cat="transport", segment=self._seg.name
        )
        _ATTACHED.pop(self._seg.name, None)
        try:
            self._seg.close()
            self._seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._seg = None

    def __enter__(self) -> "SharedVolume":
        return self

    def __exit__(self, *exc: object) -> None:
        self.unlink()
