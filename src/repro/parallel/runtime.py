"""Deterministic scheduler for virtual SPMD rank programs.

:class:`VirtualMPI` executes ``size`` generator-based rank programs
(written against :class:`repro.parallel.comm.Comm`) with MPI-like
semantics: buffered sends, blocking tagged receives, and full barriers.
Scheduling is deterministic — ranks are advanced in rank order, each as
far as it can go — so every run of a pipeline produces identical results
and an identical message log.

The message log records ``(src, dest, tag, nbytes)`` for every delivered
message; the Blue Gene/P machine model replays it to assign virtual
communication time.  Deadlocks (all unfinished ranks blocked on receives
that can never be satisfied) raise :class:`DeadlockError` with a
diagnostic of who waits for whom.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.parallel.comm import Barrier, Comm, Recv, Send, payload_nbytes

__all__ = [
    "VirtualMPI",
    "DeadlockError",
    "StepLimitError",
    "MessageRecord",
    "pool_makespan",
]


def pool_makespan(durations: Sequence[float], workers: int) -> float:
    """Virtual elapsed time of running tasks on a pool of workers.

    Models the schedule a process pool's shared task queue produces:
    tasks are taken *in order* and each starts on the earliest-free
    worker (list scheduling).  The pipeline charges its virtual clock
    with this makespan for the compute phase — with one worker it
    degenerates to the serial sum, with ``workers >= len(durations)``
    to the max — so modeled time reflects the configured shared-memory
    parallelism rather than always assuming a serial sweep.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    durations = [float(d) for d in durations]
    if not durations:
        return 0.0
    if workers == 1:
        return sum(durations)
    free_at = [0.0] * min(workers, len(durations))
    for d in durations:
        t = heapq.heappop(free_at)
        heapq.heappush(free_at, t + d)
    return max(free_at)


class DeadlockError(RuntimeError):
    """All unfinished ranks are blocked and no message can arrive."""


class StepLimitError(RuntimeError):
    """The scheduler exceeded ``max_steps`` sweeps without finishing.

    A watchdog against livelocked rank programs (e.g. a faulty program
    spinning on sends that are never consumed): deadlocks are detected
    structurally, but unbounded *progress* can only be caught by a step
    budget.
    """


@dataclass(frozen=True)
class MessageRecord:
    """One delivered point-to-point message (for the machine model)."""

    src: int
    dest: int
    tag: int
    nbytes: int


class VirtualMPI:
    """Run SPMD generator programs over a virtual communicator.

    Parameters
    ----------
    size:
        Number of ranks.
    record_messages:
        Keep a :class:`MessageRecord` log of all traffic (cheap; on by
        default so cost models can replay it).
    max_steps:
        Optional watchdog: maximum scheduler sweeps before a
        :class:`StepLimitError` is raised.  ``None`` (default) trusts
        the rank programs to terminate; fault-tolerant drivers set a
        generous bound so a livelocked program surfaces as a readable
        error instead of a hang.
    """

    def __init__(
        self,
        size: int,
        record_messages: bool = True,
        max_steps: int | None = None,
    ) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        if max_steps is not None and max_steps < 1:
            raise ValueError("max_steps must be >= 1 or None")
        self.size = size
        self.record_messages = record_messages
        self.max_steps = max_steps
        self.message_log: list[MessageRecord] = []

    def run(
        self,
        main: Callable[..., Any],
        *args: Any,
        **kwargs: Any,
    ) -> list[Any]:
        """Execute ``main(comm, *args, **kwargs)`` on every rank.

        ``main`` must be a generator function.  Returns the per-rank
        return values (``return x`` inside the generator).
        """
        comms = [Comm(r, self.size) for r in range(self.size)]
        gens = [main(c, *args, **kwargs) for c in comms]
        results: list[Any] = [None] * self.size
        done = [False] * self.size
        # mailbox[(dest, src, tag)] -> deque of payloads
        mailbox: dict[tuple[int, int, int], deque] = {}
        # what each rank is blocked on: None (runnable), Recv, or Barrier
        blocked: list[Any] = [None] * self.size
        resume_value: list[Any] = [None] * self.size
        at_barrier: set[int] = set()

        def deliver(src: int, req: Send) -> None:
            key = (req.dest, src, req.tag)
            mailbox.setdefault(key, deque()).append(req.payload)
            if self.record_messages:
                self.message_log.append(
                    MessageRecord(
                        src, req.dest, req.tag, payload_nbytes(req.payload)
                    )
                )

        def try_unblock(rank: int) -> bool:
            req = blocked[rank]
            if req is None:
                return True
            if isinstance(req, Recv):
                key = (rank, req.src, req.tag)
                q = mailbox.get(key)
                if q:
                    resume_value[rank] = q.popleft()
                    blocked[rank] = None
                    return True
                return False
            if isinstance(req, Barrier):
                return False  # barriers release collectively below
            raise TypeError(f"unknown request {req!r}")

        def advance(rank: int) -> None:
            """Drive one rank until it blocks or finishes."""
            gen = gens[rank]
            while True:
                try:
                    req = gen.send(resume_value[rank])
                except StopIteration as stop:
                    results[rank] = stop.value
                    done[rank] = True
                    return
                except Exception as exc:
                    # annotate failures with the rank they occurred on
                    # so parallel-stage errors are attributable
                    if hasattr(exc, "add_note"):  # python >= 3.11
                        exc.add_note(f"(raised in virtual rank {rank})")
                    raise
                resume_value[rank] = None
                if isinstance(req, Send):
                    deliver(rank, req)
                    continue
                if isinstance(req, Recv):
                    key = (rank, req.src, req.tag)
                    q = mailbox.get(key)
                    if q:
                        resume_value[rank] = q.popleft()
                        continue
                    blocked[rank] = req
                    return
                if isinstance(req, Barrier):
                    blocked[rank] = req
                    at_barrier.add(rank)
                    return
                raise TypeError(
                    f"rank {rank} yielded unknown request {req!r}"
                )

        steps = 0
        while not all(done):
            steps += 1
            if self.max_steps is not None and steps > self.max_steps:
                unfinished = [r for r in range(self.size) if not done[r]]
                raise StepLimitError(
                    f"scheduler exceeded {self.max_steps} sweeps with "
                    f"ranks {unfinished} unfinished — livelocked rank "
                    f"program?"
                )
            progressed = False
            for rank in range(self.size):
                if done[rank]:
                    continue
                if blocked[rank] is not None and not try_unblock(rank):
                    continue
                progressed = True
                advance(rank)
            # release a completed barrier
            waiting = {r for r in range(self.size) if not done[r]}
            if waiting and at_barrier >= waiting and all(
                isinstance(blocked[r], Barrier) for r in waiting
            ):
                for r in waiting:
                    blocked[r] = None
                at_barrier.clear()
                progressed = True
            if not progressed:
                self._raise_deadlock(done, blocked)

        leftover = {k: len(q) for k, q in mailbox.items() if q}
        if leftover:
            raise RuntimeError(
                f"program finished with undelivered messages: {leftover}"
            )
        return results

    @staticmethod
    def _raise_deadlock(done, blocked) -> None:
        desc = []
        for r, b in enumerate(blocked):
            if not done[r]:
                desc.append(f"rank {r}: waiting on {b!r}")
        raise DeadlockError("virtual MPI deadlock:\n" + "\n".join(desc))
