"""Bisection domain decomposition and block assignment (paper §IV-A).

"The data domain ... is decomposed into a number of hexahedral blocks
with a bisection algorithm that iteratively divides the longest remaining
data dimension in half until the desired total number of blocks is
attained.  One layer of values is shared by two neighboring blocks."

"The total number of blocks may be greater than the number of processes,
in which case blocks are assigned to processes in round-robin
(block-cyclic) order."

Because the bisection repeatedly halves whole axes, the result is a
regular ``sx x sy x sz`` grid of blocks with power-of-two per-axis counts.
The decomposition also exposes the *internal cut planes* (in refined
coordinates) that drive the boundary-restricted gradient pairing and the
boundary flags of MS complex nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.addressing import cut_planes_from_splits, refined_dims
from repro.mesh.grid import Box

__all__ = ["BlockDecomposition", "decompose", "axis_cut_vertices"]


def axis_cut_vertices(n_vertices: int, n_blocks: int) -> list[int]:
    """Interior cut vertex coordinates splitting an axis into blocks.

    The axis of ``n_vertices`` vertices is split into ``n_blocks`` blocks
    of near-equal cell counts; block ``i`` spans vertices
    ``[cut[i], cut[i+1]]`` inclusive (one shared layer).
    """
    if n_blocks < 1:
        raise ValueError("n_blocks must be >= 1")
    if n_vertices - 1 < n_blocks:
        raise ValueError(
            f"cannot split {n_vertices} vertices into {n_blocks} blocks "
            "(each block needs at least one cell)"
        )
    return [
        round(i * (n_vertices - 1) / n_blocks) for i in range(1, n_blocks)
    ]


@dataclass(frozen=True)
class BlockDecomposition:
    """A regular grid of blocks over a structured grid's vertex domain."""

    grid_dims: tuple[int, int, int]
    splits: tuple[int, int, int]

    def __post_init__(self) -> None:
        for n, s in zip(self.grid_dims, self.splits):
            axis_cut_vertices(n, s)  # validates feasibility

    # -- geometry ------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        sx, sy, sz = self.splits
        return sx * sy * sz

    @property
    def cut_vertices(self) -> tuple[list[int], list[int], list[int]]:
        """Per-axis interior cut vertex coordinates."""
        return tuple(
            axis_cut_vertices(n, s)
            for n, s in zip(self.grid_dims, self.splits)
        )

    @property
    def cut_planes(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-axis refined coordinates of internal cut planes."""
        return tuple(
            cut_planes_from_splits(c) for c in self.cut_vertices
        )

    @property
    def global_refined_dims(self) -> tuple[int, int, int]:
        return refined_dims(self.grid_dims)

    def axis_bounds(self, axis: int) -> list[int]:
        """Block boundary vertices along an axis (len = splits[axis]+1)."""
        cuts = axis_cut_vertices(self.grid_dims[axis], self.splits[axis])
        return [0] + cuts + [self.grid_dims[axis] - 1]

    def block_box(self, coords: tuple[int, int, int]) -> Box:
        """Vertex box of block ``(bi, bj, bk)``, shared layers included."""
        lo, hi = [], []
        for axis, b in enumerate(coords):
            bounds = self.axis_bounds(axis)
            if not 0 <= b < self.splits[axis]:
                raise IndexError(f"block coord {coords} out of range")
            lo.append(bounds[b])
            hi.append(bounds[b + 1] + 1)
        return Box(tuple(lo), tuple(hi))

    # -- linear ids and assignment --------------------------------------

    def linear_id(self, coords: tuple[int, int, int]) -> int:
        """Linear block id, x fastest (matching address order)."""
        sx, sy, _sz = self.splits
        bi, bj, bk = coords
        return bi + bj * sx + bk * sx * sy

    def block_coords(self, linear: int) -> tuple[int, int, int]:
        sx, sy, _sz = self.splits
        return (linear % sx, (linear // sx) % sy, linear // (sx * sy))

    def all_boxes(self) -> list[Box]:
        """Boxes of all blocks in linear-id order."""
        return [
            self.block_box(self.block_coords(b))
            for b in range(self.num_blocks)
        ]

    def rank_of_block(self, linear: int, num_procs: int) -> int:
        """Block-cyclic (round-robin) process assignment."""
        return linear % num_procs

    def blocks_of_rank(self, rank: int, num_procs: int) -> list[int]:
        """Linear ids of the blocks owned by ``rank``."""
        return list(range(rank, self.num_blocks, num_procs))


def decompose(
    grid_dims: tuple[int, int, int],
    num_blocks: int,
    splits: tuple[int, int, int] | None = None,
) -> BlockDecomposition:
    """Bisection decomposition into ``num_blocks`` blocks.

    Iteratively doubles the block count along the axis whose blocks are
    currently longest (ties broken toward x), exactly as the paper's
    bisection "divides the longest remaining data dimension in half".
    ``num_blocks`` must therefore be a power of two, unless an explicit
    per-axis ``splits`` tuple is given.
    """
    if splits is not None:
        s = tuple(int(x) for x in splits)
        if int(np.prod(s)) != num_blocks:
            raise ValueError(
                f"splits {s} do not produce {num_blocks} blocks"
            )
        return BlockDecomposition(tuple(int(d) for d in grid_dims), s)

    if num_blocks < 1 or (num_blocks & (num_blocks - 1)) != 0:
        raise ValueError(
            f"bisection requires a power-of-two block count, got "
            f"{num_blocks}; pass explicit splits= otherwise"
        )
    s = [1, 1, 1]
    dims = [int(d) for d in grid_dims]
    while s[0] * s[1] * s[2] < num_blocks:
        # longest remaining block edge (in cells); must stay splittable
        lengths = [
            (dims[a] - 1) / s[a] if (dims[a] - 1) >= 2 * s[a] else -1.0
            for a in range(3)
        ]
        axis = int(np.argmax(lengths))
        if lengths[axis] <= 0:
            raise ValueError(
                f"grid {grid_dims} too small for {num_blocks} blocks"
            )
        s[axis] *= 2
    return BlockDecomposition(tuple(dims), tuple(s))
