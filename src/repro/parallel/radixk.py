"""Configurable merge-round schedules (paper §IV-F2).

"Our merge algorithm is inspired by this idea of specifying the number of
rounds and radix of each round ... We restrict merge groups to contain
two, four, or eight members (radix-2, radix-4, or radix-8). ... we
designate one member of the group as the 'root', and the remaining group
members send all of their information to the root of the group. ...  The
number of resulting MS complex blocks after merging is the number of
input blocks divided by the product of radices in each merge round."

Groups must be *spatially contiguous* boxes of blocks so that the merged
complexes cover boxes and gluing stays anchored at shared faces: a
radix-8 round merges ``2x2x2`` neighborhoods of the current block grid,
radix-4 merges ``2x2x1`` (on the two axes with the most remaining
splits), radix-2 merges ``2x1x1``.

:func:`full_merge_radices` reproduces the paper's full-merge schedules:
2048 blocks -> [4, 8, 8, 8] (Table I), 256 -> [4, 8, 8] (Table II), and
8192 -> [2, 8, 8, 8, 8] (§VI-D1) — when the radix cannot be 8, "the
remaining smaller radices are slightly better in early rounds rather than
later".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mesh.addressing import cut_planes_from_splits
from repro.parallel.decomposition import BlockDecomposition

__all__ = ["MergeRound", "MergeSchedule", "full_merge_radices"]

_ALLOWED_RADICES = (2, 4, 8)


@dataclass(frozen=True)
class MergeRound:
    """One merge round: ``radix`` members per group, split per axis."""

    radix: int
    factors: tuple[int, int, int]

    def __post_init__(self) -> None:
        fx, fy, fz = self.factors
        if fx * fy * fz != self.radix:
            raise ValueError(f"factors {self.factors} != radix {self.radix}")


def full_merge_radices(num_blocks: int, max_radix: int = 8) -> list[int]:
    """Radices performing a full merge of ``num_blocks`` down to one block.

    Follows the paper's guideline: use the highest radix possible and put
    any smaller leftover radix in the *first* round.
    """
    if num_blocks < 1 or (num_blocks & (num_blocks - 1)) != 0:
        raise ValueError("num_blocks must be a power of two")
    if max_radix not in _ALLOWED_RADICES:
        raise ValueError(f"max_radix must be one of {_ALLOWED_RADICES}")
    n = int(num_blocks).bit_length() - 1  # log2
    base = max_radix.bit_length() - 1
    radices: list[int] = []
    if n % base:
        radices.append(2 ** (n % base))
    radices.extend([max_radix] * (n // base))
    return radices


class MergeSchedule:
    """Round/radix schedule over a block decomposition.

    Parameters
    ----------
    decomposition:
        The block decomposition of the domain.
    radices:
        Radix of each round (2, 4, or 8 each).  The product must divide
        the block count with a feasible per-axis factorization; a partial
        merge leaves ``num_blocks / prod(radices)`` output blocks.
    """

    def __init__(
        self, decomposition: BlockDecomposition, radices: list[int]
    ) -> None:
        self.decomposition = decomposition
        radices = [int(r) for r in radices]
        for r in radices:
            if r not in _ALLOWED_RADICES:
                raise ValueError(
                    f"radix {r} not allowed; use one of {_ALLOWED_RADICES}"
                )
        self.rounds: list[MergeRound] = []
        #: block-grid dims before each round; grids[-1] is the final grid
        self.grids: list[tuple[int, int, int]] = [decomposition.splits]
        grid = list(decomposition.splits)
        for r in radices:
            factors = [1, 1, 1]
            for _ in range(r.bit_length() - 1):  # log2(r) factor-2 splits
                candidates = [
                    a for a in range(3) if grid[a] % (factors[a] * 2) == 0
                    and grid[a] // (factors[a] * 2) >= 1
                ]
                if not candidates:
                    raise ValueError(
                        f"cannot apply radix {r} to block grid {tuple(grid)}"
                    )
                # prefer the axis with the most remaining splits; on ties,
                # an axis not yet divided this round (keeps groups cubic)
                axis = max(
                    candidates,
                    key=lambda a: (grid[a] // factors[a], -factors[a], -a),
                )
                factors[axis] *= 2
            self.rounds.append(MergeRound(r, tuple(factors)))
            grid = [g // f for g, f in zip(grid, factors)]
            self.grids.append(tuple(grid))

    # -- derived quantities ---------------------------------------------

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def num_output_blocks(self) -> int:
        sx, sy, sz = self.grids[-1]
        return sx * sy * sz

    def cumulative_factors(self, upto_round: int) -> tuple[int, int, int]:
        """Per-axis group size of original blocks merged after ``upto_round`` rounds."""
        f = [1, 1, 1]
        for rnd in self.rounds[:upto_round]:
            f = [a * b for a, b in zip(f, rnd.factors)]
        return tuple(f)

    def original_root_block(
        self, round_grid_coords: tuple[int, int, int], upto_round: int
    ) -> tuple[int, int, int]:
        """Original block-grid coords of a superblock's root."""
        f = self.cumulative_factors(upto_round)
        return tuple(c * g for c, g in zip(round_grid_coords, f))

    def groups(
        self, round_idx: int
    ) -> list[tuple[tuple[int, int, int], list[tuple[int, int, int]]]]:
        """Merge groups of one round.

        Returns ``(root, members)`` pairs in *original block-grid*
        coordinates; ``members`` excludes the root and is ordered x
        fastest.  The root is the lexicographically smallest member of
        its group, and the rank owning the root's original block performs
        the merge.
        """
        grid = self.grids[round_idx]
        fx, fy, fz = self.rounds[round_idx].factors
        out = []
        for nk in range(grid[2] // fz):
            for nj in range(grid[1] // fy):
                for ni in range(grid[0] // fx):
                    members = [
                        (ni * fx + di, nj * fy + dj, nk * fz + dk)
                        for dk in range(fz)
                        for dj in range(fy)
                        for di in range(fx)
                    ]
                    root = members[0]
                    orig = [
                        self.original_root_block(m, round_idx)
                        for m in members
                    ]
                    out.append((orig[0], orig[1:]))
        return out

    def cut_planes_after(self, upto_round: int):
        """Per-axis refined cut planes still separating blocks after rounds.

        Cut planes interior to a merged superblock disappear; nodes on
        them become interior and cancellable (§IV-F3).
        """
        f = self.cumulative_factors(upto_round)
        out = []
        for axis in range(3):
            cuts = self.decomposition.cut_vertices[axis]
            step = f[axis]
            remaining = [
                cuts[i] for i in range(len(cuts)) if (i + 1) % step == 0
            ]
            out.append(cut_planes_from_splits(remaining))
        return tuple(out)

    def describe(self) -> str:
        """Compact human-readable schedule, e.g. '4 8 8 8'."""
        return " ".join(str(r.radix) for r in self.rounds)
