"""Message-passing primitives for virtual SPMD rank programs.

Rank programs are Python generators: communication is expressed by
*yielding* request objects to the :class:`~repro.parallel.runtime.VirtualMPI`
scheduler, mirroring the mpi4py API shape (``send``/``recv``/``barrier``
plus collectives built on them):

    def main(comm: Comm):
        yield comm.send(dest=1, payload=x, tag=7)
        y = yield comm.recv(src=1, tag=8)
        yield comm.barrier()
        values = yield from gather(comm, y, root=0)

Payload sizes are measured so the Blue Gene/P machine model can assign
virtual communication costs to every message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "Comm",
    "Send",
    "Recv",
    "Barrier",
    "gather",
    "broadcast",
    "payload_nbytes",
]

ANY_TAG = -1


@dataclass(frozen=True)
class Send:
    """Request: deliver ``payload`` to rank ``dest`` with ``tag``."""

    dest: int
    tag: int
    payload: Any


@dataclass(frozen=True)
class Recv:
    """Request: block until a message from ``src`` with ``tag`` arrives."""

    src: int
    tag: int


@dataclass(frozen=True)
class Barrier:
    """Request: block until every rank reaches the same barrier."""

    epoch: int = 0  # filled by the scheduler


class Comm:
    """Per-rank communicator handle (rank id, world size, request makers)."""

    def __init__(self, rank: int, size: int) -> None:
        if not 0 <= rank < size:
            raise ValueError(f"rank {rank} out of range for size {size}")
        self.rank = rank
        self.size = size

    def send(self, dest: int, payload: Any, tag: int = 0) -> Send:
        """Build a send request (non-blocking; buffered by the scheduler)."""
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range")
        if dest == self.rank:
            raise ValueError("self-sends are not supported")
        return Send(dest, tag, payload)

    def recv(self, src: int, tag: int = 0) -> Recv:
        """Build a blocking receive request."""
        if not 0 <= src < self.size:
            raise ValueError(f"src {src} out of range")
        return Recv(src, tag)

    def barrier(self) -> Barrier:
        """Build a barrier request."""
        return Barrier()


def gather(comm: Comm, value: Any, root: int = 0, tag: int = 1_000_001):
    """Collective gather built on point-to-point requests.

    Usage: ``values = yield from gather(comm, v, root)``; non-root ranks
    receive ``None``.
    """
    if comm.rank == root:
        out: list[Any] = [None] * comm.size
        out[root] = value
        for src in range(comm.size):
            if src != root:
                out[src] = yield comm.recv(src, tag)
        return out
    yield comm.send(root, value, tag)
    return None


def broadcast(comm: Comm, value: Any, root: int = 0, tag: int = 1_000_002):
    """Collective broadcast; every rank returns the root's value."""
    if comm.rank == root:
        for dest in range(comm.size):
            if dest != root:
                yield comm.send(dest, value, tag)
        return value
    received = yield comm.recv(root, tag)
    return received


def payload_nbytes(payload: Any) -> int:
    """Approximate serialized size of a message payload in bytes.

    Supports the payload shapes the pipeline sends: numpy arrays, bytes,
    dicts/lists/tuples of those, plus scalars.  Used by the machine model
    to cost messages; a few bytes of framing per element are ignored.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(v) for v in payload.values())
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(v) for v in payload)
    if isinstance(payload, (bool, int, float, np.integer, np.floating)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode())
    # objects that know their own payload size — e.g. a spilled blob
    # handle (repro.io.spool.SpilledBlobRef) standing in for its bytes:
    # costing it at the blob's size keeps the message log identical
    # between spilled and resident runs
    nbytes = getattr(payload, "nbytes", None)
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    raise TypeError(f"cannot size payload of type {type(payload)!r}")
