"""Async job scheduler: many concurrent requests, one computation each.

The scheduler is the service's admission and execution layer.  Every
compute request resolves — in this order — to:

1. a **cache hit**: the content key (volume hash + config result
   fingerprint, :func:`repro.service.store.cache_key`) is already in the
   :class:`~repro.service.store.ResultStore`; the job is born ``done``
   and never touches a pipeline;
2. a **coalesced join**: an identical request is already queued or
   running; the submission attaches to the in-flight job, so N
   identical concurrent submissions run the pipeline exactly once;
3. a **cold compute**: the job is queued, picked up by one of
   ``max_concurrency`` async workers, and executed on a thread-pool
   slot through a long-lived :class:`~repro.core.session.PipelineSession`
   (pools, shm slot, and plans reused across jobs of the same
   configuration — the PR 8 machinery).

Job states: ``queued → running → done | failed``, plus ``cancelled``
for jobs withdrawn before a worker picked them up.  A running pipeline
is never preempted — per-*block* timeouts/retries (the PR 2
fault-tolerance knobs, carried in the request's
:class:`~repro.core.options.ExecutionOptions`) bound the compute from
the inside, while the scheduler's per-*job* timeout bounds how long the
job may hold a worker slot before being declared failed.

Failure isolation: a job whose pipeline raises (e.g. a worker crash
with degradation disabled) becomes ``failed`` with a readable error,
its session is discarded (the next job of that configuration gets a
fresh one), and the scheduler keeps serving subsequent jobs — the chaos
suite pins this.

Everything is observable through the shared
:class:`~repro.obs.metrics.MetricsRegistry` (``service.cache.*``,
``service.coalesced``, ``service.jobs.*``) and tracer spans covering
the request lifecycle (``service.submit``, ``service.job.run``).
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Any, Sequence

from repro.core.config import PipelineConfig
from repro.core.options import ExecutionOptions
from repro.core.pipeline import ParallelMSComplexPipeline
from repro.core.session import PipelineSession
from repro.io.volume import VolumeSpec, content_hash
from repro.obs.metrics import MetricsRegistry, SECONDS_BUCKETS
from repro.obs.trace import Tracer, get_tracer
from repro.service.store import ResultRecord, ResultStore, cache_key

__all__ = [
    "ComputeRequest",
    "Job",
    "JobScheduler",
    "JOB_STATES",
]

#: the job lifecycle vocabulary, in order of appearance
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")


@dataclass(frozen=True)
class ComputeRequest:
    """One service compute request (the body of ``POST /v1/submit``).

    Mirrors the :func:`repro.api.compute` keywords: ``volume`` names
    the input (the service computes over volume files — content the
    cache can address), the rest configure the run.  ``options`` is
    pure scheduling and therefore *not* part of the cache key;
    ``timeout`` bounds the whole job in wall seconds; ``faults`` is the
    deterministic chaos-testing hook and never reaches production
    requests.
    """

    volume: VolumeSpec
    persistence: float = 0.0
    ranks: int = 1
    merge_radix: int | Sequence[int] | str = 2
    hierarchy: bool = False
    options: ExecutionOptions | None = None
    timeout: float | None = None
    faults: Any = None

    def pipeline_config(self) -> PipelineConfig:
        """The canonical :class:`PipelineConfig` of this request.

        Delegates to the same facade translation every other entry
        point uses (:func:`repro.api._facade_config`), so a request and
        the equivalent ``repro.compute`` / CLI call produce configs with
        identical fingerprints — the spelling-independence the
        fingerprint property suite pins.
        """
        from repro.api import _facade_config

        opts = self.options or ExecutionOptions()
        if self.hierarchy and not opts.hierarchy:
            opts = ExecutionOptions(**{**opts.to_kwargs(),
                                       "hierarchy": True})
        return _facade_config(
            "service",
            persistence=self.persistence,
            ranks=self.ranks,
            merge_radix=self.merge_radix,
            validate=False,
            options=opts,
            faults=self.faults,
            trace=False,
            metrics=False,
            flat={},
        )


@dataclass
class Job:
    """One tracked unit of service work."""

    job_id: str
    key: str
    request: ComputeRequest
    state: str = "queued"
    #: how this job's answer was (or will be) produced: ``cold`` ran
    #: the pipeline, ``cache`` was answered from the store at submit
    source: str = "cold"
    record: ResultRecord | None = None
    error: str | None = None
    submitted_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    #: additional identical submissions that joined this job
    coalesced_submits: int = 0
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def done(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    def to_dict(self) -> dict:
        """JSON-able status body (the ``GET /v1/jobs/<id>`` answer)."""
        return {
            "job_id": self.job_id,
            "key": self.key,
            "state": self.state,
            "source": self.source,
            "error": self.error,
            "coalesced_submits": self.coalesced_submits,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "result": self.record.to_dict() if self.record else None,
        }


class _SessionSlot:
    """One configuration's persistent session plus its use lock."""

    __slots__ = ("session", "lock")

    def __init__(self, session: PipelineSession) -> None:
        self.session = session
        self.lock = threading.Lock()


class JobScheduler:
    """Bounded-concurrency asyncio queue feeding persistent sessions.

    Create, ``await start()``, ``await submit(...)`` any number of
    times, ``await close()``.  All coroutine methods must run on one
    event loop; the synchronous pipeline work runs on an internal
    thread pool of ``max_concurrency`` slots, so the loop stays
    responsive while computes are in flight.
    """

    def __init__(
        self,
        store: ResultStore,
        *,
        max_concurrency: int = 2,
        default_timeout: float | None = None,
        session_reuse: bool = True,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        self.store = store
        self.max_concurrency = max_concurrency
        self.default_timeout = default_timeout
        self.session_reuse = session_reuse
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}
        self._queue: asyncio.Queue[Job] = asyncio.Queue()
        self._workers: list[asyncio.Task] = []
        self._pool = ThreadPoolExecutor(
            max_workers=max_concurrency,
            thread_name_prefix="repro-service",
        )
        self._sessions: dict[str, _SessionSlot] = {}
        self._sessions_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._scratch = TemporaryDirectory(prefix="repro-service-")
        self._closed = False

    # -- the public surface ------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker tasks (idempotent)."""
        if self._workers:
            return
        self._workers = [
            asyncio.create_task(self._worker(i), name=f"service-worker-{i}")
            for i in range(self.max_concurrency)
        ]

    async def submit(self, request: ComputeRequest) -> Job:
        """Admit one request: cache hit, coalesced join, or fresh job."""
        if self._closed:
            raise RuntimeError("scheduler is closed")
        with self.tracer.span("service.submit", cat="service") as span:
            config = request.pipeline_config()
            loop = asyncio.get_running_loop()
            volume_hash = await loop.run_in_executor(
                None, content_hash, request.volume
            )
            key = cache_key(volume_hash, config)
            span.annotate(key=key)

            cached = self.store.get(key)
            if cached is not None:
                record, _image = cached
                job = self._new_job(request, key, state="done",
                                    source="cache")
                job.record = record
                job.finished_at = time.time()
                job.done_event.set()
                self.metrics.counter("service.cache.hits").inc()
                self._journal("cache_hit", job)
                span.annotate(outcome="cache-hit", job=job.job_id)
                return job

            self.metrics.counter("service.cache.misses").inc()
            inflight = self._inflight.get(key)
            if inflight is not None and not inflight.done:
                inflight.coalesced_submits += 1
                self.metrics.counter("service.coalesced").inc()
                self._journal("coalesced", inflight)
                span.annotate(outcome="coalesced", job=inflight.job_id)
                return inflight

            job = self._new_job(request, key)
            job._volume_hash = volume_hash  # avoids a re-hash at run time
            self._inflight[key] = job
            self._journal("submitted", job)
            await self._queue.put(job)
            span.annotate(outcome="queued", job=job.job_id)
            return job

    def job(self, job_id: str) -> Job:
        """The tracked job of ``job_id`` (:class:`KeyError` if unknown)."""
        return self._jobs[job_id]

    def jobs(self) -> list[Job]:
        """All tracked jobs, oldest first."""
        return list(self._jobs.values())

    async def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job finishes; returns it in its final state."""
        job = self.job(job_id)
        await asyncio.wait_for(job.done_event.wait(), timeout)
        return job

    async def cancel(self, job_id: str) -> bool:
        """Withdraw a queued job.  Running jobs are never preempted.

        Returns ``True`` when the job moved to ``cancelled``; ``False``
        when it was already running or finished (per-block timeouts
        inside the run are the tool for bounding started work).
        """
        job = self.job(job_id)
        if job.state != "queued":
            return False
        job.state = "cancelled"
        job.error = "cancelled before execution"
        job.finished_at = time.time()
        if self._inflight.get(job.key) is job:
            del self._inflight[job.key]
        job.done_event.set()
        self.metrics.counter("service.jobs.cancelled").inc()
        self._journal("cancelled", job)
        return True

    async def close(self) -> None:
        """Stop the workers and release every session and pool."""
        if self._closed:
            return
        self._closed = True
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._workers = []
        self._pool.shutdown(wait=True)
        with self._sessions_lock:
            slots, self._sessions = list(self._sessions.values()), {}
        for slot in slots:
            slot.session.close()
        self._scratch.cleanup()

    # -- workers -----------------------------------------------------------

    async def _worker(self, index: int) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            if job.state != "queued":  # cancelled while waiting
                continue
            job.state = "running"
            self._journal("started", job)
            timeout = (
                job.request.timeout
                if job.request.timeout is not None
                else self.default_timeout
            )
            started = time.perf_counter()
            with self.tracer.span(
                "service.job.run", cat="service", job=job.job_id,
                key=job.key, worker=index,
            ) as span:
                try:
                    record = await asyncio.wait_for(
                        loop.run_in_executor(
                            self._pool, self._execute, job
                        ),
                        timeout,
                    )
                except asyncio.TimeoutError:
                    self._finish(
                        job, "failed",
                        error=(
                            f"job timed out after {timeout:g}s "
                            "(per-job limit; tune the request timeout "
                            "or the per-block fault-tolerance knobs)"
                        ),
                    )
                except asyncio.CancelledError:
                    self._finish(job, "failed",
                                 error="scheduler shut down mid-job")
                    raise
                except Exception as exc:
                    self._finish(
                        job, "failed",
                        error=f"{type(exc).__name__}: {exc}",
                    )
                else:
                    job.record = record
                    self._finish(job, "done")
                span.annotate(state=job.state)
            self.metrics.histogram(
                "service.job.seconds", SECONDS_BUCKETS
            ).observe(time.perf_counter() - started)

    def _finish(self, job: Job, state: str, error: str | None = None) -> None:
        job.state = state
        job.error = error
        job.finished_at = time.time()
        if self._inflight.get(job.key) is job:
            del self._inflight[job.key]
        job.done_event.set()
        self.metrics.counter(f"service.jobs.{state}").inc()
        self._journal(state, job)

    # -- the synchronous compute path (thread-pool side) -------------------

    def _execute(self, job: Job) -> ResultRecord:
        """Run one cold compute and store its artifact.

        Runs on a thread-pool slot.  Prefers the persistent session of
        this configuration; when that session is busy (another slot
        runs the same configuration) or reuse is disabled, falls back
        to a one-shot pipeline — results are bit-identical either way.
        """
        request = job.request
        config = request.pipeline_config()
        slot = self._session_slot(config) if self.session_reuse else None
        if slot is not None and slot.lock.acquire(blocking=False):
            try:
                result = slot.session.run(request.volume)
            except Exception:
                # the session may be mid-degrade or hold a poisoned
                # pool; discard it so the next job starts fresh
                self._discard_session(config, slot)
                raise
            finally:
                slot.lock.release()
        else:
            result = ParallelMSComplexPipeline(config).run(
                volume=request.volume
            )

        # write through the canonical writer, then hand the image to the
        # store — the cached artifact is bit-identical to what a cold
        # `result.write(path)` would have produced
        scratch = Path(self._scratch.name) / f"{job.job_id}.msc"
        try:
            result.write(scratch)
            image = scratch.read_bytes()
        finally:
            scratch.unlink(missing_ok=True)
        volume_hash = getattr(job, "_volume_hash", None)
        if volume_hash is None:
            volume_hash = content_hash(request.volume)
        return self.store.put(
            job.key,
            volume_hash=volume_hash,
            config=config,
            msc_image=image,
            num_output_blocks=result.num_output_blocks,
            node_counts=result.combined_node_counts(),
        )

    def _session_slot(self, config: PipelineConfig) -> _SessionSlot:
        fp = config.fingerprint()
        with self._sessions_lock:
            slot = self._sessions.get(fp)
            if slot is None:
                slot = _SessionSlot(PipelineSession(config))
                self._sessions[fp] = slot
                self.metrics.counter("service.sessions.created").inc()
            return slot

    def _discard_session(self, config: PipelineConfig,
                         slot: _SessionSlot) -> None:
        fp = config.fingerprint()
        with self._sessions_lock:
            if self._sessions.get(fp) is slot:
                del self._sessions[fp]
        slot.session.close()
        self.metrics.counter("service.sessions.discarded").inc()

    # -- bookkeeping -------------------------------------------------------

    def _new_job(self, request: ComputeRequest, key: str,
                 state: str = "queued", source: str = "cold") -> Job:
        job = Job(
            job_id=f"job-{next(self._ids):06d}",
            key=key,
            request=request,
            state=state,
            source=source,
        )
        self._jobs[job.job_id] = job
        return job

    def _journal(self, event: str, job: Job) -> None:
        self.store.provider.persist_job_event(
            {
                "event": event,
                "job_id": job.job_id,
                "key": job.key,
                "state": job.state,
                "time": time.time(),
            }
        )
