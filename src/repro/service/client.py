"""Same-process service front end (and the daemon's engine room).

:class:`ServiceClient` bundles the scheduler, the content-addressed
store, and the observability surface behind a synchronous API shaped
like the HTTP endpoints: ``submit`` / ``status`` / ``result`` /
``query`` / ``stats``.  It is the single execution engine — the HTTP
daemon (:mod:`repro.service.server`) parses requests and delegates
here, so a same-process caller and an HTTP caller of the same request
produce identical job lifecycles and identical stored records (the
INV-11 single-provider discipline).

The asyncio scheduler needs an event loop; callers of this class are
synchronous (tests, the CLI, HTTP handler threads), so the client owns
a dedicated background thread running the loop and bridges with
``run_coroutine_threadsafe``.

::

    from repro.service import ServiceClient

    with ServiceClient(cache_dir) as svc:
        job = svc.submit(volume_spec, persistence=0.05, ranks=8,
                         hierarchy=True, wait=True)
        print(job.record.node_counts)
        print(svc.query(key=job.key, persistence=0.1))
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.analysis.query import load_hierarchy, query as hierarchy_query
from repro.core.options import ExecutionOptions
from repro.io.volume import VolumeSpec, content_hash, write_volume
from repro.obs.metrics import MetricsRegistry, SECONDS_BUCKETS
from repro.obs.trace import NULL_TRACER, Tracer
from repro.service.scheduler import ComputeRequest, Job, JobScheduler
from repro.service.store import ResultStore

__all__ = ["ServiceClient"]

#: default wait bound (seconds) of blocking submits/results — generous
#: for a compute, finite so a wedged job cannot hang a caller forever
DEFAULT_WAIT_TIMEOUT = 600.0


class ServiceClient:
    """Synchronous facade over the scheduler + store of one service.

    Parameters
    ----------
    cache_dir:
        Root of the content-addressed store (created if missing).
        Artifacts and the job journal live here; a restarted service
        over the same directory starts warm.
    max_jobs:
        Concurrent pipeline executions (scheduler thread-pool width).
    max_memory_entries:
        Size of the in-memory hot layer of the store (0 disables).
    default_timeout:
        Per-job wall-second bound applied when a request does not carry
        its own (``None``: unbounded).
    session_reuse:
        Reuse persistent :class:`~repro.core.session.PipelineSession`
        pools across jobs of the same configuration (on by default).
    trace:
        Record service tracer spans (submit/job lifecycle) into an
        in-process tracer, exportable via :attr:`tracer`.
    """

    def __init__(
        self,
        cache_dir: str | Path,
        *,
        max_jobs: int = 2,
        max_memory_entries: int = 64,
        default_timeout: float | None = None,
        session_reuse: bool = True,
        trace: bool = False,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(enabled=True) if trace else NULL_TRACER
        self.cache_dir = Path(cache_dir)
        self.store = ResultStore(
            self.cache_dir,
            max_memory_entries=max_memory_entries,
            metrics=self.metrics,
        )
        self._hier_cache: OrderedDict[str, dict] = OrderedDict()
        self._hier_lock = threading.Lock()
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-service-loop",
            daemon=True,
        )
        self._thread.start()
        self.scheduler = JobScheduler(
            self.store,
            max_concurrency=max_jobs,
            default_timeout=default_timeout,
            session_reuse=session_reuse,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self._call(self.scheduler.start())
        self._closed = False

    # -- endpoints ---------------------------------------------------------

    def submit(
        self,
        source: VolumeSpec | np.ndarray,
        *,
        persistence: float = 0.0,
        ranks: int = 1,
        merge_radix: int | Sequence[int] | str = 2,
        hierarchy: bool = False,
        options: ExecutionOptions | None = None,
        timeout: float | None = None,
        faults: Any = None,
        wait: bool = False,
        wait_timeout: float = DEFAULT_WAIT_TIMEOUT,
    ) -> Job:
        """Submit one compute request; returns its :class:`Job`.

        ``source`` is a :class:`VolumeSpec` or an in-memory field (the
        latter is spooled once into the store's content-addressed
        volume staging area, so equal fields share one file).  With
        ``wait=True`` the call blocks until the job reaches a final
        state.
        """
        started = time.perf_counter()
        if isinstance(source, np.ndarray):
            source = self.stage_field(source)
        request = ComputeRequest(
            volume=source,
            persistence=persistence,
            ranks=ranks,
            merge_radix=merge_radix,
            hierarchy=hierarchy,
            options=options,
            timeout=timeout,
            faults=faults,
        )
        job = self._call(self.scheduler.submit(request))
        self._observe("submit", started)
        if wait and not job.done:
            job = self.wait(job.job_id, timeout=wait_timeout)
        return job

    def status(self, job_id: str) -> Job:
        """The job in its current state (:class:`KeyError` if unknown)."""
        started = time.perf_counter()
        try:
            return self.scheduler.job(job_id)
        finally:
            self._observe("status", started)

    def wait(self, job_id: str,
             timeout: float = DEFAULT_WAIT_TIMEOUT) -> Job:
        """Block until the job finishes; returns it in its final state."""
        try:
            return self._call(self.scheduler.wait(job_id, timeout))
        except asyncio.TimeoutError:
            # asyncio's TimeoutError is the builtin only from 3.11 on;
            # normalize so callers catch one exception on every version
            raise TimeoutError(
                f"timed out waiting for {job_id} after {timeout:g}s"
            ) from None

    def result(self, job_id: str, *,
               wait: bool = True,
               wait_timeout: float = DEFAULT_WAIT_TIMEOUT) -> Job:
        """The finished job, raising on failure states.

        Raises :class:`RuntimeError` with the job's readable error when
        it failed or was cancelled, and :class:`TimeoutError` when
        ``wait`` expires first.
        """
        started = time.perf_counter()
        job = self.scheduler.job(job_id)
        if wait and not job.done:
            job = self.wait(job_id, timeout=wait_timeout)
        self._observe("result", started)
        if job.state in ("failed", "cancelled"):
            raise RuntimeError(
                f"job {job_id} {job.state}: {job.error or 'no detail'}"
            )
        if not job.done:
            raise TimeoutError(f"job {job_id} still {job.state}")
        return job

    def cancel(self, job_id: str) -> bool:
        """Withdraw a queued job (running jobs are never preempted)."""
        return self._call(self.scheduler.cancel(job_id))

    def query(
        self,
        *,
        key: str,
        persistence: float | None = None,
        top_k: int | None = None,
    ) -> dict:
        """Answer a multiscale query from a cached artifact — no compute.

        The artifact's persisted ``.msc`` v2 hierarchy footer answers
        any persistence threshold or top-k request as a pure lookup;
        loaded hierarchies are memoized per key, so a threshold sweep
        parses the file image exactly once.  Requires the artifact to
        have been computed with ``hierarchy=True`` (readable
        :class:`ValueError` otherwise; :class:`KeyError` for an unknown
        key).
        """
        started = time.perf_counter()
        with self.tracer.span("service.query", cat="service", key=key):
            hierarchies = self._hierarchies_for(key)
            answer = hierarchy_query(
                hierarchies, persistence=persistence, top_k=top_k
            ).to_dict()
            answer["key"] = key
        self._observe("query", started)
        return answer

    def stats(self) -> dict:
        """Service counters and latency metrics as one JSON-able dict."""
        from repro.io.spool import process_spool_totals

        started = time.perf_counter()
        snap = self.metrics.snapshot()
        hits = snap.get("service.cache.hits", {}).get("value", 0)
        misses = snap.get("service.cache.misses", {}).get("value", 0)
        total = hits + misses
        out = {
            "cache_hit_rate": (hits / total) if total else 0.0,
            "store_memory_entries": self.store.memory_entries,
            "jobs_tracked": len(self.scheduler.jobs()),
            # merge-stage memory pressure: out-of-core spool counters and
            # the resident-blob gauge, process-wide across every job this
            # daemon has run (spills stay 0 until a submission carries a
            # merge_spill_budget_bytes that forces them)
            "merge_spool": process_spool_totals(),
            "metrics": snap,
        }
        self._observe("stats", started)
        return out

    def artifact_path(self, key: str) -> Path | None:
        """Path of a cached ``.msc`` artifact (``None`` if absent)."""
        return self.store.artifact_path(key)

    def stage_field(self, values: np.ndarray) -> VolumeSpec:
        """Spool an in-memory field into the content-addressed staging
        area and return its :class:`VolumeSpec`.

        The file is named by the field's content hash, so staging the
        same field twice writes once and submitting it is always a
        cache-key match with its volume-file twin.
        """
        digest = content_hash(values)
        staging = self.cache_dir / "volumes"
        staging.mkdir(parents=True, exist_ok=True)
        path = staging / f"{digest}.raw"
        spec = VolumeSpec(
            str(path), tuple(np.asarray(values).shape), "float64"
        )
        if not path.exists():
            write_volume(path, values, dtype="float64")
        return spec

    def close(self) -> None:
        """Shut the scheduler down and stop the background loop."""
        if self._closed:
            return
        self._closed = True
        self._call(self.scheduler.close())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _call(self, coro):
        """Run one scheduler coroutine on the service loop, blocking."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def _observe(self, endpoint: str, started: float) -> None:
        self.metrics.histogram(
            f"service.endpoint.{endpoint}.seconds", SECONDS_BUCKETS
        ).observe(time.perf_counter() - started)

    def _hierarchies_for(self, key: str) -> dict:
        with self._hier_lock:
            cached = self._hier_cache.get(key)
            if cached is not None:
                self._hier_cache.move_to_end(key)
                return cached
        entry = self.store.get(key)
        if entry is None:
            raise KeyError(f"no cached result under key {key!r}")
        _record, image = entry
        hierarchies = load_hierarchy(image)
        with self._hier_lock:
            self._hier_cache[key] = hierarchies
            self._hier_cache.move_to_end(key)
            while len(self._hier_cache) > 16:
                self._hier_cache.popitem(last=False)
        return hierarchies
