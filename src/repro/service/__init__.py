"""MS-complex-as-a-service: compute once, serve from content hashes.

The paper computes each Morse-Smale complex once on a supercomputer;
this subsystem is the front door that serves that expensive artifact to
many callers.  Three layers, each useful on its own:

- :mod:`repro.service.store` — the content-addressed result cache:
  ``(volume content hash, config result fingerprint) → .msc artifact``
  with an on-disk layer, a bounded in-memory LRU, and one persistence
  provider behind every execution path;
- :mod:`repro.service.scheduler` — the asyncio job scheduler: bounded
  concurrency over persistent pipeline sessions, cache-hit admission,
  in-flight coalescing (N identical concurrent submissions run the
  pipeline once), cancellation, and per-job timeouts;
- :mod:`repro.service.client` / :mod:`repro.service.server` — the thin
  front ends: a synchronous same-process :class:`ServiceClient` and the
  ``repro serve`` JSON-over-HTTP daemon, both delegating to the same
  engine.

::

    from repro.service import ServiceClient

    with ServiceClient("./msc-cache", max_jobs=2) as svc:
        job = svc.submit(field, persistence=0.05, ranks=8,
                         hierarchy=True, wait=True)     # cold: computes
        again = svc.submit(field, persistence=0.05, ranks=8,
                           hierarchy=True)              # warm: cache hit
        sweep = [svc.query(key=job.key, persistence=p)
                 for p in (0.01, 0.05, 0.2)]            # pure lookups

See ``docs/SERVICE.md`` for the endpoint reference, job lifecycle, and
cache-key semantics.
"""

from repro.service.client import ServiceClient
from repro.service.scheduler import (
    JOB_STATES,
    ComputeRequest,
    Job,
    JobScheduler,
)
from repro.service.server import ServiceServer, make_server
from repro.service.store import (
    FileSystemPersistenceProvider,
    PersistenceProvider,
    ResultRecord,
    ResultStore,
    cache_key,
)

__all__ = [
    "JOB_STATES",
    "ComputeRequest",
    "FileSystemPersistenceProvider",
    "Job",
    "JobScheduler",
    "PersistenceProvider",
    "ResultRecord",
    "ResultStore",
    "ServiceClient",
    "ServiceServer",
    "cache_key",
    "make_server",
]
