"""Content-addressed result store: compute once, serve forever.

The service's cache maps a **content key** — ``SHA-256(volume content
hash + config result fingerprint)`` — to the finished artifact of one
pipeline run: the ``.msc`` file image plus a small canonical
:class:`ResultRecord`.  Because both key halves are content hashes
(:func:`repro.io.volume.content_hash`,
:meth:`repro.core.config.PipelineConfig.result_fingerprint`), the key
is valid forever: the same bytes in, the same bytes out, no
invalidation protocol.  Pure-scheduling knobs (workers, transports,
kernel backends) are deliberately *not* part of the key — outputs are
bit-identical across them, so a volume computed once serves every
execution spelling of the same request.

Two layers:

- **disk** — ``<root>/<key>.msc`` (written atomically via a same-dir
  temp file + rename) and ``<root>/<key>.json`` (the record sidecar).
  Survives process restarts; a daemon restarted over a warm directory
  starts at full hit rate.
- **memory** — a bounded LRU of hot entries holding the record and the
  ``.msc`` image, so repeat hits of popular artifacts serve without
  touching disk (query answers read the hierarchy footer straight from
  the cached bytes, see :func:`repro.analysis.query.load_hierarchy`).

Persistence provider (SNIPPETS Pattern 7 / INV-11): every execution
path — cold compute, disk hit, memory hit, coalesced join — produces
and returns *identical* :class:`ResultRecord` values because exactly
one code path builds and persists records: :meth:`ResultStore.put`
builds the canonical record and hands it to the single configured
:class:`PersistenceProvider`; reads reconstruct the same record from
the provider's sidecar.  Swapping the provider (e.g. for a database in
a real deployment) cannot fork record semantics per path.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.core.config import PipelineConfig
from repro.core.options import canonical_fingerprint
from repro.io.volume import VolumeSpec, content_hash
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import get_tracer

__all__ = [
    "PersistenceProvider",
    "FileSystemPersistenceProvider",
    "ResultRecord",
    "ResultStore",
    "cache_key",
]


def cache_key(volume_hash: str, config: PipelineConfig) -> str:
    """The content key of one (volume, result-config) request.

    Both inputs are content hashes themselves, so the key identifies
    the *answer*, not the request: any two requests with this key are
    satisfied by the same bytes.
    """
    return canonical_fingerprint(
        "service-key",
        {"volume": volume_hash, "config": config.result_fingerprint()},
    )


@dataclass(frozen=True)
class ResultRecord:
    """The canonical, path-independent description of one cached result.

    Every field is derived from the finished artifact or the request
    key — never from *how* the result was produced — so records built
    by a cold compute and records reloaded from the store compare equal
    (the INV-11 identity the service tests pin).  How a particular
    response was satisfied (cold / memory / disk / coalesced) is
    job-level metadata, reported on the job, never stored here.
    """

    key: str
    volume_hash: str
    config_fingerprint: str
    num_output_blocks: int
    node_counts: tuple[int, int, int, int]
    msc_bytes: int
    hierarchy: bool

    def to_dict(self) -> dict:
        """JSON-able form (the sidecar body and the HTTP result body)."""
        d = asdict(self)
        d["node_counts"] = list(self.node_counts)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ResultRecord":
        return cls(
            key=d["key"],
            volume_hash=d["volume_hash"],
            config_fingerprint=d["config_fingerprint"],
            num_output_blocks=int(d["num_output_blocks"]),
            node_counts=tuple(int(c) for c in d["node_counts"]),
            msc_bytes=int(d["msc_bytes"]),
            hierarchy=bool(d["hierarchy"]),
        )


@runtime_checkable
class PersistenceProvider(Protocol):
    """Protocol for persisting service results and job lifecycle events.

    One provider instance backs the whole service; every execution path
    persists through it, so records are identical no matter which path
    produced them.  Implementations must make :meth:`persist_result`
    atomic — a reader never observes a sidecar without its artifact.
    """

    def persist_result(self, record: ResultRecord, msc_image: bytes) -> None:
        """Durably store one finished artifact and its record."""
        ...

    def load_result(self, key: str) -> tuple[ResultRecord, bytes] | None:
        """Load a stored record + artifact image, or ``None``."""
        ...

    def artifact_path(self, key: str) -> Path | None:
        """Filesystem path of a stored artifact, if it has one."""
        ...

    def persist_job_event(self, event: dict) -> None:
        """Append one job lifecycle event to the service journal."""
        ...


class FileSystemPersistenceProvider:
    """The standard provider: artifacts + sidecars + a JSONL journal.

    Layout under ``root``::

        <key>.msc    the artifact (atomic rename; bit-identical to the
                     cold compute's written output)
        <key>.json   the ResultRecord sidecar
        jobs.jsonl   append-only job lifecycle journal

    Used by **all** execution contexts — the HTTP daemon, the
    same-process :class:`~repro.service.client.ServiceClient`, and the
    benchmarks — which is precisely what keeps their records identical.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._journal_lock = threading.Lock()

    def _msc_path(self, key: str) -> Path:
        return self.root / f"{key}.msc"

    def _sidecar_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def persist_result(self, record: ResultRecord, msc_image: bytes) -> None:
        # artifact first, sidecar last, both via same-dir temp + rename:
        # a crash between the two leaves an orphan artifact (harmless,
        # unreferenced), never a record pointing at missing bytes
        self._atomic_write(self._msc_path(record.key), msc_image)
        body = json.dumps(record.to_dict(), indent=2, sort_keys=True)
        self._atomic_write(self._sidecar_path(record.key),
                           (body + "\n").encode())

    def load_result(self, key: str) -> tuple[ResultRecord, bytes] | None:
        sidecar = self._sidecar_path(key)
        try:
            record = ResultRecord.from_dict(
                json.loads(sidecar.read_text())
            )
            image = self._msc_path(key).read_bytes()
        except FileNotFoundError:
            return None
        return record, image

    def artifact_path(self, key: str) -> Path | None:
        path = self._msc_path(key)
        return path if path.exists() else None

    def persist_job_event(self, event: dict) -> None:
        line = json.dumps(event, sort_keys=True)
        with self._journal_lock, open(self.root / "jobs.jsonl", "a") as f:
            f.write(line + "\n")

    def _atomic_write(self, path: Path, data: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(self.root),
                                   prefix=path.name + ".")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


class ResultStore:
    """The two-layer content-addressed cache the scheduler serves from.

    Thread-safe: the HTTP server's handler threads and the scheduler's
    executor threads share one store.  ``max_memory_entries`` bounds
    the hot LRU layer (0 disables it; disk alone still dedupes
    recomputation).
    """

    def __init__(
        self,
        root: str | Path,
        *,
        provider: PersistenceProvider | None = None,
        max_memory_entries: int = 64,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.provider: PersistenceProvider = (
            provider
            if provider is not None
            else FileSystemPersistenceProvider(root)
        )
        self.max_memory_entries = max_memory_entries
        self.metrics = metrics
        self._lock = threading.Lock()
        self._hot: OrderedDict[str, tuple[ResultRecord, bytes]] = (
            OrderedDict()
        )

    # -- keying ------------------------------------------------------------

    def key_for(
        self, source: VolumeSpec | "object", config: PipelineConfig
    ) -> str:
        """The cache key of a request (hashes the volume content)."""
        return cache_key(content_hash(source), config)

    # -- reads -------------------------------------------------------------

    def get(self, key: str) -> tuple[ResultRecord, bytes] | None:
        """The cached (record, ``.msc`` image) of ``key``, or ``None``.

        Memory first, disk second; a disk hit is promoted into the LRU.
        """
        with self._lock:
            hot = self._hot.get(key)
            if hot is not None:
                self._hot.move_to_end(key)
                self._count("service.store.memory_hits")
                return hot
        loaded = self.provider.load_result(key)
        if loaded is None:
            self._count("service.store.misses")
            return None
        self._count("service.store.disk_hits")
        self._remember(key, loaded)
        return loaded

    def contains(self, key: str) -> bool:
        with self._lock:
            if key in self._hot:
                return True
        return self.provider.artifact_path(key) is not None

    def artifact_path(self, key: str) -> Path | None:
        """Path of the stored artifact (for responses that hand a file)."""
        return self.provider.artifact_path(key)

    # -- writes ------------------------------------------------------------

    def put(
        self,
        key: str,
        *,
        volume_hash: str,
        config: PipelineConfig,
        msc_image: bytes,
        num_output_blocks: int,
        node_counts: tuple[int, int, int, int],
    ) -> ResultRecord:
        """Build the canonical record, persist both layers, return it.

        The single record-construction site of the whole service: cold
        computes call this; every other path re-reads what this wrote.
        """
        record = ResultRecord(
            key=key,
            volume_hash=volume_hash,
            config_fingerprint=config.result_fingerprint(),
            num_output_blocks=int(num_output_blocks),
            node_counts=tuple(int(c) for c in node_counts),
            msc_bytes=len(msc_image),
            hierarchy=config.hierarchy,
        )
        with get_tracer().span(
            "service.store.put", cat="service", key=key,
            bytes=len(msc_image),
        ):
            self.provider.persist_result(record, msc_image)
        self._remember(key, (record, msc_image))
        self._count("service.store.puts")
        return record

    # -- internals ---------------------------------------------------------

    def _remember(self, key: str,
                  entry: tuple[ResultRecord, bytes]) -> None:
        if self.max_memory_entries <= 0:
            return
        with self._lock:
            self._hot[key] = entry
            self._hot.move_to_end(key)
            while len(self._hot) > self.max_memory_entries:
                self._hot.popitem(last=False)
                self._count("service.store.evictions")

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    @property
    def memory_entries(self) -> int:
        with self._lock:
            return len(self._hot)
