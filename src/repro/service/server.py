"""The ``repro serve`` HTTP daemon: JSON over stdlib ``http.server``.

A deliberately thin layer: every route parses JSON, delegates to the
same :class:`~repro.service.client.ServiceClient` a same-process caller
would use, and serializes the answer — no business logic lives here, so
the HTTP path and the in-process path cannot drift (the single-provider
discipline of :mod:`repro.service.store`).

Routes (all bodies JSON):

========  ==========================  =====================================
method    path                        answers
========  ==========================  =====================================
GET       ``/v1/healthz``             liveness probe
POST      ``/v1/submit``              admit a compute request (see below)
GET       ``/v1/jobs``                all tracked jobs, oldest first
GET       ``/v1/jobs/<id>``           one job's status
GET       ``/v1/jobs/<id>/result``    final record (``?wait=1&timeout=S``)
GET       ``/v1/query``               multiscale lookup from the cache:
                                      ``?key=K&persistence=P`` (repeatable)
                                      or ``?key=K&top_k=N``
GET       ``/v1/stats``               cache hit rate, counters, latencies
========  ==========================  =====================================

``POST /v1/submit`` body::

    {"volume": {"path": "...", "dims": [64, 64, 64], "dtype": "float32"},
     "persistence": 0.05, "ranks": 8, "merge_radix": 2,
     "hierarchy": true, "options": {"workers": 4}, "timeout": 120,
     "wait": false}

The server is a :class:`ThreadingHTTPServer`: handler threads block on
the scheduler bridge while the asyncio loop multiplexes the actual
work, so slow computes never stall health checks or cache hits.
Per-route latency histograms land in the shared metrics registry as
``service.http.<route>.seconds``.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.core.options import ExecutionOptions
from repro.io.volume import VolumeSpec
from repro.obs.metrics import SECONDS_BUCKETS
from repro.service.client import ServiceClient

__all__ = ["ServiceServer", "make_server"]


class _BadRequest(ValueError):
    """A request error answered with HTTP 400 and a readable message."""


def _parse_submit_body(body: dict) -> dict:
    """Validate a submit body into :meth:`ServiceClient.submit` kwargs."""
    if not isinstance(body, dict):
        raise _BadRequest("submit body must be a JSON object")
    vol = body.get("volume")
    if not isinstance(vol, dict) or "path" not in vol or "dims" not in vol:
        raise _BadRequest(
            "submit body needs volume: {path, dims[, dtype]}"
        )
    dims = vol["dims"]
    if not (isinstance(dims, list) and len(dims) == 3):
        raise _BadRequest("volume.dims must be a 3-element list")
    spec = VolumeSpec(
        str(vol["path"]),
        tuple(int(n) for n in dims),
        str(vol.get("dtype", "float32")),
    )
    options = None
    if body.get("options") is not None:
        if not isinstance(body["options"], dict):
            raise _BadRequest(
                "options must be an object of ExecutionOptions fields"
            )
        try:
            options = ExecutionOptions(**body["options"])
        except (TypeError, ValueError) as exc:
            raise _BadRequest(f"invalid options: {exc}") from None
    merge_radix = body.get("merge_radix", 2)
    if isinstance(merge_radix, list):
        merge_radix = [int(r) for r in merge_radix]
    return {
        "source": spec,
        "persistence": float(body.get("persistence", 0.0)),
        "ranks": int(body.get("ranks", 1)),
        "merge_radix": merge_radix,
        "hierarchy": bool(body.get("hierarchy", False)),
        "options": options,
        "timeout": (
            float(body["timeout"])
            if body.get("timeout") is not None
            else None
        ),
        "wait": bool(body.get("wait", False)),
    }


class _Handler(BaseHTTPRequestHandler):
    """Routes one request to the shared :class:`ServiceClient`."""

    server: "ServiceServer"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, fmt: str, *args) -> None:  # stdlib is noisy
        pass

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _route(self, method: str) -> None:
        started = time.perf_counter()
        url = urlparse(self.path)
        route = "unknown"
        try:
            route, status, payload = self._dispatch(method, url)
        except _BadRequest as exc:
            status, payload = 400, {"error": str(exc)}
        except KeyError as exc:
            status, payload = 404, {"error": f"not found: {exc}"}
        except ValueError as exc:
            status, payload = 400, {"error": str(exc)}
        except OSError as exc:
            # admission reads the volume to hash it; an unreadable
            # volume is a caller error, not a service failure
            status, payload = 400, {"error": f"cannot read volume: {exc}"}
        except TimeoutError as exc:
            status, payload = 504, {"error": str(exc)}
        except RuntimeError as exc:
            # a failed/cancelled job surfaced through result(): the
            # request worked, the job did not — hand the detail back
            status, payload = 409, {"error": str(exc)}
        self._send_json(status, payload)
        self.server.client.metrics.histogram(
            f"service.http.{route}.seconds", SECONDS_BUCKETS
        ).observe(time.perf_counter() - started)

    # -- routing -----------------------------------------------------------

    def _dispatch(self, method: str, url) -> tuple[str, int, dict]:
        client = self.server.client
        parts = [p for p in url.path.split("/") if p]
        params = parse_qs(url.query)

        if method == "GET" and parts == ["v1", "healthz"]:
            return "healthz", 200, {"ok": True}

        if method == "POST" and parts == ["v1", "submit"]:
            length = int(self.headers.get("Content-Length") or 0)
            try:
                body = json.loads(self.rfile.read(length) or b"{}")
            except json.JSONDecodeError as exc:
                raise _BadRequest(f"invalid JSON body: {exc}") from None
            kwargs = _parse_submit_body(body)
            job = client.submit(**kwargs)
            payload = job.to_dict()
            payload["cached"] = job.source == "cache"
            return "submit", 200, payload

        if method == "GET" and parts == ["v1", "jobs"]:
            return "jobs", 200, {
                "jobs": [j.to_dict() for j in client.scheduler.jobs()]
            }

        if method == "GET" and len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            return "job", 200, client.status(parts[2]).to_dict()

        if (
            method == "GET"
            and len(parts) == 4
            and parts[:2] == ["v1", "jobs"]
            and parts[3] == "result"
        ):
            wait = params.get("wait", ["0"])[0] not in ("0", "false", "")
            timeout = float(params.get("timeout", ["600"])[0])
            job = client.result(parts[2], wait=wait, wait_timeout=timeout)
            payload = job.to_dict()
            path = client.artifact_path(job.key)
            payload["artifact"] = str(path) if path else None
            return "result", 200, payload

        if method == "GET" and parts == ["v1", "query"]:
            key = params.get("key", [None])[0]
            if not key:
                raise _BadRequest("query needs ?key=<result key>")
            top_k = params.get("top_k", [None])[0]
            thresholds = [float(p) for p in params.get("persistence", [])]
            if (top_k is None) == (not thresholds):
                raise _BadRequest(
                    "query needs exactly one of persistence= and top_k="
                )
            if top_k is not None:
                queries = [client.query(key=key, top_k=int(top_k))]
            else:
                queries = [
                    client.query(key=key, persistence=p)
                    for p in thresholds
                ]
            return "query", 200, {"key": key, "queries": queries}

        if method == "GET" and parts == ["v1", "stats"]:
            return "stats", 200, client.stats()

        raise KeyError(f"{method} {url.path}")

    # -- stdlib entry points ----------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        self._route("POST")


class ServiceServer(ThreadingHTTPServer):
    """The daemon: a threading HTTP server bound to one service client.

    Owns nothing the client does not — closing the server leaves the
    client (and its cache) reusable; :meth:`shutdown_service` tears
    both down for the CLI daemon path.
    """

    daemon_threads = True

    def __init__(self, address: tuple[str, int],
                 client: ServiceClient) -> None:
        super().__init__(address, _Handler)
        self.client = client

    def shutdown_service(self) -> None:
        """Stop serving and close the underlying service client."""
        self.shutdown()
        self.server_close()
        self.client.close()


def make_server(client: ServiceClient, host: str = "127.0.0.1",
                port: int = 0) -> ServiceServer:
    """Bind a :class:`ServiceServer` (``port=0`` picks a free port)."""
    return ServiceServer((host, port), client)
