"""repro — parallel computation of Morse-Smale complexes.

A faithful, pure-Python reproduction of

    A. Gyulassy, V. Pascucci, T. Peterka, R. Ross,
    "The Parallel Computation of Morse-Smale Complexes", IPDPS 2012.

The package implements the paper's two-stage data-parallel algorithm —
per-block discrete-gradient / MS-complex computation followed by radix-k
merge rounds — together with every substrate it depends on: a cubical
cell complex over structured grids, discrete Morse theory (gradient
construction, V-path tracing, persistence simplification), a virtual MPI
runtime, a real shared-memory process-pool backend for the compute
stage, parallel block I/O, a Blue Gene/P machine model, and dataset
generators for the paper's synthetic and scientific workloads.

Quickstart (the unified facade, see ``docs/API.md``)::

    import numpy as np
    from repro import compute
    from repro.data import sinusoidal_field

    field = sinusoidal_field(points_per_side=32, features_per_side=4)
    result = compute(field, persistence=0.05)
    print(result.merged_complexes[0].summary())

Parallel execution — 8 virtual ranks merged radix-8, compute stage on a
4-process worker pool (bit-identical to the serial run)::

    from repro import ExecutionOptions

    result = compute(field, persistence=0.05, ranks=8, merge_radix=8,
                     options=ExecutionOptions(workers=4))
    print(result.stats.describe())

Multiscale queries — compute once with the ``hierarchy`` option, persist
the cancellation hierarchy into the ``.msc`` v2 footer, then answer any
persistence threshold as a pure lookup (no re-simplification)::

    result = compute(field, options=ExecutionOptions(hierarchy=True))
    result.write("out.msc")
    from repro import query
    print(query("out.msc", persistence=0.1).node_counts_by_index())

Streaming time series — a persistent session reuses the worker pools,
the shared-memory slot, and the cached decomposition/merge plan across
timesteps (bit-identical to per-step ``compute`` calls, several times
the steady-state throughput; volume files stream out-of-core via the
``mmap`` transport)::

    with repro.open_session(persistence=0.05, ranks=8,
                            options=ExecutionOptions(workers=4)) as s:
        for field in timesteps:
            result = s.run(field)

Serving many callers — the service layer computes each distinct
``(volume content, result config)`` pair once and answers every repeat
or concurrent duplicate from a content-addressed cache (``repro serve``
runs the same engine as an HTTP daemon; see ``docs/SERVICE.md``)::

    with repro.open_service("./msc-cache") as svc:
        job = svc.submit(field, persistence=0.05, ranks=8,
                         hierarchy=True, wait=True)
        print(svc.query(key=job.key, persistence=0.1))

The lower-level entry points (``compute_morse_smale_complex`` for a bare
serial complex with its cancellation hierarchy,
``ParallelMSComplexPipeline`` for full configuration control) remain
available below the facade.
"""

from repro import api, obs
from repro.api import (
    ServiceClient,
    compute,
    load_hierarchy,
    open_service,
    open_session,
    query,
)
from repro.core.config import MergeSchedule, PipelineConfig
from repro.core.options import ExecutionOptions
from repro.core.pipeline import (
    ParallelMSComplexPipeline,
    compute_morse_smale_complex,
)
from repro.core.result import PipelineResult
from repro.core.session import PipelineSession
from repro.morse.msc import MorseSmaleComplex
from repro.morse.gradient import compute_discrete_gradient
from repro.mesh.grid import StructuredGrid

__version__ = "1.0.0"

__all__ = [
    "ExecutionOptions",
    "MergeSchedule",
    "MorseSmaleComplex",
    "ParallelMSComplexPipeline",
    "PipelineConfig",
    "PipelineResult",
    "PipelineSession",
    "ServiceClient",
    "StructuredGrid",
    "api",
    "compute",
    "compute_discrete_gradient",
    "compute_morse_smale_complex",
    "load_hierarchy",
    "obs",
    "open_service",
    "open_session",
    "query",
    "__version__",
]
