"""repro — parallel computation of Morse-Smale complexes.

A faithful, pure-Python reproduction of

    A. Gyulassy, V. Pascucci, T. Peterka, R. Ross,
    "The Parallel Computation of Morse-Smale Complexes", IPDPS 2012.

The package implements the paper's two-stage data-parallel algorithm —
per-block discrete-gradient / MS-complex computation followed by radix-k
merge rounds — together with every substrate it depends on: a cubical
cell complex over structured grids, discrete Morse theory (gradient
construction, V-path tracing, persistence simplification), a virtual MPI
runtime, parallel block I/O, a Blue Gene/P machine model, and dataset
generators for the paper's synthetic and scientific workloads.

Quickstart::

    import numpy as np
    from repro import compute_morse_smale_complex
    from repro.data import sinusoidal_field

    field = sinusoidal_field(points_per_side=32, features_per_side=4)
    msc = compute_morse_smale_complex(field)
    print(msc.summary())

Parallel pipeline::

    from repro import ParallelMSComplexPipeline, PipelineConfig

    cfg = PipelineConfig(num_blocks=8, persistence_threshold=0.05)
    result = ParallelMSComplexPipeline(cfg).run(field)
    print(result.merged_complexes[0].summary())
"""

from repro.core.config import MergeSchedule, PipelineConfig
from repro.core.pipeline import (
    ParallelMSComplexPipeline,
    compute_morse_smale_complex,
)
from repro.core.result import PipelineResult
from repro.morse.msc import MorseSmaleComplex
from repro.morse.gradient import compute_discrete_gradient
from repro.mesh.grid import StructuredGrid

__version__ = "1.0.0"

__all__ = [
    "MergeSchedule",
    "MorseSmaleComplex",
    "ParallelMSComplexPipeline",
    "PipelineConfig",
    "PipelineResult",
    "StructuredGrid",
    "compute_discrete_gradient",
    "compute_morse_smale_complex",
    "__version__",
]
