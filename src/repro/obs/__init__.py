"""repro.obs — tracing, metrics, and profiling for the whole pipeline.

The paper's evaluation (§V) is an observability exercise: per-stage
compute and merge timings, output sizes, and merge-strategy comparisons
across thousands of ranks.  This subsystem is the reproduction's
equivalent instrumentation layer:

- :mod:`repro.obs.trace` — a span-based :class:`Tracer` with
  zero-cost-when-disabled ``span()`` context managers and instant event
  marks.  Process- and worker-aware: every pool worker records into a
  local buffer that ships back with its block payload, and the driver
  stitches all buffers into one timeline with per-process (pid) and
  per-lane (tid) structure.
- :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms with cross-process snapshot/merge aggregation.
- :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (loadable in
  ``chrome://tracing`` / Perfetto), a flat JSON metrics dump, and the
  text run summary :meth:`repro.core.stats.PipelineStats.describe`
  delegates to.

Enable per run with ``PipelineConfig(trace=True, metrics=True)``,
``repro.compute(..., trace=True)``, or the CLI's ``--trace PATH`` /
``--metrics PATH`` flags; see ``docs/OBSERVABILITY.md``.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    NULL_TRACER,
    TraceEvent,
    TraceRecord,
    Tracer,
    get_tracer,
)
from repro.obs.export import (
    to_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "TraceEvent",
    "TraceRecord",
    "Tracer",
    "get_tracer",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_metrics_json",
]
