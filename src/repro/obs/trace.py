"""Span-based distributed tracing.

A :class:`Tracer` records two kinds of :class:`TraceEvent`:

- *spans* — named intervals opened with the ``with tracer.span(...)``
  context manager; duration is measured on exit, so spans recorded by
  single-threaded code are always properly nested within their lane;
- *marks* — instant events recorded with :meth:`Tracer.event`.

Every event carries a ``pid`` (the recording OS process) and a ``tid``
*lane*.  Lanes separate logically concurrent actors that share one
process: the driver records on lane 0, each virtual MPI rank on lane
``RANK_LANE_BASE + rank``, and pool workers on lane 0 of their own pid.
The combination renders as one timeline with per-process / per-rank
rows in ``chrome://tracing`` or Perfetto (see :mod:`repro.obs.export`).

Distribution model: tracing never requires coordination while events
are recorded.  Each pool worker builds its own buffer (a fresh
:class:`Tracer` per block inside
:func:`repro.core.pipeline.compute_block`); the payload ships the
buffer back with the block result, and the driver calls
:meth:`Tracer.absorb` to stitch all buffers into one timeline.  The
timebase is :func:`time.perf_counter`, which on Linux is
``CLOCK_MONOTONIC`` and therefore directly comparable across the
processes of one run; exporters normalise to the earliest event.

Zero cost when disabled: ``span()`` on a disabled tracer returns a
shared no-op context manager and ``event()`` returns immediately —
no allocation, no clock read.  Library code that wants ambient tracing
uses :func:`get_tracer`, which resolves to the disabled
:data:`NULL_TRACER` unless a run has installed one (see
:meth:`Tracer.installed`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

__all__ = [
    "DRIVER_LANE",
    "NULL_TRACER",
    "RANK_LANE_BASE",
    "TraceEvent",
    "TraceRecord",
    "Tracer",
    "get_tracer",
]

#: driver-process main lane (tid) of the stitched timeline
DRIVER_LANE = 0
#: virtual rank ``r`` records on lane ``RANK_LANE_BASE + r``
RANK_LANE_BASE = 1

#: ``dur`` value marking an instant event (marks have no duration)
INSTANT = -1.0


@dataclass(slots=True)
class TraceEvent:
    """One recorded span or mark (picklable, ships in block payloads)."""

    name: str
    cat: str
    ts: float  #: start, seconds on the perf_counter timebase
    dur: float  #: span duration in seconds; :data:`INSTANT` for marks
    pid: int
    tid: int
    args: dict = field(default_factory=dict)

    @property
    def is_span(self) -> bool:
        return self.dur >= 0.0

    @property
    def end(self) -> float:
        return self.ts + max(self.dur, 0.0)


class _NullSpan:
    """Shared no-op context manager returned by disabled tracers."""

    __slots__ = ()
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def annotate(self, **args: object) -> None:
        """Discard post-hoc annotations."""


_NULL_SPAN = _NullSpan()


class _Span:
    """Live span: measures its own interval, appends itself on exit."""

    __slots__ = ("_tracer", "name", "cat", "tid", "args", "_start",
                 "duration")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 tid: int, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.tid = tid
        self.args = args
        self._start = 0.0
        self.duration = 0.0

    def annotate(self, **args: object) -> None:
        """Attach result attributes discovered while the span ran."""
        self.args.update(args)

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = time.perf_counter()
        self.duration = end - self._start
        t = self._tracer
        t._events.append(
            TraceEvent(self.name, self.cat, self._start, self.duration,
                       t.pid, self.tid, self.args)
        )
        return False


class Tracer:
    """Collects :class:`TraceEvent` records for one process (or worker).

    ``lane`` is the default tid of recorded events; pass ``lane=`` per
    span/event to record onto another lane (the virtual-rank pattern).
    """

    def __init__(self, enabled: bool = True, lane: int = DRIVER_LANE) -> None:
        self.enabled = enabled
        self.pid = os.getpid()
        self.lane = lane
        self._events: list[TraceEvent] = []

    # -- recording --------------------------------------------------------

    def span(self, name: str, cat: str = "pipeline",
             lane: int | None = None, **args: object):
        """Context manager timing a named interval; no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, cat,
                     self.lane if lane is None else lane, args)

    def event(self, name: str, cat: str = "pipeline",
              lane: int | None = None, **args: object) -> None:
        """Record an instant mark; no-op when disabled."""
        if not self.enabled:
            return
        self._events.append(
            TraceEvent(name, cat, time.perf_counter(), INSTANT, self.pid,
                       self.lane if lane is None else lane, dict(args))
        )

    # -- reading / stitching ----------------------------------------------

    @property
    def events(self) -> list[TraceEvent]:
        """The recorded events, in completion order."""
        return self._events

    def absorb(self, events: list[TraceEvent]) -> None:
        """Stitch another buffer (e.g. a worker's) into this timeline."""
        self._events.extend(events)

    def duration(self, name: str) -> float:
        """Total seconds spent in spans called ``name``.

        The canonical stage-timing read: every real wall time
        :class:`repro.core.stats.PipelineStats` reports is a span
        duration, never a parallel stopwatch.
        """
        return sum(e.dur for e in self._events
                   if e.name == name and e.dur > 0.0)

    def spans(self, name: str | None = None) -> list[TraceEvent]:
        """Recorded spans, optionally filtered by name."""
        return [e for e in self._events
                if e.is_span and (name is None or e.name == name)]

    # -- ambient installation ---------------------------------------------

    def installed(self) -> "_Installed":
        """Install this tracer as the process-ambient tracer.

        While the returned context manager is active,
        :func:`get_tracer` resolves to this tracer, so kernel- and
        io-level spans land in this buffer.  Restores the previous
        ambient tracer on exit (reentrant-safe).
        """
        return _Installed(self)


class _Installed:
    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        global _AMBIENT
        self._previous = _AMBIENT
        _AMBIENT = self._tracer
        return self._tracer

    def __exit__(self, *exc: object) -> bool:
        global _AMBIENT
        _AMBIENT = self._previous
        return False


#: the always-disabled tracer ambient code sees outside any traced run
NULL_TRACER = Tracer(enabled=False)

_AMBIENT: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-ambient tracer (:data:`NULL_TRACER` unless installed).

    Library code (kernels, io) calls this at span sites; the call costs
    one global read, and on the null tracer ``span()`` costs one
    attribute check — unmeasurable against any real kernel work.
    """
    return _AMBIENT


@dataclass
class TraceRecord:
    """A finished run's stitched timeline, ready for export.

    ``process_names`` maps pid -> label ("driver", "worker ..."), and
    ``thread_names`` maps (pid, tid) -> lane label ("main", "rank 3",
    ...); exporters emit them as Chrome metadata events so Perfetto
    shows readable rows.
    """

    events: list[TraceEvent] = field(default_factory=list)
    process_names: dict[int, str] = field(default_factory=dict)
    thread_names: dict[tuple[int, int], str] = field(default_factory=dict)

    def to_chrome(self) -> dict:
        """The Chrome ``trace_event`` JSON object for this record."""
        from repro.obs.export import to_chrome_trace

        return to_chrome_trace(self.events, self.process_names,
                               self.thread_names)

    def write(self, path) -> int:
        """Write the Chrome-trace JSON file; returns bytes written."""
        from repro.obs.export import write_chrome_trace

        return write_chrome_trace(path, self.events, self.process_names,
                                  self.thread_names)
