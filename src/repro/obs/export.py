"""Exporters: Chrome trace JSON, flat metrics JSON, text run summary.

The trace exporter emits the Chrome ``trace_event`` format (the JSON
object form, ``{"traceEvents": [...]}``) understood by
``chrome://tracing`` and https://ui.perfetto.dev: spans become complete
(``"ph": "X"``) events, marks become instant (``"ph": "i"``) events,
and process/lane labels become metadata (``"ph": "M"``) events.
Timestamps are microseconds relative to the earliest recorded event, so
timelines always start at zero regardless of the perf_counter epoch.

:func:`format_run_summary` is the single formatter behind
:meth:`repro.core.stats.PipelineStats.describe`; it works on any object
exposing the ``PipelineStats`` fields, so this module never imports
:mod:`repro.core`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.trace import TraceEvent

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "metrics_to_json",
    "write_metrics_json",
    "format_run_summary",
]


def to_chrome_trace(
    events: Iterable[TraceEvent],
    process_names: dict[int, str] | None = None,
    thread_names: dict[tuple[int, int], str] | None = None,
) -> dict:
    """Convert recorded events to a Chrome ``trace_event`` JSON object.

    Every emitted event carries ``name``, ``ph``, ``ts``, ``pid`` and
    ``tid``; spans additionally carry ``dur``.  All times are integer
    microseconds, zero-based at the earliest event.
    """
    events = list(events)
    origin = min((e.ts for e in events), default=0.0)

    def us(seconds: float) -> int:
        return round((seconds - origin) * 1e6)

    out: list[dict] = []
    for pid, label in sorted((process_names or {}).items()):
        out.append({
            "name": "process_name", "ph": "M", "ts": 0,
            "pid": pid, "tid": 0, "args": {"name": label},
        })
    for (pid, tid), label in sorted((thread_names or {}).items()):
        out.append({
            "name": "thread_name", "ph": "M", "ts": 0,
            "pid": pid, "tid": tid, "args": {"name": label},
        })
        out.append({
            "name": "thread_sort_index", "ph": "M", "ts": 0,
            "pid": pid, "tid": tid, "args": {"sort_index": tid},
        })
    for e in events:
        record = {
            "name": e.name,
            "cat": e.cat,
            "ts": us(e.ts),
            "pid": e.pid,
            "tid": e.tid,
            "args": dict(e.args),
        }
        if e.is_span:
            record["ph"] = "X"
            record["dur"] = round(e.dur * 1e6)
        else:
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped instant
        out.append(record)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str | Path,
    events: Iterable[TraceEvent],
    process_names: dict[int, str] | None = None,
    thread_names: dict[tuple[int, int], str] | None = None,
) -> int:
    """Write the Chrome-trace JSON file; returns bytes written."""
    payload = json.dumps(
        to_chrome_trace(events, process_names, thread_names),
        separators=(",", ":"),
    ).encode()
    Path(path).write_bytes(payload)
    return len(payload)


def metrics_to_json(metrics) -> dict:
    """Flat JSON form of a registry or an already-taken snapshot."""
    snap = metrics if isinstance(metrics, dict) else metrics.snapshot()
    return {name: snap[name] for name in sorted(snap)}


def write_metrics_json(path: str | Path, metrics) -> int:
    """Write the metrics dump as pretty JSON; returns bytes written."""
    payload = json.dumps(
        metrics_to_json(metrics), indent=2, sort_keys=True
    ).encode() + b"\n"
    Path(path).write_bytes(payload)
    return len(payload)


def format_run_summary(stats) -> str:
    """Multi-line human-readable report of one pipeline run.

    The single source of the run-summary text:
    :meth:`repro.core.stats.PipelineStats.describe` delegates here.
    """
    s = stats.stage_breakdown()
    lines = [
        f"procs={stats.num_procs} blocks={stats.num_blocks} "
        f"radices={stats.radices}",
        f"  virtual: read={s['read']:.3f}s compute={s['compute']:.3f}s "
        f"merge={s['merge']:.3f}s write={s['write']:.3f}s "
        f"total={s['total']:.3f}s",
        f"  real: {stats.real_seconds_total:.3f}s wall; compute stage "
        f"{stats.compute_wall_seconds:.3f}s wall / "
        f"{stats.compute_cpu_seconds:.3f}s cpu "
        f"({stats.executor}, workers={stats.workers}, "
        f"speedup={stats.compute_speedup:.2f}x)",
        f"  output: {stats.output_bytes} bytes, "
        f"messages: {stats.message_bytes} bytes",
    ]
    stages = stats.compute_stage_seconds()
    if any(stages.values()):
        lines.append(
            "  compute stages: "
            + " ".join(f"{k}={v:.3f}s" for k, v in stages.items())
        )
    lines.append("  " + stats.transport.describe())
    if stats.faults.any_faults():
        lines.append("  " + stats.faults.describe())
    if stats.trace is not None:
        lines.append(
            f"  trace: {len(stats.trace.events)} events across "
            f"{len(stats.trace.process_names)} process(es)"
        )
    if stats.metrics is not None:
        lines.append(f"  metrics: {len(stats.metrics)} series recorded")
    return "\n".join(lines)
