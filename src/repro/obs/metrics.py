"""Counters, gauges, and fixed-bucket histograms with worker aggregation.

A :class:`MetricsRegistry` is a process-local bag of named metrics.
Cross-process aggregation works by value, not by shared state: each pool
worker fills its own registry while computing a block, ships
``registry.snapshot()`` (a plain JSON-able dict) back inside the block
payload, and the driver folds every snapshot into the run registry with
:meth:`MetricsRegistry.merge_snapshot`.  Merging is associative and
commutative — counters and histograms add, gauges keep their maximum —
so the aggregate is independent of worker scheduling and retry order.

Fixed buckets (rather than adaptive ones) keep histograms mergeable:
two histograms with the same name always have the same bucket bounds,
so their counts add element-wise.
"""

from __future__ import annotations

import bisect
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SECONDS_BUCKETS",
    "BYTES_BUCKETS",
    "COUNT_BUCKETS",
]

#: default buckets for durations in seconds (1 ms .. 10 s)
SECONDS_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
#: default buckets for sizes in bytes (64 B .. 256 MiB, x4 steps)
BYTES_BUCKETS = tuple(64 * 4 ** i for i in range(12))
#: default buckets for small structural counts (1 .. 65536, x4 steps)
COUNT_BUCKETS = tuple(4 ** i for i in range(9))


class Counter:
    """Monotonically increasing sum."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def merge(self, snap: dict) -> None:
        self.value += snap["value"]


class Gauge:
    """Last-set value; merges across processes by maximum.

    The pipeline uses gauges for high-water marks (published segment
    bytes, pool width), where the max of per-process observations is
    the meaningful aggregate.
    """

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def merge(self, snap: dict) -> None:
        self.value = max(self.value, snap["value"])


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus overflow.

    ``counts[i]`` is the number of observations ``<= buckets[i]``
    (non-cumulative); ``counts[-1]`` holds the overflow above the last
    bound.  ``sum`` and ``count`` allow mean reconstruction.
    """

    kind = "histogram"
    __slots__ = ("name", "buckets", "counts", "sum", "count")

    def __init__(self, name: str,
                 buckets: Iterable[float] = SECONDS_BUCKETS) -> None:
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        if not self.buckets or list(self.buckets) != sorted(self.buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def merge(self, snap: dict) -> None:
        if tuple(snap["buckets"]) != self.buckets:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge mismatched "
                f"buckets {snap['buckets']} into {list(self.buckets)}"
            )
        for i, c in enumerate(snap["counts"]):
            self.counts[i] += c
        self.sum += snap["sum"]
        self.count += snap["count"]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named metrics with get-or-create access and snapshot merging."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{metric.kind}, not {kind.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  buckets: Iterable[float] = SECONDS_BUCKETS) -> Histogram:
        return self._get(name, Histogram, buckets=buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str):
        return self._metrics[name]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    # -- aggregation -------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able value dump, the unit of cross-process shipping."""
        return {name: m.snapshot() for name, m in self._metrics.items()}

    def merge_snapshot(self, snap: dict | None) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Metrics unknown to this registry are created with the
        snapshot's kind and buckets, so the driver needs no advance
        schema of what workers measured.
        """
        if not snap:
            return
        for name, entry in snap.items():
            kind = _KINDS[entry["kind"]]
            if kind is Histogram:
                metric = self._get(name, kind, buckets=entry["buckets"])
            else:
                metric = self._get(name, kind)
            metric.merge(entry)

    def describe(self) -> str:
        """Readable one-metric-per-line summary (sorted by name)."""
        lines = []
        for name in self.names():
            m = self._metrics[name]
            if isinstance(m, Histogram):
                lines.append(
                    f"{name}: count={m.count} sum={m.sum:.6g} "
                    f"mean={m.mean:.6g}"
                )
            else:
                lines.append(f"{name}: {m.value:.6g}")
        return "\n".join(lines)
