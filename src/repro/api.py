"""Unified high-level facade: one entry point for every execution mode.

Historically the package exposed three inconsistent ways to compute an
MS complex — the serial :func:`repro.core.pipeline.compute_morse_smale_complex`,
the :class:`~repro.core.pipeline.ParallelMSComplexPipeline` driver, and
the ``repro.cli`` command line — each with its own parameter spelling.
:func:`compute` replaces them for library users: a single keyword-only
call that routes to the in-process serial path when
``ranks == workers == 1`` and to the full parallel pipeline otherwise,
always returning a :class:`~repro.core.result.PipelineResult`.

::

    import repro
    result = repro.compute(field, persistence=0.05, ranks=8, workers=4)
    msc = result.merged_complexes[0]

``ranks`` is the number of virtual MPI processes (= blocks of the
bisection decomposition, the paper's one-block-per-process setup);
``workers`` is the width of the real shared-memory worker pool the
compute stage fans out over (see :mod:`repro.parallel.executor`).  The
two compose: ranks model the paper's distributed machine, workers use
this machine's cores.  Results are bit-identical across worker counts.

The legacy entry points remain importable; positional-argument use of
``compute_morse_smale_complex`` and the short ``PipelineConfig`` field
aliases (``persistence``, ``blocks``, ``procs``) are deprecated and emit
:class:`DeprecationWarning` for one release (see ``docs/API.md``).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.pipeline import ParallelMSComplexPipeline
from repro.core.result import PipelineResult
from repro.io.volume import VolumeSpec
from repro.mesh.grid import StructuredGrid

__all__ = ["compute"]


def compute(
    values: np.ndarray | StructuredGrid | VolumeSpec,
    *,
    persistence: float = 0.0,
    workers: int = 1,
    ranks: int = 1,
    transport: str = "auto",
    merge_executor: str = "auto",
    merge_radix: int | Sequence[int] | str = 2,
    validate: bool = False,
    block_timeout: float | None = None,
    max_retries: int = 2,
    retry_backoff: float = 0.05,
    degrade_on_failure: bool = True,
    faults: object | None = None,
    trace: bool = False,
    metrics: bool = False,
) -> PipelineResult:
    """Compute the Morse-Smale complex of a scalar field.

    Parameters
    ----------
    values:
        The input field: a 3D vertex array, a
        :class:`~repro.mesh.grid.StructuredGrid`, or a
        :class:`~repro.io.volume.VolumeSpec` pointing at a raw volume
        file (read block-wise by the workers, the paper's parallel-I/O
        path).
    persistence:
        Simplification threshold (absolute function-value difference).
    workers:
        Shared-memory worker-pool width for the compute stage; ``1``
        runs in-process, ``> 1`` fans blocks out over OS processes.
        Purely a scheduling choice — results are bit-identical.
    ranks:
        Number of virtual MPI processes / decomposition blocks (a power
        of two, per the paper's bisection).  ``1`` computes a single
        block with no merge stage.
    merge_radix:
        Merge-schedule control when ``ranks > 1``: an int in {2, 4, 8}
        selects a full merge built from rounds of at most that radix; an
        explicit sequence of radices runs a custom (possibly partial)
        schedule; ``"none"`` skips merging and leaves ``ranks`` output
        blocks.
    transport:
        How block vertex data reaches pool workers: ``"pickle"`` ships
        each block's subarray by value, ``"shm"`` publishes the volume
        once into POSIX shared memory and ships only a tiny handle per
        block (zero-copy), ``"auto"`` (default) picks ``"shm"``
        exactly when the compute stage runs on a process pool.
        Results are bit-identical on either transport.
    merge_executor:
        Merge-stage backend: ``"serial"`` performs each group-root merge
        inside its virtual rank; ``"pool"`` precomputes each round's
        independent merges on the worker pool and the ranks adopt the
        results; ``"auto"`` (default) pools exactly when the compute
        stage runs on a process pool.  Deterministic merging makes the
        two backends bit-identical, virtual clock included.
    validate:
        Run structural invariant checks after every stage (slow).
    block_timeout:
        Per-block compute timeout in seconds (process executor only);
        ``None`` waits forever.  Timed-out blocks are retried.
    max_retries:
        Extra attempts a failed block (or root merge) gets before the
        run degrades to serial execution or errors out readably.
    retry_backoff:
        Base of the exponential backoff between attempts; ``0`` retries
        immediately.
    degrade_on_failure:
        Fall back to the in-process serial executor when the worker
        pool is unhealthy (recorded in ``result.stats.faults``) instead
        of raising.
    faults:
        Optional :class:`repro.parallel.faults.FaultPlan` injecting
        deterministic failures — the chaos-testing hook.
    trace:
        Record a span timeline of the run into ``result.stats.trace``
        (driver, rank, and worker lanes), exportable as Chrome
        ``trace_event`` JSON via ``result.stats.trace.write(path)``.
        Outputs are bit-identical either way (see
        ``docs/OBSERVABILITY.md``).
    metrics:
        Aggregate run metrics (counters / gauges / histograms across
        all workers) into ``result.stats.metrics``.

    Returns
    -------
    PipelineResult
        The merged complex(es), decomposition, schedule, and stats, for
        every routing — serial runs included — so downstream code never
        branches on how the result was produced.
    """
    if ranks < 1:
        raise ValueError("ranks must be >= 1")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if isinstance(merge_radix, (int, np.integer)):
        if merge_radix not in (2, 4, 8):
            raise ValueError("merge_radix must be 2, 4, or 8")
        radices: Sequence[int] | str = "full"
        max_radix = int(merge_radix)
    elif merge_radix == "none":
        radices, max_radix = "none", 8
    elif isinstance(merge_radix, str):
        raise ValueError(
            f"merge_radix must be an int, a radix sequence, or 'none'; "
            f"got {merge_radix!r}"
        )
    else:
        radices, max_radix = [int(r) for r in merge_radix], 8

    cfg = PipelineConfig(
        num_blocks=ranks,
        num_procs=ranks,
        persistence_threshold=persistence,
        merge_radices=radices if ranks > 1 else "none",
        max_radix=max_radix,
        validate=validate,
        workers=workers,
        # ranks == workers == 1 is the serial path: single block, no
        # pool, no merge rounds; anything else runs the full pipeline
        executor="serial" if workers == 1 else "process",
        merge_executor=merge_executor,
        transport=transport,
        block_timeout=block_timeout,
        max_retries=max_retries,
        retry_backoff=retry_backoff,
        degrade_on_failure=degrade_on_failure,
        faults=faults,
        trace=trace,
        metrics=metrics,
    )
    pipeline = ParallelMSComplexPipeline(cfg)
    if isinstance(values, VolumeSpec):
        return pipeline.run(volume=values)
    return pipeline.run(values)
