"""Unified high-level facade: one entry point for every execution mode.

Historically the package exposed three inconsistent ways to compute an
MS complex — the serial :func:`repro.core.pipeline.compute_morse_smale_complex`,
the :class:`~repro.core.pipeline.ParallelMSComplexPipeline` driver, and
the ``repro.cli`` command line — each with its own parameter spelling.
:func:`compute` replaces them for library users: a single keyword-only
call that routes to the in-process serial path when
``ranks == workers == 1`` and to the full parallel pipeline otherwise,
always returning a :class:`~repro.core.result.PipelineResult`.

::

    import repro
    result = repro.compute(field, persistence=0.05, ranks=8, workers=4)
    msc = result.merged_complexes[0]

``ranks`` is the number of virtual MPI processes (= blocks of the
bisection decomposition, the paper's one-block-per-process setup);
``workers`` is the width of the real shared-memory worker pool the
compute stage fans out over (see :mod:`repro.parallel.executor`).  The
two compose: ranks model the paper's distributed machine, workers use
this machine's cores.  Results are bit-identical across worker counts.

The legacy entry points remain importable; positional-argument use of
``compute_morse_smale_complex`` and the short ``PipelineConfig`` field
aliases (``persistence``, ``blocks``, ``procs``) are deprecated and emit
:class:`DeprecationWarning` for one release (see ``docs/API.md``).
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence
from typing import Any

import numpy as np

from repro.analysis.query import QueryResult, load_hierarchy, query
from repro.core.config import PipelineConfig
from repro.core.options import ExecutionOptions
from repro.core.pipeline import ParallelMSComplexPipeline
from repro.core.result import PipelineResult
from repro.core.session import PipelineSession
from repro.io.volume import VolumeSpec
from repro.mesh.grid import StructuredGrid
from repro.service.client import ServiceClient

__all__ = ["ExecutionOptions", "PipelineSession", "QueryResult",
           "ServiceClient", "compute", "load_hierarchy", "open_service",
           "open_session", "query"]

#: "keyword not passed" marker for the deprecated flat execution
#: keywords (several have meaningful defaults, including ``None``)
_UNSET: Any = object()


def compute(
    values: np.ndarray | StructuredGrid | VolumeSpec,
    *,
    persistence: float = 0.0,
    ranks: int = 1,
    merge_radix: int | Sequence[int] | str = 2,
    validate: bool = False,
    options: ExecutionOptions | None = None,
    faults: object | None = None,
    trace: bool = False,
    metrics: bool = False,
    workers: int = _UNSET,
    transport: str = _UNSET,
    merge_executor: str = _UNSET,
    kernel_backend: str = _UNSET,
    block_timeout: float | None = _UNSET,
    max_retries: int = _UNSET,
    retry_backoff: float = _UNSET,
    degrade_on_failure: bool = _UNSET,
    hierarchy: bool = _UNSET,
) -> PipelineResult:
    """Compute the Morse-Smale complex of a scalar field.

    Parameters
    ----------
    values:
        The input field: a 3D vertex array, a
        :class:`~repro.mesh.grid.StructuredGrid`, or a
        :class:`~repro.io.volume.VolumeSpec` pointing at a raw volume
        file (read block-wise by the workers, the paper's parallel-I/O
        path).
    persistence:
        Simplification threshold (absolute function-value difference).
    ranks:
        Number of virtual MPI processes / decomposition blocks (a power
        of two, per the paper's bisection).  ``1`` computes a single
        block with no merge stage.
    merge_radix:
        Merge-schedule control when ``ranks > 1``: an int in {2, 4, 8}
        selects a full merge built from rounds of at most that radix; an
        explicit sequence of radices runs a custom (possibly partial)
        schedule; ``"none"`` skips merging and leaves ``ranks`` output
        blocks.
    validate:
        Run structural invariant checks after every stage (slow).
    options:
        The run's execution knobs, grouped: an
        :class:`~repro.core.options.ExecutionOptions` bundling
        ``workers``, ``executor``, ``merge_executor``, ``transport``,
        ``kernel_backend`` and the fault-handling settings
        (timeout/retry/degrade).  Every scheduling field is pure
        scheduling — results are bit-identical across all settings; the
        additive ``hierarchy`` flag captures the multiscale cancellation
        hierarchy into ``result.hierarchies`` (persisted on ``write()``,
        queryable via :func:`load_hierarchy` / :func:`query`) without
        changing the complex by a byte.
    faults:
        Optional :class:`repro.parallel.faults.FaultPlan` injecting
        deterministic failures — the chaos-testing hook.
    trace:
        Record a span timeline of the run into ``result.stats.trace``
        (driver, rank, and worker lanes), exportable as Chrome
        ``trace_event`` JSON via ``result.stats.trace.write(path)``.
        Outputs are bit-identical either way (see
        ``docs/OBSERVABILITY.md``).
    metrics:
        Aggregate run metrics (counters / gauges / histograms across
        all workers) into ``result.stats.metrics``.
    workers, transport, merge_executor, kernel_backend, block_timeout, \
    max_retries, retry_backoff, degrade_on_failure, hierarchy:
        Deprecated flat spellings of the corresponding
        :class:`~repro.core.options.ExecutionOptions` fields; accepted
        with a :class:`DeprecationWarning` for one release.  Passing a
        knob both flat and via ``options=`` is a :class:`TypeError`.

    Returns
    -------
    PipelineResult
        The merged complex(es), decomposition, schedule, and stats, for
        every routing — serial runs included — so downstream code never
        branches on how the result was produced.
    """
    cfg = _facade_config(
        "compute",
        persistence=persistence,
        ranks=ranks,
        merge_radix=merge_radix,
        validate=validate,
        options=options,
        faults=faults,
        trace=trace,
        metrics=metrics,
        flat={
            name: value
            for name, value in (
                ("workers", workers),
                ("transport", transport),
                ("merge_executor", merge_executor),
                ("kernel_backend", kernel_backend),
                ("block_timeout", block_timeout),
                ("max_retries", max_retries),
                ("retry_backoff", retry_backoff),
                ("degrade_on_failure", degrade_on_failure),
                ("hierarchy", hierarchy),
            )
            if value is not _UNSET
        },
    )
    pipeline = ParallelMSComplexPipeline(cfg)
    if isinstance(values, VolumeSpec):
        return pipeline.run(volume=values)
    return pipeline.run(values)


def open_session(
    *,
    persistence: float = 0.0,
    ranks: int = 1,
    merge_radix: int | Sequence[int] | str = 2,
    validate: bool = False,
    options: ExecutionOptions | None = None,
    faults: object | None = None,
    trace: bool = False,
    metrics: bool = False,
) -> PipelineSession:
    """Open a persistent :class:`~repro.core.session.PipelineSession`.

    Takes the same keywords as :func:`compute` (minus the input field
    and the deprecated flat execution keywords) and returns a session
    whose :meth:`~repro.core.session.PipelineSession.run` processes one
    timestep per call while reusing the worker pools, the shared-memory
    slot, and the cached plan across steps::

        with repro.open_session(persistence=0.05, ranks=8,
                                options=ExecutionOptions(workers=4)) as s:
            for field in timesteps:
                result = s.run(field)

    Each step is bit-identical to ``repro.compute(field, ...)`` with the
    same settings.  Close the session (or use ``with``) to release the
    pools and shared memory.
    """
    cfg = _facade_config(
        "open_session",
        persistence=persistence,
        ranks=ranks,
        merge_radix=merge_radix,
        validate=validate,
        options=options,
        faults=faults,
        trace=trace,
        metrics=metrics,
        flat={},
    )
    return PipelineSession(cfg)


def open_service(
    cache_dir: str,
    *,
    max_jobs: int = 2,
    max_memory_entries: int = 64,
    default_timeout: float | None = None,
    session_reuse: bool = True,
    trace: bool = False,
) -> ServiceClient:
    """Open a same-process MS-complex service over a result cache.

    The service front door for library users: submissions are answered
    from the content-addressed store when the ``(volume content, result
    config)`` pair was ever computed before, identical concurrent
    submissions are coalesced into one pipeline run, and multiscale
    queries are served from cached ``.msc`` v2 hierarchy footers with
    zero re-simplification::

        with repro.open_service("./msc-cache", max_jobs=2) as svc:
            job = svc.submit(field, persistence=0.05, ranks=8,
                             hierarchy=True, wait=True)
            print(svc.query(key=job.key, persistence=0.1))

    The HTTP daemon (``repro serve``) wraps exactly this client; see
    ``docs/SERVICE.md``.
    """
    return ServiceClient(
        cache_dir,
        max_jobs=max_jobs,
        max_memory_entries=max_memory_entries,
        default_timeout=default_timeout,
        session_reuse=session_reuse,
        trace=trace,
    )


def _facade_config(
    entry: str,
    *,
    persistence: float,
    ranks: int,
    merge_radix: int | Sequence[int] | str,
    validate: bool,
    options: ExecutionOptions | None,
    faults: object | None,
    trace: bool,
    metrics: bool,
    flat: dict,
) -> PipelineConfig:
    """The facade's shared keyword-to-``PipelineConfig`` translation."""
    if flat:
        names = ", ".join(sorted(flat))
        if options is not None:
            raise TypeError(
                f"{entry}() got both options= and the flat execution "
                f"keyword(s) {names}"
            )
        warnings.warn(
            f"the flat execution keyword(s) {names} of repro.{entry}() "
            "are deprecated; pass options=ExecutionOptions(...) instead "
            "(see docs/API.md)",
            DeprecationWarning,
            stacklevel=3,
        )
    opts = options if options is not None else ExecutionOptions(**flat)
    if ranks < 1:
        raise ValueError("ranks must be >= 1")
    if isinstance(merge_radix, (int, np.integer)):
        if merge_radix not in (2, 4, 8):
            raise ValueError("merge_radix must be 2, 4, or 8")
        radices: Sequence[int] | str = "full"
        max_radix = int(merge_radix)
    elif merge_radix == "none":
        radices, max_radix = "none", 8
    elif isinstance(merge_radix, str):
        raise ValueError(
            f"merge_radix must be an int, a radix sequence, or 'none'; "
            f"got {merge_radix!r}"
        )
    else:
        radices, max_radix = [int(r) for r in merge_radix], 8

    return PipelineConfig(
        num_blocks=ranks,
        num_procs=ranks,
        persistence_threshold=persistence,
        merge_radices=radices if ranks > 1 else "none",
        max_radix=max_radix,
        validate=validate,
        # ranks == workers == 1 is the serial path: single block, no
        # pool, no merge rounds; anything else runs the full pipeline
        # (the default executor="auto" resolves exactly that way)
        options=opts,
        faults=faults,
        trace=trace,
        metrics=metrics,
    )
