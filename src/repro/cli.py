"""Command-line interface.

A thin operational wrapper over the library, mirroring how the paper's
tool was driven on the Blue Gene/P: point it at a raw volume, choose a
blocking, a persistence threshold and a merge strategy, and get an MS
complex block file plus a timing report.

Commands::

    python -m repro.cli compute volume.raw --dims 64 64 64 --dtype float32 \
        --blocks 8 --persistence 0.05 --radices 8 --output out.msc
    python -m repro.cli stream step_*.raw --dims 64 64 64 --blocks 8 \
        --workers 4 --persistence 0.05 --output-dir out/
    python -m repro.cli info out.msc
    python -m repro.cli query out.msc --persistence 0.01 0.05 0.2
    python -m repro.cli serve --cache-dir ./msc-cache --port 8643
    python -m repro.cli synth sinusoid --points 64 --features 4 out.raw
    python -m repro.cli gen sinusoid big.raw --dims 1152 1152 1152

``query`` serves thresholds out of the hierarchy footer a
``compute --hierarchy`` run persisted — every row is a pure lookup, the
volume is never re-simplified.  ``stream`` pushes a whole time series of
volume files through one persistent session: worker pools, shared
memory, and the decomposition plan are reused across steps, and the
``mmap`` transport keeps the driver from ever materializing a volume.
``serve`` runs the MS-complex service daemon: concurrent submissions
over JSON HTTP, identical in-flight requests coalesced into one
pipeline run, repeats answered from a content-addressed result cache
(see ``docs/SERVICE.md``).  ``gen`` streams a synthetic volume to disk
slab-by-slab without ever materializing it, so paper-scale inputs
(1152³ ≈ 5.7 GiB at float32) can be generated on any machine; pair
with ``compute --merge-spill-budget`` for a fully out-of-core run.
"""

from __future__ import annotations

import argparse
import logging
import sys

import numpy as np

__all__ = ["main", "build_parser"]

#: marker attached to the handler :func:`_configure_logging` installs,
#: so repeated main() calls (tests) stay idempotent
_LOG_HANDLER_FLAG = "_repro_cli_handler"


def _configure_logging(verbosity: int) -> None:
    """Wire the ``repro.*`` logger hierarchy to stderr.

    ``-v`` shows INFO (stage progress), ``-vv`` DEBUG; the default
    surfaces only WARNING and above (retries, pool restarts, degrades).
    """
    level = (logging.WARNING, logging.INFO, logging.DEBUG)[
        min(verbosity, 2)
    ]
    root = logging.getLogger("repro")
    root.setLevel(level)
    for handler in root.handlers:
        if getattr(handler, _LOG_HANDLER_FLAG, False):
            handler.setLevel(level)
            return
    handler = logging.StreamHandler(sys.stderr)
    handler.setLevel(level)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    setattr(handler, _LOG_HANDLER_FLAG, True)
    root.addHandler(handler)


def _positive_int(text: str) -> int:
    """argparse type for flags that must be >= 1 (readable, exit code 2)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (>= 1), got {value}"
        )
    return value


#: multipliers of the ``--merge-spill-budget`` size suffixes
_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def _size_bytes(text: str) -> int:
    """argparse type for byte sizes with optional K/M/G suffix.

    Accepts plain byte counts (``1048576``, ``0``) and suffixed sizes
    (``64M``, ``2G``, ``512k``, optionally with a trailing ``B`` as in
    ``64MB``); suffixes are binary (K = 1024).
    """
    raw = text.strip().lower().removesuffix("b")
    mult = 1
    if raw and raw[-1] in _SIZE_SUFFIXES:
        mult = _SIZE_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a byte size like 1048576, 64M, or 2G, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"byte size must be >= 0, got {text!r}"
        )
    return value * mult


_SPILL_BUDGET_HELP = (
    "resident-byte budget of the merge stage's packed-blob spool "
    "(e.g. 64M, 2G, or plain bytes; 0 spills everything).  Over "
    "budget, merged snapshots spill LRU-first to a run-scoped temp "
    "dir between radix rounds, keeping driver memory roughly flat "
    "as block count grows; outputs are bit-identical at any budget "
    "(default: unbounded, never spills)"
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` CLI."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel Morse-Smale complex computation "
        "(IPDPS 2012 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="log progress to stderr (-v: INFO, "
                             "-vv: DEBUG; default shows warnings only)")
    sub = parser.add_subparsers(dest="command", required=True)

    c = sub.add_parser("compute", help="compute an MS complex of a volume")
    c.add_argument("volume", help="raw volume file (x fastest)")
    c.add_argument("--dims", nargs=3, type=int, required=True,
                   metavar=("NX", "NY", "NZ"))
    c.add_argument("--dtype", default="float32",
                   choices=("uint8", "float32", "float64"))
    c.add_argument("--blocks", type=_positive_int, default=1,
                   help="number of blocks (power of two)")
    c.add_argument("--procs", type=_positive_int, default=None,
                   help="virtual processes (default: one per block)")
    c.add_argument("--workers", type=_positive_int, default=1,
                   help="shared-memory worker processes for the compute "
                        "stage (default: 1, serial)")
    c.add_argument("--transport", default="auto",
                   choices=("auto", "pickle", "shm", "mmap"),
                   help="block-data transport to pool workers: pickle "
                        "ships subarrays by value, shm publishes an "
                        "in-memory volume once into shared memory, mmap "
                        "(volume-file inputs) lets workers subarray-read "
                        "straight from disk without the driver ever "
                        "materializing the volume (auto: mmap for file "
                        "inputs, shm exactly when a process pool runs)")
    c.add_argument("--executor", default="auto",
                   choices=("auto", "serial", "process"),
                   help="compute-stage backend (default: auto — a "
                        "process pool exactly when --workers > 1)")
    c.add_argument("--merge-executor", default="auto",
                   choices=("auto", "serial", "pool"),
                   help="merge-stage backend: serial merges inside the "
                        "virtual ranks, pool fans each round's merges "
                        "over the worker pool (default: auto — pool "
                        "exactly when the compute stage does; results "
                        "are bit-identical either way)")
    c.add_argument("--kernel-backend", default="auto",
                   choices=("auto", "dfs", "pointer"),
                   help="V-path tracing backend: dfs traces each path "
                        "depth-first, pointer compresses descents with "
                        "vectorized pointer jumping (default: auto — "
                        "pointer exactly when the block is large enough "
                        "to amortize the whole-array passes; results "
                        "are bit-identical either way)")
    c.add_argument("--merge-spill-budget", type=_size_bytes, default=None,
                   metavar="SIZE", help=_SPILL_BUDGET_HELP)
    c.add_argument("--persistence", type=float, default=0.0,
                   help="simplification threshold")
    c.add_argument("--block-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-block compute timeout (process executor); "
                        "timed-out blocks are retried")
    c.add_argument("--max-retries", type=int, default=2, metavar="N",
                   help="extra attempts a failed block or merge gets "
                        "(default: 2)")
    c.add_argument("--retry-backoff", type=float, default=0.05,
                   metavar="SECONDS",
                   help="base of the exponential backoff between "
                        "attempts (default: 0.05)")
    c.add_argument("--no-degrade", action="store_true",
                   help="fail instead of degrading to the serial "
                        "executor when the worker pool is unhealthy")
    c.add_argument("--hierarchy", action="store_true",
                   help="capture the cancellation hierarchy of every "
                        "output block and persist it in the .msc v2 "
                        "footer, enabling `repro query` threshold "
                        "lookups with zero re-simplification")
    c.add_argument("--radices", nargs="*", type=int, default=None,
                   help="merge radices (default: full merge)")
    c.add_argument("--no-merge", action="store_true",
                   help="skip the merge stage entirely")
    c.add_argument("--output", default=None, help="output .msc file")
    c.add_argument("--trace", default=None, metavar="PATH",
                   help="record a span timeline of the run and write it "
                        "as Chrome trace_event JSON (open in "
                        "chrome://tracing or ui.perfetto.dev)")
    c.add_argument("--metrics", default=None, metavar="PATH",
                   help="aggregate run metrics (counters/gauges/"
                        "histograms across all workers) and write them "
                        "as JSON")

    st = sub.add_parser(
        "stream",
        help="stream a time series of volumes through one persistent "
             "session (pools, shared memory, and the plan are reused "
             "across steps; out-of-core via the mmap transport)",
    )
    st.add_argument("volumes", nargs="+",
                    help="raw volume files, one per timestep "
                         "(identical dims and dtype)")
    st.add_argument("--dims", nargs=3, type=int, required=True,
                    metavar=("NX", "NY", "NZ"))
    st.add_argument("--dtype", default="float32",
                    choices=("uint8", "float32", "float64"))
    st.add_argument("--blocks", type=_positive_int, default=1,
                    help="number of blocks (power of two)")
    st.add_argument("--procs", type=_positive_int, default=None,
                    help="virtual processes (default: one per block)")
    st.add_argument("--workers", type=_positive_int, default=1,
                    help="shared-memory worker processes (default: 1)")
    st.add_argument("--transport", default="auto",
                    choices=("auto", "pickle", "shm", "mmap"),
                    help="block-data transport (default: auto — mmap "
                         "for these file inputs)")
    st.add_argument("--executor", default="auto",
                    choices=("auto", "serial", "process"))
    st.add_argument("--merge-executor", default="auto",
                    choices=("auto", "serial", "pool"))
    st.add_argument("--kernel-backend", default="auto",
                    choices=("auto", "dfs", "pointer"))
    st.add_argument("--merge-spill-budget", type=_size_bytes,
                    default=None, metavar="SIZE",
                    help=_SPILL_BUDGET_HELP)
    st.add_argument("--persistence", type=float, default=0.0,
                    help="simplification threshold")
    st.add_argument("--max-retries", type=int, default=2, metavar="N")
    st.add_argument("--retry-backoff", type=float, default=0.05,
                    metavar="SECONDS")
    st.add_argument("--no-degrade", action="store_true")
    st.add_argument("--radices", nargs="*", type=int, default=None,
                    help="merge radices (default: full merge)")
    st.add_argument("--no-merge", action="store_true",
                    help="skip the merge stage entirely")
    st.add_argument("--min-value", type=float, default=None,
                    help="value floor for the significant-extrema "
                         "monitoring series")
    st.add_argument("--max-value", type=float, default=None,
                    help="value ceiling for the significant-extrema "
                         "monitoring series")
    st.add_argument("--output-dir", default=None,
                    help="write each step's complex to "
                         "DIR/step_NNNN.msc")
    st.add_argument("--json", action="store_true",
                    help="emit the per-step records and session "
                         "summary as JSON on stdout")

    i = sub.add_parser("info", help="summarize an MS complex file")
    i.add_argument("mscfile")

    q = sub.add_parser(
        "query",
        help="answer persistence thresholds from a persisted hierarchy "
             "(.msc v2) without re-simplifying",
    )
    q.add_argument("mscfile")
    q.add_argument("--persistence", nargs="+", type=float, default=None,
                   metavar="P",
                   help="one or more thresholds to sweep")
    q.add_argument("--top-k", type=_positive_int, default=None,
                   metavar="K",
                   help="keep the K coarsest-scale cancellations undone "
                        "instead of querying a threshold")
    q.add_argument("--json", action="store_true",
                   help="emit the query records as JSON on stdout")

    sv = sub.add_parser(
        "serve",
        help="run the MS-complex service daemon: accept concurrent "
             "compute/query requests over JSON HTTP, deduplicate "
             "identical work, and answer repeats from a "
             "content-addressed result cache",
    )
    sv.add_argument("--cache-dir", default="./msc-cache",
                    help="root of the content-addressed result store "
                         "(created if missing; a restarted daemon over "
                         "the same directory starts warm; default: "
                         "./msc-cache)")
    sv.add_argument("--host", default="127.0.0.1",
                    help="bind address (default: 127.0.0.1)")
    sv.add_argument("--port", type=int, default=8643,
                    help="bind port; 0 picks a free one (default: 8643)")
    sv.add_argument("--max-jobs", type=_positive_int, default=2,
                    help="concurrent pipeline executions; further jobs "
                         "queue (default: 2)")
    sv.add_argument("--mem-cache-entries", type=int, default=64,
                    help="hot results kept in memory ahead of the disk "
                         "layer; 0 disables the memory layer "
                         "(default: 64)")
    sv.add_argument("--job-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="default per-job wall-time bound applied to "
                         "requests that carry none (default: unbounded)")
    sv.add_argument("--no-session-reuse", action="store_true",
                    help="run every job on a one-shot pipeline instead "
                         "of persistent per-configuration sessions")

    s = sub.add_parser("synth", help="generate a synthetic volume")
    s.add_argument("kind", choices=("sinusoid", "bumps", "jet",
                                    "rayleigh-taylor", "hydrogen"))
    s.add_argument("output")
    s.add_argument("--points", type=int, default=64,
                   help="points per side")
    s.add_argument("--features", type=int, default=4,
                   help="features per side (sinusoid) or bump count")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--dtype", default="float32",
                   choices=("uint8", "float32", "float64"))

    g = sub.add_parser(
        "gen",
        help="stream a synthetic volume to disk slab-by-slab (bounded "
             "memory at any size; pair with compute "
             "--merge-spill-budget for a fully out-of-core run)",
    )
    g.add_argument("kind", choices=("sinusoid", "bumps"),
                   help="field family (chunked generation supports the "
                        "elementwise families; see `synth` for the rest)")
    g.add_argument("output")
    g.add_argument("--dims", nargs=3, type=_positive_int, default=None,
                   metavar=("NX", "NY", "NZ"),
                   help="volume dims (alternative to --points)")
    g.add_argument("--points", type=_positive_int, default=None,
                   help="points per side of a cubic volume")
    g.add_argument("--features", type=_positive_int, default=4,
                   help="features per side (sinusoid) or bump count "
                        "(default: 4)")
    g.add_argument("--seed", type=int, default=0,
                   help="rng seed of the bump placement (bumps only)")
    g.add_argument("--dtype", default="float32",
                   choices=("uint8", "float32", "float64"))
    g.add_argument("--slab-depth", type=_positive_int, default=16,
                   metavar="DZ",
                   help="z-planes generated per slab; peak memory is "
                        "one NX*NY*DZ float64 slab (default: 16)")
    return parser


def _fail(message: str) -> int:
    """Print a readable error to stderr; the non-zero CLI exit code."""
    print(f"error: {message}", file=sys.stderr)
    return 2


def _cmd_compute(args) -> int:
    import os

    from repro.core.config import ExecutionOptions, PipelineConfig
    from repro.core.pipeline import ParallelMSComplexPipeline
    from repro.io.volume import VolumeSpec
    from repro.parallel.executor import FaultToleranceError

    spec = VolumeSpec(args.volume, tuple(args.dims), args.dtype)
    try:
        size = os.stat(args.volume).st_size
    except OSError as exc:
        return _fail(
            f"cannot read volume {args.volume!r}: "
            f"{exc.strerror or exc}"
        )
    if size != spec.nbytes:
        return _fail(
            f"volume {args.volume!r} holds {size} bytes but dims "
            f"{tuple(args.dims)} with dtype {args.dtype} require "
            f"{spec.nbytes}"
        )
    if args.no_merge:
        radices = "none"
    elif args.radices is None:
        radices = "full"
    else:
        radices = args.radices
    try:
        cfg = PipelineConfig(
            num_blocks=args.blocks,
            num_procs=args.procs,
            persistence_threshold=args.persistence,
            merge_radices=radices,
            options=ExecutionOptions(
                workers=args.workers,
                executor=args.executor,
                merge_executor=args.merge_executor,
                transport=args.transport,
                kernel_backend=args.kernel_backend,
                block_timeout=args.block_timeout,
                max_retries=args.max_retries,
                retry_backoff=args.retry_backoff,
                degrade_on_failure=not args.no_degrade,
                hierarchy=args.hierarchy,
                merge_spill_budget_bytes=args.merge_spill_budget,
            ),
            trace=args.trace is not None,
            metrics=args.metrics is not None,
        )
        result = ParallelMSComplexPipeline(cfg).run(volume=spec)
    except (OSError, ValueError, FaultToleranceError) as exc:
        return _fail(str(exc))
    print(result.stats.describe())
    if result.stats.faults.any_faults():
        print(result.stats.faults.describe())
    counts = result.combined_node_counts()
    print(
        f"critical points: min={counts[0]} 1sad={counts[1]} "
        f"2sad={counts[2]} max={counts[3]} "
        f"in {result.num_output_blocks} output block(s)"
    )
    if args.output:
        nbytes = result.write(args.output)
        print(f"wrote {nbytes} bytes to {args.output}")
    if args.trace:
        nbytes = result.stats.trace.write(args.trace)
        print(f"wrote trace ({nbytes} bytes) to {args.trace}")
    if args.metrics:
        from repro.obs.export import write_metrics_json

        nbytes = write_metrics_json(args.metrics, result.stats.metrics)
        print(f"wrote metrics ({nbytes} bytes) to {args.metrics}")
    return 0


def _cmd_stream(args) -> int:
    import json
    import os

    from repro.core.config import ExecutionOptions, PipelineConfig
    from repro.core.insitu import InSituAnalyzer
    from repro.io.volume import VolumeSpec
    from repro.parallel.executor import FaultToleranceError

    specs = []
    for path in args.volumes:
        spec = VolumeSpec(path, tuple(args.dims), args.dtype)
        try:
            size = os.stat(path).st_size
        except OSError as exc:
            return _fail(
                f"cannot read volume {path!r}: {exc.strerror or exc}"
            )
        if size != spec.nbytes:
            return _fail(
                f"volume {path!r} holds {size} bytes but dims "
                f"{tuple(args.dims)} with dtype {args.dtype} require "
                f"{spec.nbytes}"
            )
        specs.append(spec)
    if args.no_merge:
        radices = "none"
    elif args.radices is None:
        radices = "full"
    else:
        radices = args.radices
    if args.output_dir:
        os.makedirs(args.output_dir, exist_ok=True)
    try:
        cfg = PipelineConfig(
            num_blocks=args.blocks,
            num_procs=args.procs,
            persistence_threshold=args.persistence,
            merge_radices=radices,
            options=ExecutionOptions(
                workers=args.workers,
                executor=args.executor,
                merge_executor=args.merge_executor,
                transport=args.transport,
                kernel_backend=args.kernel_backend,
                max_retries=args.max_retries,
                retry_backoff=args.retry_backoff,
                degrade_on_failure=not args.no_degrade,
                merge_spill_budget_bytes=args.merge_spill_budget,
            ),
        )
        # fail on impossible transport/input combinations before the
        # first step, not midway through the series
        cfg.resolve_transport("volume")
    except ValueError as exc:
        return _fail(str(exc))
    rows = []
    try:
        with InSituAnalyzer(
            cfg,
            feature_min_value=args.min_value,
            feature_max_value=args.max_value,
        ) as analyzer:
            if not args.json:
                print(f"{'step':>4} {'volume':<24} {'min':>5} "
                      f"{'1sad':>5} {'2sad':>5} {'max':>5} "
                      f"{'seconds':>8}")
            for idx, spec in enumerate(specs):
                record, result = analyzer.step(spec)
                c = record.node_counts
                if not args.json:
                    name = os.path.basename(spec.path)
                    print(f"{idx:>4} {name:<24} {c[0]:>5} {c[1]:>5} "
                          f"{c[2]:>5} {c[3]:>5} "
                          f"{record.real_seconds:>8.3f}")
                if args.output_dir:
                    out = os.path.join(
                        args.output_dir, f"step_{idx:04d}.msc"
                    )
                    result.write(out)
                rows.append(
                    {
                        "step": idx,
                        "volume": spec.path,
                        "node_counts": list(c),
                        "significant_minima": record.significant_minima,
                        "significant_maxima": record.significant_maxima,
                        "output_bytes": record.output_bytes,
                        "real_seconds": record.real_seconds,
                    }
                )
            stats = analyzer.session.stats
            if args.json:
                print(json.dumps(
                    {
                        "steps": rows,
                        "session": {
                            "runs": stats.runs,
                            "pool_reuse_hits": stats.pool_reuse_hits,
                            "plan_cache_hits": stats.plan_cache_hits,
                            "shm_rebinds": stats.shm_rebinds,
                            "shm_republishes": stats.shm_republishes,
                            "steady_state_steps_per_sec": (
                                stats.steady_state_steps_per_sec()
                            ),
                        },
                    },
                    indent=2, sort_keys=True,
                ))
            else:
                print(stats.describe())
    except (OSError, ValueError, FaultToleranceError) as exc:
        return _fail(str(exc))
    return 0


def _cmd_info(args) -> int:
    from repro.io.mscfile import read_msc_file
    from repro.morse.msc import MorseSmaleComplex

    blocks = read_msc_file(args.mscfile)
    print(f"{args.mscfile}: {len(blocks)} block(s)")
    for bid in sorted(blocks):
        msc = MorseSmaleComplex.from_payload(blocks[bid])
        print(f"  block {bid}: {msc.summary()}")
    return 0


def _cmd_query(args) -> int:
    import json

    from repro.analysis.query import load_hierarchy, query

    if (args.persistence is None) == (args.top_k is None):
        return _fail(
            "query needs exactly one of --persistence and --top-k"
        )
    try:
        hierarchies = load_hierarchy(args.mscfile)
    except OSError as exc:
        return _fail(
            f"cannot read {args.mscfile!r}: {exc.strerror or exc}"
        )
    except ValueError as exc:
        return _fail(str(exc))
    depth = max(h.num_levels for h in hierarchies.values())
    if args.top_k is not None:
        results = [query(hierarchies, top_k=args.top_k)]
    else:
        results = [
            query(hierarchies, persistence=p) for p in args.persistence
        ]
    if args.json:
        print(json.dumps(
            {
                "file": args.mscfile,
                "blocks": len(hierarchies),
                "hierarchy_depth": depth,
                "queries": [r.to_dict() for r in results],
            },
            indent=2, sort_keys=True,
        ))
        return 0
    print(f"{args.mscfile}: {len(hierarchies)} block(s), "
          f"hierarchy depth {depth}")
    print(f"{'persistence':>12} {'level':>6} {'min':>5} {'1sad':>5} "
          f"{'2sad':>5} {'max':>5} {'arcs':>6}")
    for r in results:
        c = r.node_counts_by_index()
        level = max(r.levels.values(), default=0)
        print(f"{r.persistence:>12.5f} {level:>6} {c[0]:>5} {c[1]:>5} "
              f"{c[2]:>5} {c[3]:>5} {r.num_arcs:>6}")
    return 0


def _cmd_serve(args) -> int:
    from repro.service.client import ServiceClient
    from repro.service.server import make_server

    try:
        client = ServiceClient(
            args.cache_dir,
            max_jobs=args.max_jobs,
            max_memory_entries=args.mem_cache_entries,
            default_timeout=args.job_timeout,
            session_reuse=not args.no_session_reuse,
        )
    except OSError as exc:
        return _fail(
            f"cannot open cache dir {args.cache_dir!r}: "
            f"{exc.strerror or exc}"
        )
    try:
        server = make_server(client, args.host, args.port)
    except OSError as exc:
        client.close()
        return _fail(
            f"cannot bind {args.host}:{args.port}: {exc.strerror or exc}"
        )
    host, port = server.server_address[:2]
    print(f"repro service on http://{host}:{port} "
          f"(cache: {args.cache_dir}, max jobs: {args.max_jobs})")
    print("endpoints: POST /v1/submit · GET /v1/jobs[/<id>[/result]] · "
          "GET /v1/query · GET /v1/stats · GET /v1/healthz")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.shutdown_service()
    return 0


def _cmd_synth(args) -> int:
    from repro.data import (
        gaussian_bumps_field,
        hydrogen_atom,
        jet_mixture_fraction_proxy,
        rayleigh_taylor_proxy,
        sinusoidal_field,
    )
    from repro.io.volume import write_volume

    n = args.points
    if args.kind == "sinusoid":
        field = sinusoidal_field(n, args.features)
    elif args.kind == "bumps":
        field = gaussian_bumps_field((n, n, n), args.features,
                                     seed=args.seed)
    elif args.kind == "jet":
        field = jet_mixture_fraction_proxy((n, n + n // 6, (2 * n) // 3),
                                           seed=args.seed)
    elif args.kind == "rayleigh-taylor":
        field = rayleigh_taylor_proxy((n, n, n), seed=args.seed)
    else:
        field = hydrogen_atom(n)
    spec = write_volume(args.output, np.asarray(field), dtype=args.dtype)
    print(f"wrote {spec.path}: dims={spec.dims} dtype={spec.dtype} "
          f"({spec.nbytes} bytes)")
    return 0


def _cmd_gen(args) -> int:
    from repro.data import write_volume_chunked

    if (args.dims is None) == (args.points is None):
        return _fail("gen needs exactly one of --dims and --points")
    kwargs = dict(
        dtype=args.dtype,
        slab_depth=args.slab_depth,
    )
    if args.dims is not None:
        kwargs["dims"] = tuple(args.dims)
    else:
        kwargs["points_per_side"] = args.points
    if args.kind == "sinusoid":
        kwargs["features_per_side"] = args.features
    else:
        kwargs["num_bumps"] = args.features
        kwargs["seed"] = args.seed
    try:
        spec = write_volume_chunked(args.output, args.kind, **kwargs)
    except (OSError, ValueError) as exc:
        return _fail(str(exc))
    print(f"wrote {spec.path}: dims={spec.dims} dtype={spec.dtype} "
          f"({spec.nbytes} bytes, streamed in z-slabs of "
          f"{args.slab_depth})")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    _configure_logging(args.verbose)
    handlers = {
        "compute": _cmd_compute,
        "stream": _cmd_stream,
        "info": _cmd_info,
        "query": _cmd_query,
        "serve": _cmd_serve,
        "synth": _cmd_synth,
        "gen": _cmd_gen,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
