"""Blue Gene/P "Intrepid" machine parameters.

Interconnect and I/O figures follow the published Blue Gene/P
architecture (425 MB/s per torus link, few-microsecond MPI latency,
PVFS storage measured in the tens of GB/s in aggregate).  The per-cell
algorithmic rates cannot be measured on the original hardware, so they
are calibrated such that the virtual times of the Jet mixture-fraction
benchmark land in the magnitude range the paper reports (~970 s end to
end at 32 processes for a 768x896x512 volume, i.e. roughly 10^5 refined
cells per second per 850 MHz PowerPC core for the combined
gradient+trace+simplify compute stage).  All conclusions drawn from the
model are shape conclusions (scaling slopes, crossovers, rankings), which
are insensitive to the absolute calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BlueGenePParams"]


@dataclass(frozen=True)
class BlueGenePParams:
    """Tunable constants of the virtual Blue Gene/P."""

    # ---- interconnect --------------------------------------------------
    #: payload bandwidth of one torus link, bytes/second
    link_bandwidth: float = 425e6
    #: point-to-point software/injection latency, seconds
    latency: float = 3.5e-6
    #: additional per-hop router latency, seconds
    hop_latency: float = 1.0e-7

    # ---- compute stage (per 850 MHz core) ------------------------------
    #: refined grid cells processed per second by the gradient sweep
    gradient_cells_per_second: float = 4.0e5
    #: V-path geometry cells traced per second
    trace_cells_per_second: float = 2.0e6
    #: cancellation operations per second (simplification)
    cancellations_per_second: float = 2.0e4
    #: MS complex elements (nodes+arcs) glued per second during a merge
    glue_elements_per_second: float = 5.0e5
    #: bytes per second for packing/unpacking complexes around messages
    pack_bandwidth: float = 2.0e8

    # ---- storage --------------------------------------------------------
    #: per-process I/O bandwidth to the parallel filesystem, bytes/second
    io_per_process_bandwidth: float = 50e6
    #: aggregate filesystem bandwidth cap, bytes/second
    io_aggregate_bandwidth: float = 8e9
    #: fixed cost of a collective file open/close, seconds
    io_startup: float = 0.15
    #: per-process metadata/contention cost of a collective I/O op, seconds
    io_per_process_overhead: float = 1.0e-4

    def io_bandwidth(self, num_procs: int) -> float:
        """Effective aggregate bandwidth for a collective I/O operation."""
        return min(
            num_procs * self.io_per_process_bandwidth,
            self.io_aggregate_bandwidth,
        )
