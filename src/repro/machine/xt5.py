"""Cray XT5 "Jaguar" machine parameters (paper §VII-B).

"We have also ported our implementation to the Jaguar XT5 system at the
Oak Ridge Leadership Computing Facility, and we are testing our
benchmarks there as well."  The paper reports no Jaguar numbers, so this
model enables the *predictive* comparison the authors were setting up:
same algorithm, same work counts, different machine constants.

Jaguar's relevant differences from Intrepid: much faster cores
(2.6 GHz Opteron vs 850 MHz PowerPC — roughly an order of magnitude per
core on integer-heavy code), a higher-bandwidth SeaStar2+ torus
(~9.6 GB/s links) with somewhat higher MPI latency, and the Spider
Lustre filesystem (~240 GB/s aggregate).  Compute speeds up more than
communication, so on Jaguar the compute/merge crossover of Fig. 9 moves
to *lower* process counts — the shape prediction tested by
``bench_machines.py``.
"""

from __future__ import annotations

from repro.machine.bgp import BlueGenePParams

__all__ = ["JaguarXT5Params", "jaguar_xt5"]


def jaguar_xt5() -> BlueGenePParams:
    """Parameter set for the Cray XT5 (same schema as the BG/P model)."""
    return BlueGenePParams(
        # SeaStar2+ 3D torus
        link_bandwidth=9.6e9,
        latency=6.0e-6,
        hop_latency=5.0e-8,
        # ~10x faster cores on this scalar-heavy workload
        gradient_cells_per_second=4.0e6,
        trace_cells_per_second=2.0e7,
        cancellations_per_second=2.0e5,
        glue_elements_per_second=5.0e6,
        pack_bandwidth=2.0e9,
        # Spider (Lustre)
        io_per_process_bandwidth=200e6,
        io_aggregate_bandwidth=100e9,
        io_startup=0.2,
        io_per_process_overhead=1.2e-4,
    )


#: alias with a class-like name for discoverability
JaguarXT5Params = jaguar_xt5
