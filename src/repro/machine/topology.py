"""3D torus topology of the Blue Gene/P interconnect.

Blue Gene/P nodes are connected in a 3D torus; point-to-point message
cost grows with the hop count between the communicating nodes.  Ranks
are mapped onto a near-cubic torus in x-fastest order (the machine's
default XYZT mapping with one process per node).
"""

from __future__ import annotations

__all__ = ["TorusTopology", "balanced_torus_dims"]


def balanced_torus_dims(num_nodes: int) -> tuple[int, int, int]:
    """Near-cubic factorization ``(a, b, c)`` with ``a*b*c == num_nodes``.

    Prefers factors as close together as possible; exact for powers of
    two (the partition sizes used in the paper's studies).
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    best = (1, 1, num_nodes)
    best_score = None
    for a in range(1, int(round(num_nodes ** (1 / 3))) + 2):
        if num_nodes % a:
            continue
        rem = num_nodes // a
        for b in range(a, int(rem ** 0.5) + 1):
            if rem % b:
                continue
            c = rem // b
            score = c - a  # spread; smaller is more cubic
            if best_score is None or score < best_score:
                best_score = score
                best = (a, b, c)
    return best


class TorusTopology:
    """Rank placement and hop distances on a 3D torus."""

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = int(num_nodes)
        self.dims = balanced_torus_dims(self.num_nodes)

    def coords(self, rank: int) -> tuple[int, int, int]:
        """Torus coordinates of a rank (x fastest)."""
        if not 0 <= rank < self.num_nodes:
            raise ValueError(f"rank {rank} out of range")
        a, b, _c = self.dims
        return (rank % a, (rank // a) % b, rank // (a * b))

    def hops(self, src: int, dest: int) -> int:
        """Minimal torus hop count between two ranks."""
        if src == dest:
            return 0
        sc = self.coords(src)
        dc = self.coords(dest)
        total = 0
        for axis in range(3):
            d = abs(sc[axis] - dc[axis])
            total += min(d, self.dims[axis] - d)
        return total

    def diameter(self) -> int:
        """Maximum hop distance on this torus."""
        return sum(d // 2 for d in self.dims)
