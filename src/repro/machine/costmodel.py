"""Virtual-time cost model for the pipeline stages.

The pipeline measures *work counts* (they are exact — the computation
really runs), and this model converts them into virtual Blue Gene/P
seconds per rank:

- read/write: collective I/O with aggregate bandwidth caps and
  per-process metadata overhead (the paper identifies output I/O as a
  primary scalability limit at high process counts),
- compute: gradient sweep + V-path tracing + per-block simplification,
- merge: message transfer through the torus (latency + hops + bytes) plus
  gluing and re-simplification at the group root.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.bgp import BlueGenePParams
from repro.machine.topology import TorusTopology

__all__ = ["ComputeWork", "MergeWork", "CostModel"]


@dataclass
class ComputeWork:
    """Work counters of one block's compute stage (§IV-C/D/E)."""

    cells: int = 0  # refined cells swept by the gradient algorithm
    geometry_cells: int = 0  # V-path cells traced
    cancellations: int = 0  # per-block simplification cancellations

    def __iadd__(self, other: "ComputeWork") -> "ComputeWork":
        self.cells += other.cells
        self.geometry_cells += other.geometry_cells
        self.cancellations += other.cancellations
        return self


@dataclass
class MergeWork:
    """Work counters of one merge performed at a group root (§IV-F3)."""

    glued_elements: int = 0  # nodes + arcs inserted during gluing
    cancellations: int = 0  # re-simplification after the glue
    packed_bytes: int = 0  # pack/unpack volume at the root


class CostModel:
    """Convert work counts into virtual seconds on the modeled machine."""

    def __init__(
        self, params: BlueGenePParams | None = None, num_procs: int = 1
    ) -> None:
        self.params = params or BlueGenePParams()
        self.num_procs = int(num_procs)
        self.topology = TorusTopology(self.num_procs)

    # -- stage costs -----------------------------------------------------

    def read_time(self, bytes_per_rank: int) -> float:
        """Collective read cost for one rank reading its blocks."""
        p = self.params
        bw = p.io_bandwidth(self.num_procs) / self.num_procs
        return (
            p.io_startup
            + self.num_procs * p.io_per_process_overhead
            + bytes_per_rank / bw
        )

    def write_time(self, bytes_this_rank: int) -> float:
        """Collective write cost (null writes still pay the collective)."""
        p = self.params
        bw = p.io_bandwidth(self.num_procs) / self.num_procs
        return (
            p.io_startup
            + self.num_procs * p.io_per_process_overhead
            + bytes_this_rank / bw
        )

    def compute_time(self, work: ComputeWork) -> float:
        """Local gradient + MS complex + simplification cost."""
        p = self.params
        return (
            work.cells / p.gradient_cells_per_second
            + work.geometry_cells / p.trace_cells_per_second
            + work.cancellations / p.cancellations_per_second
        )

    def message_time(self, nbytes: int, src: int, dest: int) -> float:
        """Point-to-point transfer time through the torus."""
        if src == dest:
            return 0.0
        p = self.params
        hops = self.topology.hops(src, dest)
        return p.latency + hops * p.hop_latency + nbytes / p.link_bandwidth

    def merge_time(self, work: MergeWork) -> float:
        """Glue + re-simplify + pack cost at a merge-group root."""
        p = self.params
        return (
            work.glued_elements / p.glue_elements_per_second
            + work.cancellations / p.cancellations_per_second
            + work.packed_bytes / p.pack_bandwidth
        )
