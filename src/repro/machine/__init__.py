"""Simulated IBM Blue Gene/P ("Intrepid") machine model.

The paper's performance study ran on the Argonne Blue Gene/P: 40,960
quad-core nodes in a 3D torus, used in *smp* mode (one process per node,
2 GB per process).  This reproduction cannot run there, so the virtual
pipeline assigns every rank a *virtual clock*: real, measured work counts
(cells swept, V-path cells traced, cancellations, message bytes) are
converted into virtual seconds by a cost model with Blue Gene/P-like
constants.  The absolute constants are calibrated to land in the paper's
reported magnitude range; the reproduced quantities of interest are the
*shapes* — weak-scaling efficiency of the compute stage, merge time's
dependence on feature count, rising cost of later merge rounds, and the
compute/merge crossover in strong scaling.
"""

from repro.machine.bgp import BlueGenePParams
from repro.machine.topology import TorusTopology
from repro.machine.costmodel import CostModel, ComputeWork, MergeWork

__all__ = [
    "BlueGenePParams",
    "ComputeWork",
    "CostModel",
    "MergeWork",
    "TorusTopology",
]
