"""Scalar fields on structured grids and integer block extents.

The data domain is "a structured grid of regularly spaced hexahedral
cells, with scalar values at the vertices" (paper, section IV-A).  Blocks
produced by the domain decomposition share one layer of vertex values with
each neighbor: if block ``B[i,j,k]`` has size ``X x Y x Z`` then
``B[i,j,k][X-1][y][z] == B[i+1,j,k][0][y][z]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Box", "StructuredGrid"]

#: Number of spatial axes; the paper (and this reproduction) is 3D only.
NDIMS = 3


@dataclass(frozen=True)
class Box:
    """A half-open integer box ``[lo, hi)`` in vertex coordinates.

    Boxes describe block extents in the global vertex grid.  Two blocks
    are neighbors along an axis when one's ``hi - 1`` equals the other's
    ``lo`` on that axis (the shared vertex layer).
    """

    lo: tuple[int, int, int]
    hi: tuple[int, int, int]

    def __post_init__(self) -> None:
        if len(self.lo) != NDIMS or len(self.hi) != NDIMS:
            raise ValueError("Box must be three-dimensional")
        if any(h - l < 2 for l, h in zip(self.lo, self.hi)):
            raise ValueError(
                f"Box must span at least 2 vertices per axis, got {self}"
            )

    @property
    def shape(self) -> tuple[int, int, int]:
        """Number of vertices per axis, including shared layers."""
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def num_vertices(self) -> int:
        """Total vertex count of the block."""
        x, y, z = self.shape
        return x * y * z

    @property
    def refined_origin(self) -> tuple[int, int, int]:
        """Origin of the block in global *refined* coordinates."""
        return tuple(2 * l for l in self.lo)

    @property
    def refined_shape(self) -> tuple[int, int, int]:
        """Refined-grid extent of the block (``2n - 1`` per axis)."""
        return tuple(2 * (h - l) - 1 for l, h in zip(self.lo, self.hi))

    @property
    def num_cells(self) -> int:
        """Total number of cells (all dimensions) in the block's complex."""
        x, y, z = self.refined_shape
        return x * y * z

    def contains_vertex(self, v: tuple[int, int, int]) -> bool:
        """Whether global vertex coordinate ``v`` lies in this box."""
        return all(l <= c < h for c, l, h in zip(v, self.lo, self.hi))

    def union(self, other: "Box") -> "Box":
        """Smallest box containing both boxes (used when merging blocks)."""
        lo = tuple(min(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(max(a, b) for a, b in zip(self.hi, other.hi))
        return Box(lo, hi)

    def slices(self) -> tuple[slice, slice, slice]:
        """Numpy slices selecting this box from a global vertex array."""
        return tuple(slice(l, h) for l, h in zip(self.lo, self.hi))


class StructuredGrid:
    """A scalar field sampled at the vertices of a 3D structured grid.

    Parameters
    ----------
    values:
        Array of shape ``(NX, NY, NZ)`` with vertex samples, indexed
        ``values[i, j, k]``.  Any real dtype is accepted; computations are
        carried out in float64.
    spacing:
        Physical spacing between vertices per axis (used only by analysis
        utilities computing geometric arc lengths).
    """

    def __init__(
        self,
        values: np.ndarray,
        spacing: tuple[float, float, float] = (1.0, 1.0, 1.0),
    ) -> None:
        values = np.asarray(values)
        if values.ndim != NDIMS:
            raise ValueError(f"expected a 3D array, got shape {values.shape}")
        if any(n < 2 for n in values.shape):
            raise ValueError(
                f"grid needs at least 2 vertices per axis, got {values.shape}"
            )
        if not np.all(np.isfinite(values.astype(np.float64))):
            raise ValueError("grid values must be finite")
        self._values = np.ascontiguousarray(values, dtype=np.float64)
        self.spacing = tuple(float(s) for s in spacing)

    @property
    def values(self) -> np.ndarray:
        """The vertex sample array, shape ``(NX, NY, NZ)``, float64."""
        return self._values

    @property
    def dims(self) -> tuple[int, int, int]:
        """Vertex counts per axis."""
        return self._values.shape

    @property
    def refined_dims(self) -> tuple[int, int, int]:
        """Refined-grid extents ``2N - 1`` per axis."""
        return tuple(2 * n - 1 for n in self.dims)

    @property
    def domain_box(self) -> Box:
        """The box covering the whole domain."""
        return Box((0, 0, 0), self.dims)

    @property
    def nbytes(self) -> int:
        """Size of the vertex data in bytes (float64 representation)."""
        return self._values.nbytes

    def extract_block(self, box: Box) -> np.ndarray:
        """Return the vertex values of ``box`` (a view, shared layer included)."""
        if not (
            all(0 <= l for l in box.lo)
            and all(h <= n for h, n in zip(box.hi, self.dims))
        ):
            raise ValueError(f"{box} does not fit in grid of dims {self.dims}")
        return self._values[box.slices()]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StructuredGrid(dims={self.dims}, spacing={self.spacing})"
