"""Flat-array cubical complex over a block's refined grid.

The complex follows the paper's storage scheme (section IV-C): "we use a
refined grid to store the result of the gradient computation, where vertex
``(i, j, k)`` of the refined grid represents a d-cell of the implicit
original grid, where ``d = i%2 + j%2 + k%2``".  All per-cell attributes
(cell value, dimension, boundary signature, global address, simulation-of-
simplicity rank) live in flat numpy arrays indexed by *padded* refined
address, so that the ±1 neighbor arithmetic used for facet/cofacet
traversal never needs bounds checks: the refined grid is surrounded by a
one-element layer of sentinel cells that are never valid pairing partners.

Cell values are assigned "as the maximum of the values at the vertices"
(section IV-C), and ties are resolved with the improved simulation of
simplicity of Gyulassy et al. [11]: cells are totally ordered by the
lexicographic comparison of their descending-sorted vertex-value lists,
with the global cell address as the final tie-break.  The order is exposed
as a dense integer rank so the gradient sweep can compare cells with one
integer comparison.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.mesh.addressing import boundary_signature, global_refined_address

__all__ = ["CubicalComplex", "CELL_DIM_NAMES"]

#: Human-readable names of critical cells by index, for summaries.
CELL_DIM_NAMES = ("minimum", "1-saddle", "2-saddle", "maximum")

_POPCOUNT3 = np.array([0, 1, 1, 2, 1, 2, 2, 3], dtype=np.uint8)


def _axis_bits(t: int) -> tuple[int, int, int]:
    """Parity bits (x, y, z) of celltype ``t``."""
    return (t & 1, (t >> 1) & 1, (t >> 2) & 1)


class CubicalComplex:
    """The cubical cell complex of one block of a structured grid.

    Parameters
    ----------
    block_values:
        Vertex samples of the block, shape ``(X, Y, Z)`` (shared layers
        with neighboring blocks included).
    refined_origin:
        Global refined coordinate of the block's first cell.  ``(0, 0, 0)``
        for a serial (single-block) computation.
    global_refined_dims:
        Refined extents of the *whole* dataset; defaults to this block's
        own extents (serial case).  Used for global addresses.
    cut_planes:
        Per-axis arrays of global refined cut-plane coordinates of the
        domain decomposition; cells on a cut plane receive a non-zero
        boundary signature that restricts gradient pairing.  ``None``
        (serial) means every cell has signature 0.
    """

    def __init__(
        self,
        block_values: np.ndarray,
        refined_origin: tuple[int, int, int] = (0, 0, 0),
        global_refined_dims: tuple[int, int, int] | None = None,
        cut_planes: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    ) -> None:
        block_values = np.ascontiguousarray(block_values, dtype=np.float64)
        if block_values.ndim != 3:
            raise ValueError("block_values must be a 3D array")
        if any(n < 2 for n in block_values.shape):
            raise ValueError("block needs >= 2 vertices per axis")

        self.vertex_values = block_values
        self.vertex_shape = block_values.shape
        #: refined extents of this block (2n-1 per axis)
        self.refined_shape = tuple(2 * n - 1 for n in block_values.shape)
        #: padded extents (refined + sentinel layer on each side)
        self.padded_shape = tuple(r + 2 for r in self.refined_shape)
        self.refined_origin = tuple(int(c) for c in refined_origin)
        if global_refined_dims is None:
            global_refined_dims = self.refined_shape
        self.global_refined_dims = tuple(int(d) for d in global_refined_dims)
        for o, r, g in zip(
            self.refined_origin, self.refined_shape, self.global_refined_dims
        ):
            if o < 0 or o + r > g:
                raise ValueError(
                    "block refined extent exceeds global refined dims"
                )

        px, py, _pz = self.padded_shape
        #: flat-index steps per axis in the padded grid (x fastest)
        self.steps = (1, px, px * py)
        self.num_padded = int(np.prod(self.padded_shape))
        self.num_cells = int(np.prod(self.refined_shape))

        self._build_flat_arrays(cut_planes)
        self._build_offset_tables()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _pad_and_flatten(self, arr3d: np.ndarray, fill) -> np.ndarray:
        """Embed a refined-grid array into the padded flat layout."""
        padded = np.full(self.padded_shape, fill, dtype=arr3d.dtype)
        padded[1:-1, 1:-1, 1:-1] = arr3d
        return padded.ravel(order="F")

    def _build_flat_arrays(self, cut_planes) -> None:
        rx, ry, rz = self.refined_shape

        # refined coordinates (3D, broadcastable)
        ri = np.arange(rx, dtype=np.int64)[:, None, None]
        rj = np.arange(ry, dtype=np.int64)[None, :, None]
        rk = np.arange(rz, dtype=np.int64)[None, None, :]

        # celltype: parity bits of the refined coordinate
        ctype = (
            (ri & 1) | ((rj & 1) << 1) | ((rk & 1) << 2)
        ).astype(np.uint8)
        ctype = np.broadcast_to(ctype, self.refined_shape)
        self.celltype = self._pad_and_flatten(np.ascontiguousarray(ctype), 0)
        self.cell_dim = _POPCOUNT3[self.celltype]

        valid3d = np.ones(self.refined_shape, dtype=bool)
        self.valid = self._pad_and_flatten(valid3d, False)

        # cell values: separable max over the vertices of each cell
        ref = np.full(self.refined_shape, -np.inf)
        ref[::2, ::2, ::2] = self.vertex_values
        ref[1::2, :, :] = np.maximum(ref[0:-1:2, :, :], ref[2::2, :, :])
        ref[:, 1::2, :] = np.maximum(ref[:, 0:-1:2, :], ref[:, 2::2, :])
        ref[:, :, 1::2] = np.maximum(ref[:, :, 0:-1:2], ref[:, :, 2::2])
        self.cell_value = self._pad_and_flatten(ref, -np.inf)

        # global addresses
        gi = ri + self.refined_origin[0]
        gj = rj + self.refined_origin[1]
        gk = rk + self.refined_origin[2]
        addr = global_refined_address(gi, gj, gk, self.global_refined_dims)
        addr = np.ascontiguousarray(
            np.broadcast_to(addr, self.refined_shape), dtype=np.int64
        )
        self.global_address = self._pad_and_flatten(addr, -1)

        # boundary signatures
        if cut_planes is None:
            sig3d = np.zeros(self.refined_shape, dtype=np.uint8)
        else:
            sig3d = boundary_signature(
                np.broadcast_to(gi, self.refined_shape),
                np.broadcast_to(gj, self.refined_shape),
                np.broadcast_to(gk, self.refined_shape),
                cut_planes,
                self.global_refined_dims,
            )
        # sentinel cells get an impossible signature so they are never
        # candidates for pairing
        self.boundary_sig = self._pad_and_flatten(
            np.ascontiguousarray(sig3d), np.uint8(255)
        )

        self._build_order_rank(gi, gj, gk)

    def _build_order_rank(self, gi, gj, gk) -> None:
        """Dense simulation-of-simplicity rank over all valid cells.

        Key = (descending-sorted vertex values, global address), compared
        lexicographically.  Vertex-value lists of d-cells are padded to
        eight entries by duplication (each vertex appears ``2**(3-d)``
        times), which preserves comparisons between cells of equal
        dimension — the only comparisons the gradient sweep performs.
        """
        rx, ry, rz = self.refined_shape
        cols = np.empty((8,) + self.refined_shape, dtype=np.float32)
        ax_range = [np.arange(n, dtype=np.int64) for n in self.refined_shape]
        for m in range(8):
            idx = []
            for a in range(3):
                bit = (m >> a) & 1
                r = ax_range[a]
                v = np.where(r % 2 == 1, r + (1 if bit else -1), r) // 2
                idx.append(v)
            cols[m] = self.vertex_values[np.ix_(*idx)]
        cols.sort(axis=0)
        cols = cols[::-1]  # descending

        addr3d = np.broadcast_to(
            global_refined_address(gi, gj, gk, self.global_refined_dims),
            self.refined_shape,
        )
        flat_cols = [c.ravel(order="F") for c in cols]
        flat_addr = addr3d.ravel(order="F")
        # np.lexsort: last key is primary
        keys = (flat_addr,) + tuple(flat_cols[::-1])
        perm = np.lexsort(keys)
        rank3d = np.empty(self.num_cells, dtype=np.int64)
        rank3d[perm] = np.arange(self.num_cells, dtype=np.int64)
        self.order_rank = self._pad_and_flatten(
            rank3d.reshape(self.refined_shape, order="F"),
            np.iinfo(np.int64).max,
        )

    def _build_offset_tables(self) -> None:
        """Facet/cofacet flat-offset tables indexed by celltype."""
        facet: list[tuple[int, ...]] = []
        cofacet: list[tuple[int, ...]] = []
        for t in range(8):
            bits = _axis_bits(t)
            f: list[int] = []
            c: list[int] = []
            for a in range(3):
                if bits[a]:
                    f += [self.steps[a], -self.steps[a]]
                else:
                    c += [self.steps[a], -self.steps[a]]
            facet.append(tuple(f))
            cofacet.append(tuple(c))
        self.facet_offsets = tuple(facet)
        self.cofacet_offsets = tuple(cofacet)

    # ------------------------------------------------------------------
    # coordinate / identity helpers
    # ------------------------------------------------------------------

    def padded_index(self, ri: int, rj: int, rk: int) -> int:
        """Flat padded index of refined coordinate ``(ri, rj, rk)``."""
        sx, sy, sz = self.steps
        return (ri + 1) * sx + (rj + 1) * sy + (rk + 1) * sz

    def refined_coords(self, p: int) -> tuple[int, int, int]:
        """Refined coordinates of flat padded index ``p``."""
        px, py, _pz = self.padded_shape
        return (p % px - 1, (p // px) % py - 1, p // (px * py) - 1)

    def global_coords(self, p: int) -> tuple[int, int, int]:
        """Global refined coordinates of flat padded index ``p``."""
        i, j, k = self.refined_coords(p)
        o = self.refined_origin
        return (i + o[0], j + o[1], k + o[2])

    @cached_property
    def cells_by_dim(self) -> tuple[np.ndarray, ...]:
        """Padded flat indices of valid cells per dimension, in SoS order."""
        out = []
        for d in range(4):
            cells = np.flatnonzero(self.valid & (self.cell_dim == d))
            order = np.argsort(self.order_rank[cells], kind="stable")
            out.append(cells[order].astype(np.int64))
        return tuple(out)

    def vertices_of_cell(self, p: int) -> list[int]:
        """Padded flat indices of the vertices (0-cells) of cell ``p``."""
        i, j, k = self.refined_coords(p)
        xs = [i] if i % 2 == 0 else [i - 1, i + 1]
        ys = [j] if j % 2 == 0 else [j - 1, j + 1]
        zs = [k] if k % 2 == 0 else [k - 1, k + 1]
        return [
            self.padded_index(x, y, z) for z in zs for y in ys for x in xs
        ]

    def facets(self, p: int) -> list[int]:
        """Padded flat indices of the facets of cell ``p``."""
        t = int(self.celltype[p])
        return [p + off for off in self.facet_offsets[t]]

    def cofacets(self, p: int) -> list[int]:
        """Padded flat indices of the *in-bounds* cofacets of cell ``p``."""
        t = int(self.celltype[p])
        return [
            p + off for off in self.cofacet_offsets[t] if self.valid[p + off]
        ]

    def euler_characteristic(self) -> int:
        """Alternating sum of cell counts (1 for any full block: a box)."""
        counts = [int(len(self.cells_by_dim[d])) for d in range(4)]
        return counts[0] - counts[1] + counts[2] - counts[3]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CubicalComplex(vertex_shape={self.vertex_shape}, "
            f"origin={self.refined_origin})"
        )
