"""Flat-array cubical complex over a block's refined grid.

The complex follows the paper's storage scheme (section IV-C): "we use a
refined grid to store the result of the gradient computation, where vertex
``(i, j, k)`` of the refined grid represents a d-cell of the implicit
original grid, where ``d = i%2 + j%2 + k%2``".  All per-cell attributes
(cell value, dimension, boundary signature, global address, simulation-of-
simplicity rank) live in flat numpy arrays indexed by *padded* refined
address, so that the ±1 neighbor arithmetic used for facet/cofacet
traversal never needs bounds checks: the refined grid is surrounded by a
one-element layer of sentinel cells that are never valid pairing partners.

Cell values are assigned "as the maximum of the values at the vertices"
(section IV-C), and ties are resolved with the improved simulation of
simplicity of Gyulassy et al. [11]: cells are totally ordered by the
lexicographic comparison of their descending-sorted vertex-value lists,
with the global cell address as the final tie-break.  The order is exposed
as a dense integer rank so the gradient sweep can compare cells with one
integer comparison.

Structure-table memoization
---------------------------
Everything about the complex that depends only on the block's *shape* —
celltype and dimension per padded cell, the valid-cell mask, the
facet/cofacet flat-offset tables, the padded-layout scatter indices, and
the per-celltype candidate tables the gradient and tracing kernels walk
— is factored into :class:`MeshStructureTables` and memoized per
``padded_shape`` in a module-level LRU cache.  A worker process
computing many same-shaped blocks builds these tables once, not once
per block; per-*block* data (vertex values, cell values, global
addresses, boundary signatures, SoS ranks) is never cached.  The cached
arrays are marked read-only and shared by reference, so cache reuse
cannot change a single output bit (asserted by the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property, lru_cache

import numpy as np

from repro.mesh.addressing import boundary_signature, global_refined_address

__all__ = [
    "CubicalComplex",
    "CELL_DIM_NAMES",
    "MeshStructureTables",
    "build_structure_tables",
    "structure_tables",
    "structure_cache_info",
    "clear_structure_cache",
]

#: Human-readable names of critical cells by index, for summaries.
CELL_DIM_NAMES = ("minimum", "1-saddle", "2-saddle", "maximum")

_POPCOUNT3 = np.array([0, 1, 1, 2, 1, 2, 2, 3], dtype=np.uint8)


def _axis_bits(t: int) -> tuple[int, int, int]:
    """Parity bits (x, y, z) of celltype ``t``."""
    return (t & 1, (t >> 1) & 1, (t >> 2) & 1)


@dataclass(frozen=True)
class MeshStructureTables:
    """Shape-dependent structure of every block with one ``padded_shape``.

    All arrays are flat over the padded layout (x fastest) and read-only;
    instances are shared between every :class:`CubicalComplex` of the
    same shape via :func:`structure_tables`.
    """

    padded_shape: tuple[int, int, int]
    refined_shape: tuple[int, int, int]
    #: flat-index steps per axis in the padded grid (x fastest)
    steps: tuple[int, int, int]
    num_padded: int
    num_cells: int
    #: celltype (parity bits) per padded cell; sentinels hold 0
    celltype: np.ndarray
    #: cell dimension (popcount of celltype) per padded cell
    cell_dim: np.ndarray
    #: True exactly on the refined interior (sentinels False)
    valid: np.ndarray
    #: flat padded indices of the refined interior, in C order of the
    #: refined block — the scatter index embedding a refined-grid array
    #: into the padded flat layout
    interior_index: np.ndarray
    #: facet flat offsets per celltype
    facet_offsets: tuple[tuple[int, ...], ...]
    #: cofacet flat offsets per celltype
    cofacet_offsets: tuple[tuple[int, ...], ...]
    #: flat offset per direction code 0..5 (+x, -x, +y, -y, +z, -z)
    dir_offsets: tuple[int, int, int, int, int, int]
    #: gradient-sweep candidates per celltype: for each cofacet of a
    #: t-cell, ``(offset, code_tail, code_head, other_facet_offsets)``
    #: where the codes are the direction codes of the tail->head and
    #: head->tail arrows and ``other_facet_offsets`` are the cofacet's
    #: facet offsets excluding the one leading back to the tail
    pair_candidates: tuple[
        tuple[tuple[int, int, int, tuple[int, ...]], ...], ...
    ]
    #: V-path continuation table: ``trace_facets[t][code]`` lists the
    #: facet offsets of a t-cell excluding ``dir_offsets[code ^ 1]`` —
    #: the facet a descending trace arrived through when the arriving
    #: cell's pairing code is ``code``
    trace_facets: tuple[tuple[tuple[int, ...], ...], ...]
    #: padded indices of valid cells per dimension (layout order, not
    #: SoS order — the data-dependent sort stays per block)
    cells_of_dim: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


def build_structure_tables(
    padded_shape: tuple[int, int, int],
) -> MeshStructureTables:
    """Construct the structure tables of one padded shape (uncached)."""
    px, py, pz = padded_shape
    refined_shape = (px - 2, py - 2, pz - 2)
    rx, ry, rz = refined_shape
    steps = (1, px, px * py)
    num_padded = px * py * pz
    num_cells = rx * ry * rz

    ri = np.arange(rx, dtype=np.int64)[:, None, None]
    rj = np.arange(ry, dtype=np.int64)[None, :, None]
    rk = np.arange(rz, dtype=np.int64)[None, None, :]

    # scatter index: flat padded position of each refined cell, in the
    # C order of the refined block (so ``flat[idx] = arr3d.ravel()``
    # embeds without any layout copy)
    idx3 = (ri + 1) * steps[0] + (rj + 1) * steps[1] + (rk + 1) * steps[2]
    interior_index = np.ascontiguousarray(idx3).ravel()

    ctype3 = ((ri & 1) | ((rj & 1) << 1) | ((rk & 1) << 2)).astype(np.uint8)
    celltype = np.zeros(num_padded, dtype=np.uint8)
    celltype[interior_index] = np.broadcast_to(
        ctype3, refined_shape
    ).ravel()
    cell_dim = _POPCOUNT3[celltype]

    valid = np.zeros(num_padded, dtype=bool)
    valid[interior_index] = True

    facet: list[tuple[int, ...]] = []
    cofacet: list[tuple[int, ...]] = []
    for t in range(8):
        bits = _axis_bits(t)
        f: list[int] = []
        c: list[int] = []
        for a in range(3):
            if bits[a]:
                f += [steps[a], -steps[a]]
            else:
                c += [steps[a], -steps[a]]
        facet.append(tuple(f))
        cofacet.append(tuple(c))
    facet_offsets = tuple(facet)
    cofacet_offsets = tuple(cofacet)

    sx, sy, sz = steps
    dir_offsets = (sx, -sx, sy, -sy, sz, -sz)
    code_of_offset = {off: code for code, off in enumerate(dir_offsets)}

    pair_candidates = []
    for t in range(8):
        cands = []
        for off in cofacet_offsets[t]:
            head_type = int(
                t | (1 << [abs(off) == s for s in steps].index(True))
            )
            others = tuple(
                foff for foff in facet_offsets[head_type] if foff != -off
            )
            fwd = code_of_offset[off]
            cands.append((off, fwd, fwd ^ 1, others))
        pair_candidates.append(tuple(cands))

    trace_facets = tuple(
        tuple(
            tuple(
                foff
                for foff in facet_offsets[t]
                if foff != dir_offsets[code ^ 1]
            )
            for code in range(6)
        )
        for t in range(8)
    )

    cells_of_dim = tuple(
        np.flatnonzero(valid & (cell_dim == d)) for d in range(4)
    )

    for arr in (celltype, cell_dim, valid, interior_index, *cells_of_dim):
        arr.setflags(write=False)

    return MeshStructureTables(
        padded_shape=tuple(int(n) for n in padded_shape),
        refined_shape=refined_shape,
        steps=steps,
        num_padded=num_padded,
        num_cells=num_cells,
        celltype=celltype,
        cell_dim=cell_dim,
        valid=valid,
        interior_index=interior_index,
        facet_offsets=facet_offsets,
        cofacet_offsets=cofacet_offsets,
        dir_offsets=dir_offsets,
        pair_candidates=tuple(pair_candidates),
        trace_facets=trace_facets,
        cells_of_dim=cells_of_dim,
    )


#: memoized entry point: one table set per padded shape per process
structure_tables = lru_cache(maxsize=64)(build_structure_tables)


def structure_cache_info():
    """Hit/miss statistics of the structure-table cache."""
    return structure_tables.cache_info()


def clear_structure_cache() -> None:
    """Drop every cached table set (tests; never required in production)."""
    structure_tables.cache_clear()


class CubicalComplex:
    """The cubical cell complex of one block of a structured grid.

    Parameters
    ----------
    block_values:
        Vertex samples of the block, shape ``(X, Y, Z)`` (shared layers
        with neighboring blocks included).
    refined_origin:
        Global refined coordinate of the block's first cell.  ``(0, 0, 0)``
        for a serial (single-block) computation.
    global_refined_dims:
        Refined extents of the *whole* dataset; defaults to this block's
        own extents (serial case).  Used for global addresses.
    cut_planes:
        Per-axis arrays of global refined cut-plane coordinates of the
        domain decomposition; cells on a cut plane receive a non-zero
        boundary signature that restricts gradient pairing.  ``None``
        (serial) means every cell has signature 0.
    use_structure_cache:
        Look the shape-dependent tables up in the module-level memo
        (default).  ``False`` rebuilds them from scratch — only useful
        for tests asserting the cache is output-invisible.
    """

    def __init__(
        self,
        block_values: np.ndarray,
        refined_origin: tuple[int, int, int] = (0, 0, 0),
        global_refined_dims: tuple[int, int, int] | None = None,
        cut_planes: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
        use_structure_cache: bool = True,
    ) -> None:
        # the single normalization point for block values: at most one
        # copy, and none when the caller already holds a contiguous
        # float64 array
        block_values = np.ascontiguousarray(block_values, dtype=np.float64)
        if block_values.ndim != 3:
            raise ValueError("block_values must be a 3D array")
        if any(n < 2 for n in block_values.shape):
            raise ValueError("block needs >= 2 vertices per axis")

        self.vertex_values = block_values
        self.vertex_shape = block_values.shape
        #: refined extents of this block (2n-1 per axis)
        self.refined_shape = tuple(2 * n - 1 for n in block_values.shape)
        #: padded extents (refined + sentinel layer on each side)
        self.padded_shape = tuple(r + 2 for r in self.refined_shape)
        self.refined_origin = tuple(int(c) for c in refined_origin)
        if global_refined_dims is None:
            global_refined_dims = self.refined_shape
        self.global_refined_dims = tuple(int(d) for d in global_refined_dims)
        for o, r, g in zip(
            self.refined_origin, self.refined_shape, self.global_refined_dims
        ):
            if o < 0 or o + r > g:
                raise ValueError(
                    "block refined extent exceeds global refined dims"
                )

        tables = (
            structure_tables(self.padded_shape)
            if use_structure_cache
            else build_structure_tables(self.padded_shape)
        )
        #: shared shape-dependent structure (see module docstring)
        self.tables = tables
        self.steps = tables.steps
        self.num_padded = tables.num_padded
        self.num_cells = tables.num_cells
        self.celltype = tables.celltype
        self.cell_dim = tables.cell_dim
        self.valid = tables.valid
        self.facet_offsets = tables.facet_offsets
        self.cofacet_offsets = tables.cofacet_offsets

        self._build_flat_arrays(cut_planes)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _pad_and_flatten(self, arr3d: np.ndarray, fill) -> np.ndarray:
        """Embed a refined-grid array into the padded flat layout."""
        flat = np.full(self.num_padded, fill, dtype=arr3d.dtype)
        flat[self.tables.interior_index] = np.ascontiguousarray(
            arr3d
        ).ravel()
        return flat

    def _build_flat_arrays(self, cut_planes) -> None:
        rx, ry, rz = self.refined_shape

        # refined coordinates (3D, broadcastable)
        ri = np.arange(rx, dtype=np.int64)[:, None, None]
        rj = np.arange(ry, dtype=np.int64)[None, :, None]
        rk = np.arange(rz, dtype=np.int64)[None, None, :]

        # cell values: separable max over the vertices of each cell
        ref = np.full(self.refined_shape, -np.inf)
        ref[::2, ::2, ::2] = self.vertex_values
        ref[1::2, :, :] = np.maximum(ref[0:-1:2, :, :], ref[2::2, :, :])
        ref[:, 1::2, :] = np.maximum(ref[:, 0:-1:2, :], ref[:, 2::2, :])
        ref[:, :, 1::2] = np.maximum(ref[:, :, 0:-1:2], ref[:, :, 2::2])
        self.cell_value = self._pad_and_flatten(ref, -np.inf)

        # global addresses
        gi = ri + self.refined_origin[0]
        gj = rj + self.refined_origin[1]
        gk = rk + self.refined_origin[2]
        addr = global_refined_address(gi, gj, gk, self.global_refined_dims)
        addr = np.ascontiguousarray(
            np.broadcast_to(addr, self.refined_shape), dtype=np.int64
        )
        self.global_address = self._pad_and_flatten(addr, -1)

        # boundary signatures
        if cut_planes is None:
            sig3d = np.zeros(self.refined_shape, dtype=np.uint8)
        else:
            sig3d = boundary_signature(
                np.broadcast_to(gi, self.refined_shape),
                np.broadcast_to(gj, self.refined_shape),
                np.broadcast_to(gk, self.refined_shape),
                cut_planes,
                self.global_refined_dims,
            )
        # sentinel cells get an impossible signature so they are never
        # candidates for pairing
        self.boundary_sig = self._pad_and_flatten(
            np.ascontiguousarray(sig3d), np.uint8(255)
        )

        self._build_order_rank(gi, gj, gk)

    def _build_order_rank(self, gi, gj, gk) -> None:
        """Dense simulation-of-simplicity rank over all valid cells.

        Key = (descending-sorted vertex values, global address), compared
        lexicographically.  Vertex-value lists of d-cells are padded to
        eight entries by duplication (each vertex appears ``2**(3-d)``
        times), which preserves comparisons between cells of equal
        dimension — the only comparisons the gradient sweep performs.
        """
        rx, ry, rz = self.refined_shape
        cols = np.empty((8,) + self.refined_shape, dtype=np.float32)
        ax_range = [np.arange(n, dtype=np.int64) for n in self.refined_shape]
        for m in range(8):
            idx = []
            for a in range(3):
                bit = (m >> a) & 1
                r = ax_range[a]
                v = np.where(r % 2 == 1, r + (1 if bit else -1), r) // 2
                idx.append(v)
            cols[m] = self.vertex_values[np.ix_(*idx)]
        cols.sort(axis=0)
        cols = cols[::-1]  # descending

        addr3d = np.broadcast_to(
            global_refined_address(gi, gj, gk, self.global_refined_dims),
            self.refined_shape,
        )
        # Order-preserving compression of the eight float32 keys into
        # four uint64 keys: map each float to a monotone uint32 (IEEE
        # bit trick), then pack adjacent key pairs big-end-first.  The
        # lexicographic order of the packed keys equals that of the
        # original float keys, and lexsort runs half the passes.
        u = cols.view(np.uint32)
        u = u ^ np.where(
            (u >> 31) != 0, np.uint32(0xFFFFFFFF), np.uint32(0x80000000)
        )
        packed = (u[0::2].astype(np.uint64) << np.uint64(32)) | u[1::2]
        flat_packed = [p.ravel(order="F") for p in packed]
        flat_addr = addr3d.ravel(order="F")
        # np.lexsort: last key is primary
        keys = (flat_addr,) + tuple(flat_packed[::-1])
        perm = np.lexsort(keys)
        rank3d = np.empty(self.num_cells, dtype=np.int64)
        rank3d[perm] = np.arange(self.num_cells, dtype=np.int64)
        self.order_rank = self._pad_and_flatten(
            rank3d.reshape(self.refined_shape, order="F"),
            np.iinfo(np.int64).max,
        )

    # ------------------------------------------------------------------
    # coordinate / identity helpers
    # ------------------------------------------------------------------

    def padded_index(self, ri: int, rj: int, rk: int) -> int:
        """Flat padded index of refined coordinate ``(ri, rj, rk)``."""
        sx, sy, sz = self.steps
        return (ri + 1) * sx + (rj + 1) * sy + (rk + 1) * sz

    def refined_coords(self, p: int) -> tuple[int, int, int]:
        """Refined coordinates of flat padded index ``p``."""
        px, py, _pz = self.padded_shape
        return (p % px - 1, (p // px) % py - 1, p // (px * py) - 1)

    def global_coords(self, p: int) -> tuple[int, int, int]:
        """Global refined coordinates of flat padded index ``p``."""
        i, j, k = self.refined_coords(p)
        o = self.refined_origin
        return (i + o[0], j + o[1], k + o[2])

    @cached_property
    def cells_by_dim(self) -> tuple[np.ndarray, ...]:
        """Padded flat indices of valid cells per dimension, in SoS order."""
        out = []
        for d in range(4):
            cells = self.tables.cells_of_dim[d]
            order = np.argsort(self.order_rank[cells], kind="stable")
            out.append(cells[order].astype(np.int64))
        return tuple(out)

    def vertices_of_cell(self, p: int) -> list[int]:
        """Padded flat indices of the vertices (0-cells) of cell ``p``."""
        i, j, k = self.refined_coords(p)
        xs = [i] if i % 2 == 0 else [i - 1, i + 1]
        ys = [j] if j % 2 == 0 else [j - 1, j + 1]
        zs = [k] if k % 2 == 0 else [k - 1, k + 1]
        return [
            self.padded_index(x, y, z) for z in zs for y in ys for x in xs
        ]

    def facets(self, p: int) -> list[int]:
        """Padded flat indices of the facets of cell ``p``."""
        t = int(self.celltype[p])
        return [p + off for off in self.facet_offsets[t]]

    def cofacets(self, p: int) -> list[int]:
        """Padded flat indices of the *in-bounds* cofacets of cell ``p``."""
        t = int(self.celltype[p])
        return [
            p + off for off in self.cofacet_offsets[t] if self.valid[p + off]
        ]

    def euler_characteristic(self) -> int:
        """Alternating sum of cell counts (1 for any full block: a box)."""
        counts = [int(len(self.cells_by_dim[d])) for d in range(4)]
        return counts[0] - counts[1] + counts[2] - counts[3]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CubicalComplex(vertex_shape={self.vertex_shape}, "
            f"origin={self.refined_origin})"
        )
