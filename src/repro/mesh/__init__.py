"""Cubical cell-complex substrate over 3D structured grids.

The paper's algorithms operate on the *refined grid* representation of a
cubical complex (section IV-C): a structured grid with ``N`` vertices per
axis induces a refined grid of ``2N - 1`` elements per axis in which the
element at refined coordinate ``(i, j, k)`` represents a ``d``-cell of the
original grid with ``d = i%2 + j%2 + k%2``.  This subpackage provides

- :mod:`repro.mesh.grid` — scalar fields on structured grids and integer
  block extents with the paper's one-shared-vertex-layer convention,
- :mod:`repro.mesh.addressing` — local/global refined-address translation
  (section IV-F1) and boundary-signature computation (section IV-C),
- :mod:`repro.mesh.cubical` — the flat-array cubical complex used by the
  discrete-gradient and tracing algorithms.
"""

from repro.mesh.grid import Box, StructuredGrid
from repro.mesh.cubical import CubicalComplex
from repro.mesh.addressing import (
    boundary_signature,
    global_refined_address,
    refined_dims,
)

__all__ = [
    "Box",
    "CubicalComplex",
    "StructuredGrid",
    "boundary_signature",
    "global_refined_address",
    "refined_dims",
]
