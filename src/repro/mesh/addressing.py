"""Refined-grid addressing and boundary signatures.

Addresses (section IV-F1 of the paper)
--------------------------------------
The *address* of a cell is its location in the (global) discrete gradient
array.  With global refined dims ``(GX, GY, GZ)`` the cell at global
refined coordinate ``(i, j, k)`` has address ``i + j*GX + k*GX*GY`` — the
same formula the paper uses to translate local block indices to global
ones prior to the first merge round.  Because the address encodes the
geometric location of the cell, co-located nodes of two block-local MS
complexes are detected during gluing by comparing addresses.

Boundary signatures (section IV-C)
----------------------------------
To make the discrete gradient identical on the shared face between two
blocks, the pairing of a cell lying on one or more internal block-cut
planes is restricted to cells lying on exactly the same set of planes.
Since the bisection decomposition produces a regular grid of blocks, "the
set of cut planes containing a cell" is a *global* property: bit ``a`` of
the signature is set iff the cell's refined coordinate along axis ``a``
lies on an internal cut plane of the decomposition.  Processing signature
classes from most-constrained (block corners) to least (block interiors)
reproduces, on every shared face, the gradient of the 2D restriction of
the function — independently of block interiors, hence identically in
both adjacent blocks.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "refined_dims",
    "global_refined_address",
    "boundary_signature",
    "cut_planes_from_splits",
]


def refined_dims(vertex_dims: Sequence[int]) -> tuple[int, ...]:
    """Refined-grid extents ``2N - 1`` for vertex extents ``N``."""
    return tuple(2 * int(n) - 1 for n in vertex_dims)


def global_refined_address(
    gi: np.ndarray | int,
    gj: np.ndarray | int,
    gk: np.ndarray | int,
    global_refined_dims: Sequence[int],
) -> np.ndarray | int:
    """Flat global address of refined coordinates (vectorized).

    Matches the paper's layout: the x index varies fastest.
    """
    gx, gy, _gz = global_refined_dims
    return gi + gj * gx + gk * gx * gy


def address_to_coords(
    addr: np.ndarray | int, global_refined_dims: Sequence[int]
) -> tuple:
    """Inverse of :func:`global_refined_address`."""
    gx, gy, _gz = global_refined_dims
    gi = addr % gx
    gj = (addr // gx) % gy
    gk = addr // (gx * gy)
    return gi, gj, gk


def cut_planes_from_splits(cut_vertices: Sequence[int]) -> np.ndarray:
    """Refined coordinates of internal cut planes from shared cut vertices.

    If two blocks share the vertex layer at global vertex coordinate
    ``c`` along an axis, the corresponding refined cut plane is at
    refined coordinate ``2c``.
    """
    return np.asarray([2 * int(c) for c in cut_vertices], dtype=np.int64)


def boundary_signature(
    gi: np.ndarray,
    gj: np.ndarray,
    gk: np.ndarray,
    cut_planes: Sequence[np.ndarray],
    global_refined_dims: Sequence[int],
) -> np.ndarray:
    """Signature bitmask (bit ``a`` = on an internal cut plane of axis ``a``).

    Parameters
    ----------
    gi, gj, gk:
        Global refined coordinates of the cells (arrays of equal shape).
    cut_planes:
        Per-axis arrays of refined cut-plane coordinates
        (see :func:`cut_planes_from_splits`).
    global_refined_dims:
        Global refined extents, used to size the per-axis lookup tables.

    Returns
    -------
    ``uint8`` array of the same shape as the coordinate arrays.
    """
    coords = (gi, gj, gk)
    sig = np.zeros(np.shape(gi), dtype=np.uint8)
    for axis in range(3):
        table = np.zeros(int(global_refined_dims[axis]), dtype=bool)
        planes = np.asarray(cut_planes[axis], dtype=np.int64)
        if planes.size:
            if planes.min() < 0 or planes.max() >= table.size:
                raise ValueError(
                    f"cut plane out of range on axis {axis}: {planes}"
                )
            table[planes] = True
        sig |= table[coords[axis]].astype(np.uint8) << axis
    return sig
