"""Dataset generators for the paper's workloads.

- :mod:`repro.data.synthetic` — the sinusoidal size/complexity family of
  the data size and complexity study (Figs. 5 and 6), plus smooth random
  fields for tests,
- :mod:`repro.data.datasets` — proxies for the paper's scientific data:
  the hydrogen-atom probability density (Fig. 4 stability study), the
  JET combustion mixture fraction (Fig. 9 strong scaling), and the
  Rayleigh-Taylor mixing density (Fig. 10 strong scaling).  See DESIGN.md
  for the substitution rationale.
"""

from repro.data.synthetic import (
    sinusoidal_field,
    gaussian_bumps_field,
    write_volume_chunked,
)
from repro.data.datasets import (
    hydrogen_atom,
    jet_mixture_fraction_proxy,
    rayleigh_taylor_proxy,
    rayleigh_taylor_sequence,
)

__all__ = [
    "gaussian_bumps_field",
    "hydrogen_atom",
    "jet_mixture_fraction_proxy",
    "rayleigh_taylor_proxy",
    "rayleigh_taylor_sequence",
    "sinusoidal_field",
    "write_volume_chunked",
]
