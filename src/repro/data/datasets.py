"""Proxies for the paper's scientific datasets.

The original data (a hydrogen-atom probability density, the S3D JET
turbulent-jet mixture fraction at 768x896x512, and a 1152^3
Rayleigh-Taylor density field) are not distributable with this
reproduction.  Each proxy below synthesizes a field with the same
*feature structure* the corresponding experiment depends on — feature
counts, spatial distribution, plateaus/degeneracies — at configurable
(laptop-scale) resolution.  See DESIGN.md §2 for the substitution table.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "hydrogen_atom",
    "jet_mixture_fraction_proxy",
    "rayleigh_taylor_proxy",
    "rayleigh_taylor_sequence",
]


def hydrogen_atom(
    n: int = 48, byte_valued: bool = True
) -> np.ndarray:
    """Hydrogen-atom-in-magnetic-field probability density proxy (Fig. 4).

    The paper's stability study uses "a byte-valued scalar function
    representing the spatial probability density of a hydrogen atom
    residing in a strong magnetic field", whose salient features are
    "three stable maxima connected by stable arcs in a line, and the loop
    representing the toroidal region", embedded in a large constant-value
    exterior (which makes exterior critical points *unstable*).

    This proxy superposes three Gaussian lobes along the field (z) axis
    with a toroidal ring in the midplane, quantized to bytes so the
    exterior is exactly flat.
    """
    t = np.linspace(-1.0, 1.0, n)
    X, Y, Z = np.meshgrid(t, t, t, indexing="ij")
    rho = np.sqrt(X**2 + Y**2)

    lobes = np.zeros_like(X)
    for z0, amp in ((-0.45, 18.0), (0.0, 22.0), (0.45, 18.0)):
        lobes += amp * np.exp(
            -(rho**2 / 0.018 + (Z - z0) ** 2 / 0.012)
        )
    torus = 16.0 * np.exp(
        -(((rho - 0.62) ** 2) / 0.01 + Z**2 / 0.01)
    )
    f = lobes + torus
    if byte_valued:
        f = np.clip(np.round(f), 0, 255).astype(np.uint8).astype(np.float64)
    return f


def jet_mixture_fraction_proxy(
    dims: tuple[int, int, int] = (96, 112, 64),
    seed: int = 7,
    turbulence_octaves: int = 4,
) -> np.ndarray:
    """Turbulent-jet mixture-fraction proxy (Fig. 9 strong scaling).

    The JET simulation is "a temporally-evolving turbulent CO/H2 jet
    flame"; dissipation elements are "centered around minima of mixture
    fraction".  The proxy builds a planar jet core (mixture fraction ~1
    in the core decaying to 0 outside) and superposes band-limited
    multi-octave turbulence concentrated in the shear layers, producing
    many local minima inside the mixing region — the features whose count
    drives merge time.
    """
    nx, ny, nz = dims
    x = np.linspace(0.0, 1.0, nx)[:, None, None]
    y = np.linspace(-1.0, 1.0, ny)[None, :, None]
    z = np.linspace(0.0, 1.0, nz)[None, None, :]

    # jet core: high mixture fraction in a slab around y=0
    core = 0.5 * (np.tanh((0.35 - np.abs(y)) / 0.08) + 1.0)
    core = np.broadcast_to(core, dims).copy()

    # shear-layer envelope: strongest where the gradient of the core is
    envelope = np.exp(-((np.abs(y) - 0.35) ** 2) / 0.02)

    rng = np.random.default_rng(seed)
    turb = np.zeros(dims)
    for octave in range(turbulence_octaves):
        k = 2.0 ** (octave + 1)
        amp = 0.22 / (2.0**octave)
        px, py, pz = rng.uniform(0, 2 * np.pi, size=3)
        qx, qy, qz = rng.uniform(0.6, 1.4, size=3)
        turb += amp * (
            np.sin(2 * np.pi * k * qx * x + px)
            * np.sin(2 * np.pi * k * qy * y + py)
            * np.sin(2 * np.pi * k * qz * z + pz)
        )
    f = core + envelope * turb
    return f.astype(np.float32).astype(np.float64)


def rayleigh_taylor_proxy(
    dims: tuple[int, int, int] = (96, 96, 96),
    seed: int = 11,
    interface_modes: int = 6,
    num_plumes: int = 24,
) -> np.ndarray:
    """Rayleigh-Taylor mixing-density proxy (Fig. 10 strong scaling).

    "When a heavy fluid is placed on top of a lighter one, vertical
    perturbations in the interface create a structure of rising bubbles
    and falling spikes. ... the 1-skeleton of the MS complex can detect
    when isolated bits of one fluid penetrate the other."

    The proxy stacks a heavy fluid (density ~3) over a light one (~1)
    with a multi-mode perturbed interface, then inserts detached bubbles
    (light blobs above the interface) and spikes (heavy blobs below) —
    the isolated penetrating features the MS complex should find.
    """
    nx, ny, nz = dims
    x = np.linspace(0.0, 1.0, nx)
    y = np.linspace(0.0, 1.0, ny)
    z = np.linspace(0.0, 1.0, nz)
    X, Y, Z = np.meshgrid(x, y, z, indexing="ij")

    rng = np.random.default_rng(seed)
    h = 0.5 * np.ones((nx, ny))
    for _ in range(interface_modes):
        kx, ky = rng.integers(1, 5, size=2)
        amp = rng.uniform(0.02, 0.06)
        phx, phy = rng.uniform(0, 2 * np.pi, size=2)
        h += amp * np.cos(2 * np.pi * kx * x[:, None] + phx) * np.cos(
            2 * np.pi * ky * y[None, :] + phy
        )

    # heavy fluid on top: density rises through the interface
    f = 2.0 + np.tanh((Z - h[:, :, None]) / 0.05)

    # bubbles of light fluid above, spikes of heavy fluid below
    for _ in range(num_plumes):
        cx, cy = rng.uniform(0.1, 0.9, size=2)
        is_bubble = rng.random() < 0.5
        base = float(h[int(cx * (nx - 1)), int(cy * (ny - 1))])
        if is_bubble:
            cz = min(0.95, base + rng.uniform(0.08, 0.3))
            amp = -rng.uniform(0.8, 1.6)  # light blob in heavy region
        else:
            cz = max(0.05, base - rng.uniform(0.08, 0.3))
            amp = rng.uniform(0.8, 1.6)  # heavy blob in light region
        w = rng.uniform(0.03, 0.07)
        f += amp * np.exp(
            -((X - cx) ** 2 + (Y - cy) ** 2 + (Z - cz) ** 2) / w**2
        )
    return f.astype(np.float32).astype(np.float64)


def rayleigh_taylor_sequence(
    dims: tuple[int, int, int] = (32, 32, 32),
    num_steps: int = 6,
    seed: int = 11,
):
    """Time-evolving Rayleigh-Taylor proxy for in-situ analysis.

    Yields ``(time, field)`` pairs with the instability developing: the
    interface perturbation amplitude grows and more bubbles/spikes
    detach as time advances — so an in-situ monitor should observe the
    feature count increasing, the signal the paper's planned S3D
    coupling (§VII-B) was meant to deliver during a run.
    """
    if num_steps < 1:
        raise ValueError("num_steps must be >= 1")
    for step in range(num_steps):
        t = step / max(1, num_steps - 1)
        # growth: deeper interface modes and more detached plumes
        yield t, rayleigh_taylor_proxy(
            dims,
            seed=seed,  # frozen mode phases: a coherent time evolution
            interface_modes=3 + int(5 * t),
            num_plumes=int(4 + 20 * t),
        )
